#pragma once
/// \file scenario.hpp
/// Declarative experiment descriptions: the `spmap-scenario/1` JSON format.
///
/// A scenario binds everything one experiment needs — a *platform* (inline
/// `spmap-platform/1` object or a path to one, resolved against the
/// scenario file's directory), a *workload* (workflows/workload_spec.hpp),
/// an optional *sweep* axis, a *mapper line-up* (MapperRegistry spec
/// strings) and the repetition/reporting protocol of the paper's Section
/// IV-A — so an experiment is a committed file instead of a C++ driver.
/// `spmap_cli sweep` and the ported `bench_fig*` binaries both run through
/// this layer; see docs/FORMATS.md for the full schema reference and
/// `scenarios/` for the shipped paper experiments.
///
/// Schema sketch (`"schema": "spmap-scenario/1"`):
///   {
///     "schema": "spmap-scenario/1",
///     "name": "fig4_list_scheduling",
///     "description": "...",
///     "platform": "platforms/paper_cpu_gpu_fpga.json",   // or inline {...}
///     "workload": {"type": "sp", "tasks": 30},
///     "sweep":    {"parameter": "tasks", "values": [5, 20, ...]},  // opt.
///     "mappers":  ["heft", {"spec": "spff:threads=2", "display": "SPFF"}],
///     "repetitions": 10,        // graphs per sweep point
///     "reporting_orders": 100,  // random schedules of the reporting eval
///     "seed": 2
///   }
/// Mapper specs are resolved against the MapperRegistry at *parse* time, so
/// a typo in a committed scenario fails before any graph is generated.
/// Unknown keys anywhere throw spmap::Error listing what is accepted.
///
/// ## Thread-safety
///
/// Parsing and serialization are free functions over value types; a parsed
/// Scenario is plain data and safe to share read-only. Running one is the
/// scenario runner's job (scenario_runner.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "model/platform_io.hpp"
#include "util/json.hpp"
#include "workflows/workload_spec.hpp"

namespace spmap {

/// One algorithm of the line-up: a registry spec plus the label used in
/// result tables (default: the registry entry's display name).
struct ScenarioMapper {
  std::string spec;     ///< "name" or "name:key=value,...".
  std::string display;  ///< Result-table label; never empty after parsing.
};

/// Optional sweep axis: one workload parameter varied over `values`.
struct SweepAxis {
  std::string parameter;  ///< "" = no sweep (a single point).
  std::vector<std::int64_t> values;

  bool enabled() const { return !parameter.empty(); }
};

/// A fully parsed experiment description.
struct Scenario {
  std::string name;
  std::string description;
  /// The platform path as written in the file ("" if inline); kept so
  /// serialization round-trips the reference instead of inlining it.
  std::string platform_path;
  NamedPlatform platform;
  WorkloadSpec workload;
  SweepAxis sweep;
  std::vector<ScenarioMapper> mappers;
  std::size_t repetitions = 5;
  std::size_t reporting_orders = 100;
  std::uint64_t seed = 1;
  /// Directory of the scenario file; resolves workload `path`s.
  std::string base_dir;
};

/// Parses a `spmap-scenario/1` document. `base_dir` resolves relative
/// platform/workload paths ("" = current directory). Mapper specs, the
/// sweep parameter and the platform are validated eagerly; all violations
/// throw spmap::Error with diagnostics.
Scenario scenario_from_json(const Json& doc, const std::string& base_dir = "");

/// Serializes. scenario_from_json(scenario_to_json(s), s.base_dir)
/// reproduces s (platform references stay references).
Json scenario_to_json(const Scenario& scenario);

/// Reads and parses a scenario file; the file's directory becomes
/// `base_dir`. Throws spmap::Error if the file cannot be opened.
Scenario load_scenario_file(const std::string& path);

}  // namespace spmap
