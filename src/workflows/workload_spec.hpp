#pragma once
/// \file workload_spec.hpp
/// Declarative workload descriptions: the `spmap-workload/1` JSON format.
///
/// A workload spec names a *source of task graphs* instead of a concrete
/// graph: a generator family plus its parameters (and optionally its own
/// seed), or an external file. Scenario files (src/bench/scenario.hpp) bind
/// a workload to a platform and a mapper line-up; the runner materializes
/// as many instances as the scenario's repetitions ask for. Kinds:
///
///  * "sp"        — random series-parallel DAG (paper Section IV-B):
///                  `tasks`, optional `parallel_probability`,
///                  `edge_data_mb`;
///  * "almost-sp" — sp plus `extra_edges` random conflicting edges
///                  (Section IV-C);
///  * "workflow"  — synthetic WfCommons-style family recreation
///                  (Section IV-D): `family` (e.g. "montage"), `width`;
///  * "wfcommons" — external WfCommons wfformat JSON: `path`, resolved
///                  against the scenario file's directory;
///  * "graph"     — a committed spmap task-graph JSON (graph/io.hpp
///                  format): `path`.
///
/// Sweeps (scenario `sweep` axis) override one integer parameter per sweep
/// point: `tasks`, `extra_edges`, or `width`, depending on the kind.
/// Unknown keys, keys inapplicable to the kind, unknown kinds and
/// out-of-range values throw spmap::Error naming what is accepted.
///
/// ## Thread-safety
///
/// Free functions over value types. `materialize` draws from the passed
/// Rng; concurrent calls need distinct Rngs (the scenario runner pre-splits
/// one per repetition, which also makes results thread-count invariant).

#include <cstdint>
#include <string>

#include "graph/io.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace spmap {

enum class WorkloadKind { Sp, AlmostSp, Workflow, WfCommons, GraphFile };

/// Lower-case kind name as used in workload JSON ("sp", "almost-sp", ...).
const char* workload_kind_name(WorkloadKind kind);

/// Parsed workload description. Fields irrelevant to the kind keep their
/// defaults and are not serialized.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::Sp;

  // sp / almost-sp
  std::size_t tasks = 30;
  std::size_t extra_edges = 10;        ///< almost-sp only
  double parallel_probability = 2.0 / 3.0;
  double edge_data_mb = 100.0;

  // workflow
  std::string family = "montage";
  std::size_t width = 12;

  // wfcommons / graph
  std::string path;

  /// Optional generator seed. When set, materialization reseeds from it
  /// (plus the instance index) instead of drawing from the scenario rng, so
  /// one workload can be pinned while the rest of a scenario varies.
  bool has_seed = false;
  std::uint64_t seed = 0;
};

/// Parses a `spmap-workload/1` object (the scenario `workload` value).
/// Throws spmap::Error on unknown keys/kinds and bad values.
WorkloadSpec workload_from_json(const Json& doc);

/// Serializes; workload_from_json(workload_to_json(w)) reproduces w.
Json workload_to_json(const WorkloadSpec& spec);

/// Sweepable integer parameters of this kind ("tasks", "extra_edges",
/// "width"), for sweep-axis validation.
std::vector<std::string> sweepable_parameters(WorkloadKind kind);

/// Overrides one sweep parameter. Throws spmap::Error on a parameter the
/// kind does not sweep, listing what it does.
void apply_sweep_value(WorkloadSpec& spec, const std::string& parameter,
                       std::int64_t value);

/// Generates (or loads) one task-graph instance. `instance` distinguishes
/// repetitions when the spec pins its own seed; `base_dir` resolves
/// relative `path`s (""= current directory). File-backed kinds re-read the
/// file per call; generator kinds consume `rng`.
TaskGraph materialize_workload(const WorkloadSpec& spec, Rng& rng,
                               std::size_t instance = 0,
                               const std::string& base_dir = "");

}  // namespace spmap
