#pragma once
/// \file result_cache.hpp
/// Sharded LRU memo of finished MapJobResults + warm-start incumbent
/// index — the "millions of users" lever of the ROADMAP.
///
/// ## What may be cached, and why hits are provably exact
///
/// The MappingService keys entries on the full computation identity
/// (src/sched/problem_hash.hpp + the canonical mapper spec + merged run
/// bounds + the construction-rng fingerprint + evaluation protocol). Only
/// *deterministic* runs enter the memo: jobs with a pinned construction
/// rng, no wall-clock deadline, and a terminal state of kConverged or
/// kBudgetExhausted. Under the repo's determinism contract such a run is
/// a pure function of the key, so replaying the stored result is
/// bit-identical to recomputing it — the property
/// tests/result_cache_test.cpp proves differentially. Everything else
/// (deadline runs, cancelled runs, unpinned rng streams) bypasses the
/// cache entirely and reports CacheOutcome::kNone.
///
/// ## Warm-start index
///
/// Next to the exact memo, each shard keeps a best-incumbent-per-problem
/// index keyed on the *structural* (insertion-order-invariant) graph hash
/// + platform + inner protocol. A warm lookup returns the best known
/// mapping for that problem regardless of mapper/bounds — the "near miss"
/// reuse: the service offers it as MapRequest::warm_start to opt-in jobs.
/// Mappings are stored in canonical node order and translated through
/// GraphStructure::canonical_rank, so structurally-equal graphs share
/// seeds across labelings; ambiguous structures (symmetric twins) only
/// match their exact labeling (see problem_hash.hpp).
///
/// ## Bounds and eviction
///
/// Both capacity bounds are enforced per shard (each shard gets an equal
/// slice): inserting beyond `max_entries` or `max_bytes` evicts from the
/// least-recently-used end until the new entry fits. Entries larger than
/// a whole shard's byte budget are simply not admitted. Lookups refresh
/// recency. The warm index shares the entry bound (its entries are small)
/// but not the byte bound.
///
/// ## Thread-safety
///
/// Fully thread-safe: one mutex per shard, chosen by key bits, never held
/// while another shard's is. Counters are plain integers mutated under
/// their shard's mutex; `stats()` sums across shards (a racing snapshot
/// is consistent per shard, which is all the observability needs).

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "model/mapping.hpp"
#include "serve/mapping_service.hpp"
#include "util/content_hash.hpp"
#include "util/mutex.hpp"

namespace spmap {

struct ResultCacheOptions {
  /// Power of two recommended; clamped to >= 1. The default suits a
  /// daemon with tens of workers.
  std::size_t shards = 8;
  /// Total entry bound across shards (0 = entries unbounded).
  std::size_t max_entries = 4096;
  /// Total byte bound across shards (0 = bytes unbounded). Entry sizes
  /// are estimated (mapping + trajectory + error payloads + overhead).
  std::size_t max_bytes = 256u << 20;
};

/// Monotonic counters + current occupancy. hits/misses count exact-memo
/// lookups; warm_hits/warm_misses the incumbent index.
struct ResultCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  std::size_t warm_hits = 0;
  std::size_t warm_misses = 0;
  std::size_t entries = 0;  ///< exact-memo entries currently resident
  std::size_t bytes = 0;    ///< estimated resident bytes (exact memo)
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Exact-memo lookup; refreshes LRU recency on hit.
  std::optional<MapJobResult> lookup(const Digest& key);

  /// Inserts (or refreshes) the exact memo entry for `key`, evicting LRU
  /// entries as needed. Oversized results (> the shard byte budget) are
  /// dropped. The caller guarantees `result` came from a deterministic
  /// run of the computation `key` identifies.
  void insert(const Digest& key, const MapJobResult& result);

  /// A warm-start seed: the best known incumbent of one problem, stored
  /// in canonical node order (see GraphStructure).
  struct WarmEntry {
    /// Exact (labeled) graph hash of the run that produced the mapping.
    Digest exact_graph;
    /// Mapping in canonical node order: device of the rank-i node.
    std::vector<DeviceId> canonical_mapping;
    /// The producing run's reported predicted makespan (its own
    /// labeling/evaluator; comparable across labelings only as a
    /// heuristic, which is all seeding needs).
    double predicted_makespan = 0.0;
    /// Producer's structure was ambiguous: only exact labelings may use
    /// this entry.
    bool ambiguous = false;
  };

  /// Best incumbent for `problem_key`, if any; refreshes recency.
  std::optional<WarmEntry> lookup_warm(const Digest& problem_key);

  /// Offers an incumbent; kept only if the problem is new or the offer
  /// beats the stored makespan.
  void offer_warm(const Digest& problem_key, WarmEntry entry);

  ResultCacheStats stats() const;

  /// Approximate resident bytes of one memoized result (used for the
  /// byte bound; exposed for tests).
  static std::size_t approx_bytes(const MapJobResult& result);

 private:
  struct ExactEntry {
    Digest key;
    MapJobResult result;
    std::size_t bytes = 0;
  };
  struct WarmSlot {
    Digest key;
    WarmEntry entry;
  };
  struct DigestHashFn {
    std::size_t operator()(const Digest& d) const {
      return static_cast<std::size_t>(d.lo);
    }
  };
  struct Shard {
    mutable Mutex mutex;
    /// Front = most recently used.
    std::list<ExactEntry> lru SPMAP_GUARDED_BY(mutex);
    std::unordered_map<Digest, std::list<ExactEntry>::iterator, DigestHashFn>
        index SPMAP_GUARDED_BY(mutex);
    std::size_t bytes SPMAP_GUARDED_BY(mutex) = 0;
    std::list<WarmSlot> warm_lru SPMAP_GUARDED_BY(mutex);
    std::unordered_map<Digest, std::list<WarmSlot>::iterator, DigestHashFn>
        warm_index SPMAP_GUARDED_BY(mutex);
    // Counters.
    std::size_t hits SPMAP_GUARDED_BY(mutex) = 0;
    std::size_t misses SPMAP_GUARDED_BY(mutex) = 0;
    std::size_t inserts SPMAP_GUARDED_BY(mutex) = 0;
    std::size_t evictions SPMAP_GUARDED_BY(mutex) = 0;
    std::size_t warm_hits SPMAP_GUARDED_BY(mutex) = 0;
    std::size_t warm_misses SPMAP_GUARDED_BY(mutex) = 0;
  };

  Shard& shard_for(const Digest& key) {
    return shards_[key.hi % shards_.size()];
  }
  void evict_to_fit_locked(Shard& shard, std::size_t incoming_bytes)
      SPMAP_REQUIRES(shard.mutex);

  ResultCacheOptions options_;
  std::size_t shard_entry_budget_ = 0;  // 0 = unbounded
  std::size_t shard_byte_budget_ = 0;   // 0 = unbounded
  std::vector<Shard> shards_;
};

}  // namespace spmap
