/// Property battery for the canonical content hashes under the result
/// cache (util/content_hash.hpp + sched/problem_hash.hpp).
///
/// The hashes carry the cache's entire correctness argument: equal keys
/// must mean equal computations (else the memo silently serves wrong
/// results), and cosmetic respellings — JSON key order, float
/// round-trips, node insertion order for the *structural* hash — must not
/// change the digest (else the cache never hits). Both directions are
/// fuzzed over hundreds of randomized graphs/platforms.

#include "util/content_hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "model/platform.hpp"
#include "sched/problem_hash.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace spmap {
namespace {

// ---- ContentHasher primitives ----

TEST(ContentHasher, DeterministicAndOrderSensitive) {
  const Digest a = ContentHasher().u64(1).u64(2).digest();
  const Digest b = ContentHasher().u64(1).u64(2).digest();
  const Digest c = ContentHasher().u64(2).u64(1).digest();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ContentHasher, DomainSeparationByType) {
  // u64(1),u64(2) must not collide with any single-string spelling.
  const Digest ints = ContentHasher().u64(1).u64(2).digest();
  const Digest str = ContentHasher().str("\x01\x02").digest();
  EXPECT_NE(ints, str);
  // Length-prefixed strings: "ab","c" vs "a","bc".
  EXPECT_NE(ContentHasher().str("ab").str("c").digest(),
            ContentHasher().str("a").str("bc").digest());
  // Signed vs unsigned vs double spellings of the same number.
  EXPECT_NE(ContentHasher().u64(1).digest(), ContentHasher().i64(1).digest());
  EXPECT_NE(ContentHasher().u64(1).digest(), ContentHasher().f64(1.0).digest());
  EXPECT_NE(ContentHasher().boolean(true).digest(),
            ContentHasher().u64(1).digest());
}

TEST(ContentHasher, DomainStringsSeparateHashers) {
  const Digest a = ContentHasher("graph").u64(7).digest();
  const Digest b = ContentHasher("platform").u64(7).digest();
  EXPECT_NE(a, b);
}

TEST(ContentHasher, DoublesHashByBitPattern) {
  // -0.0 == 0.0 numerically but is a different bit pattern — and a
  // different JSON serialization, so it must be a different identity.
  EXPECT_NE(ContentHasher().f64(0.0).digest(),
            ContentHasher().f64(-0.0).digest());
  // Round-tripping a double through its bits is the identity the JSON
  // layer guarantees (%.17g): same value, same digest.
  const double value = 0.1 + 0.2;
  EXPECT_EQ(ContentHasher().f64(value).digest(),
            ContentHasher().f64(value).digest());
}

TEST(ContentHasher, DigestChainingMatters) {
  const Digest inner = ContentHasher().str("inner").digest();
  const Digest other = ContentHasher().str("other").digest();
  EXPECT_NE(ContentHasher().digest(inner).digest(),
            ContentHasher().digest(other).digest());
}

TEST(ContentHasher, HexIs32LowercaseChars) {
  const std::string hex = ContentHasher().u64(42).digest().hex();
  EXPECT_EQ(hex.size(), 32u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

// ---- hash_json canonicalization ----

TEST(HashJson, KeyOrderIsCosmetic) {
  Json a = Json::object();
  a.set("alpha", Json(1.0));
  a.set("beta", Json("x"));
  a.set("gamma", Json(true));
  Json b = Json::object();
  b.set("gamma", Json(true));
  b.set("alpha", Json(1.0));
  b.set("beta", Json("x"));
  EXPECT_EQ(hash_json(a), hash_json(b));
}

TEST(HashJson, ArrayOrderIsData) {
  Json a = Json::array();
  a.push_back(Json(1.0));
  a.push_back(Json(2.0));
  Json b = Json::array();
  b.push_back(Json(2.0));
  b.push_back(Json(1.0));
  EXPECT_NE(hash_json(a), hash_json(b));
}

TEST(HashJson, ValueChangesChangeTheDigest) {
  Json a = Json::object();
  a.set("k", Json(1.0));
  Json b = Json::object();
  b.set("k", Json(2.0));
  Json c = Json::object();
  c.set("K", Json(1.0));
  EXPECT_NE(hash_json(a), hash_json(b));
  EXPECT_NE(hash_json(a), hash_json(c));
}

TEST(HashJson, SerializationRoundTripIsStable) {
  // A reparse of the serialized document (fresh key order, reparsed
  // doubles) must hash identically — the property that makes JSON-borne
  // graphs cacheable at all.
  Json doc = Json::object();
  doc.set("threshold", Json(0.1 + 0.2));
  doc.set("negzero", Json(-0.0));
  Json nested = Json::object();
  nested.set("b", Json(2.5));
  nested.set("a", Json("v"));
  doc.set("nested", std::move(nested));
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(hash_json(doc), hash_json(reparsed));
}

// ---- task graph hashes ----

TaskGraph random_graph(std::uint64_t seed, std::size_t tasks = 16) {
  Rng rng(seed);
  TaskGraph tg;
  tg.dag = generate_sp_dag(tasks, rng);
  tg.attrs = random_task_attrs(tg.dag, rng);
  return tg;
}

/// Rebuilds `graph` with node ids permuted by `perm` (new id of old node
/// v is perm[v]); edges keep their payloads, attrs follow their nodes.
TaskGraph relabel(const TaskGraph& graph,
                  const std::vector<std::uint32_t>& perm) {
  const std::size_t n = graph.dag.node_count();
  TaskGraph out;
  out.dag = Dag(n);
  // Insert edges sorted by (new src, new dst) so adjacency lists are in a
  // genuinely different order than the original's.
  struct E {
    std::uint32_t src, dst;
    double mb;
  };
  std::vector<E> edges;
  for (std::size_t e = 0; e < graph.dag.edge_count(); ++e) {
    const EdgeId id(e);
    edges.push_back({perm[graph.dag.src(id).v], perm[graph.dag.dst(id).v],
                     graph.dag.data_mb(id)});
  }
  std::sort(edges.begin(), edges.end(), [](const E& a, const E& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  for (const E& e : edges) out.dag.add_edge(NodeId(e.src), NodeId(e.dst), e.mb);
  out.attrs.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    out.attrs.complexity[perm[v]] = graph.attrs.complexity[v];
    out.attrs.parallelizability[perm[v]] = graph.attrs.parallelizability[v];
    out.attrs.streamability[perm[v]] = graph.attrs.streamability[v];
    out.attrs.area[perm[v]] = graph.attrs.area[v];
  }
  return out;
}

TEST(TaskGraphHash, SaveLoadRoundTripIsStable) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const TaskGraph graph = random_graph(seed);
    const TaskGraph loaded =
        task_graph_from_json(to_json(graph.dag, graph.attrs));
    EXPECT_EQ(task_graph_hash(graph), task_graph_hash(loaded)) << seed;
    EXPECT_EQ(structural_task_graph_hash(graph).digest,
              structural_task_graph_hash(loaded).digest)
        << seed;
  }
}

TEST(TaskGraphHash, ExactHashIsLabelingSensitiveStructuralIsNot) {
  Rng rng(99);
  int structural_checked = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const TaskGraph graph = random_graph(seed);
    const std::size_t n = graph.dag.node_count();
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::size_t i = n; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    const TaskGraph shuffled = relabel(graph, perm);

    const GraphStructure a = structural_task_graph_hash(graph);
    const GraphStructure b = structural_task_graph_hash(shuffled);
    // The structural identity ignores the labeling...
    EXPECT_EQ(a.digest, b.digest) << seed;
    EXPECT_EQ(a.ambiguous, b.ambiguous) << seed;
    // ...while the exact (computation) identity must not, whenever the
    // permutation actually moved a node.
    bool moved = false;
    for (std::size_t v = 0; v < n; ++v) moved = moved || perm[v] != v;
    if (moved) {
      EXPECT_NE(task_graph_hash(graph), task_graph_hash(shuffled)) << seed;
    }
    // Canonical ranks translate between the labelings: node v of the
    // original and node perm[v] of the relabeled graph are the same
    // structural node, so they must rank equally (unambiguous case).
    if (!a.ambiguous) {
      ++structural_checked;
      for (std::size_t v = 0; v < n; ++v) {
        EXPECT_EQ(a.canonical_rank[v], b.canonical_rank[perm[v]])
            << seed << " node " << v;
      }
    }
    // Ranks are always a permutation of [0, n).
    std::vector<std::uint32_t> sorted = a.canonical_rank;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(sorted[v], static_cast<std::uint32_t>(v)) << seed;
    }
  }
  // Random continuous attrs: ambiguity should be the rare exception.
  EXPECT_GT(structural_checked, 30);
}

TEST(TaskGraphHash, UniformGraphsAreFlaggedAmbiguous) {
  // A diamond with identical attrs everywhere: the two middle nodes are
  // symmetric twins, so cross-labeling translation would be unsound.
  TaskGraph tg;
  tg.dag = Dag(4);
  tg.dag.add_edge(NodeId(0), NodeId(1), 10.0);
  tg.dag.add_edge(NodeId(0), NodeId(2), 10.0);
  tg.dag.add_edge(NodeId(1), NodeId(3), 10.0);
  tg.dag.add_edge(NodeId(2), NodeId(3), 10.0);
  tg.attrs.resize(4);
  for (std::size_t v = 0; v < 4; ++v) {
    tg.attrs.complexity[v] = 5.0;
    tg.attrs.streamability[v] = 1.0;
    tg.attrs.area[v] = 1.0;
  }
  EXPECT_TRUE(structural_task_graph_hash(tg).ambiguous);
}

TEST(TaskGraphHash, FuzzSingleFieldMutationsChangeBothHashes) {
  // 500+ mutation probes: any single model-field change is a different
  // computation AND a different problem, so both identities must move.
  int probes = 0;
  for (std::uint64_t seed = 1; probes < 500; ++seed) {
    const TaskGraph graph = random_graph(seed, 12);
    const Digest exact = task_graph_hash(graph);
    const Digest structural = structural_task_graph_hash(graph).digest;
    Rng rng(seed * 7919 + 1);
    for (int m = 0; m < 8; ++m, ++probes) {
      TaskGraph mutated = graph;
      const std::size_t v = rng.below(graph.dag.node_count());
      switch (rng.below(5)) {
        case 0:
          mutated.attrs.complexity[v] += 0.5;
          break;
        case 1:
          mutated.attrs.parallelizability[v] =
              mutated.attrs.parallelizability[v] > 0.5 ? 0.25 : 0.75;
          break;
        case 2:
          mutated.attrs.streamability[v] += 0.5;
          break;
        case 3:
          mutated.attrs.area[v] += 1.0;
          break;
        default: {
          const EdgeId e(static_cast<std::uint32_t>(
              rng.below(graph.dag.edge_count())));
          mutated.dag.set_data_mb(e, mutated.dag.data_mb(e) + 1.0);
          break;
        }
      }
      EXPECT_NE(task_graph_hash(mutated), exact) << seed << " probe " << m;
      EXPECT_NE(structural_task_graph_hash(mutated).digest, structural)
          << seed << " probe " << m;
    }
  }
}

// ---- platform hash ----

/// Parameterized CPU+FPGA platform so mutation fuzzing can rebuild any
/// single-field variant (Platform devices are immutable once added).
struct PlatformParams {
  std::string cpu_name = "cpu";
  double lanes = 4.0;
  double lane_gops = 1.5;
  std::size_t slots = 2;
  double area_budget = 1000.0;
  double stream_gops = 1.0;
  double fill_fraction = 0.1;
  double bandwidth_gbps = 1.0;
  double latency_s = 0.0;
};

Platform build_platform(const PlatformParams& p) {
  Platform platform;
  Device cpu;
  cpu.name = p.cpu_name;
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = p.lanes;
  cpu.lane_gops = p.lane_gops;
  cpu.slots = p.slots;
  const DeviceId c = platform.add_device(cpu);
  Device fpga;
  fpga.name = "fpga";
  fpga.kind = DeviceKind::Fpga;
  fpga.area_budget = p.area_budget;
  fpga.stream_gops_per_streamability = p.stream_gops;
  fpga.stream_fill_fraction = p.fill_fraction;
  const DeviceId f = platform.add_device(fpga);
  platform.set_link(c, f, p.bandwidth_gbps, p.latency_s);
  return platform;
}

TEST(PlatformHash, MutationsChangeTheDigestNamesDoNot) {
  int probes = 0;
  for (std::uint64_t seed = 1; probes < 100; ++seed) {
    Rng rng(seed);
    PlatformParams params;
    // A random base point so the fuzz covers more than one platform.
    params.lanes = 1.0 + rng.below(8);
    params.lane_gops = 0.5 + rng.uniform();
    params.bandwidth_gbps = 0.5 + rng.uniform();
    const Digest base = platform_hash(build_platform(params));
    EXPECT_EQ(platform_hash(build_platform(params)), base) << seed;

    // Device names are presentation, not model content.
    PlatformParams renamed = params;
    renamed.cpu_name = "whatever";
    EXPECT_EQ(platform_hash(build_platform(renamed)), base) << seed;

    for (int m = 0; m < 4; ++m, ++probes) {
      PlatformParams mutated = params;
      switch (rng.below(7)) {
        case 0: mutated.lanes += 1.0; break;
        case 1: mutated.lane_gops += 1.0; break;
        case 2: mutated.slots += 1; break;
        case 3: mutated.area_budget += 16.0; break;
        case 4: mutated.fill_fraction = mutated.fill_fraction * 0.5 + 0.01; break;
        case 5: mutated.bandwidth_gbps += 0.25; break;
        default: mutated.latency_s += 0.125; break;
      }
      EXPECT_NE(platform_hash(build_platform(mutated)), base)
          << seed << " probe " << m;
    }
  }
}

TEST(PlatformHash, ReferencePlatformIsStable) {
  EXPECT_EQ(platform_hash(reference_platform()),
            platform_hash(reference_platform()));
}

}  // namespace
}  // namespace spmap
