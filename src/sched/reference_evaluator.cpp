#include "sched/reference_evaluator.hpp"

#include <algorithm>

#include "sched/evaluator.hpp"

namespace spmap {

ReferenceEvaluator::ReferenceEvaluator(const CostModel& cost,
                                       EvalParams params)
    : cost_(&cost) {
  const Dag& dag = cost.dag();
  orders_.push_back(bfs_order(dag));
  Rng rng(params.seed);
  for (std::size_t i = 0; i < params.random_orders; ++i) {
    orders_.push_back(random_topological_order(dag, rng));
  }
  start_.resize(dag.node_count());
  finish_.resize(dag.node_count());
  const Platform& platform = cost.platform();
  slot_offset_.resize(platform.device_count() + 1, 0);
  for (std::size_t d = 0; d < platform.device_count(); ++d) {
    slot_offset_[d + 1] =
        slot_offset_[d] + std::max<std::size_t>(1, platform.device(
                                                       DeviceId(d)).slots);
  }
  slot_ready_.resize(slot_offset_.back());
  link_ready_.resize(platform.device_count());
}

double ReferenceEvaluator::evaluate_order(const Mapping& mapping,
                                          const std::vector<NodeId>& order) {
  const Dag& dag = cost_->dag();
  const Platform& platform = cost_->platform();
  SPMAP_ASSERT(order.size() == dag.node_count());
  SPMAP_ASSERT(mapping.size() == dag.node_count());

  std::fill(slot_ready_.begin(), slot_ready_.end(), 0.0);
  std::fill(link_ready_.begin(), link_ready_.end(), 0.0);
  double makespan = 0.0;
  for (const NodeId v : order) {
    const DeviceId d = mapping[v];
    const Device& dev = platform.device(d);
    double ready = 0.0;
    bool streamed_in = false;
    for (const EdgeId e : dag.in_edges(v)) {
      const NodeId u = dag.src(e);
      const DeviceId du = mapping[u];
      if (du == d) {
        if (dev.is_fpga()) {
          ready = std::max(ready,
                           start_[u.v] + dev.stream_fill_fraction *
                                             cost_->exec_time(u, d));
          streamed_in = true;
        } else {
          ready = std::max(ready, finish_[u.v]);
        }
      } else {
        const double t_start = std::max(
            {finish_[u.v], link_ready_[du.v], link_ready_[d.v]});
        const double arrival = t_start + cost_->transfer_time(e, du, d);
        link_ready_[du.v] = arrival;
        link_ready_[d.v] = arrival;
        ready = std::max(ready, arrival);
      }
    }
    if (streamed_in) {
      start_[v.v] = ready;
    } else {
      std::size_t best_slot = slot_offset_[d.v];
      for (std::size_t s = slot_offset_[d.v] + 1; s < slot_offset_[d.v + 1];
           ++s) {
        if (slot_ready_[s] < slot_ready_[best_slot]) best_slot = s;
      }
      start_[v.v] = std::max(ready, slot_ready_[best_slot]);
      slot_ready_[best_slot] = start_[v.v] + cost_->exec_time(v, d);
    }
    finish_[v.v] = start_[v.v] + cost_->exec_time(v, d);
    makespan = std::max(makespan, finish_[v.v]);
  }
  return makespan;
}

double ReferenceEvaluator::evaluate(const Mapping& mapping) {
  if (!cost_->area_feasible(mapping)) return kInfeasible;
  double best = kInfeasible;
  for (const auto& order : orders_) {
    best = std::min(best, evaluate_order(mapping, order));
  }
  return best;
}

}  // namespace spmap
