#pragma once
/// \file problem_hash.hpp
/// Canonical content hashes of mapping-problem inputs (task graph,
/// platform) — the domain layer under the result cache's keys.
///
/// Two different identities matter, and conflating them is exactly the
/// silent-corruption bug a result cache invites:
///
///  * `task_graph_hash` (exact) — the identity of the *computation*. It
///    covers the model content (attrs, edges, payloads) in node-id order,
///    because mapper runs are id-order sensitive: the breadth-first
///    schedule order breaks level ties by node id, so two insertion
///    orders of "the same" graph are genuinely different computations
///    with different (equally valid) results. The memo of MapReports must
///    key on this hash — it is what makes a cache hit provably
///    bit-identical to recomputation. Invariant under JSON key order and
///    save/load round-trips (hashes the parsed structure, and numbers
///    round-trip by bit pattern); sensitive to node insertion order.
///  * `structural_task_graph_hash` — the identity of the *problem*. A
///    Weisfeiler-Lehman-style signature propagated down (over ancestors)
///    and up (over descendants) the DAG with sorted neighbor-signature
///    multisets, so it is invariant under node insertion order. Used by
///    the warm-start index: a good mapping for a structurally-equal graph
///    is a valid *seed* under any labeling (translated through the
///    canonical ranks), it just is not a bit-identical *answer*. Also the
///    content-hash identity exposed to users: "is this the same graph?"
///
/// Node labels are cosmetic (never read by the cost model) and excluded
/// from both hashes, as are device names on the platform side.
///
/// All hashes require validated inputs (acyclic graph, fully-linked
/// platform) — the same precondition every evaluator shares.

#include <cstdint>
#include <vector>

#include "graph/io.hpp"
#include "model/platform.hpp"
#include "util/content_hash.hpp"

namespace spmap {

/// Exact (labeled) content hash of a task graph: node attrs in id order,
/// in-edges per node in adjacency order with payloads. The cache-key
/// identity; see the file comment for why it must be id-order sensitive.
Digest task_graph_hash(const TaskGraph& graph);

/// The structural identity of a task graph plus the canonical node
/// numbering that realizes it.
struct GraphStructure {
  /// Insertion-order-invariant digest of the graph's structure + model
  /// content. Equal digests: structurally equal graphs (up to the
  /// WL-signature approximation; random continuous attrs make accidental
  /// signature collisions vanishingly unlikely, and `ambiguous` flags the
  /// symmetric cases).
  Digest digest;
  /// Canonical rank of each node (a permutation of [0, n)): nodes sorted
  /// by structural signature, ties broken by node id. Two labelings of
  /// one structurally-unambiguous graph rank corresponding nodes equally,
  /// so a mapping stored in canonical order translates between them.
  std::vector<std::uint32_t> canonical_rank;
  /// True when two distinct nodes share a structural signature (symmetric
  /// twins, typically uniform hand-built graphs). Canonical ranks then
  /// depend on the id tie-break, so cross-labeling translation is unsound
  /// and the warm index falls back to exact-labeling matches only.
  bool ambiguous = false;
};

/// Structural hash + canonical ranks; O(V log V + E log E).
GraphStructure structural_task_graph_hash(const TaskGraph& graph);

/// Content hash of a platform: per-device model fields in device-index
/// order (mappings reference device indices, so index order is data, not
/// presentation) plus the full link matrix. Device names excluded.
Digest platform_hash(const Platform& platform);

}  // namespace spmap
