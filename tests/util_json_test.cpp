#include "util/json.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spmap {
namespace {

TEST(Json, Scalars) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.5).as_double(), 3.5);
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_EQ(Json("hi").as_string(), "hi");
}

TEST(Json, TypeErrorsThrow) {
  EXPECT_THROW(Json(1.0).as_string(), Error);
  EXPECT_THROW(Json("x").as_double(), Error);
  EXPECT_THROW(Json(1.5).as_int(), Error);
  EXPECT_THROW(Json().at("k"), Error);
}

TEST(Json, ObjectSetAndAt) {
  Json o = Json::object();
  o.set("a", 1);
  o.set("b", "two");
  o.set("a", 3);  // overwrite
  EXPECT_EQ(o.at("a").as_int(), 3);
  EXPECT_EQ(o.at("b").as_string(), "two");
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("c"));
  EXPECT_THROW(o.at("c"), Error);
}

TEST(Json, RoundTripCompact) {
  Json o = Json::object();
  o.set("name", "series-parallel");
  o.set("count", 17);
  o.set("ratio", 0.25);
  o.set("flag", false);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(Json(nullptr));
  arr.push_back("x\"y\\z");
  o.set("items", std::move(arr));

  const Json parsed = Json::parse(o.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "series-parallel");
  EXPECT_EQ(parsed.at("count").as_int(), 17);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 0.25);
  EXPECT_FALSE(parsed.at("flag").as_bool());
  const auto& items = parsed.at("items").as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].as_int(), 1);
  EXPECT_TRUE(items[1].is_null());
  EXPECT_EQ(items[2].as_string(), "x\"y\\z");
}

TEST(Json, ParseWhitespaceAndNesting) {
  const Json v = Json::parse(R"(  { "a" : [ { "b" : [ 1 , 2 ] } ] }  )");
  EXPECT_EQ(v.at("a").as_array()[0].at("b").as_array()[1].as_int(), 2);
}

TEST(Json, ParseNegativeAndExponent) {
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_double(), -250.0);
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("{} extra"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

TEST(Json, PrettyDumpParses) {
  Json o = Json::object();
  o.set("x", 1);
  Json a = Json::array();
  a.push_back(2);
  o.set("y", std::move(a));
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const Json back = Json::parse(pretty);
  EXPECT_EQ(back.at("x").as_int(), 1);
}

}  // namespace
}  // namespace spmap
