#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace spmap {

bool Json::as_bool() const {
  require(is_bool(), "Json: not a bool");
  return std::get<bool>(value_);
}

double Json::as_double() const {
  require(is_number(), "Json: not a number");
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double d = as_double();
  require(std::nearbyint(d) == d, "Json: number is not integral");
  return static_cast<std::int64_t>(d);
}

const std::string& Json::as_string() const {
  require(is_string(), "Json: not a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  require(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  require(is_array(), "Json: not an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  require(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  require(is_object(), "Json: not an object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return v;
  }
  throw Error("Json: missing key '" + key + "'");
}

bool Json::contains(const std::string& key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : as_object()) {
    if (k == key) return true;
  }
  return false;
}

void Json::set(const std::string& key, Json value) {
  if (is_null()) value_ = Object{};
  auto& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(key, std::move(value));
}

void Json::push_back(Json value) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(value));
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void format_number(double d, std::string& out) {
  char buf[32];
  if (!std::isfinite(d)) {
    // JSON has no NaN/Infinity token; null keeps the document parseable
    // (matching JSON.stringify) instead of emitting 'nan'/'inf'.
    out += "null";
    return;
  }
  if (d == 0.0 && std::signbit(d)) {
    // The integral fast path below would print negative zero as "0" and
    // lose the sign on a round trip; "-0" parses back to -0.0 exactly.
    out += "-0";
    return;
  }
  if (std::nearbyint(d) == d && std::abs(d) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  // Shortest representation that parses back to exactly `d`, so committed
  // files stay human-readable (0.7, not 0.69999999999999996) without
  // losing round-trip exactness.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  out += buf;
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    format_number(as_double(), out);
  } else if (is_string()) {
    escape_string(as_string(), out);
  } else if (is_array()) {
    const auto& arr = as_array();
    out += '[';
    for (std::size_t i = 0; i < arr.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      arr[i].dump_to(out, indent, depth + 1);
    }
    if (!arr.empty()) newline(depth);
    out += ']';
  } else {
    const auto& obj = as_object();
    out += '{';
    for (std::size_t i = 0; i < obj.size(); ++i) {
      if (i) out += ',';
      newline(depth + 1);
      escape_string(obj[i].first, out);
      out += indent >= 0 ? ": " : ":";
      obj[i].second.dump_to(out, indent, depth + 1);
    }
    if (!obj.empty()) newline(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw Error("Json parse error at byte " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t len = 0;
    while (lit[len]) ++len;
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            // Encode as UTF-8 (BMP only; surrogate pairs unsupported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid number");
    // strtod instead of std::stod: stod throws out_of_range whenever strtod
    // reports ERANGE, which glibc also does for *subnormal* results — so a
    // dumped denormal like 5e-324 would not parse back. Underflow to a
    // subnormal (or to zero) is a valid parse; only overflow to infinity
    // and trailing garbage are errors.
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    if (!std::isfinite(value)) fail("number out of range");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

void Json::require_keys(const std::string& context,
                        const std::vector<std::string>& accepted) const {
  require(is_object(), context + ": expected a JSON object");
  for (const auto& [key, value] : as_object()) {
    bool known = false;
    for (const std::string& a : accepted) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (known) continue;
    std::string message =
        context + ": unknown key '" + key + "' (accepted keys: ";
    for (std::size_t i = 0; i < accepted.size(); ++i) {
      if (i) message += ", ";
      message += accepted[i];
    }
    throw Error(message + ")");
  }
}

}  // namespace spmap
