#pragma once
/// \file lookahead_heft.hpp
/// Lookahead HEFT (Bittencourt, Sakellariou, Madeira [7]) — the HEFT
/// variant the paper cites among the list schedulers that try to mitigate
/// HEFT's local view: when choosing a device for a task, the scheduler
/// tentatively places the task and then also schedules its *children* by
/// the plain HEFT rule, picking the device that minimizes the maximum
/// child EFT instead of the task's own EFT.
///
/// One level of lookahead multiplies scheduling cost by roughly the device
/// count times the average out-degree. The per-task candidate frontier
/// (one tentative child schedule per device) is embarrassingly parallel:
/// with `threads > 1` the candidates are scored on a ThreadPool, each with
/// a private scheduler-state copy, and the winner is reduced in device
/// order — so the result is bit-identical to the serial path for every
/// thread count.

#include "mappers/mapper.hpp"

namespace spmap {

struct LookaheadHeftParams {
  /// Worker threads for scoring the per-task device candidates; 1 = serial.
  std::size_t threads = 1;
};

class LookaheadHeftMapper final : public Mapper {
 public:
  explicit LookaheadHeftMapper(LookaheadHeftParams params = {})
      : params_(params) {}

  using Mapper::map;
  std::string name() const override { return "LookaheadHEFT"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;

 private:
  LookaheadHeftParams params_;
};

}  // namespace spmap
