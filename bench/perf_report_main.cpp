/// perf_report — machine-readable performance trajectory of the evaluation
/// core.
///
/// Runs the core makespan-evaluation benchmarks (serial flat path, naive
/// reference path, parallel batch path) without depending on
/// google-benchmark and writes the results as JSON (default:
/// BENCH_eval.json), so every revision can append a comparable data point
/// to the repository's performance history.
///
/// Flags:
///   --out=PATH    output file (default BENCH_eval.json)
///   --smoke       small sizes / short timings: a CI compile-and-run gate,
///                 not a measurement
///   --gate        exit nonzero if a committed benchmark regresses: any
///                 incremental_reassign row below 1.0x, or the 4-thread
///                 evaluate_batch row below 2.5x (skipped with a warning
///                 when the machine has fewer hardware threads, where the
///                 number would be meaningless either way)
///   --seed=N      graph/attribute seed (default 8, the micro-bench seed)
///
/// All timings are best-of-3 (best-of-5 under --smoke) repeated-call
/// windows, taking the minimum mean: the minimum is the estimator least
/// sensitive to scheduler preemption and other one-sided noise.
///
/// JSON schema (`"schema": "spmap-bench-eval/1"`), all times in
/// nanoseconds per single-schedule evaluation:
///   {
///     "schema": "spmap-bench-eval/1",
///     "smoke": false,
///     "seed": 8,
///     "hardware_threads": <std::thread::hardware_concurrency()>,
///     "results": [
///       {"name": "evaluate", "nodes": N, "edges": E,
///        "ns_per_eval": ..., "evals_per_sec": ...},
///       {"name": "evaluate_reference", "nodes": N, "edges": E,
///        "ns_per_eval": ...},             // retained naive baseline
///       {"name": "flat_speedup", "nodes": N,
///        "speedup": reference / flat},    // the PR-over-PR headline
///       {"name": "evaluate_batch", "nodes": N, "batch": B, "threads": T,
///        "ns_per_eval": ..., "speedup_vs_serial": ...,
///        "bit_identical_to_serial": true, // must always be true
///        "threads_exceed_hardware": ...}, // true => speedup not meaningful
///                                         // on this machine
///       {"name": "incremental_reassign", "config": "paper"|"wide_manycore",
///        "nodes": N, "ns_per_full_eval": ..., "ns_per_reassign": ...,
///        "speedup_vs_full_eval": ...,     // one probe vs one full sweep
///        "hybrid_decision": "incremental"|"suffix_sweep"|"mixed",
///        "incremental_probes": ..., "fallback_probes": ...,
///        "avg_replayed_incremental": ..., // positions/probe, each path
///        "avg_swept_fallback": ...},      // counted separately
///       {"name": "local_search", "mapper": "hillclimb:...", "nodes": N,
///        "init_makespan": ..., "makespan": ...,
///        "improvement_vs_init": ..., "seconds": ...}
///     ]
///   }
///
/// The `incremental_reassign` rows measure the local-search probe
/// primitive (a trace-free probe() of one random single-task
/// reassignment) of
/// sched/incremental_evaluator.hpp in two regimes: "paper" is the
/// saturated micro-bench configuration (SP graph, reference platform,
/// scattered mapping), where most probes genuinely reprice a large suffix;
/// "wide_manycore" is a 16-wide layered workflow on the many-core
/// scale-out platform (model/platform.hpp), the dependency-bound regime
/// the engine targets, where the affected suffix is short.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "sched/incremental_evaluator.hpp"
#include "sched/reference_evaluator.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "wide_case.hpp"

namespace {

using namespace spmap;

/// One benchmark case: graph + model + the scattered mapping of the
/// micro-benchmarks (every 4th task on the GPU).
struct Case {
  Dag dag;
  TaskAttrs attrs;
  Platform platform;
  Mapping mapping;

  explicit Case(std::size_t n, std::uint64_t seed)
      : platform(reference_platform()) {
    Rng rng(seed);
    dag = generate_sp_dag(n, rng);
    attrs = random_task_attrs(dag, rng);
    mapping = Mapping(n, DeviceId(0u));
    for (std::size_t i = 0; i < n; i += 4) mapping.device[i] = DeviceId(1u);
  }
};

/// Repetitions of each timing window; the minimum mean across windows is
/// reported. More windows under --smoke, whose short windows are noisier.
std::size_t g_timing_reps = 3;

/// Calls `fn()` repeatedly for at least `min_seconds` per window (after one
/// warm-up call), repeats the window `g_timing_reps` times and returns the
/// smallest mean seconds per call — robust against one-sided scheduler
/// noise, which only ever makes a window slower.
template <typename Fn>
double time_per_call(double min_seconds, Fn&& fn) {
  fn();  // warm-up
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t rep = 0; rep < g_timing_reps; ++rep) {
    std::size_t iterations = 0;
    WallTimer timer;
    do {
      fn();
      ++iterations;
    } while (timer.seconds() < min_seconds);
    best = std::min(best, timer.seconds() / static_cast<double>(iterations));
  }
  return best;
}

/// One incremental-reassignment case: measures the trace-free probe()
/// primitive against a full evaluation of the same configuration and
/// appends an `incremental_reassign` row.
void report_incremental(Json& results, const char* config, const Dag& dag,
                        const TaskAttrs& attrs, const Platform& platform,
                        const Mapping& mapping, double min_seconds,
                        std::vector<std::string>& gate_failures) {
  const std::size_t n = dag.node_count();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);
  volatile double sink = 0.0;
  const double full_s = time_per_call(
      min_seconds, [&] { sink = sink + eval.evaluate(mapping); });

  IncrementalEvaluator inc(eval);
  inc.reset(mapping);
  const std::vector<TaskReassignment> moves =
      benchcase::random_moves(1024, mapping, platform.device_count(), 12);
  std::size_t i = 0;
  volatile double probe_sink = 0.0;
  const double inc_s = time_per_call(min_seconds, [&] {
    probe_sink = probe_sink + inc.probe(moves[i]);
    i = (i + 1) & 1023;
  });

  // Per-path replay metrics from the engine's own counters (the combined
  // average used to fold fallback sweeps into the incremental density —
  // understating it exactly where the hybrid decides).
  const std::size_t inc_probes = inc.incremental_probe_count();
  const std::size_t fb_probes = inc.fallback_probe_count();
  const double avg_inc =
      inc_probes == 0 ? 0.0
                      : static_cast<double>(inc.incremental_replayed_total()) /
                            static_cast<double>(inc_probes);
  const double avg_fb =
      fb_probes == 0 ? 0.0
                     : static_cast<double>(inc.fallback_swept_total()) /
                           static_cast<double>(fb_probes);
  const std::size_t routed = inc_probes + fb_probes;
  const double fb_frac =
      routed == 0 ? 0.0
                  : static_cast<double>(fb_probes) / static_cast<double>(routed);
  const char* decision = fb_frac >= 0.9    ? "suffix_sweep"
                         : fb_frac <= 0.1 ? "incremental"
                                          : "mixed";

  Json entry = Json::object();
  entry.set("name", "incremental_reassign");
  entry.set("config", config);
  entry.set("nodes", n);
  entry.set("ns_per_full_eval", full_s * 1e9);
  entry.set("ns_per_reassign", inc_s * 1e9);
  entry.set("speedup_vs_full_eval", full_s / inc_s);
  entry.set("hybrid_decision", decision);
  entry.set("incremental_probes", inc_probes);
  entry.set("fallback_probes", fb_probes);
  entry.set("avg_replayed_incremental", avg_inc);
  entry.set("avg_swept_fallback", avg_fb);
  results.push_back(std::move(entry));

  std::printf("incremental     n=%-5zu %-13s %10.0f ns/reassign  (full eval "
              "%10.0f ns, speedup %.2fx, %s, inc %zu avg %.0f / sweep %zu "
              "avg %.0f)\n",
              n, config, inc_s * 1e9, full_s * 1e9, full_s / inc_s, decision,
              inc_probes, avg_inc, fb_probes, avg_fb);

  if (full_s / inc_s < 1.0) {
    gate_failures.push_back(
        "incremental_reassign " + std::string(config) + " n=" +
        std::to_string(n) + ": " + std::to_string(full_s / inc_s) +
        "x < 1.0x vs full eval");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"out", "smoke", "seed", "gate"});
  const bool smoke = flags.get_bool("smoke", false);
  const bool gate = flags.get_bool("gate", false);
  const std::string out_path = flags.get("out", "BENCH_eval.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 8));
  const double min_seconds = smoke ? 0.005 : 0.25;
  // Smoke covers the two smaller *committed* configs so the --gate check
  // exercises real rows (n=64 was never a committed config).
  const std::vector<std::int64_t> sizes =
      smoke ? std::vector<std::int64_t>{256, 1024}
            : std::vector<std::int64_t>{256, 1024, 4096};
  const std::size_t batch_size = smoke ? 16 : 100;
  const std::size_t batch_nodes = smoke ? 256 : 1024;
  g_timing_reps = smoke ? 5 : 3;
  const std::size_t hardware_threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::string> gate_failures;

  Json results = Json::array();

  // ---- serial flat path vs retained naive reference ----
  for (const std::int64_t size : sizes) {
    const auto n = static_cast<std::size_t>(size);
    Case c(n, seed);
    const CostModel cost(c.dag, c.attrs, c.platform);
    const Evaluator eval(cost);
    ReferenceEvaluator reference(cost);

    volatile double sink = 0.0;
    const double flat_s = time_per_call(
        min_seconds, [&] { sink = sink + eval.evaluate(c.mapping); });
    const double ref_s = time_per_call(
        min_seconds, [&] { sink = sink + reference.evaluate(c.mapping); });

    Json flat = Json::object();
    flat.set("name", "evaluate");
    flat.set("nodes", n);
    flat.set("edges", c.dag.edge_count());
    flat.set("ns_per_eval", flat_s * 1e9);
    flat.set("evals_per_sec", 1.0 / flat_s);
    results.push_back(std::move(flat));

    Json ref = Json::object();
    ref.set("name", "evaluate_reference");
    ref.set("nodes", n);
    ref.set("edges", c.dag.edge_count());
    ref.set("ns_per_eval", ref_s * 1e9);
    results.push_back(std::move(ref));

    Json speedup = Json::object();
    speedup.set("name", "flat_speedup");
    speedup.set("nodes", n);
    speedup.set("speedup", ref_s / flat_s);
    results.push_back(std::move(speedup));

    std::printf("evaluate        n=%-5zu %10.0f ns  (reference %10.0f ns, "
                "speedup %.2fx)\n",
                n, flat_s * 1e9, ref_s * 1e9, ref_s / flat_s);
  }

  // ---- parallel batch path ----
  {
    Case c(batch_nodes, seed);
    const CostModel cost(c.dag, c.attrs, c.platform);
    const Evaluator eval(cost);
    Rng rng(seed + 3);
    std::vector<Mapping> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      batch.push_back(random_feasible_mapping(cost, rng));
    }
    const std::vector<double> serial = eval.evaluate_batch(batch);

    double serial_s = 0.0;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      const std::vector<double> parallel = eval.evaluate_batch(batch, &pool);
      const bool identical = parallel == serial;  // bitwise double compare
      const bool exceeds = threads > hardware_threads;
      volatile std::size_t sink = 0;
      const double batch_s = time_per_call(min_seconds, [&] {
        sink = sink + eval.evaluate_batch(batch, &pool).size();
      });
      const double per_eval_s = batch_s / static_cast<double>(batch_size);
      if (threads == 1) serial_s = per_eval_s;
      const double speedup = serial_s / per_eval_s;

      Json entry = Json::object();
      entry.set("name", "evaluate_batch");
      entry.set("nodes", batch_nodes);
      entry.set("batch", batch_size);
      entry.set("threads", threads);
      entry.set("ns_per_eval", per_eval_s * 1e9);
      entry.set("speedup_vs_serial", speedup);
      entry.set("bit_identical_to_serial", identical);
      entry.set("threads_exceed_hardware", exceeds);
      results.push_back(std::move(entry));

      std::printf("evaluate_batch  n=%-5zu threads=%zu %10.0f ns/eval  "
                  "(x%.2f vs serial, bit-identical=%s%s)\n",
                  batch_nodes, threads, per_eval_s * 1e9, speedup,
                  identical ? "yes" : "NO",
                  exceeds ? ", threads>hardware" : "");
      if (exceeds) {
        std::fprintf(stderr,
                     "WARNING: %zu threads requested but only %zu hardware "
                     "thread(s) present; the threads=%zu speedup is not a "
                     "scaling measurement\n",
                     threads, hardware_threads, threads);
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: batch results differ from the serial path at "
                     "threads=%zu\n",
                     threads);
        return 1;
      }
      if (threads == 4 && speedup < 2.5) {
        if (exceeds) {
          std::fprintf(stderr,
                       "WARNING: batch speedup gate (2.5x at 4 threads) "
                       "skipped: machine has %zu hardware thread(s)\n",
                       hardware_threads);
        } else {
          gate_failures.push_back(
              "evaluate_batch threads=4: " + std::to_string(speedup) +
              "x < 2.5x vs serial");
        }
      }
    }
  }

  // ---- incremental reassignment probes (local-search primitive) ----
  for (const std::int64_t size : sizes) {
    const auto n = static_cast<std::size_t>(size);
    // The saturated paper configuration of the micro-benchmarks.
    Case c(n, seed);
    report_incremental(results, "paper", c.dag, c.attrs, c.platform,
                       c.mapping, min_seconds, gate_failures);
    // The dependency-bound wide-workflow regime on the many-core node —
    // the same shared case the micro-benchmarks measure.
    benchcase::WideCase wide(n, seed);
    report_incremental(results, "wide_manycore", wide.dag, wide.attrs,
                       wide.platform, wide.mapping, min_seconds,
                       gate_failures);
  }

  // ---- local-search refinement column (fig4-scale, seeded from HEFT) ----
  {
    const std::size_t ls_nodes = smoke ? 48 : 200;
    Rng rng(seed + 7);
    const Dag dag = generate_sp_dag(ls_nodes, rng);
    const TaskAttrs attrs = random_task_attrs(dag, rng);
    const Platform platform = reference_platform();
    const CostModel cost(dag, attrs, platform);
    const Evaluator eval(cost);

    Rng init_rng(seed + 8);
    const MapperResult init =
        MapperRegistry::instance().create("heft", dag, init_rng)->map(eval);

    const char* specs[] = {"hillclimb:init=heft,seed=5",
                           "anneal:init=heft,seed=5",
                           "tabu:init=heft,seed=5"};
    for (const char* base : specs) {
      const std::string spec =
          std::string(base) + (smoke ? ",iters=200" : "");
      Rng mapper_rng(seed + 9);
      auto mapper = MapperRegistry::instance().create(spec, dag, mapper_rng);
      WallTimer timer;
      const MapperResult r = mapper->map(eval);
      const double seconds = timer.seconds();

      Json entry = Json::object();
      entry.set("name", "local_search");
      entry.set("mapper", spec);
      entry.set("nodes", ls_nodes);
      entry.set("init_makespan", init.predicted_makespan);
      entry.set("makespan", r.predicted_makespan);
      entry.set("improvement_vs_init",
                (init.predicted_makespan - r.predicted_makespan) /
                    init.predicted_makespan);
      entry.set("seconds", seconds);
      results.push_back(std::move(entry));

      std::printf("local_search    n=%-5zu %-28s makespan %.4f (heft %.4f, "
                  "%+.1f%%) in %.3fs\n",
                  ls_nodes, spec.c_str(), r.predicted_makespan,
                  init.predicted_makespan,
                  100.0 * (init.predicted_makespan - r.predicted_makespan) /
                      init.predicted_makespan,
                  seconds);
    }
  }

  Json doc = Json::object();
  doc.set("schema", "spmap-bench-eval/1");
  doc.set("smoke", smoke);
  doc.set("seed", seed);
  doc.set("hardware_threads", hardware_threads);
  doc.set("results", std::move(results));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.dump(2) << '\n';
  std::printf("wrote %s\n", out_path.c_str());

  if (!gate_failures.empty()) {
    for (const std::string& f : gate_failures) {
      std::fprintf(stderr, "%s: %s\n", gate ? "GATE FAILURE" : "WARNING",
                   f.c_str());
    }
    if (gate) return 1;
  }
  return 0;
}
