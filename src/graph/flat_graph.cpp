#include "graph/flat_graph.hpp"

namespace spmap {

FlatGraph::FlatGraph(const Dag& dag) : node_count_(dag.node_count()) {
  const std::size_t n = dag.node_count();
  const std::size_t e = dag.edge_count();
  in_offset_.resize(n + 1, 0);
  out_offset_.resize(n + 1, 0);
  in_src_.reserve(e);
  in_data_mb_.reserve(e);
  in_edge_.reserve(e);
  out_dst_.reserve(e);
  out_data_mb_.reserve(e);
  out_edge_.reserve(e);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId v(i);
    for (const EdgeId edge : dag.in_edges(v)) {
      in_src_.push_back(dag.src(edge).v);
      in_data_mb_.push_back(dag.data_mb(edge));
      in_edge_.push_back(edge.v);
    }
    in_offset_[i + 1] = static_cast<std::uint32_t>(in_src_.size());
    for (const EdgeId edge : dag.out_edges(v)) {
      out_dst_.push_back(dag.dst(edge).v);
      out_data_mb_.push_back(dag.data_mb(edge));
      out_edge_.push_back(edge.v);
    }
    out_offset_[i + 1] = static_cast<std::uint32_t>(out_dst_.size());
  }
}

}  // namespace spmap
