#pragma once
/// \file schedule.hpp
/// Explicit schedules: per-task start/finish times extracted from the
/// model-based evaluation, with text-Gantt and JSON rendering.
///
/// Mappers in spmap produce *mappings*; the concrete timing always comes
/// from the evaluator (Section II-B: the model is the single source of
/// truth). This module materializes that timing for inspection, export and
/// downstream tooling.

#include <string>
#include <vector>

#include "model/cost_model.hpp"
#include "sched/evaluator.hpp"
#include "util/json.hpp"

namespace spmap {

struct ScheduledTask {
  NodeId task;
  DeviceId device;
  double start = 0.0;
  double finish = 0.0;
};

struct Schedule {
  std::vector<ScheduledTask> tasks;  ///< ascending by start time, then id
  double makespan = 0.0;

  /// JSON rendering: {makespan, tasks:[{task,label,device,start,finish}]}.
  Json to_json(const Dag& dag, const Platform& platform) const;

  /// ASCII Gantt chart, one row per task, `width` columns of timeline.
  std::string to_gantt(const Dag& dag, const Platform& platform,
                       std::size_t width = 60) const;

  /// Throws spmap::Error if the schedule violates precedence or overlaps
  /// more tasks on a device than it has execution slots (streamed FPGA
  /// stages are exempt from the slot check).
  void validate(const Dag& dag, const Platform& platform,
                const Mapping& mapping) const;
};

/// Extracts the schedule the evaluator's *best* prepared order induces for
/// `mapping` (ties resolved toward the first such order).
Schedule extract_schedule(const Evaluator& eval, const Mapping& mapping);

}  // namespace spmap
