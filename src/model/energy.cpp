#include "model/energy.hpp"

namespace spmap {

double mapping_energy_joules(const CostModel& cost, const Mapping& mapping,
                             double makespan) {
  const Platform& platform = cost.platform();
  const Dag& dag = cost.dag();
  require(mapping.size() == dag.node_count(),
          "mapping_energy_joules: mapping size mismatch");
  require(makespan >= 0.0, "mapping_energy_joules: negative makespan");

  double energy = 0.0;
  for (const Device& dev : platform.devices()) {
    energy += dev.idle_watts * makespan;
  }
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    const NodeId n(i);
    const Device& dev = platform.device(mapping[n]);
    energy += (dev.active_watts - dev.idle_watts) *
              cost.exec_time(n, mapping[n]);
  }
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const EdgeId id(e);
    const DeviceId from = mapping[dag.src(id)];
    const DeviceId to = mapping[dag.dst(id)];
    if (from == to) continue;
    energy += platform.device(from).transfer_watts *
              cost.transfer_time(id, from, to);
  }
  return energy;
}

}  // namespace spmap
