/// Fig. 4 — HEFT/PEFT vs. decomposition mapping (basic and FirstFit) on
/// random series-parallel graphs from 5 to 200 tasks.
///
/// Paper shape to reproduce: HEFT/PEFT run in microseconds but their
/// mapping quality decays with graph size; the four decomposition variants
/// hold their relative improvement roughly constant, with SeriesParallel
/// about 5 % above SingleNode; FirstFit cuts decomposition execution time
/// by a large fraction at equal quality; for large graphs SeriesParallel
/// becomes *faster* than SingleNode because bigger subgraphs are replaced
/// at once.
///
/// Flags: --sizes=5,10,... --graphs N --seed S

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"sizes", "graphs", "seed"});
  std::vector<std::int64_t> default_sizes;
  for (std::int64_t s = 5; s <= 200; s += 15) default_sizes.push_back(s);
  const auto sizes = flags.get_int_list("sizes", default_sizes);
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));

  const Platform platform = reference_platform();
  Rng rng(seed);

  const std::vector<MapperSpec> specs{
      heft_spec(),           peft_spec(),
      single_node_spec(false), single_node_spec(true),
      series_parallel_spec(false), series_parallel_spec(true)};

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto size : sizes) {
    std::vector<Case> cases;
    for (std::size_t g = 0; g < graphs; ++g) {
      Case c;
      c.dag = generate_sp_dag(static_cast<std::size_t>(size), rng);
      c.attrs = random_task_attrs(c.dag, rng);
      cases.push_back(std::move(c));
    }
    std::fprintf(stderr, "[fig4] %lld tasks (%zu graphs)...\n",
                 static_cast<long long>(size), graphs);
    rows.push_back(run_point(cases, specs, platform, rng));
    xs.push_back(static_cast<double>(size));
  }

  print_series("fig4", "tasks", xs, rows,
               {"HEFT", "PEFT", "SingleNode", "SNFirstFit", "SeriesParallel",
                "SPFirstFit"});
  return 0;
}
