#include "graph/io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace spmap {
namespace {

TEST(GraphIo, DotContainsAllEdges) {
  Dag d(3);
  d.set_label(NodeId(0), "load");
  d.add_edge(NodeId(0), NodeId(1), 10.0);
  d.add_edge(NodeId(1), NodeId(2), 20.0);
  const std::string dot = to_dot(d);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2"), std::string::npos);
  EXPECT_NE(dot.find("load"), std::string::npos);
}

TEST(GraphIo, JsonRoundTrip) {
  Rng rng(5);
  const Dag d = generate_sp_dag(25, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);

  const std::string text = to_json(d, attrs);
  const TaskGraph back = task_graph_from_json(text);

  ASSERT_EQ(back.dag.node_count(), d.node_count());
  ASSERT_EQ(back.dag.edge_count(), d.edge_count());
  for (std::size_t e = 0; e < d.edge_count(); ++e) {
    EXPECT_EQ(back.dag.src(EdgeId(e)), d.src(EdgeId(e)));
    EXPECT_EQ(back.dag.dst(EdgeId(e)), d.dst(EdgeId(e)));
    EXPECT_DOUBLE_EQ(back.dag.data_mb(EdgeId(e)), d.data_mb(EdgeId(e)));
  }
  for (std::size_t i = 0; i < d.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(back.attrs.complexity[i], attrs.complexity[i]);
    EXPECT_DOUBLE_EQ(back.attrs.parallelizability[i],
                     attrs.parallelizability[i]);
    EXPECT_DOUBLE_EQ(back.attrs.streamability[i], attrs.streamability[i]);
    EXPECT_DOUBLE_EQ(back.attrs.area[i], attrs.area[i]);
  }
}

TEST(GraphIo, JsonRejectsBadEdge) {
  const std::string bad = R"({
    "nodes": [{"label":"a","complexity":1,"parallelizability":1,
               "streamability":1,"area":1}],
    "edges": [{"src":0,"dst":5,"data_mb":1}]
  })";
  EXPECT_THROW(task_graph_from_json(bad), Error);
}

TEST(GraphIo, JsonRejectsMissingKey) {
  EXPECT_THROW(task_graph_from_json("{\"nodes\": []}"), Error);
}

}  // namespace
}  // namespace spmap
