/// spmap_loadgen — load generator / correctness checker for the spmap
/// serving daemon (`spmap_cli daemon`, docs/SERVING.md).
///
/// Drives N concurrent client sessions against a running daemon and
/// reports per-priority-class throughput and latency percentiles. Two
/// driving modes (src/serve/loadgen.hpp):
///
///   closed loop (default)  each session submits again the moment its
///                          previous request finished — capacity test
///   --open-loop            each session submits at --rate-hz for
///                          --duration-s regardless of completions —
///                          overload test; structured `overloaded`
///                          rejections are counted, not errors
///
/// Requests are a pure function of --seed and the request index, with
/// generation/construction/run seeds pinned on the wire; --verify re-runs
/// every completed request through a local MappingService and demands a
/// bit-identical makespan — the end-to-end proof that networked serving
/// returns exactly what local execution would.
///
/// Flags:
///   --endpoint E       unix:PATH or tcp:HOST:PORT (required)
///   --sessions N       concurrent connections (default 8)
///   --requests N       total requests, closed loop (default 64)
///   --open-loop        open-loop mode
///   --rate-hz R        per-session submit rate, open loop (default 20)
///   --duration-s S     open-loop run length (default 2)
///   --mix SPEC         class mix, e.g. high=1,normal=2,low=1
///   --mapper SPEC      mapper submitted with every request
///   --tasks N          generated problem size (default 24)
///   --max-evals N      per-request evaluation budget
///   --reporting-orders N   server-side reporting evaluator orders
///   --seed S           deterministic request stream seed
///   --distinct K       fold requests onto K identities (request i uses
///                      the seeds of i mod K) so repeats hit the daemon's
///                      result cache; cache outcomes are counted from the
///                      done events
///   --min-hit-rate P   fail unless cache_hits/completed >= P
///   --verify           local bit-identity re-execution
///   --connect-retries N   extra connect attempts with backoff
///   --backoff-ms MS    first backoff delay between connect attempts
///   --chaos            closed loop only: deterministically drop the
///                      connection around submit/await points and recover
///                      via resume or re-hello + status polling; the run
///                      fails unless every acknowledged submit is recorded
///                      terminal exactly once (lost=0, duplicated=0)
///   --chaos-drop-rate P   injected drop probability per opportunity
///   --json FILE        write the spmap-loadgen-report/1 document
///   --quiet            no human-readable summary on stdout
///
/// Exit codes (tools/exit_codes.hpp): 0 success, 1 runtime failure (any
/// failed request, verify mismatch, or unreachable daemon; diagnostics on
/// stderr), 2 usage.

#include <cstdio>
#include <fstream>

#include "exit_codes.hpp"
#include "serve/loadgen.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"

using namespace spmap;
using spmap::cli::kExitFailure;
using spmap::cli::kExitOk;
using spmap::cli::kExitUsage;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: spmap_loadgen --endpoint unix:PATH|tcp:HOST:PORT "
               "[--sessions N] [--requests N] [--open-loop] [--rate-hz R] "
               "[--duration-s S] [--mix high=1,normal=2,low=1] "
               "[--mapper SPEC] [--tasks N] [--max-evals N] "
               "[--reporting-orders N] [--seed S] [--distinct K] "
               "[--min-hit-rate P] [--verify] "
               "[--connect-retries N] [--backoff-ms MS] [--chaos] "
               "[--chaos-drop-rate P] [--json FILE] [--quiet]\n");
  return kExitUsage;
}

void print_summary(const LoadgenOptions& options,
                   const LoadgenReport& report) {
  std::printf("endpoint=%s mode=%s sessions=%zu\n",
              options.endpoint.to_string().c_str(),
              options.open_loop ? "open" : "closed", report.sessions);
  std::printf(
      "submitted=%zu completed=%zu rejected=%zu failed=%zu "
      "wall_s=%.3f throughput_rps=%.1f\n",
      report.submitted, report.completed, report.rejected, report.failed,
      report.wall_seconds, report.throughput_rps);
  for (const auto& [cls, stats] : report.classes) {
    std::printf(
        "class=%-6s submitted=%-5zu completed=%-5zu rejected=%-5zu "
        "p50_ms=%-8.2f p95_ms=%-8.2f p99_ms=%-8.2f mean_ms=%.2f\n",
        cls.c_str(), stats.submitted, stats.completed, stats.rejected,
        stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.mean_ms);
  }
  if (options.verify) {
    std::printf("verified=%zu mismatches=%zu\n", report.verified,
                report.mismatches);
  }
  if (options.distinct > 0 || report.cache_hits > 0 ||
      report.cache_warm > 0) {
    const double hit_rate =
        report.completed > 0
            ? static_cast<double>(report.cache_hits) /
                  static_cast<double>(report.completed)
            : 0.0;
    std::printf("cache: hits=%zu warm=%zu miss=%zu none=%zu hit_rate=%.3f\n",
                report.cache_hits, report.cache_warm, report.cache_misses,
                report.cache_none, hit_rate);
  }
  if (options.chaos) {
    std::printf(
        "chaos: drops=%zu resumes=%zu rehellos=%zu lost=%zu "
        "duplicated=%zu\n",
        report.drops, report.resumes, report.rehellos, report.lost,
        report.duplicated);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv,
                      {"endpoint", "sessions", "requests", "open-loop",
                       "rate-hz", "duration-s", "mix", "mapper", "tasks",
                       "max-evals", "reporting-orders", "seed", "distinct",
                       "min-hit-rate", "verify",
                       "connect-retries", "backoff-ms", "chaos",
                       "chaos-drop-rate", "json", "quiet"});
    const std::string endpoint = flags.get("endpoint", "");
    if (endpoint.empty()) return usage();

    LoadgenOptions options;
    options.endpoint = Endpoint::parse(endpoint);
    const std::int64_t sessions = flags.get_int("sessions", 8);
    require(sessions >= 1, "loadgen: --sessions must be >= 1");
    options.sessions = static_cast<std::size_t>(sessions);
    const std::int64_t requests = flags.get_int("requests", 64);
    require(requests >= 1, "loadgen: --requests must be >= 1");
    options.requests = static_cast<std::size_t>(requests);
    options.open_loop = flags.get_bool("open-loop", false);
    options.rate_hz = flags.get_double("rate-hz", 20.0);
    require(options.rate_hz > 0.0, "loadgen: --rate-hz must be > 0");
    options.duration_s = flags.get_double("duration-s", 2.0);
    require(options.duration_s > 0.0, "loadgen: --duration-s must be > 0");
    options.mix = flags.get("mix", "normal=1");
    options.mapper = flags.get("mapper", "spff");
    const std::int64_t tasks = flags.get_int("tasks", 24);
    require(tasks >= 2, "loadgen: --tasks must be >= 2");
    options.tasks = static_cast<std::size_t>(tasks);
    const std::int64_t max_evals = flags.get_int("max-evals", 0);
    require(max_evals >= 0, "loadgen: --max-evals must be >= 0");
    options.max_evaluations = static_cast<std::size_t>(max_evals);
    const std::int64_t orders = flags.get_int("reporting-orders", 0);
    require(orders >= 0, "loadgen: --reporting-orders must be >= 0");
    options.reporting_orders = static_cast<std::size_t>(orders);
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
    const std::int64_t distinct = flags.get_int("distinct", 0);
    require(distinct >= 0, "loadgen: --distinct must be >= 0");
    options.distinct = static_cast<std::size_t>(distinct);
    options.min_hit_rate = flags.get_double("min-hit-rate", -1.0);
    require(options.min_hit_rate <= 1.0,
            "loadgen: --min-hit-rate must be <= 1");
    options.verify = flags.get_bool("verify", false);
    const std::int64_t retries = flags.get_int("connect-retries", 0);
    require(retries >= 0, "loadgen: --connect-retries must be >= 0");
    options.connect_retries = static_cast<std::size_t>(retries);
    options.backoff_ms = flags.get_double("backoff-ms", 50.0);
    require(options.backoff_ms > 0.0, "loadgen: --backoff-ms must be > 0");
    options.chaos = flags.get_bool("chaos", false);
    require(!options.chaos || !options.open_loop,
            "loadgen: --chaos requires the closed loop");
    options.chaos_drop_rate = flags.get_double("chaos-drop-rate", 0.15);
    require(options.chaos_drop_rate >= 0.0 && options.chaos_drop_rate < 1.0,
            "loadgen: --chaos-drop-rate must be in [0, 1)");

    const LoadgenReport report = run_loadgen(options);

    if (!flags.get_bool("quiet", false)) print_summary(options, report);
    const std::string json_path = flags.get("json", "");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      require(out.good(), "loadgen: cannot open --json file: " + json_path);
      out << loadgen_report_json(options, report).dump(2) << "\n";
    }

    for (const std::string& error : report.errors) {
      std::fprintf(stderr, "spmap_loadgen: %s\n", error.c_str());
    }
    if (report.failed > 0 || report.mismatches > 0 ||
        report.completed + report.rejected == 0) {
      std::fprintf(stderr,
                   "spmap_loadgen: run failed (failed=%zu mismatches=%zu "
                   "completed=%zu)\n",
                   report.failed, report.mismatches, report.completed);
      return kExitFailure;
    }
    if (options.min_hit_rate >= 0.0 && report.completed > 0 &&
        static_cast<double>(report.cache_hits) /
                static_cast<double>(report.completed) <
            options.min_hit_rate) {
      std::fprintf(stderr,
                   "spmap_loadgen: cache hit rate below threshold "
                   "(hits=%zu completed=%zu min=%.3f)\n",
                   report.cache_hits, report.completed, options.min_hit_rate);
      return kExitFailure;
    }
    if (report.lost > 0 || report.duplicated > 0) {
      std::fprintf(stderr,
                   "spmap_loadgen: chaos accounting broken (lost=%zu "
                   "duplicated=%zu)\n",
                   report.lost, report.duplicated);
      return kExitFailure;
    }
    return kExitOk;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "spmap_loadgen: %s\n", ex.what());
    return kExitFailure;
  }
}
