#include "model/cost_model.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/platform.hpp"

namespace spmap {
namespace {

TEST(Amdahl, Limits) {
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.0, 16.0), 1.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup(1.0, 16.0), 16.0);
  // p = 0.5 on many cores approaches 2x.
  EXPECT_NEAR(amdahl_speedup(0.5, 1e9), 2.0, 1e-6);
  // Clamping.
  EXPECT_DOUBLE_EQ(amdahl_speedup(2.0, 4.0), 4.0);
  EXPECT_DOUBLE_EQ(amdahl_speedup(0.5, 0.5), 1.0);
}

TEST(Platform, ReferencePlatformShape) {
  const Platform p = reference_platform();
  ASSERT_EQ(p.device_count(), 3u);
  EXPECT_EQ(p.device(DeviceId(0u)).kind, DeviceKind::Cpu);
  EXPECT_EQ(p.device(DeviceId(1u)).kind, DeviceKind::Gpu);
  EXPECT_EQ(p.device(DeviceId(2u)).kind, DeviceKind::Fpga);
  EXPECT_EQ(p.default_device(), DeviceId(0u));
  EXPECT_EQ(p.fpga_devices(), std::vector<DeviceId>{DeviceId(2u)});
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, LinksAreSymmetric) {
  const Platform p = reference_platform();
  EXPECT_DOUBLE_EQ(p.bandwidth_gbps(DeviceId(0u), DeviceId(1u)),
                   p.bandwidth_gbps(DeviceId(1u), DeviceId(0u)));
  EXPECT_DOUBLE_EQ(p.latency_s(DeviceId(0u), DeviceId(2u)),
                   p.latency_s(DeviceId(2u), DeviceId(0u)));
}

TEST(Platform, MissingLinkDetected) {
  Platform p;
  Device cpu;
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 4;
  cpu.lane_gops = 1.0;
  p.add_device(cpu);
  p.add_device(cpu);
  EXPECT_THROW(p.validate(), Error);
  EXPECT_THROW(p.bandwidth_gbps(DeviceId(0u), DeviceId(1u)), Error);
  p.set_link(DeviceId(0u), DeviceId(1u), 10.0, 1e-5);
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, SelfLinkRejected) {
  Platform p;
  Device cpu;
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 1;
  cpu.lane_gops = 1.0;
  p.add_device(cpu);
  EXPECT_THROW(p.set_link(DeviceId(0u), DeviceId(0u), 1.0, 0.0), Error);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : platform_(reference_platform()) {
    // 0 -> 1 -> 2 chain with known attributes.
    dag_.add_nodes(3);
    dag_.add_edge(NodeId(0), NodeId(1), 100.0);
    dag_.add_edge(NodeId(1), NodeId(2), 200.0);
    attrs_.resize(3);
    attrs_.complexity = {10.0, 5.0, 8.0};
    attrs_.parallelizability = {1.0, 0.0, 0.5};
    attrs_.streamability = {4.0, 10.0, 1.0};
    attrs_.area = {10.0, 5.0, 8.0};
  }

  Dag dag_;
  TaskAttrs attrs_;
  Platform platform_;
  DeviceId cpu_{0};
  DeviceId gpu_{1};
  DeviceId fpga_{2};
};

TEST_F(CostModelTest, TaskDataIsMaxOfInAndOut) {
  const CostModel cost(dag_, attrs_, platform_);
  EXPECT_DOUBLE_EQ(cost.task_data_mb(NodeId(0)), 100.0);  // out only
  EXPECT_DOUBLE_EQ(cost.task_data_mb(NodeId(1)), 200.0);  // max(100, 200)
  EXPECT_DOUBLE_EQ(cost.task_data_mb(NodeId(2)), 200.0);  // in only
}

TEST_F(CostModelTest, CpuExecUsesAmdahl) {
  const CostModel cost(dag_, attrs_, platform_);
  // Task 0: work = 10 * 100 = 1000 Mops; the reference CPU has 16 lanes in
  // 4 slots, so one task sees 4 lanes: speed = 2.4 * 4 (p = 1).
  EXPECT_NEAR(cost.exec_time(NodeId(0), cpu_), 1.0 / 9.6, 1e-9);
  // Task 1: p = 0 -> one lane only.
  EXPECT_NEAR(cost.exec_time(NodeId(1), cpu_), 1.0 / 2.4, 1e-9);
}

TEST_F(CostModelTest, GpuOnlyPaysOffWhenParallel) {
  const CostModel cost(dag_, attrs_, platform_);
  // Perfectly parallel task: GPU much faster than CPU.
  EXPECT_LT(cost.exec_time(NodeId(0), gpu_), cost.exec_time(NodeId(0), cpu_));
  // Serial task: GPU much slower than CPU.
  EXPECT_GT(cost.exec_time(NodeId(1), gpu_), cost.exec_time(NodeId(1), cpu_));
}

TEST_F(CostModelTest, FpgaSpeedScalesWithStreamability) {
  const CostModel cost(dag_, attrs_, platform_);
  // exec = work / (0.7 * streamability * 1000).
  EXPECT_NEAR(cost.exec_time(NodeId(1), fpga_), 1.0 / (0.7 * 10.0), 1e-9);
  // Streamability-insensitive to parallelizability: task 1 has p = 0 but a
  // high streamability, so the FPGA beats the CPU on it.
  EXPECT_LT(cost.exec_time(NodeId(1), fpga_), cost.exec_time(NodeId(1), cpu_));
}

TEST_F(CostModelTest, TransferTimes) {
  const CostModel cost(dag_, attrs_, platform_);
  const EdgeId e01(0u);
  // Same device: free.
  EXPECT_DOUBLE_EQ(cost.transfer_time(e01, cpu_, cpu_), 0.0);
  // CPU -> GPU: latency + 100 MB / 3 GB/s effective bandwidth.
  EXPECT_NEAR(cost.transfer_time(e01, cpu_, gpu_), 1e-4 + 0.1 / 3.0, 1e-9);
  // Symmetric.
  EXPECT_DOUBLE_EQ(cost.transfer_time(e01, cpu_, gpu_),
                   cost.transfer_time(e01, gpu_, cpu_));
}

TEST_F(CostModelTest, MeanAndMinExec) {
  const CostModel cost(dag_, attrs_, platform_);
  const double c = cost.exec_time(NodeId(1), cpu_);
  const double g = cost.exec_time(NodeId(1), gpu_);
  const double f = cost.exec_time(NodeId(1), fpga_);
  EXPECT_NEAR(cost.mean_exec_time(NodeId(1)), (c + g + f) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cost.min_exec_time(NodeId(1)), std::min({c, g, f}));
}

TEST_F(CostModelTest, AreaAccounting) {
  const CostModel cost(dag_, attrs_, platform_);
  Mapping m(3, cpu_);
  EXPECT_TRUE(cost.area_feasible(m));
  EXPECT_DOUBLE_EQ(cost.mapped_area(m, fpga_), 0.0);
  m[NodeId(0)] = fpga_;
  m[NodeId(2)] = fpga_;
  EXPECT_DOUBLE_EQ(cost.mapped_area(m, fpga_), 18.0);
  EXPECT_TRUE(cost.area_feasible(m));
}

TEST_F(CostModelTest, AreaOverflowInfeasible) {
  attrs_.area = {100.0, 100.0, 100.0};
  const CostModel cost(dag_, attrs_, platform_);
  Mapping m(3, fpga_);
  EXPECT_FALSE(cost.area_feasible(m));  // 300 > 120 budget
  m[NodeId(1)] = cpu_;
  m[NodeId(2)] = cpu_;
  EXPECT_TRUE(cost.area_feasible(m));
}

TEST_F(CostModelTest, ZeroComplexityTasksAreFree) {
  attrs_.complexity[1] = 0.0;
  attrs_.area[1] = 0.0;
  const CostModel cost(dag_, attrs_, platform_);
  for (std::uint32_t d = 0; d < 3; ++d) {
    EXPECT_DOUBLE_EQ(cost.exec_time(NodeId(1), DeviceId(d)), 0.0);
  }
}

TEST_F(CostModelTest, MaxSerialTimeIsUpperBoundPerTask) {
  const CostModel cost(dag_, attrs_, platform_);
  double expected = 0.0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    double worst = 0.0;
    for (std::uint32_t d = 0; d < 3; ++d) {
      worst = std::max(worst, cost.exec_time(NodeId(i), DeviceId(d)));
    }
    expected += worst;
  }
  EXPECT_NEAR(cost.max_serial_time(), expected, 1e-12);
}

TEST(Mapping, Validation) {
  Mapping m(3, DeviceId(0u));
  EXPECT_NO_THROW(m.validate(3, 2));
  EXPECT_THROW(m.validate(4, 2), Error);
  m[NodeId(1)] = DeviceId(5u);
  EXPECT_THROW(m.validate(3, 2), Error);
}

}  // namespace
}  // namespace spmap
