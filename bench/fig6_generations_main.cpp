/// Fig. 6 — NSGA-II quality/time tradeoff over the number of generations on
/// random series-parallel graphs with 200 tasks.
///
/// Paper shape to reproduce: improvement saturates around 200 generations;
/// even at the saturation point the GA remains several times slower than
/// the decomposition FirstFit mappers (whose constant results are printed
/// as reference lines).
///
/// Flags: --generations=50,100,... --tasks N --graphs N --seed S

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"generations", "tasks", "graphs", "seed"});
  std::vector<std::int64_t> default_gens;
  for (std::int64_t g = 50; g <= 500; g += 50) default_gens.push_back(g);
  const auto gens = flags.get_int_list("generations", default_gens);
  const auto tasks = static_cast<std::size_t>(flags.get_int("tasks", 200));
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 4));

  const Platform platform = reference_platform();
  Rng rng(seed);

  // One fixed set of graphs for the whole sweep (the x-axis varies the GA
  // configuration, not the workload).
  std::vector<Case> cases;
  for (std::size_t g = 0; g < graphs; ++g) {
    Case c;
    c.dag = generate_sp_dag(tasks, rng);
    c.attrs = random_task_attrs(c.dag, rng);
    cases.push_back(std::move(c));
  }

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto g : gens) {
    std::fprintf(stderr, "[fig6] %lld generations...\n",
                 static_cast<long long>(g));
    const std::vector<MapperSpec> specs{
        single_node_spec(true), series_parallel_spec(true),
        nsga2_spec(static_cast<std::size_t>(g))};
    Rng point_rng(seed + static_cast<std::uint64_t>(g));
    rows.push_back(run_point(cases, specs, platform, point_rng));
    xs.push_back(static_cast<double>(g));
  }

  print_series("fig6", "generations", xs, rows,
               {"SNFirstFit", "SPFirstFit", "NSGAII"});
  return 0;
}
