#include "sched/evaluator.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sched/timeline.hpp"

namespace spmap {
namespace {

/// Two-device platform with deterministic, easy-to-hand-check numbers:
/// CPU: 1 lane @ 1 Gops; FPGA: 1 Gops per streamability unit, area 100,
/// fill fraction 0.1; link 1 GB/s with zero latency
/// => a 100 MB transfer takes 0.1 s.
Platform tiny_platform() {
  Platform p;
  Device cpu;
  cpu.name = "cpu";
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 1.0;
  cpu.lane_gops = 1.0;
  const DeviceId c = p.add_device(cpu);
  Device fpga;
  fpga.name = "fpga";
  fpga.kind = DeviceKind::Fpga;
  fpga.area_budget = 100.0;
  fpga.stream_gops_per_streamability = 1.0;
  fpga.stream_fill_fraction = 0.1;
  const DeviceId f = p.add_device(fpga);
  p.set_link(c, f, 1.0, 0.0);
  return p;
}

/// Uniform attributes: complexity 10, streamability 10, p = 1, area 10.
/// With 100 MB edges: work = 1000 Mops, CPU exec = 1 s, FPGA exec = 0.1 s.
TaskAttrs uniform_attrs(std::size_t n) {
  TaskAttrs a;
  a.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.complexity[i] = 10.0;
    a.parallelizability[i] = 1.0;
    a.streamability[i] = 10.0;
    a.area[i] = 10.0;
  }
  return a;
}

const DeviceId kCpu{0};
const DeviceId kFpga{1};

TEST(Evaluator, ChainAllCpuIsSerialSum) {
  Dag d(3);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  d.add_edge(NodeId(1), NodeId(2), 100.0);
  const auto attrs = uniform_attrs(3);
  const Platform p = tiny_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  // Each task: 1 s on CPU, no transfers.
  EXPECT_NEAR(eval.default_mapping_makespan(), 3.0, 1e-12);
}

TEST(Evaluator, IndependentTasksSerializeOnOneDevice) {
  // Two independent chains: 0->1 and 2->3.
  Dag g(4);
  g.add_edge(NodeId(0), NodeId(1), 100.0);
  g.add_edge(NodeId(2), NodeId(3), 100.0);
  const auto attrs = uniform_attrs(4);
  const Platform p = tiny_platform();
  const CostModel cost(g, attrs, p);
  const Evaluator eval(cost);
  // All four tasks on the single-lane CPU: 4 s.
  EXPECT_NEAR(eval.default_mapping_makespan(), 4.0, 1e-12);
  // Put one chain on the FPGA (streams, 0.1 s per stage): the CPU chain
  // (2 s) dominates.
  Mapping m(4, kCpu);
  m[NodeId(2)] = kFpga;
  m[NodeId(3)] = kFpga;
  const double ms = eval.evaluate(m);
  EXPECT_NEAR(ms, 2.0, 1e-9);
}

TEST(Evaluator, CrossDeviceTransferPaid) {
  Dag d(2);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  const auto attrs = uniform_attrs(2);
  const Platform p = tiny_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Mapping m(2, kCpu);
  m[NodeId(1)] = kFpga;
  // CPU task 1 s + transfer 0.1 s + FPGA task 0.1 s.
  EXPECT_NEAR(eval.evaluate(m), 1.2, 1e-12);
}

TEST(Evaluator, FpgaStreamingOverlapsChain) {
  // 4-task chain fully on FPGA: stage 0.1 s each, fill fraction 0.1.
  Dag d(4);
  for (std::uint32_t i = 0; i + 1 < 4; ++i) {
    d.add_edge(NodeId(i), NodeId(i + 1), 100.0);
  }
  const auto attrs = uniform_attrs(4);
  const Platform p = tiny_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Mapping m(4, kFpga);
  // start(i) = i * 0.01; finish(3) = 0.03 + 0.1.
  EXPECT_NEAR(eval.evaluate(m), 0.13, 1e-9);
  // Without streaming this would be 0.4 s; with it, far less.
  EXPECT_LT(eval.evaluate(m), 0.2);
}

TEST(Evaluator, AreaOverflowIsInfeasible) {
  Dag d(3);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  d.add_edge(NodeId(1), NodeId(2), 100.0);
  TaskAttrs attrs = uniform_attrs(3);
  attrs.area = {60.0, 60.0, 60.0};  // any two tasks overflow budget 100
  const Platform p = tiny_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Mapping m(3, kFpga);
  EXPECT_EQ(eval.evaluate(m), kInfeasible);
  m[NodeId(0)] = kCpu;
  m[NodeId(1)] = kCpu;
  EXPECT_LT(eval.evaluate(m), kInfeasible);
}

TEST(Evaluator, DiamondParallelBranchesOverlapAcrossDevices) {
  // 0 -> {1, 2} -> 3 with 1 on FPGA: branches overlap.
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  d.add_edge(NodeId(0), NodeId(2), 100.0);
  d.add_edge(NodeId(1), NodeId(3), 100.0);
  d.add_edge(NodeId(2), NodeId(3), 100.0);
  const auto attrs = uniform_attrs(4);
  const Platform p = tiny_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  // All CPU, serial. Fork/join tasks 0 and 3 see 200 MB (data volume is
  // max of in/out totals) => 2 s each; tasks 1, 2 are 1 s: 6 s total.
  EXPECT_NEAR(eval.default_mapping_makespan(), 6.0, 1e-12);
  Mapping m(4, kCpu);
  m[NodeId(1)] = kFpga;
  // CPU: 0 in [0,2] and 2 in [2,3] (transfers occupy links, not compute);
  // FPGA: 1 gets its input at 2.1, runs to 2.2, result back at 2.3; join 3
  // starts at max(2.3, 3.0) and runs 2 s => 5 s.
  EXPECT_NEAR(eval.evaluate(m), 5.0, 1e-9);
}

TEST(Evaluator, MinOverSchedulesNeverWorseThanBfs) {
  Rng rng(5);
  const Dag d = generate_sp_dag(60, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator bfs_only(cost, {.random_orders = 0});
  const Evaluator with_random(cost, {.random_orders = 50});
  Mapping m(d.node_count(), DeviceId(0u));
  // Scatter some tasks across devices.
  for (std::size_t i = 0; i < m.size(); i += 3) {
    m.device[i] = DeviceId(1u + (i % 2));
  }
  if (!cost.area_feasible(m)) {
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (m.device[i] == DeviceId(2u)) m.device[i] = DeviceId(0u);
    }
  }
  EXPECT_LE(with_random.evaluate(m), bfs_only.evaluate(m) + 1e-12);
}

TEST(Evaluator, MakespanAtLeastCriticalPathLowerBound) {
  // Property: makespan >= sum over any path of min-over-device exec times.
  Rng rng(6);
  for (int rep = 0; rep < 5; ++rep) {
    const Dag d = generate_sp_dag(40, rng);
    const TaskAttrs attrs = random_task_attrs(d, rng);
    const Platform p = reference_platform();
    const CostModel cost(d, attrs, p);
    const Evaluator eval(cost, {.random_orders = 10});
    // Lower bound via longest path of min exec times (no transfers).
    const auto topo = topological_order(d);
    std::vector<double> dist(d.node_count(), 0.0);
    double lb = 0.0;
    for (const NodeId v : topo) {
      dist[v.v] += cost.min_exec_time(v);
      lb = std::max(lb, dist[v.v]);
      for (const EdgeId e : d.out_edges(v)) {
        dist[d.dst(e).v] = std::max(dist[d.dst(e).v], dist[v.v]);
      }
    }
    Mapping m(d.node_count(), DeviceId(0u));
    EXPECT_GE(eval.evaluate(m) + 1e-9, lb);
  }
}

TEST(Evaluator, EvaluationCountTracksCalls) {
  Dag d(2);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  const auto attrs = uniform_attrs(2);
  const Platform p = tiny_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost, {.random_orders = 4});
  EXPECT_EQ(eval.evaluation_count(), 0u);
  eval.evaluate(Mapping(2, kCpu));
  EXPECT_EQ(eval.evaluation_count(), 5u);  // BFS + 4 random orders
}

// ---- DeviceTimeline ----

TEST(DeviceTimeline, EmptyTimelineStartsAtEst) {
  DeviceTimeline t;
  EXPECT_DOUBLE_EQ(t.earliest_start(3.5, 1.0), 3.5);
}

TEST(DeviceTimeline, InsertionFillsGap) {
  DeviceTimeline t;
  t.reserve(0.0, 1.0);
  t.reserve(3.0, 1.0);
  // A 1-second task fits into the [1, 3) gap.
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 1.0), 1.0);
  // A 2.5-second task does not; it must go after the last interval.
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 2.5), 4.0);
}

TEST(DeviceTimeline, EstInsideBusyIntervalPushed) {
  DeviceTimeline t;
  t.reserve(1.0, 2.0);
  EXPECT_DOUBLE_EQ(t.earliest_start(1.5, 0.5), 3.0);
}

TEST(DeviceTimeline, ReserveKeepsOrder) {
  DeviceTimeline t;
  t.reserve(5.0, 1.0);
  t.reserve(0.0, 1.0);
  t.reserve(2.0, 1.0);
  EXPECT_EQ(t.interval_count(), 3u);
  EXPECT_DOUBLE_EQ(t.last_finish(), 6.0);
  EXPECT_DOUBLE_EQ(t.earliest_start(0.0, 1.0), 1.0);
}

TEST(DeviceTimeline, ZeroDurationTask) {
  DeviceTimeline t;
  t.reserve(0.0, 2.0);
  EXPECT_DOUBLE_EQ(t.earliest_start(1.0, 0.0), 2.0);
}

}  // namespace
}  // namespace spmap
