#include "util/failpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/error.hpp"
#include "util/mutex.hpp"

namespace spmap {

namespace {

/// The fast-path gate: unarmed processes never take the registry mutex.
std::atomic<bool> g_any_armed{false};

struct Registry {
  Mutex mutex;
  std::map<std::string, FailpointSpec> specs SPMAP_GUARDED_BY(mutex);
  std::map<std::string, std::uint64_t> hit_counts SPMAP_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  require(!text.empty(), "failpoint " + what + " is empty");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  require(end != nullptr && *end == '\0',
          "failpoint " + what + " must be an integer, got \"" + text + "\"");
  return value;
}

FailpointSpec parse_action(std::string action) {
  FailpointSpec spec;
  // Optional hit window suffix: @SKIP or @SKIP+COUNT.
  const std::size_t at = action.find('@');
  if (at != std::string::npos) {
    std::string window = action.substr(at + 1);
    action.resize(at);
    const std::size_t plus = window.find('+');
    if (plus != std::string::npos) {
      spec.count = parse_u64(window.substr(plus + 1), "count");
      window.resize(plus);
    }
    spec.skip = parse_u64(window, "skip");
  }
  if (action == "error") {
    spec.action = FailpointSpec::Action::kError;
  } else if (action == "crash") {
    spec.action = FailpointSpec::Action::kCrash;
  } else if (action.rfind("delay:", 0) == 0) {
    spec.action = FailpointSpec::Action::kDelay;
    const std::string ms = action.substr(6);
    char* end = nullptr;
    spec.delay_ms = std::strtod(ms.c_str(), &end);
    require(end != nullptr && *end == '\0' && !ms.empty() &&
                spec.delay_ms >= 0.0,
            "failpoint delay must be delay:MILLIS, got \"" + action + "\"");
  } else {
    throw Error("failpoint action must be error, crash or delay:MILLIS, "
                "got \"" + action + "\"");
  }
  return spec;
}

}  // namespace

Failpoints& Failpoints::instance() {
  static Failpoints fp;
  return fp;
}

std::vector<std::pair<std::string, FailpointSpec>> Failpoints::parse(
    const std::string& spec) {
  std::vector<std::pair<std::string, FailpointSpec>> entries;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
            "failpoint entries must be NAME=ACTION, got \"" + item + "\"");
    entries.emplace_back(item.substr(0, eq),
                         parse_action(item.substr(eq + 1)));
  }
  return entries;
}

void Failpoints::arm(const std::string& spec) {
  const auto entries = parse(spec);
  if (entries.empty()) return;
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& [name, parsed] : entries) {
    r.specs[name] = parsed;
    r.hit_counts[name] = 0;
  }
  g_any_armed.store(true, std::memory_order_release);
}

void Failpoints::arm_from_env() {
  const char* env = std::getenv("SPMAP_FAILPOINTS");
  if (env != nullptr && *env != '\0') arm(env);
}

void Failpoints::clear() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  r.specs.clear();
  r.hit_counts.clear();
  g_any_armed.store(false, std::memory_order_release);
}

bool Failpoints::armed() const {
  return g_any_armed.load(std::memory_order_acquire);
}

std::uint64_t Failpoints::hits(const std::string& name) const {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  const auto it = r.hit_counts.find(name);
  return it == r.hit_counts.end() ? 0 : it->second;
}

bool Failpoints::hit(const char* name) {
  if (!armed()) return false;
  FailpointSpec spec;
  {
    Registry& r = registry();
    MutexLock lock(r.mutex);
    const auto it = r.specs.find(name);
    if (it == r.specs.end()) return false;
    const std::uint64_t index = r.hit_counts[name]++;
    if (index < it->second.skip) return false;
    if (index - it->second.skip >= it->second.count) return false;
    spec = it->second;
  }
  // Act outside the registry lock: delays must not serialize other
  // failpoints, and a crash holding a mutex would be a lie anyway.
  switch (spec.action) {
    case FailpointSpec::Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(spec.delay_ms));
      return false;
    case FailpointSpec::Action::kCrash:
      // _exit, not abort(): no atexit handlers, no stream flushing, no
      // core dump noise — the closest portable stand-in for SIGKILL.
      ::_exit(kFailpointCrashExit);
    case FailpointSpec::Action::kError:
      return true;
  }
  return false;
}

bool failpoint(const char* name) { return Failpoints::instance().hit(name); }

}  // namespace spmap
