#include "util/flags.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace spmap {

namespace {

bool is_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv,
             const std::vector<std::string>& known) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!is_flag(arg)) {
      throw Error("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--name value` if the next token is not itself a flag; bare bool
      // otherwise.
      if (i + 1 < argc && !is_flag(argv[i + 1])) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      throw Error("unknown flag: --" + name);
    }
    values_[name] = value;
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects an integer, got: " + it->second);
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw Error("flag --" + name + " expects a number, got: " + it->second);
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw Error("flag --" + name + " expects a boolean, got: " + v);
}

std::vector<std::int64_t> Flags::get_int_list(
    const std::string& name, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.push_back(std::stoll(item));
    } catch (const std::exception&) {
      throw Error("flag --" + name + " expects integers, got: " + item);
    }
  }
  return out;
}

}  // namespace spmap
