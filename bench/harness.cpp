#include "harness.hpp"

#include <cstdio>
#include <iostream>

#include "mappers/registry.hpp"
#include "sched/evaluator.hpp"
#include "util/timer.hpp"

namespace spmap::bench {

std::map<std::string, AlgoMetrics> run_point(
    const std::vector<Case>& cases, const std::vector<MapperSpec>& specs,
    const Platform& platform, Rng& rng, std::size_t reporting_orders) {
  std::map<std::string, AlgoMetrics> metrics;
  for (const Case& c : cases) {
    const CostModel cost(c.dag, c.attrs, platform);
    // Inner evaluator: the linear-time cost function used while mapping.
    const Evaluator inner(cost, {.random_orders = 0});
    // Reporting evaluator: min over BFS + `reporting_orders` random
    // schedules (Section IV-A).
    const Evaluator reporting(cost, {.random_orders = reporting_orders});
    const double baseline = reporting.default_mapping_makespan();

    for (const MapperSpec& spec : specs) {
      Rng mapper_rng = rng.split();
      WallTimer timer;
      auto mapper = spec.make(c.dag, mapper_rng);
      const MapperResult result = mapper->map(inner);
      const double seconds = timer.seconds();

      const double reported = reporting.evaluate(result.mapping);
      double improvement = 0.0;
      if (baseline > 0.0 && reported < baseline) {
        improvement = (baseline - reported) / baseline;
      }
      metrics[spec.name].improvement.add(improvement);
      metrics[spec.name].mapper_seconds.add(seconds);
    }
  }
  return metrics;
}

MapperSpec spec_from_registry(const std::string& registry_spec,
                              std::string display) {
  // Resolve the name and validate the option string (syntax and keys)
  // once, up front.
  const auto [name, option_spec] = MapperRegistry::split_spec(registry_spec);
  const MapperEntry& entry = MapperRegistry::instance().at(name);
  entry.validate_options(MapperOptions::parse(option_spec));
  if (display.empty()) display = entry.display_name;
  return {std::move(display), [registry_spec](const Dag& dag, Rng& rng) {
            return MapperRegistry::instance().create(registry_spec, dag, rng);
          }};
}

namespace {

std::string seconds_option(double time_limit_s) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", time_limit_s);
  return buffer;
}

}  // namespace

MapperSpec heft_spec() { return spec_from_registry("heft"); }

MapperSpec peft_spec() { return spec_from_registry("peft"); }

MapperSpec single_node_spec(bool first_fit) {
  return spec_from_registry(first_fit ? "snff" : "sn");
}

MapperSpec series_parallel_spec(bool first_fit) {
  return spec_from_registry(first_fit ? "spff" : "sp");
}

MapperSpec nsga2_spec(std::size_t generations) {
  return spec_from_registry("nsga:generations=" +
                            std::to_string(generations));
}

MapperSpec wgdp_device_spec(double time_limit_s) {
  return spec_from_registry("wgdp-dev:time-limit=" +
                            seconds_option(time_limit_s));
}

MapperSpec wgdp_time_spec(double time_limit_s) {
  return spec_from_registry("wgdp-time:time-limit=" +
                            seconds_option(time_limit_s));
}

MapperSpec zhouliu_spec(double time_limit_s) {
  return spec_from_registry("zhouliu:time-limit=" +
                            seconds_option(time_limit_s));
}

void print_series(const std::string& experiment, const std::string& x_name,
                  const std::vector<double>& xs,
                  const std::vector<std::map<std::string, AlgoMetrics>>& rows,
                  const std::vector<std::string>& algo_order) {
  require(xs.size() == rows.size(), "print_series: size mismatch");

  auto emit = [&](const char* metric,
                  const std::function<double(const AlgoMetrics&)>& get,
                  int precision) {
    std::vector<std::string> header{x_name};
    for (const auto& name : algo_order) header.push_back(name);
    Table table(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::vector<double> values;
      for (const auto& name : algo_order) {
        const auto it = rows[i].find(name);
        values.push_back(it == rows[i].end() ? -1.0 : get(it->second));
      }
      table.add_row(xs[i], values, precision);
    }
    std::printf("## %s: %s\n", experiment.c_str(), metric);
    table.write_tsv(std::cout);
    std::printf("\n");
    table.write_aligned(std::cout);
    std::printf("\n");
  };

  emit("relative improvement (mean over graphs; missing = -1)",
       [](const AlgoMetrics& m) { return m.improvement.mean(); }, 4);
  emit("mapper execution time [ms] (mean over graphs; missing = -1)",
       [](const AlgoMetrics& m) { return m.mapper_seconds.mean() * 1e3; }, 3);
}

}  // namespace spmap::bench
