#pragma once
/// \file platform.hpp
/// Heterogeneous platform: a set of devices plus a pairwise interconnect
/// model (bandwidth + latency per ordered device pair).

#include <vector>

#include "graph/ids.hpp"
#include "model/device.hpp"
#include "util/error.hpp"

namespace spmap {

class Platform {
 public:
  DeviceId add_device(Device device);

  std::size_t device_count() const { return devices_.size(); }
  const Device& device(DeviceId d) const {
    require(d.v < devices_.size(), "Platform: device id out of range");
    return devices_[d.v];
  }
  const std::vector<Device>& devices() const { return devices_; }

  /// The device every task is initially mapped to (paper Section III-A,
  /// step 1: "usually a CPU"). Defaults to the first CPU added.
  DeviceId default_device() const;

  /// Sets the interconnect between two distinct devices (both directions).
  void set_link(DeviceId a, DeviceId b, double bandwidth_gbps,
                double latency_s);

  /// Link bandwidth in GB/s; same-device "transfers" are free and must not
  /// be queried. Unset links throw.
  double bandwidth_gbps(DeviceId from, DeviceId to) const;
  double latency_s(DeviceId from, DeviceId to) const;

  /// All FPGA devices.
  std::vector<DeviceId> fpga_devices() const;

  /// Throws spmap::Error if any distinct device pair lacks a link or any
  /// device has nonsensical parameters.
  void validate() const;

 private:
  std::size_t link_index(DeviceId from, DeviceId to) const;

  std::vector<Device> devices_;
  std::vector<double> bandwidth_;  // device_count^2, -1 = unset
  std::vector<double> latency_;
};

/// The evaluation platform of the paper (Section IV-A): one AMD Epyc 7351P
/// CPU, one AMD Radeon RX Vega 56 GPU and one Xilinx XCZ7045 FPGA, with
/// PCIe-class interconnects. Device data is derived from public data sheets;
/// see DESIGN.md for the substitution rationale.
Platform reference_platform();

/// Indices of the three devices in reference_platform().
struct ReferenceDevices {
  DeviceId cpu{0};
  DeviceId gpu{1};
  DeviceId fpga{2};
};

/// A scaled-out "production node" variant of the evaluation platform: a
/// many-core dual-socket host (32 execution slots), a partitioned
/// data-center GPU (8 slots) and a large FPGA card, on faster PCIe links.
/// Device order matches reference_platform(). Used by the wide-workflow
/// benchmarks (bench_micro_core, bench_perf_report): schedules on this
/// machine are dependency- rather than queue-bound, the regime where
/// incremental delta-evaluation shines.
Platform manycore_platform();

}  // namespace spmap
