#pragma once
/// \file reference_evaluator.hpp
/// Naive reference implementation of the makespan evaluation.
///
/// This is the textbook form of the simulation in sched/evaluator.hpp: it
/// walks the `Dag`'s nested adjacency vectors and calls `CostModel` /
/// `Platform` accessors inside the loop, exactly as the model is defined in
/// the paper (Sections II-B, III-A). It exists as the *oracle* for the flat
/// evaluation core: the equivalence tests assert that `Evaluator` (the
/// contiguous-array fast path every mapper uses) agrees with this
/// implementation on random SP, almost-SP and workflow graphs. It also
/// serves as the baseline of the `perf_report` speedup metric.
///
/// Keep the simulation semantics here in lockstep with evaluator.cpp: both
/// perform the same floating-point operations in the same order, so results
/// are bit-identical, not merely close.
///
/// Not a hot path — do not "optimize" this file; that is the flat core's
/// job.

#include <vector>

#include "graph/algorithms.hpp"
#include "model/cost_model.hpp"
#include "sched/evaluator.hpp"

namespace spmap {

class ReferenceEvaluator {
 public:
  /// Same construction contract as Evaluator: identical `params` produce
  /// the identical schedule-order set (bit-reproducible rng).
  explicit ReferenceEvaluator(const CostModel& cost, EvalParams params = {});

  /// Makespan of `mapping` under one given topological order.
  double evaluate_order(const Mapping& mapping,
                        const std::vector<NodeId>& order);

  /// Makespan of `mapping`: minimum over the prepared schedule orders.
  /// +infinity if infeasible.
  double evaluate(const Mapping& mapping);

  const std::vector<std::vector<NodeId>>& orders() const { return orders_; }

 private:
  const CostModel* cost_;
  std::vector<std::vector<NodeId>> orders_;  // [0] = breadth-first
  std::vector<double> start_;
  std::vector<double> finish_;
  std::vector<double> slot_ready_;  // flattened per (device, slot)
  std::vector<double> link_ready_;  // per device
  std::vector<std::size_t> slot_offset_;  // device -> first slot index
};

}  // namespace spmap
