#pragma once
/// \file decomposition.hpp
/// Decomposition-based task mapping (paper Section III).
///
/// The mapper starts from the default (all-CPU) mapping and greedily
/// re-maps candidate subgraphs to other devices, accepting a change only
/// after a full model-based re-evaluation shows it reduces the makespan
/// (Section III-A). The candidate family is a SubgraphSet: all singletons
/// for single-node decomposition (III-B) or the operations of a
/// series-parallel decomposition forest (III-C).
///
/// Two search variants (Section III-D):
///  * Basic      — every iteration evaluates every (subgraph, device)
///                 operation and applies the best improvement;
///  * Threshold  — operations are prioritized by their expected improvement
///                 in an updatable heap; once an improvement `imp` is found,
///                 only operations whose expected improvement exceeds
///                 `imp / gamma` are still re-evaluated in this iteration.
///                 gamma == 1 is the FirstFit heuristic. When an iteration
///                 finds nothing, every operation is recomputed once more
///                 before the algorithm terminates.
///
/// Both variants never return a mapping worse than the default one.

#include <functional>
#include <memory>

#include "mappers/mapper.hpp"
#include "sp/subgraph_set.hpp"

namespace spmap {

enum class DecompositionVariant { Basic, Threshold };

struct DecompositionParams {
  DecompositionVariant variant = DecompositionVariant::Basic;
  /// Threshold look-ahead divisor; 1.0 == FirstFit (Section III-D).
  double gamma = 1.0;
  /// Cap on improvement iterations; 0 derives the paper's suggestion of one
  /// iteration per task (times a small safety factor).
  std::size_t max_iterations = 0;
  /// Optional custom objective (smaller is better; +inf == infeasible).
  /// Defaults to the evaluator's makespan. Used by the multi-objective
  /// scalarization extension (multi_objective.hpp).
  std::function<double(const Evaluator&, const Mapping&)> objective;
  /// Worker threads for the full-frontier candidate sweeps (basic variant
  /// iterations; the threshold variant's initial fill and verification
  /// sweep). Goes through Evaluator::evaluate_batch — results are
  /// bit-identical for every thread count; 1 = serial. A custom
  /// `objective` disables batching (it is evaluated serially).
  std::size_t threads = 1;
};

class DecompositionMapper final : public Mapper {
 public:
  DecompositionMapper(std::string name, SubgraphSet subgraphs,
                      DecompositionParams params = {});

  using Mapper::map;
  std::string name() const override { return name_; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;

  const SubgraphSet& subgraphs() const { return subgraphs_; }

 private:
  MapReport map_basic(const Evaluator& eval, RunControl& control) const;
  MapReport map_threshold(const Evaluator& eval, RunControl& control) const;

  std::string name_;
  SubgraphSet subgraphs_;
  DecompositionParams params_;
};

/// SingleNode / SNFirstFit (paper Sections III-B, IV): singleton subgraphs.
std::unique_ptr<DecompositionMapper> make_single_node_mapper(
    const Dag& dag, bool first_fit);

/// SeriesParallel / SPFirstFit (paper Sections III-C, IV): subgraphs from
/// the Algorithm 1 decomposition forest of `dag`.
std::unique_ptr<DecompositionMapper> make_series_parallel_mapper(
    const Dag& dag, Rng& rng, bool first_fit,
    CutPolicy policy = CutPolicy::Random);

}  // namespace spmap
