#include "sched/incremental_evaluator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

namespace spmap {

IncrementalEvaluator::IncrementalEvaluator(const Evaluator& eval,
                                           std::size_t order_index)
    : eval_(&eval), order_index_(order_index) {
  require(order_index < eval.orders().size(),
          "IncrementalEvaluator: order index out of range");
  plan_ = &eval.plans_[order_index];
  const FlatGraph& flat = eval.flat_graph();
  n_ = flat.node_count();
  m_ = eval.device_count_;
  s_total_ = eval.slot_offset_.back();
  in_src_ = flat.in_src_data();
  in_mb1000_ = eval.in_mb_over_1000_.data();
  exec_ = eval.exec_;
  is_fpga_ = eval.dev_is_fpga_.data();
  fill_ = eval.dev_fill_.data();
  lat_ = eval.link_latency_.data();
  bw_ = eval.link_bandwidth_.data();
  slot_offset_ = eval.slot_offset_.data();

  const std::vector<NodeId>& ord = eval.orders()[order_index];
  pos_.resize(n_);
  for (std::size_t p = 0; p < n_; ++p) {
    pos_[ord[p].v] = static_cast<std::uint32_t>(p);
  }
  // The last walk position that reads a node's mapping or times: the
  // farthest consumer (the node itself if it has none). Dirty influence
  // cannot reach past this position.
  last_consumer_pos_.resize(n_);
  for (std::size_t v = 0; v < n_; ++v) {
    std::uint32_t last = pos_[v];
    for (std::uint32_t k = flat.out_begin(NodeId(v));
         k < flat.out_end(NodeId(v)); ++k) {
      last = std::max(last, pos_[flat.out_dst(k)]);
    }
    last_consumer_pos_[v] = last;
  }
  // Out-CSR slot -> in-CSR slot of the same Dag edge, so a node's out-edges
  // can reach the per-in-edge transfer records.
  {
    std::vector<std::uint32_t> in_slot_of_edge(flat.edge_count());
    for (std::uint32_t k = 0; k < flat.edge_count(); ++k) {
      in_slot_of_edge[flat.in_edge(k).v] = k;
    }
    out_in_slot_.resize(flat.edge_count());
    for (std::uint32_t j = 0; j < flat.edge_count(); ++j) {
      out_in_slot_[j] = in_slot_of_edge[flat.out_edge(j).v];
    }
  }

  const CostModel& cost = eval.cost();
  const Platform& platform = cost.platform();
  budget_.assign(m_, 0.0);
  double total_area = 0.0;
  for (std::size_t v = 0; v < n_; ++v) total_area += cost.area(NodeId(v));
  double max_budget = 0.0;
  for (std::size_t d = 0; d < m_; ++d) {
    if (is_fpga_[d]) {
      budget_[d] =
          platform.device(DeviceId(static_cast<std::uint32_t>(d))).area_budget;
      max_budget = std::max(max_budget, budget_[d]);
    }
  }
  // Incremental +/- updates of the area sums can drift from the exact
  // node-order sum CostModel uses by a few ulps; any sum this close to its
  // budget is resynced exactly, so the feasibility verdict never differs.
  area_eps_ = 1e-9 * (1.0 + total_area + max_budget);

  blocks_ = n_ == 0 ? 0 : (n_ - 1) / kStride + 1;
  start_.resize(n_);
  finish_.resize(n_);
  streamed_.resize(n_);
  edge_xfer_.resize(flat.edge_count());
  edge_arrival_.resize(flat.edge_count());
  prefix_max_.resize(n_);
  checkpoints_.resize(blocks_ * (s_total_ + m_));
  block_slot_uses_.assign(blocks_ * m_, 0);
  block_link_uses_.assign(blocks_ * m_, 0);
  total_slot_uses_.assign(m_, 0);
  total_link_uses_.assign(m_, 0);
  area_used_.assign(m_, 0.0);

  cur_slot_.resize(s_total_);
  cur_link_.resize(m_);
  base_slot_.resize(s_total_);
  base_link_.resize(m_);
  slot_differs_.assign(m_, 0);
  link_differs_.assign(m_, 0);
  diff_listed_.assign(m_, 0);
  timing_dirty_.assign(n_, 0);
  seen_slot_.assign(m_, 0);
  seen_link_.assign(m_, 0);
  probe_start_.resize(n_);
  probe_finish_.resize(n_);
  probe_tag_.assign(n_, 0);
  probe_epoch_ = 0;

  reset(Mapping(n_, platform.default_device()));
}

const std::vector<NodeId>& IncrementalEvaluator::order() const {
  return eval_->orders()[order_index_];
}

void IncrementalEvaluator::pop_min_insert(double* slots, std::uint32_t device,
                                          double value) {
  // slots[offset] is the device's minimum; drop it and insert `value` in
  // sorted position. `value >= min` always (value = max(ready, min) + exec).
  const std::size_t b = slot_offset_[device];
  const std::size_t e = slot_offset_[device + 1];
  if (value >= slots[e - 1]) {
    // Fast path — schedule times mostly advance, so the inserted finish is
    // usually a new maximum: one shift, no rank scan.
    std::memmove(slots + b, slots + b + 1, (e - 1 - b) * sizeof(double));
    slots[e - 1] = value;
    return;
  }
  // Branchless rank count (vectorizes; a binary search would mispredict on
  // these data-dependent spans) + one memmove for the shift.
  std::size_t rank = 0;
  for (std::size_t i = b + 1; i < e; ++i) {
    rank += slots[i] < value ? 1 : 0;
  }
  std::memmove(slots + b, slots + b + 1, rank * sizeof(double));
  slots[b + rank] = value;
}

void IncrementalEvaluator::bump_slot_use(std::size_t p, std::uint32_t device,
                                         bool add) {
  const std::uint32_t delta = add ? 1 : ~0u;
  block_slot_uses_[(p / kStride) * m_ + device] += delta;
  total_slot_uses_[device] += delta;
}

void IncrementalEvaluator::bump_link_use(std::size_t p, std::uint32_t device,
                                         bool add) {
  const std::uint32_t delta = add ? 1 : ~0u;
  block_link_uses_[(p / kStride) * m_ + device] += delta;
  total_link_uses_[device] += delta;
}

void IncrementalEvaluator::shift_move_uses(std::uint32_t node,
                                           std::uint32_t from,
                                           std::uint32_t to) {
  // The committed records themselves are untouched; only the device ends of
  // the moved node's own contributions change.
  const FlatGraph& flat = eval_->flat_graph();
  const std::size_t p0 = pos_[node];
  if (!streamed_[p0]) {
    bump_slot_use(p0, from, false);
    bump_slot_use(p0, to, true);
  }
  for (std::uint32_t k = flat.in_begin(NodeId(node));
       k < flat.in_end(NodeId(node)); ++k) {
    if (!edge_xfer_[k]) continue;
    bump_link_use(p0, from, false);
    bump_link_use(p0, to, true);
  }
  for (std::uint32_t j = flat.out_begin(NodeId(node));
       j < flat.out_end(NodeId(node)); ++j) {
    const std::uint32_t k = out_in_slot_[j];
    if (!edge_xfer_[k]) continue;
    const std::size_t pw = pos_[flat.out_dst(j)];
    bump_link_use(pw, from, false);
    bump_link_use(pw, to, true);
  }
}

double IncrementalEvaluator::reset(const Mapping& mapping) {
  SPMAP_ASSERT(mapping.size() == n_);
  mapping_ = mapping;
  frames_.clear();
  apply_count_ = 0;
  probe_count_ = 0;
  full_recording_sweep();

  std::fill(block_slot_uses_.begin(), block_slot_uses_.end(), 0);
  std::fill(block_link_uses_.begin(), block_link_uses_.end(), 0);
  std::fill(total_slot_uses_.begin(), total_slot_uses_.end(), 0);
  std::fill(total_link_uses_.begin(), total_link_uses_.end(), 0);
  for (std::size_t p = 0; p < n_; ++p) {
    const Evaluator::PlanNode pn = (*plan_)[p];
    if (!streamed_[p]) bump_slot_use(p, mapping_.device[pn.node].v, true);
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      if (!edge_xfer_[k]) continue;
      bump_link_use(p, mapping_.device[in_src_[k]].v, true);
      bump_link_use(p, mapping_.device[pn.node].v, true);
    }
  }

  const CostModel& cost = eval_->cost();
  over_budget_count_ = 0;
  for (std::size_t d = 0; d < m_; ++d) {
    if (!is_fpga_[d]) continue;
    area_used_[d] =
        cost.mapped_area(mapping_, DeviceId(static_cast<std::uint32_t>(d)));
    if (area_used_[d] > budget_[d]) ++over_budget_count_;
  }
  return makespan();
}

void IncrementalEvaluator::full_recording_sweep() {
  std::fill(cur_slot_.begin(), cur_slot_.end(), 0.0);
  std::fill(cur_link_.begin(), cur_link_.end(), 0.0);
  double run_max = 0.0;
  const Evaluator::WalkPlan& plan = *plan_;
  for (std::size_t p = 0; p < n_; ++p) {
    if (p % kStride == 0) {
      double* ck = checkpoints_.data() + (p / kStride) * (s_total_ + m_);
      std::copy(cur_slot_.begin(), cur_slot_.end(), ck);
      std::copy(cur_link_.begin(), cur_link_.end(), ck + s_total_);
    }
    const Evaluator::PlanNode pn = plan[p];
    const std::uint32_t u = pn.node;
    const std::uint32_t d = mapping_.device[u].v;
    const bool dev_fpga = is_fpga_[d] != 0;
    double ready = 0.0;
    bool streamed_in = false;
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      const std::uint32_t s = in_src_[k];
      const std::uint32_t ds = mapping_.device[s].v;
      if (ds == d) {
        if (dev_fpga) {
          ready = std::max(ready, start_[s] + fill_[d] * exec_[s * m_ + d]);
          streamed_in = true;
        } else {
          ready = std::max(ready, finish_[s]);
        }
        edge_xfer_[k] = 0;
        edge_arrival_[k] = 0.0;
      } else {
        const std::size_t li = ds * m_ + d;
        const double transfer = lat_[li] + in_mb1000_[k] / bw_[li];
        const double t_start =
            std::max({finish_[s], cur_link_[ds], cur_link_[d]});
        const double arrival = t_start + transfer;
        cur_link_[ds] = arrival;
        cur_link_[d] = arrival;
        ready = std::max(ready, arrival);
        edge_xfer_[k] = 1;
        edge_arrival_[k] = arrival;
      }
    }
    const double exec_v = exec_[pn.exec_offset + d];
    double start_v;
    if (streamed_in) {
      start_v = ready;
    } else {
      start_v = std::max(ready, cur_slot_[slot_offset_[d]]);
      pop_min_insert(cur_slot_.data(), d, start_v + exec_v);
    }
    streamed_[p] = streamed_in ? 1 : 0;
    start_[u] = start_v;
    finish_[u] = start_v + exec_v;
    run_max = std::max(run_max, finish_[u]);
    prefix_max_[p] = run_max;
  }
  makespan_value_ = run_max;
}

void IncrementalEvaluator::reconstruct_state(std::size_t p0) {
  const std::size_t c = p0 / kStride;
  const double* ck = checkpoints_.data() + c * (s_total_ + m_);
  std::copy(ck, ck + s_total_, base_slot_.begin());
  std::copy(ck + s_total_, ck + s_total_ + m_, base_link_.begin());
  // Seed the seen-use counters with the whole-block prefix...
  std::fill(seen_slot_.begin(), seen_slot_.end(), 0);
  std::fill(seen_link_.begin(), seen_link_.end(), 0);
  for (std::size_t b = 0; b < c; ++b) {
    for (std::size_t d = 0; d < m_; ++d) {
      seen_slot_[d] += block_slot_uses_[b * m_ + d];
      seen_link_[d] += block_link_uses_[b * m_ + d];
    }
  }
  const Evaluator::WalkPlan& plan = *plan_;
  // ...then replay the committed records forward to p0 (counting uses as we
  // go). Every node and source here precedes p0 in the walk, so its mapping
  // is untouched by the move.
  for (std::size_t p = c * kStride; p < p0; ++p) {
    const Evaluator::PlanNode pn = plan[p];
    const std::uint32_t u = pn.node;
    const std::uint32_t d = mapping_.device[u].v;
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      if (!edge_xfer_[k]) continue;
      const std::uint32_t ds = mapping_.device[in_src_[k]].v;
      base_link_[ds] = edge_arrival_[k];
      base_link_[d] = edge_arrival_[k];
      ++seen_link_[ds];
      ++seen_link_[d];
    }
    if (!streamed_[p]) {
      pop_min_insert(base_slot_.data(), d, finish_[u]);
      ++seen_slot_[d];
    }
  }
  std::copy(base_slot_.begin(), base_slot_.end(), cur_slot_.begin());
  std::copy(base_link_.begin(), base_link_.end(), cur_link_.begin());
}

bool IncrementalEvaluator::slot_span_equal(std::uint32_t device) const {
  // Bitwise compare: for the nonnegative finite times in these spans it
  // matches value equality (a hypothetical -0.0 vs +0.0 would only read as
  // "differs", which is conservative — an extra recompute, never a skip).
  const std::size_t b = slot_offset_[device];
  return std::memcmp(cur_slot_.data() + b, base_slot_.data() + b,
                     (slot_offset_[device + 1] - b) * sizeof(double)) == 0;
}

void IncrementalEvaluator::touch_slot_device(std::uint32_t device) {
  // Consecutive duplicates are the common case (base and cur writes land
  // on the same device); dropping them halves the refresh compares.
  if (!touched_slot_devs_.empty() && touched_slot_devs_.back() == device) {
    return;
  }
  touched_slot_devs_.push_back(device);
}

void IncrementalEvaluator::touch_link_device(std::uint32_t device) {
  if (!touched_link_devs_.empty() && touched_link_devs_.back() == device) {
    return;
  }
  touched_link_devs_.push_back(device);
}

void IncrementalEvaluator::refresh_touched_diffs() {
  for (const std::uint32_t d : touched_slot_devs_) {
    const std::uint8_t differs = slot_span_equal(d) ? 0 : 1;
    if (differs != slot_differs_[d]) {
      slot_differs_[d] = differs;
      diff_device_count_ += differs ? 1 : std::size_t(-1);
      if (differs && !diff_listed_[d]) {
        diff_listed_[d] = 1;
        diff_list_.push_back(d);
      }
    }
  }
  touched_slot_devs_.clear();
  for (const std::uint32_t d : touched_link_devs_) {
    const std::uint8_t differs = cur_link_[d] != base_link_[d] ? 1 : 0;
    if (differs != link_differs_[d]) {
      link_differs_[d] = differs;
      diff_device_count_ += differs ? 1 : std::size_t(-1);
      if (differs && !diff_listed_[d]) {
        diff_listed_[d] = 1;
        diff_list_.push_back(d);
      }
    }
  }
  touched_link_devs_.clear();
}

bool IncrementalEvaluator::can_stop(std::size_t p) const {
  if (p <= limit_) return false;
  if (diff_device_count_ == 0) return true;
  // Diffs linger, but they are harmless once nothing ahead reads them:
  // only a slot-occupying task reads its device's slot state, and only a
  // transfer endpoint reads a link. (Past limit_ every unvisited position
  // keeps its committed records, so committed use counts are exact.)
  for (const std::uint32_t dev : diff_list_) {
    if (slot_differs_[dev] && total_slot_uses_[dev] > seen_slot_[dev]) {
      return false;
    }
    if (link_differs_[dev] && total_link_uses_[dev] > seen_link_[dev]) {
      return false;
    }
  }
  return true;
}

void IncrementalEvaluator::patch_tail_checkpoints(std::size_t p,
                                                  UndoFrame& frame) {
  if (diff_device_count_ == 0) return;
  // The diverged devices are unused from p to the end, so the new sweep's
  // state for them is frozen at the current values — write those into every
  // remaining checkpoint so later reconstructions see the new truth.
  const std::size_t row = s_total_ + m_;
  for (std::size_t c = (p + kStride - 1) / kStride; c < blocks_; ++c) {
    double* ck = checkpoints_.data() + c * row;
    for (const std::uint32_t dev : diff_list_) {
      if (slot_differs_[dev]) {
        for (std::size_t i = slot_offset_[dev]; i < slot_offset_[dev + 1];
             ++i) {
          if (ck[i] != cur_slot_[i]) {
            frame.ck_cells.emplace_back(
                static_cast<std::uint32_t>(c * row + i), ck[i]);
            ck[i] = cur_slot_[i];
          }
        }
      }
      if (link_differs_[dev] && ck[s_total_ + dev] != cur_link_[dev]) {
        frame.ck_cells.emplace_back(
            static_cast<std::uint32_t>(c * row + s_total_ + dev),
            ck[s_total_ + dev]);
        ck[s_total_ + dev] = cur_link_[dev];
      }
    }
  }
}

void IncrementalEvaluator::step(std::size_t p, UndoFrame& frame) {
  const Evaluator::PlanNode pn = (*plan_)[p];
  const std::uint32_t u = pn.node;
  const std::uint32_t d = mapping_.device[u].v;

  // ---- skip test: would a full sweep read exactly the committed values?
  bool needs = u == moved_ || slot_differs_[d] != 0;
  if (!needs) {
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      const std::uint32_t s = in_src_[k];
      if (timing_dirty_[s] != 0 || s == moved_) {
        needs = true;
        break;
      }
      if (edge_xfer_[k]) {
        const std::uint32_t ds = mapping_.device[s].v;
        if (link_differs_[ds] != 0 || link_differs_[d] != 0) {
          needs = true;
          break;
        }
      }
    }
  }

  if (!needs) {
    // Clean node: its times stand; replay its committed writes into both
    // states. Every written entry compared equal before (the skip test),
    // so no diff flag can change.
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      if (!edge_xfer_[k]) continue;
      const std::uint32_t ds = mapping_.device[in_src_[k]].v;
      const double arrival = edge_arrival_[k];
      base_link_[ds] = arrival;
      base_link_[d] = arrival;
      cur_link_[ds] = arrival;
      cur_link_[d] = arrival;
      ++seen_link_[ds];
      ++seen_link_[d];
    }
    if (!streamed_[p]) {
      const double fv = finish_[u];
      pop_min_insert(base_slot_.data(), d, fv);
      pop_min_insert(cur_slot_.data(), d, fv);
      ++seen_slot_[d];
    }
    return;
  }

  ++last_recomputed_;
  const double old_start = start_[u];
  const double old_finish = finish_[u];
  const std::uint32_t d_old = u == moved_ ? moved_old_dev_ : d;
  const bool dev_fpga = is_fpga_[d] != 0;

  // One fused pass per in-edge: replay the committed record into the base
  // state, then recompute the edge against the cur state (the exact
  // arithmetic of Evaluator::evaluate_plan). The two states are disjoint
  // and each record is read (base side) before it is rewritten (cur side).
  double ready = 0.0;
  bool streamed_in = false;
  for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
    const std::uint32_t s = in_src_[k];
    const std::uint32_t ds = mapping_.device[s].v;
    if (edge_xfer_[k]) {
      const std::uint32_t ds_old = s == moved_ ? moved_old_dev_ : ds;
      base_link_[ds_old] = edge_arrival_[k];
      base_link_[d_old] = edge_arrival_[k];
      touch_link_device(ds_old);
      touch_link_device(d_old);
    }
    std::uint8_t new_xfer = 0;
    double new_arrival = 0.0;
    if (ds == d) {
      if (dev_fpga) {
        ready = std::max(ready, start_[s] + fill_[d] * exec_[s * m_ + d]);
        streamed_in = true;
      } else {
        ready = std::max(ready, finish_[s]);
      }
    } else {
      const std::size_t li = ds * m_ + d;
      const double transfer = lat_[li] + in_mb1000_[k] / bw_[li];
      const double t_start =
          std::max({finish_[s], cur_link_[ds], cur_link_[d]});
      new_arrival = t_start + transfer;
      cur_link_[ds] = new_arrival;
      cur_link_[d] = new_arrival;
      ready = std::max(ready, new_arrival);
      touch_link_device(ds);
      touch_link_device(d);
      new_xfer = 1;
    }
    if (new_xfer != edge_xfer_[k] ||
        (new_xfer != 0 && new_arrival != edge_arrival_[k])) {
      frame.edges.push_back({k, edge_xfer_[k], edge_arrival_[k]});
      if (new_xfer != edge_xfer_[k]) {
        // A flipped transfer flag moves this edge's link-use contribution.
        const bool add = new_xfer != 0;
        bump_link_use(p, ds, add);
        bump_link_use(p, d, add);
      }
      edge_xfer_[k] = new_xfer;
      edge_arrival_[k] = new_arrival;
    }
    if (edge_xfer_[k]) {
      ++seen_link_[ds];
      ++seen_link_[d];
    }
  }
  if (!streamed_[p]) {
    pop_min_insert(base_slot_.data(), d_old, old_finish);
    touch_slot_device(d_old);
  }
  const double exec_v = exec_[pn.exec_offset + d];
  double start_v;
  if (streamed_in) {
    start_v = ready;
  } else {
    start_v = std::max(ready, cur_slot_[slot_offset_[d]]);
    pop_min_insert(cur_slot_.data(), d, start_v + exec_v);
    touch_slot_device(d);
    ++seen_slot_[d];
  }
  const std::uint8_t st = streamed_in ? 1 : 0;
  if (st != streamed_[p]) {
    frame.streams.push_back({static_cast<std::uint32_t>(p), streamed_[p]});
    bump_slot_use(p, d, st == 0);  // slot use appears when streaming stops
    streamed_[p] = st;
  }
  const double finish_v = start_v + exec_v;
  if (start_v != old_start || finish_v != old_finish) {
    frame.times.push_back({u, old_start, old_finish});
    start_[u] = start_v;
    finish_[u] = finish_v;
    if (timing_dirty_[u] == 0) {
      timing_dirty_[u] = 1;
      dirty_list_.push_back(u);
    }
    limit_ = std::max(limit_, static_cast<std::size_t>(last_consumer_pos_[u]));
  }

  refresh_touched_diffs();
}

void IncrementalEvaluator::snapshot_checkpoint(std::size_t c,
                                               UndoFrame& frame) {
  double* ck = checkpoints_.data() + c * (s_total_ + m_);
  const bool same =
      std::equal(cur_slot_.begin(), cur_slot_.end(), ck) &&
      std::equal(cur_link_.begin(), cur_link_.end(), ck + s_total_);
  if (same) return;
  frame.checkpoints.emplace_back(
      static_cast<std::uint32_t>(c),
      std::vector<double>(ck, ck + s_total_ + m_));
  std::copy(cur_slot_.begin(), cur_slot_.end(), ck);
  std::copy(cur_link_.begin(), cur_link_.end(), ck + s_total_);
}

void IncrementalEvaluator::update_area(std::uint32_t device, double delta) {
  const double budget = budget_[device];
  const bool was_over = area_used_[device] > budget;
  area_used_[device] += delta;
  if (std::abs(area_used_[device] - budget) <= area_eps_) {
    // Boundary tie: resync against the exact node-order sum so the verdict
    // is identical to CostModel::area_feasible.
    area_used_[device] = eval_->cost().mapped_area(mapping_, DeviceId(device));
  }
  const bool now_over = area_used_[device] > budget;
  if (was_over != now_over) over_budget_count_ += now_over ? 1 : -1;
}

void IncrementalEvaluator::move_area(UndoFrame& frame, NodeId node,
                                     std::uint32_t from, std::uint32_t to) {
  if (!is_fpga_[from] && !is_fpga_[to]) return;
  const double area = eval_->cost().area(node);
  if (is_fpga_[from]) {
    frame.areas.emplace_back(from, area_used_[from]);
    update_area(from, -area);
  }
  if (is_fpga_[to]) {
    frame.areas.emplace_back(to, area_used_[to]);
    update_area(to, area);
  }
}

double IncrementalEvaluator::apply(TaskReassignment move) {
  SPMAP_ASSERT(move.node.v < n_);
  SPMAP_ASSERT(move.device.v < m_);
  ++apply_count_;
  spare_.reset_keep_capacity();
  frames_.push_back(std::move(spare_));
  spare_ = UndoFrame{};
  UndoFrame& frame = frames_.back();
  frame.node = move.node.v;
  frame.old_device = mapping_.device[move.node.v].v;
  frame.old_makespan = makespan_value_;
  frame.old_over_budget = over_budget_count_;
  last_replayed_ = 0;
  last_recomputed_ = 0;
  if (move.device.v == frame.old_device) return makespan();
  frame.noop = false;

  mapping_.device[move.node.v] = move.device;
  shift_move_uses(move.node.v, frame.old_device, move.device.v);
  move_area(frame, move.node, frame.old_device, move.device.v);

  moved_ = move.node.v;
  moved_old_dev_ = frame.old_device;
  const std::size_t p0 = pos_[moved_];
  reconstruct_state(p0);
  limit_ = last_consumer_pos_[moved_];
  double run_max = p0 == 0 ? 0.0 : prefix_max_[p0 - 1];

  const Evaluator::WalkPlan& plan = *plan_;
  std::size_t p = p0;
  for (; p < n_; ++p) {
    // Stop once nothing ahead can read any remaining divergence: the rest
    // of the sweep reproduces its committed values verbatim.
    if (can_stop(p)) break;
    if (p % kStride == 0) snapshot_checkpoint(p / kStride, frame);
    ++last_replayed_;
    step(p, frame);
    run_max = std::max(run_max, finish_[plan[p].node]);
    if (prefix_max_[p] != run_max) {
      frame.prefix.emplace_back(static_cast<std::uint32_t>(p), prefix_max_[p]);
      prefix_max_[p] = run_max;
    }
  }
  if (p < n_) patch_tail_checkpoints(p, frame);
  // Early exit: the remaining times stand, but the running max still has to
  // be folded forward until it rejoins the committed prefix-max curve.
  for (; p < n_; ++p) {
    const double folded = std::max(run_max, finish_[plan[p].node]);
    if (folded == prefix_max_[p]) break;
    frame.prefix.emplace_back(static_cast<std::uint32_t>(p), prefix_max_[p]);
    prefix_max_[p] = folded;
    run_max = folded;
  }
  makespan_value_ = n_ == 0 ? 0.0 : prefix_max_[n_ - 1];

  // Clear the per-apply transient marks.
  for (const std::uint32_t v : dirty_list_) timing_dirty_[v] = 0;
  dirty_list_.clear();
  for (const std::uint32_t dev : diff_list_) {
    slot_differs_[dev] = 0;
    link_differs_[dev] = 0;
    diff_listed_[dev] = 0;
  }
  diff_list_.clear();
  diff_device_count_ = 0;
  moved_ = kNoDevice;

  return makespan();
}

void IncrementalEvaluator::probe_step(std::size_t p) {
  const Evaluator::PlanNode pn = (*plan_)[p];
  const std::uint32_t u = pn.node;
  const std::uint32_t d = mapping_.device[u].v;

  // Skip test: identical to step(), with overlay-aware source times behind
  // the timing_dirty_ flags (a flagged source has an overlay entry).
  bool needs = u == moved_ || slot_differs_[d] != 0;
  if (!needs) {
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      const std::uint32_t s = in_src_[k];
      if (timing_dirty_[s] != 0 || s == moved_) {
        needs = true;
        break;
      }
      if (edge_xfer_[k]) {
        const std::uint32_t ds = mapping_.device[s].v;
        if (link_differs_[ds] != 0 || link_differs_[d] != 0) {
          needs = true;
          break;
        }
      }
    }
  }

  if (!needs) {
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      if (!edge_xfer_[k]) continue;
      const std::uint32_t ds = mapping_.device[in_src_[k]].v;
      const double arrival = edge_arrival_[k];
      base_link_[ds] = arrival;
      base_link_[d] = arrival;
      cur_link_[ds] = arrival;
      cur_link_[d] = arrival;
      ++seen_link_[ds];
      ++seen_link_[d];
    }
    if (!streamed_[p]) {
      const double fv = finish_[u];
      pop_min_insert(base_slot_.data(), d, fv);
      pop_min_insert(cur_slot_.data(), d, fv);
      ++seen_slot_[d];
    }
    return;
  }

  ++last_recomputed_;
  const std::uint32_t d_old = u == moved_ ? moved_old_dev_ : d;
  const bool dev_fpga = is_fpga_[d] != 0;

  double ready = 0.0;
  bool streamed_in = false;
  for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
    const std::uint32_t s = in_src_[k];
    const std::uint32_t ds = mapping_.device[s].v;
    if (edge_xfer_[k]) {
      const std::uint32_t ds_old = s == moved_ ? moved_old_dev_ : ds;
      base_link_[ds_old] = edge_arrival_[k];
      base_link_[d_old] = edge_arrival_[k];
      touch_link_device(ds_old);
      touch_link_device(d_old);
      // Seen counting stays in committed-record convention (no
      // shift_move_uses ran): the committed device ends of this edge.
      ++seen_link_[ds_old];
      ++seen_link_[d_old];
    }
    if (ds == d) {
      if (dev_fpga) {
        ready = std::max(ready, eff_start(s) + fill_[d] * exec_[s * m_ + d]);
        streamed_in = true;
      } else {
        ready = std::max(ready, eff_finish(s));
      }
    } else {
      const std::size_t li = ds * m_ + d;
      const double transfer = lat_[li] + in_mb1000_[k] / bw_[li];
      const double t_start =
          std::max({eff_finish(s), cur_link_[ds], cur_link_[d]});
      const double arrival = t_start + transfer;
      cur_link_[ds] = arrival;
      cur_link_[d] = arrival;
      ready = std::max(ready, arrival);
      touch_link_device(ds);
      touch_link_device(d);
    }
  }
  if (!streamed_[p]) {
    pop_min_insert(base_slot_.data(), d_old, finish_[u]);
    touch_slot_device(d_old);
    ++seen_slot_[d_old];
  }
  const double exec_v = exec_[pn.exec_offset + d];
  double start_v;
  if (streamed_in) {
    start_v = ready;
  } else {
    start_v = std::max(ready, cur_slot_[slot_offset_[d]]);
    pop_min_insert(cur_slot_.data(), d, start_v + exec_v);
    touch_slot_device(d);
  }
  const double finish_v = start_v + exec_v;
  probe_start_[u] = start_v;
  probe_finish_[u] = finish_v;
  probe_tag_[u] = probe_epoch_;
  if (start_v != start_[u] || finish_v != finish_[u]) {
    if (timing_dirty_[u] == 0) {
      timing_dirty_[u] = 1;
      dirty_list_.push_back(u);
    }
    limit_ = std::max(limit_, static_cast<std::size_t>(last_consumer_pos_[u]));
  }

  refresh_touched_diffs();
}

double IncrementalEvaluator::plain_suffix_sweep(std::size_t p,
                                                double run_max) {
  const Evaluator::WalkPlan& plan = *plan_;
  for (; p < n_; ++p) {
    ++last_replayed_;
    ++last_recomputed_;
    const Evaluator::PlanNode pn = plan[p];
    const std::uint32_t u = pn.node;
    const std::uint32_t d = mapping_.device[u].v;
    const bool dev_fpga = is_fpga_[d] != 0;
    double ready = 0.0;
    bool streamed_in = false;
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      const std::uint32_t s = in_src_[k];
      const std::uint32_t ds = mapping_.device[s].v;
      if (ds == d) {
        if (dev_fpga) {
          ready = std::max(ready, eff_start(s) + fill_[d] * exec_[s * m_ + d]);
          streamed_in = true;
        } else {
          ready = std::max(ready, eff_finish(s));
        }
      } else {
        const std::size_t li = ds * m_ + d;
        const double transfer = lat_[li] + in_mb1000_[k] / bw_[li];
        const double t_start =
            std::max({eff_finish(s), cur_link_[ds], cur_link_[d]});
        const double arrival = t_start + transfer;
        cur_link_[ds] = arrival;
        cur_link_[d] = arrival;
        ready = std::max(ready, arrival);
      }
    }
    const double exec_v = exec_[pn.exec_offset + d];
    double start_v;
    if (streamed_in) {
      start_v = ready;
    } else {
      start_v = std::max(ready, cur_slot_[slot_offset_[d]]);
      pop_min_insert(cur_slot_.data(), d, start_v + exec_v);
    }
    probe_start_[u] = start_v;
    probe_finish_[u] = start_v + exec_v;
    probe_tag_[u] = probe_epoch_;
    run_max = std::max(run_max, start_v + exec_v);
  }
  return run_max;
}

void IncrementalEvaluator::reconstruct_cur_state(std::size_t p0) {
  const std::size_t c = p0 / kStride;
  const double* ck = checkpoints_.data() + c * (s_total_ + m_);
  std::copy(ck, ck + s_total_, cur_slot_.begin());
  std::copy(ck + s_total_, ck + s_total_ + m_, cur_link_.begin());
  // Replay the committed records forward to p0. Every node and source here
  // precedes p0 in the walk, so its mapping is untouched by the move.
  const Evaluator::WalkPlan& plan = *plan_;
  for (std::size_t p = c * kStride; p < p0; ++p) {
    const Evaluator::PlanNode pn = plan[p];
    const std::uint32_t u = pn.node;
    const std::uint32_t d = mapping_.device[u].v;
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      if (!edge_xfer_[k]) continue;
      cur_link_[mapping_.device[in_src_[k]].v] = edge_arrival_[k];
      cur_link_[d] = edge_arrival_[k];
    }
    if (!streamed_[p]) pop_min_insert(cur_slot_.data(), d, finish_[u]);
  }
}

double IncrementalEvaluator::fallback_suffix_sweep(std::size_t p0,
                                                   double run_max) {
  // The hot loop of the suffix-sweep probe path. Same arithmetic in the
  // same order as plain_suffix_sweep / Evaluator::evaluate_plan, but the
  // overlay is known clean here: a source's time is committed when its
  // position precedes p0 and this sweep's own output otherwise, so every
  // read resolves by one position compare and the overlay tags are never
  // touched. The __restrict locals keep the compiler from reloading
  // topology tables around the probe_/link state stores.
  const Evaluator::WalkPlan& plan = *plan_;
  const std::uint32_t* __restrict in_src = in_src_;
  const double* __restrict in_mb = in_mb1000_;
  const double* __restrict exec = exec_;
  const double* __restrict lat = lat_;
  const double* __restrict bw = bw_;
  const double* __restrict fill = fill_;
  const std::uint8_t* __restrict is_fpga = is_fpga_;
  const std::size_t* __restrict slot_off = slot_offset_;
  const std::uint32_t* __restrict posv = pos_.data();
  const double* __restrict cstart = start_.data();
  const double* __restrict cfinish = finish_.data();
  double* __restrict pstart = probe_start_.data();
  double* __restrict pfinish = probe_finish_.data();
  double* __restrict slots = cur_slot_.data();
  double* __restrict links = cur_link_.data();
  const DeviceId* __restrict dev = mapping_.device.data();
  const std::uint32_t pos0 = static_cast<std::uint32_t>(p0);
  const std::size_t m = m_;
  for (std::size_t p = p0; p < n_; ++p) {
    const Evaluator::PlanNode pn = plan[p];
    const std::uint32_t u = pn.node;
    const std::uint32_t d = dev[u].v;
    const bool dev_fpga = is_fpga[d] != 0;
    double ready = 0.0;
    bool streamed_in = false;
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      const std::uint32_t s = in_src[k];
      const std::uint32_t ds = dev[s].v;
      const bool fresh = posv[s] >= pos0;
      if (ds == d) {
        if (dev_fpga) {
          const double s_start = fresh ? pstart[s] : cstart[s];
          ready = std::max(ready, s_start + fill[d] * exec[s * m + d]);
          streamed_in = true;
        } else {
          ready = std::max(ready, fresh ? pfinish[s] : cfinish[s]);
        }
      } else {
        const double s_fin = fresh ? pfinish[s] : cfinish[s];
        const std::size_t li = ds * m + d;
        const double transfer = lat[li] + in_mb[k] / bw[li];
        const double t_start = std::max({s_fin, links[ds], links[d]});
        const double arrival = t_start + transfer;
        links[ds] = arrival;
        links[d] = arrival;
        ready = std::max(ready, arrival);
      }
    }
    const double exec_v = exec[pn.exec_offset + d];
    double start_v;
    if (streamed_in) {
      start_v = ready;
    } else {
      const std::size_t b = slot_off[d];
      const std::size_t e = slot_off[d + 1];
      start_v = std::max(ready, slots[b]);
      const double fin = start_v + exec_v;
      // Inline pop-min-insert (drop the span minimum, insert `fin` sorted —
      // identical result to pop_min_insert): spans are a handful of slots,
      // so a sequential shift beats the memmove dispatch.
      std::size_t i = b;
      for (; i + 1 < e && slots[i + 1] < fin; ++i) slots[i] = slots[i + 1];
      slots[i] = fin;
    }
    pstart[u] = start_v;
    pfinish[u] = start_v + exec_v;
    run_max = std::max(run_max, start_v + exec_v);
  }
  return run_max;
}

std::size_t IncrementalEvaluator::replay_window_bound(std::uint32_t node,
                                                      std::uint32_t from,
                                                      std::uint32_t to) const {
  std::size_t last = last_consumer_pos_[node];
  // Scan the committed use counters from the back: the last block in which
  // either endpoint device occupies a slot or touches a link extends the
  // window, and blocks wholly inside the consumer window cannot.
  for (std::size_t b = blocks_; b-- > 0;) {
    if (b * kStride + (kStride - 1) <= last) break;
    const std::uint32_t* su = &block_slot_uses_[b * m_];
    const std::uint32_t* lu = &block_link_uses_[b * m_];
    if ((su[from] | su[to] | lu[from] | lu[to]) != 0) {
      last = std::max(last, b * kStride + (kStride - 1));
      break;
    }
  }
  return std::min(last, n_ == 0 ? std::size_t(0) : n_ - 1);
}

bool IncrementalEvaluator::choose_fallback(std::size_t p0, std::uint32_t node,
                                           std::uint32_t from,
                                           std::uint32_t to) {
  switch (probe_mode_) {
    case ProbeMode::kForceIncremental: return false;
    case ProbeMode::kForceFallback: return true;
    case ProbeMode::kAuto: break;
  }
  // Warmup: alternate the paths until both estimates have real footing.
  if (inc_cost_samples_ < kWarmupSamples ||
      fb_cost_samples_ < kWarmupSamples) {
    return inc_cost_samples_ > fb_cost_samples_;
  }
  // Compare fb_ns_sum_/fb_sfx_sum_ against inc_ns_sum_/inc_sfx_sum_
  // cross-multiplied (suffix sums are >= 1, so no division), with 10%
  // hysteresis in favor of the incumbent path: near-equal costs would
  // otherwise flip the route on every estimate wiggle and pay both paths'
  // worst-case noise.
  const double fb_cost = fb_ns_sum_ * inc_sfx_sum_;
  const double inc_cost = inc_ns_sum_ * fb_sfx_sum_;
  const bool sweep_wins = prefer_fallback_ ? fb_cost < 1.1 * inc_cost
                                           : 1.1 * fb_cost < inc_cost;
  prefer_fallback_ = sweep_wins;
  // Periodic resample of the losing path so its EMA tracks drift across
  // applies and resets.
  if (++probes_since_resample_ >= kResampleEvery) {
    probes_since_resample_ = 0;
    return !sweep_wins;
  }
  if (!sweep_wins) return false;
  // Sweep regime. A move whose devices go idle right after its farthest
  // consumer is still provably cheap — keep it incremental (this reads only
  // the use counters, before any checkpoint state is rebuilt).
  const std::size_t suffix = n_ - p0;
  const std::size_t bound = replay_window_bound(node, from, to);
  return (bound - p0 + 1) * 4 > suffix;
}

void IncrementalEvaluator::note_probe_cost(bool fallback, std::size_t suffix,
                                           double ns) {
  const double sfx = static_cast<double>(std::max<std::size_t>(1, suffix));
  // Winsorize: a scheduler preemption or host steal spike landing inside
  // one probe would otherwise outweigh thousands of honest samples and
  // poison the path's estimate for a whole decay window. 1 µs per suffix
  // position is ~20x any real per-position cost, so genuine samples pass
  // untouched.
  ns = std::min(ns, sfx * 1000.0);
  // Exponential forgetting on the aggregates, clocked per path by its own
  // sample count: old regimes fade, but a single probe never moves an
  // estimate by more than its own weight.
  if (fallback) {
    fb_ns_sum_ += ns;
    fb_sfx_sum_ += sfx;
    ++fb_cost_samples_;
    if (++fb_notes_since_decay_ >= kCostDecayEvery) {
      fb_notes_since_decay_ = 0;
      fb_ns_sum_ *= 0.5;
      fb_sfx_sum_ *= 0.5;
    }
  } else {
    inc_ns_sum_ += ns;
    inc_sfx_sum_ += sfx;
    ++inc_cost_samples_;
    if (++inc_notes_since_decay_ >= kCostDecayEvery) {
      inc_notes_since_decay_ = 0;
      inc_ns_sum_ *= 0.5;
      inc_sfx_sum_ *= 0.5;
    }
  }
}

double IncrementalEvaluator::probe(TaskReassignment move) {
  SPMAP_ASSERT(move.node.v < n_);
  SPMAP_ASSERT(move.device.v < m_);
  ++probe_count_;
  last_replayed_ = 0;
  last_recomputed_ = 0;
  last_probe_fallback_ = false;
  const std::uint32_t old_dev = mapping_.device[move.node.v].v;
  if (move.device.v == old_dev) return makespan();

  // Area verdict, trace-free: replicate move_area/update_area on locals.
  int over = over_budget_count_;
  mapping_.device[move.node.v] = move.device;
  if (is_fpga_[old_dev] || is_fpga_[move.device.v]) {
    const double area = eval_->cost().area(move.node);
    for (const auto& [dev, delta] :
         {std::pair<std::uint32_t, double>{old_dev, -area},
          std::pair<std::uint32_t, double>{move.device.v, area}}) {
      if (!is_fpga_[dev]) continue;
      const double budget = budget_[dev];
      const bool was_over = area_used_[dev] > budget;
      double used = area_used_[dev] + delta;
      if (std::abs(used - budget) <= area_eps_) {
        used = eval_->cost().mapped_area(mapping_, DeviceId(dev));
      }
      if (was_over != (used > budget)) over += used > budget ? 1 : -1;
    }
  }

  const std::size_t p0 = pos_[move.node.v];
  if (++probe_epoch_ == 0) {
    // Tag wrap-around: invalidate all overlay entries, restart at 1.
    std::fill(probe_tag_.begin(), probe_tag_.end(), 0u);
    probe_epoch_ = 1;
  }
  double run_max = p0 == 0 ? 0.0 : prefix_max_[p0 - 1];

  // Auto mode measures each routed probe's wall time to keep the per-path
  // cost EMAs live; the two clock reads cost ~40 ns against probes that run
  // microseconds. Results are unaffected — only routing reads the EMAs.
  const bool timed = probe_mode_ == ProbeMode::kAuto;
  std::chrono::steady_clock::time_point t0;
  if (timed) t0 = std::chrono::steady_clock::now();

  if (choose_fallback(p0, move.node.v, old_dev, move.device.v)) {
    // Suffix-sweep path: resume from the nearest committed checkpoint and
    // re-simulate the suffix with the plain sweep — no skip machinery, no
    // base state, no use counters. ~(n - p0) sweep positions total.
    last_probe_fallback_ = true;
    ++fb_probes_;
    reconstruct_cur_state(p0);
    run_max = fallback_suffix_sweep(p0, run_max);
    const std::size_t suffix = n_ - p0;
    fb_swept_total_ += suffix;
    last_replayed_ = suffix;
    last_recomputed_ = suffix;
    if (timed) {
      note_probe_cost(true, suffix,
                      std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    }
    mapping_.device[move.node.v] = DeviceId(old_dev);
    return over == 0 ? run_max : kInfeasible;
  }

  ++inc_probes_;
  moved_ = move.node.v;
  moved_old_dev_ = old_dev;
  reconstruct_state(p0);
  limit_ = last_consumer_pos_[moved_];

  const Evaluator::WalkPlan& plan = *plan_;
  std::size_t p = p0;
  for (; p < n_; ++p) {
    if (can_stop(p)) break;
    // Dense cascade: nearly everything visited so far was recomputed, so
    // skip detection is pure overhead — finish with the plain sweep. The
    // 256-position horizon sits past where healing probes typically
    // converge; on small graphs (where a cascade reaches the end anyway)
    // the switch comes earlier.
    if ((last_replayed_ >= 256 || (n_ <= 512 && last_replayed_ >= 64)) &&
        last_recomputed_ + (last_replayed_ >> 3) >= last_replayed_) {
      run_max = plain_suffix_sweep(p, run_max);
      p = n_;
      break;
    }
    ++last_replayed_;
    probe_step(p);
    run_max = std::max(run_max, eff_finish(plan[p].node));
  }
  // Read-only fold: past the stop point every time is committed, so the
  // probed makespan rejoins the committed prefix-max curve exactly as
  // apply()'s fold would — once it matches, the committed tail maximum
  // (prefix_max_[n-1]) finishes the job.
  for (; p < n_; ++p) {
    const double folded = std::max(run_max, finish_[plan[p].node]);
    if (folded == prefix_max_[p]) {
      run_max = prefix_max_[n_ - 1];
      break;
    }
    run_max = folded;
  }

  if (timed) {
    note_probe_cost(false, n_ - p0,
                    std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
  }
  inc_replayed_total_ += last_replayed_;

  // Roll back the scratch marks; the committed state was never touched.
  for (const std::uint32_t v : dirty_list_) timing_dirty_[v] = 0;
  dirty_list_.clear();
  for (const std::uint32_t dev : diff_list_) {
    slot_differs_[dev] = 0;
    link_differs_[dev] = 0;
    diff_listed_[dev] = 0;
  }
  diff_list_.clear();
  diff_device_count_ = 0;
  moved_ = kNoDevice;
  mapping_.device[move.node.v] = DeviceId(old_dev);

  return over == 0 ? run_max : kInfeasible;
}

void IncrementalEvaluator::undo() {
  require(!frames_.empty(), "IncrementalEvaluator::undo: empty undo stack");
  UndoFrame& frame = frames_.back();
  makespan_value_ = frame.old_makespan;
  over_budget_count_ = frame.old_over_budget;
  if (!frame.noop) {
    // Reverse the step-level mutations first (the use-count bookkeeping of
    // the records was done under the post-move mapping), then the move.
    for (auto it = frame.times.rbegin(); it != frame.times.rend(); ++it) {
      start_[it->node] = it->start;
      finish_[it->node] = it->finish;
    }
    for (auto it = frame.streams.rbegin(); it != frame.streams.rend(); ++it) {
      const std::uint32_t p = it->first;
      bump_slot_use(p, mapping_.device[(*plan_)[p].node].v, it->second == 0);
      streamed_[p] = it->second;
    }
    for (auto it = frame.edges.rbegin(); it != frame.edges.rend(); ++it) {
      if (it->xfer != edge_xfer_[it->k]) {
        const FlatGraph& flat = eval_->flat_graph();
        std::uint32_t dst = 0;
        // in-edge slot k belongs to the consumer whose span contains k; the
        // consumer is recoverable from the flat graph's in_edge -> Dag edge.
        const EdgeId e = flat.in_edge(it->k);
        dst = eval_->cost().dag().dst(e).v;
        const std::uint32_t src = eval_->cost().dag().src(e).v;
        const bool add = it->xfer != 0;
        bump_link_use(pos_[dst], mapping_.device[src].v, add);
        bump_link_use(pos_[dst], mapping_.device[dst].v, add);
      }
      edge_xfer_[it->k] = it->xfer;
      edge_arrival_[it->k] = it->arrival;
    }
    for (auto it = frame.prefix.rbegin(); it != frame.prefix.rend(); ++it) {
      prefix_max_[it->first] = it->second;
    }
    for (auto it = frame.checkpoints.rbegin(); it != frame.checkpoints.rend();
         ++it) {
      std::copy(it->second.begin(), it->second.end(),
                checkpoints_.data() + it->first * (s_total_ + m_));
    }
    for (auto it = frame.ck_cells.rbegin(); it != frame.ck_cells.rend();
         ++it) {
      checkpoints_[it->first] = it->second;
    }
    for (auto it = frame.areas.rbegin(); it != frame.areas.rend(); ++it) {
      area_used_[it->first] = it->second;
    }
    shift_move_uses(frame.node, mapping_.device[frame.node].v,
                    frame.old_device);
    mapping_.device[frame.node] = DeviceId(frame.old_device);
  }
  // Recycle the frame's storage for the next apply (probe loops allocate
  // nothing in steady state).
  spare_ = std::move(frame);
  spare_.reset_keep_capacity();
  frames_.pop_back();
}

void IncrementalEvaluator::commit() { frames_.clear(); }

}  // namespace spmap
