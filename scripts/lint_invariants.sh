#!/usr/bin/env bash
# Repo invariant linter: greppable rules the toolchain cannot express as
# compiler warnings. Run from anywhere (resolves the repo root itself);
# wired both as the `lint_invariants` ctest and into the docs-and-formats
# CI job. Exit 0 = clean, 1 = violations (each printed with file:line).
#
# The rules, and why they exist:
#   1. No std::rand/srand/time-seeding in src/ — determinism is a paper
#      claim (bit-identical results across thread counts); all randomness
#      goes through spmap::Rng with an explicit seed.
#   2. No <iostream> in library code — the library reports through
#      return values and std::FILE* sinks; iostream drags in static
#      init-order hazards and interleaves badly under concurrency.
#   3. No raw std::mutex/condvar/lock types outside src/util/mutex.hpp —
#      every lock must be the annotated spmap::Mutex/MutexLock/CondVar
#      so clang -Werror=thread-safety sees it (docs/STATIC_ANALYSIS.md).
#   4. No naked std::thread::detach() — a detached thread outlives the
#      state it touches; everything joins (ThreadPool, MappingService,
#      test helpers).
set -u

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$root"

failures=0

report() {
  # $1 = rule description, $2 = matches (possibly empty)
  if [ -n "$2" ]; then
    echo "lint_invariants: $1" >&2
    echo "$2" >&2
    failures=1
  fi
}

# Rule 1: no unseeded/global randomness in library code.
matches=$(grep -rn --include='*.hpp' --include='*.cpp' \
  -e 'std::rand\b' -e '\bsrand(' -e 'time(NULL)' -e 'time(nullptr)' \
  src/ || true)
report "std::rand/srand/time() seeding is banned in src/ (use spmap::Rng with an explicit seed)" "$matches"

# Rule 2: no iostream in library code (tools/tests/bench may print).
matches=$(grep -rn --include='*.hpp' --include='*.cpp' \
  -e '#include <iostream>' src/ || true)
report "<iostream> is banned in src/ (use std::FILE* sinks)" "$matches"

# Rule 3: raw standard lock primitives only inside the annotated wrapper.
# std::once_flag/std::call_once stay legal (no capability semantics to
# annotate); the banned tokens are the lockables and holders themselves.
matches=$(grep -rn --include='*.hpp' --include='*.cpp' \
  -e 'std::mutex\b' -e 'std::shared_mutex\b' -e 'std::timed_mutex' \
  -e 'std::recursive_mutex' -e 'std::condition_variable' \
  -e 'std::lock_guard' -e 'std::unique_lock' -e 'std::scoped_lock' \
  src/ | grep -v '^src/util/mutex\.hpp:' || true)
report "raw std::mutex family outside src/util/mutex.hpp (use spmap::Mutex/MutexLock/CondVar so the thread-safety analysis sees the lock)" "$matches"

# Rule 4: no detached threads anywhere in the tree we ship.
matches=$(grep -rn --include='*.hpp' --include='*.cpp' \
  -e '\.detach()' src/ tools/ bench/ || true)
report "std::thread::detach() is banned (join everything; detached threads outlive the state they touch)" "$matches"

if [ "$failures" -ne 0 ]; then
  echo "lint_invariants: FAILED" >&2
  exit 1
fi
echo "lint_invariants: ok"
