#pragma once
/// \file ids.hpp
/// Strong id types for graph entities.
///
/// Nodes, edges and devices are dense 32-bit indices wrapped in distinct
/// types so they cannot be mixed up at call sites. All per-entity data in
/// spmap lives in parallel vectors indexed by `id.v`.

#include <compare>
#include <cstdint>
#include <functional>

namespace spmap {

template <typename Tag>
struct Id {
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  std::uint32_t v = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t value)
      : v(static_cast<std::uint32_t>(value)) {}

  constexpr bool valid() const { return v != kInvalid; }
  static constexpr Id invalid() { return Id(); }

  constexpr auto operator<=>(const Id&) const = default;
};

using NodeId = Id<struct NodeIdTag>;
using EdgeId = Id<struct EdgeIdTag>;
using DeviceId = Id<struct DeviceIdTag>;

}  // namespace spmap

template <typename Tag>
struct std::hash<spmap::Id<Tag>> {
  std::size_t operator()(const spmap::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};
