#include "bench/scenario.hpp"

#include "mappers/registry.hpp"
#include "util/fs.hpp"

namespace spmap {

namespace {

const char* kSchema = "spmap-scenario/1";

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string{} : path.substr(0, slash);
}

ScenarioMapper mapper_from_json(const Json& doc) {
  ScenarioMapper m;
  if (doc.is_string()) {
    m.spec = doc.as_string();
  } else {
    doc.require_keys("scenario mapper", {"spec", "display"});
    require(doc.contains("spec"), "scenario mapper: missing 'spec'");
    m.spec = doc.at("spec").as_string();
    if (doc.contains("display")) m.display = doc.at("display").as_string();
  }
  // Resolve the name and validate the option string now, so typos in
  // committed scenario files fail at load time, not mid-sweep.
  const auto [name, options] = MapperRegistry::split_spec(m.spec);
  const MapperEntry& entry = MapperRegistry::instance().at(name);
  entry.validate_options(MapperOptions::parse(options));
  if (m.display.empty()) m.display = entry.display_name;
  return m;
}

SweepAxis sweep_from_json(const Json& doc, const WorkloadSpec& workload) {
  doc.require_keys("scenario sweep", {"parameter", "values"});
  require(doc.contains("parameter") && doc.contains("values"),
          "scenario sweep: needs 'parameter' and 'values'");
  SweepAxis sweep;
  sweep.parameter = doc.at("parameter").as_string();
  for (const Json& v : doc.at("values").as_array()) {
    sweep.values.push_back(v.as_int());
  }
  require(!sweep.values.empty(), "scenario sweep: empty 'values'");
  // Validate parameter name and every value against the workload kind.
  for (const std::int64_t v : sweep.values) {
    WorkloadSpec probe = workload;
    apply_sweep_value(probe, sweep.parameter, v);
  }
  return sweep;
}

}  // namespace

Scenario scenario_from_json(const Json& doc, const std::string& base_dir) {
  doc.require_keys("scenario",
                   {"schema", "name", "description", "platform", "workload",
                    "sweep", "mappers", "repetitions", "reporting_orders",
                    "seed"});
  require(doc.contains("schema") && doc.at("schema").as_string() == kSchema,
          std::string("scenario: missing or unsupported 'schema' (expected "
                      "\"") +
              kSchema + "\")");
  Scenario s;
  s.base_dir = base_dir;
  if (doc.contains("name")) s.name = doc.at("name").as_string();
  if (doc.contains("description")) {
    s.description = doc.at("description").as_string();
  }

  require(doc.contains("platform"), "scenario: missing 'platform'");
  const Json& platform_doc = doc.at("platform");
  if (platform_doc.is_string()) {
    s.platform_path = platform_doc.as_string();
    s.platform = load_platform_file(resolve_path(base_dir, s.platform_path));
  } else {
    s.platform = platform_from_json(platform_doc);
  }

  require(doc.contains("workload"), "scenario: missing 'workload'");
  s.workload = workload_from_json(doc.at("workload"));

  if (doc.contains("sweep")) {
    s.sweep = sweep_from_json(doc.at("sweep"), s.workload);
  }

  require(doc.contains("mappers") && !doc.at("mappers").as_array().empty(),
          "scenario: needs a non-empty 'mappers' array");
  for (const Json& m : doc.at("mappers").as_array()) {
    s.mappers.push_back(mapper_from_json(m));
  }

  if (doc.contains("repetitions")) {
    const auto reps = doc.at("repetitions").as_int();
    require(reps >= 1, "scenario: 'repetitions' must be >= 1");
    s.repetitions = static_cast<std::size_t>(reps);
  }
  if (doc.contains("reporting_orders")) {
    const auto orders = doc.at("reporting_orders").as_int();
    require(orders >= 0, "scenario: 'reporting_orders' must be >= 0");
    s.reporting_orders = static_cast<std::size_t>(orders);
  }
  if (doc.contains("seed")) {
    s.seed = static_cast<std::uint64_t>(doc.at("seed").as_int());
  }
  return s;
}

Json scenario_to_json(const Scenario& scenario) {
  Json doc = Json::object();
  doc.set("schema", kSchema);
  if (!scenario.name.empty()) doc.set("name", scenario.name);
  if (!scenario.description.empty()) {
    doc.set("description", scenario.description);
  }
  if (!scenario.platform_path.empty()) {
    doc.set("platform", scenario.platform_path);
  } else {
    doc.set("platform", platform_to_json(scenario.platform.platform,
                                         scenario.platform.name));
  }
  doc.set("workload", workload_to_json(scenario.workload));
  if (scenario.sweep.enabled()) {
    Json sweep = Json::object();
    sweep.set("parameter", scenario.sweep.parameter);
    Json values = Json::array();
    for (const std::int64_t v : scenario.sweep.values) values.push_back(v);
    sweep.set("values", std::move(values));
    doc.set("sweep", std::move(sweep));
  }
  Json mappers = Json::array();
  for (const ScenarioMapper& m : scenario.mappers) {
    const auto [name, options] = MapperRegistry::split_spec(m.spec);
    if (m.display == MapperRegistry::instance().at(name).display_name) {
      mappers.push_back(m.spec);
    } else {
      Json obj = Json::object();
      obj.set("spec", m.spec);
      obj.set("display", m.display);
      mappers.push_back(std::move(obj));
    }
  }
  doc.set("mappers", std::move(mappers));
  doc.set("repetitions", scenario.repetitions);
  doc.set("reporting_orders", scenario.reporting_orders);
  doc.set("seed", scenario.seed);
  return doc;
}

Scenario load_scenario_file(const std::string& path) {
  return scenario_from_json(
      Json::parse(read_text_file(path, "scenario file")), dirname_of(path));
}

}  // namespace spmap
