#pragma once
/// \file mutex.hpp
/// The repo's annotated synchronization vocabulary: `spmap::Mutex`,
/// `spmap::MutexLock`, `spmap::CondVar`, and the `ThreadRole` capability.
///
/// Every mutex in `src/` is an `spmap::Mutex` (enforced by
/// scripts/lint_invariants.sh): a `std::mutex` carrying clang
/// thread-safety capability attributes, so members declared
/// `SPMAP_GUARDED_BY(mutex_)` are compiler-checked against the locking
/// discipline instead of documented in prose. `MutexLock` is the one
/// RAII holder (it wraps `std::unique_lock`, so mid-scope `unlock()` /
/// `lock()` and condition waits work); `CondVar` pairs with it.
///
/// `CondVar` deliberately has no predicate-taking `wait` overloads:
/// the analysis cannot see that a predicate lambda runs under the lock,
/// so annotated code writes the classic explicit loop —
///
///     MutexLock lock(mutex_);
///     while (!condition) cv_.wait(lock);
///
/// — which the analysis follows without any escape hatch.
///
/// ## ThreadRole: single-owner threading as a capability
///
/// Some state is protected by *thread identity*, not a lock: the serving
/// daemon's connection/session/job tables are touched by its IO thread
/// only (ARCHITECTURE.md "single-owner IO"). `ThreadRole` turns that
/// contract into a checkable capability with no runtime cost: the state
/// is declared `SPMAP_GUARDED_BY(io_role_)`, functions running on the
/// owning thread are `SPMAP_REQUIRES(io_role_)`, and the owning thread's
/// entry point holds a `ScopedThreadRole` for its whole loop. A worker
/// callback that reached for the job table would now fail to compile
/// instead of corrupting it. The capability is advisory — acquiring it
/// does not synchronize anything — so it encodes exactly (and only) the
/// documented single-owner discipline.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace spmap {

/// Annotated exclusive mutex. Prefer `MutexLock` over manual
/// lock()/unlock() pairs.
class SPMAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SPMAP_ACQUIRE() { mu_.lock(); }
  void unlock() SPMAP_RELEASE() { mu_.unlock(); }
  bool try_lock() SPMAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis the caller holds this mutex (no runtime check).
  /// Escape hatch for call graphs the analysis cannot follow; every use
  /// needs a comment citing the invariant.
  void AssertHeld() const SPMAP_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over `Mutex`; the scoped capability the analysis tracks.
/// Wraps `std::unique_lock`, so `unlock()`/`lock()` mid-scope are legal
/// (the destructor releases only if still held) and `CondVar` can wait
/// on it.
class SPMAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SPMAP_ACQUIRE(mutex) : lock_(mutex.mu_) {}
  ~MutexLock() SPMAP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (e.g. dropping the lock before a rethrow).
  void unlock() SPMAP_RELEASE() { lock_.unlock(); }
  /// Re-acquire after an early `unlock()`.
  void lock() SPMAP_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with `MutexLock`. No predicate overloads by
/// design (see the header comment): write the explicit while loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`, waits, re-acquires. As with every
  /// condition wait, spurious wakeups happen: always re-check the
  /// condition in a loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait against an absolute deadline; returns
  /// `std::cv_status::timeout` once `deadline` passed.
  std::cv_status wait_until(MutexLock& lock,
                            std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Computes the absolute deadline `timeout_ms` from now, saturating huge
/// values (callers pass "practically forever") instead of overflowing
/// the clock arithmetic inside wait_until.
inline std::chrono::steady_clock::time_point deadline_after_ms(
    double timeout_ms) {
  constexpr double kMaxMs = 1e9;  // ~11.5 days; well inside clock range
  if (timeout_ms < 0.0) timeout_ms = 0.0;
  if (timeout_ms > kMaxMs) timeout_ms = kMaxMs;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(timeout_ms));
}

/// Zero-cost capability standing for "runs on the owning thread" (see
/// the header comment). Declare one per single-owner discipline, guard
/// the owned state with it, and hold a `ScopedThreadRole` in the owning
/// thread's entry point.
class SPMAP_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  /// Tells the analysis the current context runs on the owning thread.
  /// Escape hatch (no runtime check); prefer SPMAP_REQUIRES + a
  /// ScopedThreadRole in the thread's entry point.
  void AssertHeld() const SPMAP_ASSERT_CAPABILITY(this) {}
};

/// Marks the enclosing scope as running on `role`'s owning thread. Pure
/// annotation: no runtime effect whatsoever.
class SPMAP_SCOPED_CAPABILITY ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole& role) SPMAP_ACQUIRE(role) {
    (void)role;
  }
  ~ScopedThreadRole() SPMAP_RELEASE() {}

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;
};

}  // namespace spmap
