#pragma once
/// \file mapper.hpp
/// Common interface of all task-mapping algorithms.
///
/// A mapper consumes a model-based Evaluator (graph + attributes + platform
/// + cost function) and produces a device assignment for every task. Mappers
/// never see hardware — the evaluator is the single source of truth, which
/// is the paper's model-based design principle (Section II-B) and makes all
/// algorithms directly comparable.
///
/// Runs go through the anytime run API (run_api.hpp): `map(eval, request)`
/// executes one bounded, cancellable, observable run and returns a
/// `MapReport` explaining how it ended. The request-free overload runs the
/// mapper's *baked* request (set by the registry from the shared
/// `deadline_ms=` / `max_evals=` / `max_iters=` options; unlimited by
/// default), so pre-redesign call sites keep compiling and behaving as
/// before. Derived classes implement the two-argument virtual and inherit
/// the convenience overload via `using Mapper::map;`.

#include <memory>
#include <string>

#include "mappers/run_api.hpp"
#include "model/mapping.hpp"
#include "sched/evaluator.hpp"

namespace spmap {

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Display name used in experiment tables, e.g. "SPFirstFit".
  virtual std::string name() const = 0;

  /// Computes a mapping for the evaluator's task graph under `request`'s
  /// bounds. Always returns a valid mapping (see run_api.hpp semantics).
  virtual MapReport map(const Evaluator& eval, const MapRequest& request) = 0;

  /// Runs the baked default request (source-compatibility overload).
  MapReport map(const Evaluator& eval) { return map(eval, default_request_); }

  /// The request used by the request-free overload. The registry bakes the
  /// shared run options (`deadline_ms=`, `max_evals=`, `max_iters=`) here.
  const MapRequest& default_request() const { return default_request_; }
  void set_default_request(MapRequest request) {
    default_request_ = std::move(request);
  }

 private:
  MapRequest default_request_;
};

}  // namespace spmap
