#pragma once
/// \file mapper.hpp
/// Common interface of all task-mapping algorithms.
///
/// A mapper consumes a model-based Evaluator (graph + attributes + platform
/// + cost function) and produces a device assignment for every task. Mappers
/// never see hardware — the evaluator is the single source of truth, which
/// is the paper's model-based design principle (Section II-B) and makes all
/// algorithms directly comparable.

#include <memory>
#include <string>

#include "model/mapping.hpp"
#include "sched/evaluator.hpp"

namespace spmap {

struct MapperResult {
  Mapping mapping;
  /// Makespan of `mapping` as seen by the evaluator passed to map().
  double predicted_makespan = 0.0;
  /// Algorithm-specific progress counter (greedy iterations, GA
  /// generations, B&B nodes, ...).
  std::size_t iterations = 0;
  /// Number of single-schedule model evaluations consumed.
  std::size_t evaluations = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;

  /// Display name used in experiment tables, e.g. "SPFirstFit".
  virtual std::string name() const = 0;

  /// Computes a mapping for the evaluator's task graph.
  virtual MapperResult map(const Evaluator& eval) = 0;
};

}  // namespace spmap
