/// Parameterized property suite for the graph substrate: invariants of
/// transitive reduction, normalization and serialization on random graphs.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace spmap {
namespace {

struct GraphCase {
  std::size_t nodes;
  std::size_t extra_edges;
  std::uint64_t seed;
};

class GraphProperty : public ::testing::TestWithParam<GraphCase> {
 protected:
  GraphProperty() : rng_(GetParam().seed) {
    Dag base = generate_sp_dag(GetParam().nodes, rng_);
    dag_ = add_random_edges(base, GetParam().extra_edges, rng_);
  }

  Rng rng_;
  Dag dag_;
};

TEST_P(GraphProperty, TopologicalOrderIsValid) {
  const auto order = topological_order(dag_);
  ASSERT_EQ(order.size(), dag_.node_count());
  std::vector<std::size_t> pos(dag_.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].v] = i;
  for (std::size_t e = 0; e < dag_.edge_count(); ++e) {
    EXPECT_LT(pos[dag_.src(EdgeId(e)).v], pos[dag_.dst(EdgeId(e)).v]);
  }
}

TEST_P(GraphProperty, RandomTopologicalOrdersAreValid) {
  for (int rep = 0; rep < 5; ++rep) {
    const auto order = random_topological_order(dag_, rng_);
    std::vector<std::size_t> pos(dag_.node_count());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].v] = i;
    for (std::size_t e = 0; e < dag_.edge_count(); ++e) {
      ASSERT_LT(pos[dag_.src(EdgeId(e)).v], pos[dag_.dst(EdgeId(e)).v]);
    }
  }
}

TEST_P(GraphProperty, TransitiveReductionPreservesReachability) {
  const Dag reduced = transitive_reduction(dag_);
  EXPECT_LE(reduced.edge_count(), dag_.edge_count());
  // Spot-check reachability equivalence from a few nodes.
  for (std::uint32_t v = 0; v < dag_.node_count();
       v += std::max<std::uint32_t>(1, dag_.node_count() / 5)) {
    const auto before = reachable_set(dag_, NodeId(v));
    const auto after = reachable_set(reduced, NodeId(v));
    EXPECT_EQ(before, after) << "from node " << v;
  }
}

TEST_P(GraphProperty, TransitiveReductionIsMinimal) {
  // Removing any edge of the reduction must lose reachability.
  const Dag reduced = transitive_reduction(dag_);
  for (std::size_t e = 0; e < reduced.edge_count();
       e += std::max<std::size_t>(1, reduced.edge_count() / 8)) {
    Dag pruned(reduced.node_count());
    for (std::size_t k = 0; k < reduced.edge_count(); ++k) {
      if (k == e) continue;
      pruned.add_edge(reduced.src(EdgeId(k)), reduced.dst(EdgeId(k)),
                      reduced.data_mb(EdgeId(k)));
    }
    EXPECT_FALSE(
        reachable(pruned, reduced.src(EdgeId(e)), reduced.dst(EdgeId(e))))
        << "edge " << e << " was redundant in the reduction";
  }
}

TEST_P(GraphProperty, NormalizationIdempotent) {
  const Normalized once = normalize_source_sink(dag_);
  const Normalized twice = normalize_source_sink(once.dag);
  EXPECT_FALSE(twice.added_source);
  EXPECT_FALSE(twice.added_sink);
  EXPECT_EQ(twice.dag.node_count(), once.dag.node_count());
}

TEST_P(GraphProperty, JsonRoundTripPreservesStructure) {
  const TaskAttrs attrs = random_task_attrs(dag_, rng_);
  const TaskGraph back = task_graph_from_json(to_json(dag_, attrs));
  ASSERT_EQ(back.dag.node_count(), dag_.node_count());
  ASSERT_EQ(back.dag.edge_count(), dag_.edge_count());
  for (std::size_t e = 0; e < dag_.edge_count(); ++e) {
    EXPECT_EQ(back.dag.src(EdgeId(e)), dag_.src(EdgeId(e)));
    EXPECT_EQ(back.dag.dst(EdgeId(e)), dag_.dst(EdgeId(e)));
  }
}

TEST_P(GraphProperty, BfsOrderLevelsAreMonotone) {
  const auto levels = node_levels(dag_);
  const auto order = bfs_order(dag_);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LE(levels[order[i].v], levels[order[i + 1].v]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GraphProperty,
    ::testing::Values(GraphCase{2, 0, 61}, GraphCase{6, 3, 62},
                      GraphCase{15, 0, 63}, GraphCase{15, 10, 64},
                      GraphCase{40, 20, 65}, GraphCase{90, 45, 66}),
    [](const ::testing::TestParamInfo<GraphCase>& param_info) {
      return "n" + std::to_string(param_info.param.nodes) + "_e" +
             std::to_string(param_info.param.extra_edges) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace spmap
