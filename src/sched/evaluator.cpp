#include "sched/evaluator.hpp"

#include <algorithm>

namespace spmap {

Evaluator::Evaluator(const CostModel& cost, EvalParams params)
    : cost_(&cost), flat_(cost.dag()) {
  const Dag& dag = cost.dag();
  orders_.push_back(bfs_order(dag));
  Rng rng(params.seed);
  for (std::size_t i = 0; i < params.random_orders; ++i) {
    orders_.push_back(random_topological_order(dag, rng));
  }

  const Platform& platform = cost.platform();
  const std::size_t m = platform.device_count();
  device_count_ = m;
  exec_ = cost.exec_data();
  slot_offset_.resize(m + 1, 0);
  dev_is_fpga_.resize(m);
  dev_fill_.resize(m);
  for (std::size_t d = 0; d < m; ++d) {
    const Device& dev = platform.device(DeviceId(d));
    slot_offset_[d + 1] = slot_offset_[d] + std::max<std::size_t>(1, dev.slots);
    dev_is_fpga_[d] = dev.is_fpga() ? 1 : 0;
    dev_fill_[d] = dev.stream_fill_fraction;
  }
  link_latency_.assign(m * m, 0.0);
  link_bandwidth_.assign(m * m, 1.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      link_latency_[a * m + b] = platform.latency_s(DeviceId(a), DeviceId(b));
      link_bandwidth_[a * m + b] =
          platform.bandwidth_gbps(DeviceId(a), DeviceId(b));
    }
  }

  // Hoist the constant /1000 unit conversion of the transfer formula out
  // of the sweep (same operation as the naive path, so still bit-exact).
  in_mb_over_1000_.resize(flat_.edge_count());
  for (std::size_t k = 0; k < flat_.edge_count(); ++k) {
    in_mb_over_1000_[k] = flat_.in_data_mb_data()[k] / 1000.0;
  }

  plans_.reserve(orders_.size());
  for (const auto& order : orders_) plans_.push_back(build_plan(order));
}

Evaluator::WalkPlan Evaluator::build_plan(
    const std::vector<NodeId>& order) const {
  WalkPlan plan;
  plan.reserve(order.size());
  const auto m = static_cast<std::uint32_t>(device_count_);
  for (const NodeId v : order) {
    plan.push_back(PlanNode{v.v, v.v * m, flat_.in_begin(v), flat_.in_end(v)});
  }
  return plan;
}

void EvalContext::layout(std::size_t nodes, std::size_t slots,
                         std::size_t devices) {
  if (nodes_ == nodes && slots_ == slots && devices_ == devices) return;
  // Segment offsets round up to a cache line (8 doubles) so no two
  // segments share a line; see the class comment in evaluator.hpp.
  constexpr std::size_t kLineDoubles = 8;
  const auto pad = [](std::size_t x) {
    return (x + kLineDoubles - 1) / kLineDoubles * kLineDoubles;
  };
  nodes_ = nodes;
  slots_ = slots;
  devices_ = devices;
  finish_off_ = pad(nodes);
  slot_off_ = finish_off_ + pad(nodes);
  link_off_ = slot_off_ + pad(slots);
  // The per-evaluation reset zeroes slot_ready, the alignment gap and
  // link_ready in one contiguous fill; the gap doubles are never read.
  reset_len_ = link_off_ + devices - slot_off_;
  arena_.assign(link_off_ + devices, 0.0);
}

double Evaluator::evaluate_plan(const Mapping& mapping, const WalkPlan& plan,
                                EvalContext& ctx) const {
  ++ctx.evals_;
  ctx.layout(flat_.node_count(), slot_offset_.back(), device_count_);
  std::fill_n(ctx.slot_ready(), ctx.reset_len_, 0.0);

  // Everything the sweep touches is a contiguous array captured in a local
  // non-aliasing pointer, so the loop body stays in registers.
  const std::size_t m = device_count_;
  const DeviceId* __restrict map = mapping.device.data();
  const double* __restrict exec = exec_;
  const std::uint32_t* __restrict in_src = flat_.in_src_data();
  const double* __restrict in_mb1000 = in_mb_over_1000_.data();
  const std::uint8_t* __restrict is_fpga = dev_is_fpga_.data();
  const double* __restrict fill = dev_fill_.data();
  const double* __restrict lat = link_latency_.data();
  const double* __restrict bw = link_bandwidth_.data();
  const std::size_t* __restrict slot_offset = slot_offset_.data();
  double* __restrict start = ctx.start();
  double* __restrict finish = ctx.finish();
  double* __restrict slot_ready = ctx.slot_ready();
  double* __restrict link_ready = ctx.link_ready();

  double makespan = 0.0;
  for (const PlanNode pn : plan) {
    const std::uint32_t v = pn.node;
    const std::uint32_t d = map[v].v;
    const bool dev_fpga = is_fpga[d] != 0;
    double ready = 0.0;
    bool streamed_in = false;
    for (std::uint32_t k = pn.in_begin; k < pn.in_end; ++k) {
      const std::uint32_t u = in_src[k];
      const std::uint32_t du = map[u].v;
      if (du == d) {
        if (dev_fpga) {
          // FPGA dataflow streaming: the consumer stage starts once the
          // producer's pipeline has filled, not when the producer finishes.
          ready = std::max(ready, start[u] + fill[d] * exec[u * m + d]);
          streamed_in = true;
        } else {
          ready = std::max(ready, finish[u]);
        }
      } else {
        // Cross-device transfer: occupies the link of both endpoint
        // devices; concurrent transfers through one attachment serialize.
        const std::size_t li = du * m + d;
        const double transfer = lat[li] + in_mb1000[k] / bw[li];
        const double t_start =
            std::max({finish[u], link_ready[du], link_ready[d]});
        const double arrival = t_start + transfer;
        link_ready[du] = arrival;
        link_ready[d] = arrival;
        ready = std::max(ready, arrival);
      }
    }
    const double exec_v = exec[pn.exec_offset + d];
    double start_v;
    if (streamed_in) {
      // A streamed stage co-resides in fabric with its producer and does
      // not queue on an execution slot.
      start_v = ready;
    } else {
      // Earliest-ready execution slot of the device. Conditional-move form:
      // the comparisons are data-dependent and would mispredict as
      // branches.
      std::size_t best_slot = slot_offset[d];
      double best = slot_ready[best_slot];
      const std::size_t slots_end = slot_offset[d + 1];
      for (std::size_t s = best_slot + 1; s < slots_end; ++s) {
        const double x = slot_ready[s];
        best_slot = x < best ? s : best_slot;
        best = x < best ? x : best;
      }
      start_v = std::max(ready, best);
      slot_ready[best_slot] = start_v + exec_v;
    }
    start[v] = start_v;
    const double finish_v = start_v + exec_v;
    finish[v] = finish_v;
    makespan = std::max(makespan, finish_v);
  }
  return makespan;
}

double Evaluator::evaluate(const Mapping& mapping, EvalContext& ctx) const {
  SPMAP_ASSERT(mapping.size() == flat_.node_count());
  if (!cost_->area_feasible(mapping)) return kInfeasible;
  double best = kInfeasible;
  for (const WalkPlan& plan : plans_) {
    best = std::min(best, evaluate_plan(mapping, plan, ctx));
  }
  return best;
}

double Evaluator::evaluate_order(const Mapping& mapping,
                                 const std::vector<NodeId>& order,
                                 EvalContext& ctx) const {
  SPMAP_ASSERT(order.size() == flat_.node_count());
  SPMAP_ASSERT(mapping.size() == flat_.node_count());
  for (std::size_t i = 0; i < orders_.size(); ++i) {
    if (&orders_[i] == &order) return evaluate_plan(mapping, plans_[i], ctx);
  }
  return evaluate_plan(mapping, build_plan(order), ctx);
}

std::vector<double> Evaluator::evaluate_batch(std::span<const Mapping> mappings,
                                              ThreadPool* pool) const {
  std::vector<double> result(mappings.size());
  // Per-worker scratch persists across batch calls (a generation loop
  // dispatches thousands of batches); part of why this is a single-caller
  // API. The serial path uses worker 0's context, not scratch_, so batch
  // evaluation never disturbs last_start_times()/last_finish_times().
  const std::size_t workers =
      pool == nullptr ? 1 : std::max<std::size_t>(1, pool->thread_count());
  if (batch_contexts_.size() < workers) batch_contexts_.resize(workers);
  std::size_t before = 0;
  for (const EvalContext& ctx : batch_contexts_) before += ctx.evals_;
  if (pool == nullptr || pool->thread_count() <= 1 || mappings.size() <= 1) {
    for (std::size_t i = 0; i < mappings.size(); ++i) {
      result[i] = evaluate(mappings[i], batch_contexts_[0]);
    }
  } else {
    // Chunks of 8 dealt round-robin: small enough that a few expensive
    // mappings (e.g. large-makespan outliers on a skewed cohort) spread
    // across workers instead of serializing one block, large enough that
    // dispatch overhead stays negligible.
    //
    // False-sharing audit of `result`: a chunk of 8 doubles is exactly one
    // 64-byte cache line, so with chunked writes each worker owns whole
    // lines except possibly the two lines straddling the vector's start
    // and end (the allocator guarantees 16-byte alignment only). At most
    // two boundary lines per chunk transition can ping-pong, independent
    // of batch size — negligible next to the evaluation cost per item.
    constexpr std::size_t kBatchChunk = 8;
    pool->parallel_for_chunks(
        mappings.size(), kBatchChunk,
        [&](std::size_t begin, std::size_t end, std::size_t worker) {
          EvalContext& ctx = batch_contexts_[worker];
          for (std::size_t i = begin; i < end; ++i) {
            result[i] = evaluate(mappings[i], ctx);
          }
        });
  }
  std::size_t after = 0;
  for (const EvalContext& ctx : batch_contexts_) after += ctx.evals_;
  eval_count_ += after - before;
  return result;
}

double Evaluator::evaluate(const Mapping& mapping) const {
  const std::size_t before = scratch_.evals_;
  const double result = evaluate(mapping, scratch_);
  eval_count_ += scratch_.evals_ - before;
  return result;
}

double Evaluator::evaluate_order(const Mapping& mapping,
                                 const std::vector<NodeId>& order) const {
  const std::size_t before = scratch_.evals_;
  const double result = evaluate_order(mapping, order, scratch_);
  eval_count_ += scratch_.evals_ - before;
  return result;
}

Mapping Evaluator::default_mapping() const {
  return Mapping(cost_->dag().node_count(),
                 cost_->platform().default_device());
}

double Evaluator::default_mapping_makespan() const {
  return evaluate(default_mapping());
}

}  // namespace spmap
