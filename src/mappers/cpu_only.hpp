#pragma once
/// \file cpu_only.hpp
/// The trivial baseline mapper: every task on the platform's default device.
/// This is the reference point of the paper's "relative improvement" metric.

#include "mappers/mapper.hpp"

namespace spmap {

class CpuOnlyMapper final : public Mapper {
 public:
  using Mapper::map;
  std::string name() const override { return "CpuOnly"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;
};

}  // namespace spmap
