/// Tests of the crash-safe job journal (serve/journal.hpp): line
/// round-trips, CRC detection, and the central recovery property — for
/// *every* truncation point of a journal file, replay returns exactly
/// the records whose lines are complete, never a torn or corrupt one.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "util/error.hpp"

namespace spmap {
namespace {

/// A unique path under /tmp; removed on destruction.
class TempPath {
 public:
  TempPath() {
    static int counter = 0;
    path_ = "/tmp/spmap_journal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(++counter) + ".journal";
    std::remove(path_.c_str());
  }
  ~TempPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

Json record(const std::string& type, std::uint64_t job) {
  Json r = Json::object();
  r.set("type", Json(type));
  r.set("job", Json(job));
  return r;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

TEST(ServeJournal, Crc32MatchesKnownVectors) {
  // The IEEE 802.3 check value: crc32("123456789") = 0xcbf43926.
  EXPECT_EQ(crc32_ieee("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32_ieee("", 0), 0x00000000u);
}

TEST(ServeJournal, LineRoundTrips) {
  Json r = record("submitted", 7);
  r.set("submit", Json(Json::Object{{"mapper", Json("spff")}}));
  const std::string line = journal_line(r);
  ASSERT_EQ(line.back(), '\n');

  Json parsed;
  std::string error;
  ASSERT_TRUE(
      parse_journal_line(line.substr(0, line.size() - 1), parsed, error))
      << error;
  EXPECT_EQ(parsed.dump(), r.dump());
}

TEST(ServeJournal, ParseRejectsBadCrcBadHexAndNonObjects) {
  const std::string line = journal_line(record("started", 1));
  std::string body = line.substr(0, line.size() - 1);

  Json parsed;
  std::string error;

  // Flip one JSON byte: the CRC no longer matches.
  std::string corrupt = body;
  corrupt[body.size() - 2] ^= 0x01;
  EXPECT_FALSE(parse_journal_line(corrupt, parsed, error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;

  // Uppercase hex is not canonical.
  std::string upper = body;
  for (int i = 0; i < 8; ++i) upper[i] = std::toupper(upper[i]);
  if (upper != body) {
    EXPECT_FALSE(parse_journal_line(upper, parsed, error));
  }

  // Too short / missing separator / non-object payload.
  EXPECT_FALSE(parse_journal_line("deadbeef", parsed, error));
  EXPECT_FALSE(parse_journal_line("", parsed, error));
  const std::uint32_t crc = crc32_ieee("[1,2]", 5);
  char hex[16];
  std::snprintf(hex, sizeof hex, "%08x", crc);
  EXPECT_FALSE(
      parse_journal_line(std::string(hex) + " [1,2]", parsed, error));
}

TEST(ServeJournal, MissingFileIsAnEmptyJournal) {
  const JournalReplay replay =
      replay_journal("/tmp/spmap_journal_test_does_not_exist.journal");
  EXPECT_TRUE(replay.records.empty());
  EXPECT_FALSE(replay.tail_dropped);
}

TEST(ServeJournal, AppendAndReplayRoundTrips) {
  TempPath path;
  {
    Journal journal(path.str());
    journal.append(record("submitted", 1), /*sync=*/true);
    journal.append(record("started", 1), /*sync=*/false);
    journal.append(record("terminal", 1), /*sync=*/true);
    EXPECT_EQ(journal.appended(), 3u);
  }
  const JournalReplay replay = replay_journal(path.str());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_FALSE(replay.tail_dropped);
  EXPECT_EQ(replay.records[0].at("type").as_string(), "submitted");
  EXPECT_EQ(replay.records[1].at("type").as_string(), "started");
  EXPECT_EQ(replay.records[2].at("type").as_string(), "terminal");
}

TEST(ServeJournal, ReplayAcrossReopenAppends) {
  TempPath path;
  {
    Journal journal(path.str());
    journal.append(record("submitted", 1), true);
  }
  {
    Journal journal(path.str());  // append mode: earlier records survive
    journal.append(record("terminal", 1), true);
  }
  const JournalReplay replay = replay_journal(path.str());
  EXPECT_EQ(replay.records.size(), 2u);
}

/// The crash-recovery property: truncate the journal at EVERY byte
/// offset; replay must return exactly the records whose full lines fit
/// in the prefix, flag the torn tail iff there are leftover bytes, and
/// never surface a partial record.
TEST(ServeJournal, TruncationAtEveryOffsetRecoversTheCommittedPrefix) {
  TempPath path;
  std::vector<std::string> lines;
  std::string full;
  for (std::uint64_t job = 1; job <= 4; ++job) {
    Json r = record("submitted", job);
    r.set("submit", Json(Json::Object{{"mapper", Json("spff")},
                                      {"class", Json("normal")}}));
    lines.push_back(journal_line(r));
    full += lines.back();
    lines.push_back(journal_line(record("terminal", job)));
    full += lines.back();
  }

  // Per prefix length: how many whole lines fit.
  std::vector<std::size_t> whole_lines_at(full.size() + 1, 0);
  {
    std::size_t consumed = 0, count = 0;
    for (const std::string& line : lines) {
      for (std::size_t inside = 1; inside <= line.size(); ++inside) {
        whole_lines_at[consumed + inside] =
            count + (inside == line.size() ? 1 : 0);
      }
      consumed += line.size();
      ++count;
    }
  }

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    write_file(path.str(), full.substr(0, cut));
    const JournalReplay replay = replay_journal(path.str());
    EXPECT_EQ(replay.records.size(), whole_lines_at[cut])
        << "truncated at byte " << cut;
    std::size_t committed = 0;
    for (std::size_t i = 0; i < whole_lines_at[cut]; ++i) {
      committed += lines[i].size();
    }
    // Torn iff bytes exist past the last whole line.
    EXPECT_EQ(replay.tail_dropped, cut > committed)
        << "truncated at byte " << cut;
    EXPECT_EQ(replay.committed_bytes, committed)
        << "truncated at byte " << cut;
  }
}

TEST(ServeJournal, MidFileCorruptionStopsReplayAtTheBadLine) {
  TempPath path;
  std::string full;
  for (std::uint64_t job = 1; job <= 3; ++job) {
    full += journal_line(record("submitted", job));
  }
  // Corrupt a byte inside the SECOND line's JSON: replay keeps record 1
  // and drops everything from the bad line on (it cannot trust the rest).
  const std::size_t line_len = journal_line(record("submitted", 1)).size();
  std::string damaged = full;
  damaged[line_len + 12] ^= 0x40;
  write_file(path.str(), damaged);

  const JournalReplay replay = replay_journal(path.str());
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].at("job").as_int(), 1);
  EXPECT_TRUE(replay.tail_dropped);
  EXPECT_FALSE(replay.tail_error.empty());
}

TEST(ServeJournal, RewriteCompactsAtomicallyAndKeepsAppending) {
  TempPath path;
  Journal journal(path.str());
  for (std::uint64_t job = 1; job <= 8; ++job) {
    journal.append(record("submitted", job), false);
    journal.append(record("terminal", job), job % 2 == 0);
  }
  EXPECT_EQ(journal.appended(), 16u);

  // Compact to the last two jobs only.
  std::vector<Json> keep;
  keep.push_back(record("submitted", 7));
  keep.push_back(record("terminal", 7));
  keep.push_back(record("submitted", 8));
  keep.push_back(record("terminal", 8));
  journal.rewrite(keep);
  EXPECT_EQ(journal.appended(), 0u);

  journal.append(record("submitted", 9), true);

  const JournalReplay replay = replay_journal(path.str());
  ASSERT_EQ(replay.records.size(), 5u);
  EXPECT_EQ(replay.records[0].at("job").as_int(), 7);
  EXPECT_EQ(replay.records[4].at("job").as_int(), 9);
  EXPECT_FALSE(replay.tail_dropped);
  // No leftover temp file.
  EXPECT_EQ(read_file(path.str() + ".tmp"), "");
}

}  // namespace
}  // namespace spmap
