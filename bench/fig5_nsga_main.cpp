/// Fig. 5 — NSGA-II vs. the decomposition FirstFit strategies on random
/// series-parallel graphs from 5 to 100 tasks.
///
/// Paper shape to reproduce: the genetic algorithm reaches a high,
/// size-independent relative improvement — often slightly above SNFirstFit
/// and frequently below SPFirstFit — but its execution time grows much
/// faster (about 30x slower at n = 100 in the paper's setup).
///
/// Flags: --sizes=5,10,... --graphs N --seed S --generations N

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"sizes", "graphs", "seed", "generations"});
  std::vector<std::int64_t> default_sizes;
  for (std::int64_t s = 5; s <= 100; s += 10) default_sizes.push_back(s);
  const auto sizes = flags.get_int_list("sizes", default_sizes);
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const auto generations =
      static_cast<std::size_t>(flags.get_int("generations", 500));

  const Platform platform = reference_platform();
  Rng rng(seed);

  const std::vector<MapperSpec> specs{single_node_spec(true),
                                      series_parallel_spec(true),
                                      nsga2_spec(generations)};

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto size : sizes) {
    std::vector<Case> cases;
    for (std::size_t g = 0; g < graphs; ++g) {
      Case c;
      c.dag = generate_sp_dag(static_cast<std::size_t>(size), rng);
      c.attrs = random_task_attrs(c.dag, rng);
      cases.push_back(std::move(c));
    }
    std::fprintf(stderr, "[fig5] %lld tasks (%zu graphs)...\n",
                 static_cast<long long>(size), graphs);
    rows.push_back(run_point(cases, specs, platform, rng));
    xs.push_back(static_cast<double>(size));
  }

  print_series("fig5", "tasks", xs, rows,
               {"SNFirstFit", "SPFirstFit", "NSGAII"});
  return 0;
}
