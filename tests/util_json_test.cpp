#include "util/json.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spmap {
namespace {

TEST(Json, Scalars) {
  EXPECT_TRUE(Json().is_null());
  EXPECT_TRUE(Json(true).as_bool());
  EXPECT_DOUBLE_EQ(Json(3.5).as_double(), 3.5);
  EXPECT_EQ(Json(42).as_int(), 42);
  EXPECT_EQ(Json("hi").as_string(), "hi");
}

TEST(Json, TypeErrorsThrow) {
  EXPECT_THROW(Json(1.0).as_string(), Error);
  EXPECT_THROW(Json("x").as_double(), Error);
  EXPECT_THROW(Json(1.5).as_int(), Error);
  EXPECT_THROW(Json().at("k"), Error);
}

TEST(Json, ObjectSetAndAt) {
  Json o = Json::object();
  o.set("a", 1);
  o.set("b", "two");
  o.set("a", 3);  // overwrite
  EXPECT_EQ(o.at("a").as_int(), 3);
  EXPECT_EQ(o.at("b").as_string(), "two");
  EXPECT_TRUE(o.contains("a"));
  EXPECT_FALSE(o.contains("c"));
  EXPECT_THROW(o.at("c"), Error);
}

TEST(Json, RoundTripCompact) {
  Json o = Json::object();
  o.set("name", "series-parallel");
  o.set("count", 17);
  o.set("ratio", 0.25);
  o.set("flag", false);
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(Json(nullptr));
  arr.push_back("x\"y\\z");
  o.set("items", std::move(arr));

  const Json parsed = Json::parse(o.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "series-parallel");
  EXPECT_EQ(parsed.at("count").as_int(), 17);
  EXPECT_DOUBLE_EQ(parsed.at("ratio").as_double(), 0.25);
  EXPECT_FALSE(parsed.at("flag").as_bool());
  const auto& items = parsed.at("items").as_array();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].as_int(), 1);
  EXPECT_TRUE(items[1].is_null());
  EXPECT_EQ(items[2].as_string(), "x\"y\\z");
}

TEST(Json, ParseWhitespaceAndNesting) {
  const Json v = Json::parse(R"(  { "a" : [ { "b" : [ 1 , 2 ] } ] }  )");
  EXPECT_EQ(v.at("a").as_array()[0].at("b").as_array()[1].as_int(), 2);
}

TEST(Json, ParseNegativeAndExponent) {
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e2").as_double(), -250.0);
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{"), Error);
  EXPECT_THROW(Json::parse("[1,]"), Error);
  EXPECT_THROW(Json::parse("tru"), Error);
  EXPECT_THROW(Json::parse("{} extra"), Error);
  EXPECT_THROW(Json::parse("\"unterminated"), Error);
}

TEST(Json, NegativeZeroRoundTrips) {
  // Regression: the integral fast path printed -0.0 as "0", losing the
  // sign bit on a round trip.
  const Json neg(-0.0);
  EXPECT_EQ(neg.dump(), "-0");
  const Json back = Json::parse(neg.dump());
  EXPECT_EQ(back.as_double(), 0.0);
  EXPECT_TRUE(std::signbit(back.as_double()));
  EXPECT_EQ(back.dump(), neg.dump());  // idempotent
  // Positive zero is unaffected.
  EXPECT_EQ(Json(0.0).dump(), "0");
  EXPECT_FALSE(std::signbit(Json::parse("0").as_double()));
}

TEST(Json, SubnormalsRoundTrip) {
  // Regression: std::stod throws out_of_range on glibc's ERANGE for
  // subnormal results, so a dumped denormal could not be parsed back.
  const double denorm_min = std::numeric_limits<double>::denorm_min();
  const double subnormal = 3.1234e-310;  // between denorm_min and DBL_MIN
  for (const double d : {denorm_min, -denorm_min, subnormal, -subnormal}) {
    const std::string text = Json(d).dump();
    const Json back = Json::parse(text);
    EXPECT_EQ(back.as_double(), d) << text;
    EXPECT_EQ(back.dump(), text) << "dump must be idempotent";
  }
  EXPECT_EQ(Json::parse("5e-324").as_double(), denorm_min);
  // Underflow below the smallest subnormal parses as (signed) zero, the
  // nearest double — not an error.
  EXPECT_EQ(Json::parse("1e-999").as_double(), 0.0);
  EXPECT_TRUE(std::signbit(Json::parse("-1e-999").as_double()));
}

TEST(Json, HugeMagnitudesRoundTrip) {
  const double dbl_max = std::numeric_limits<double>::max();
  const double dbl_min_normal = std::numeric_limits<double>::min();
  for (const double d : {1e308, -1e308, dbl_max, -dbl_max, 1e-308, -1e-308,
                         dbl_min_normal, -dbl_min_normal}) {
    const std::string text = Json(d).dump();
    const Json back = Json::parse(text);
    EXPECT_EQ(back.as_double(), d) << text;
    EXPECT_EQ(back.dump(), text) << "dump must be idempotent";
  }
  // Values beyond the double range overflow to infinity: a parse error,
  // because dumped documents never contain them (non-finite prints null).
  EXPECT_THROW(Json::parse("1e999"), Error);
  EXPECT_THROW(Json::parse("-1e999"), Error);
  // Non-finite values keep printing as null.
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
}

TEST(Json, PrettyDumpParses) {
  Json o = Json::object();
  o.set("x", 1);
  Json a = Json::array();
  a.push_back(2);
  o.set("y", std::move(a));
  const std::string pretty = o.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const Json back = Json::parse(pretty);
  EXPECT_EQ(back.at("x").as_int(), 1);
}

}  // namespace
}  // namespace spmap
