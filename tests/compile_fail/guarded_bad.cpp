// Negative case for the thread-safety compile-fail check (see
// cmake/ThreadSafetyAnalysis.cmake): identical to guarded_ok.cpp except
// increment() touches the guarded member WITHOUT the lock. The configure
// step requires this file to FAIL under -Werror=thread-safety; if it
// ever compiles, the annotations have silently stopped guarding anything
// (e.g. a macro gate broke) and configuration aborts.
#include "util/mutex.hpp"

namespace {

class Counter {
 public:
  void increment() {
    ++value_;  // unguarded access: must trip -Werror=thread-safety
  }

  int value() const {
    spmap::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable spmap::Mutex mutex_;
  int value_ SPMAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
