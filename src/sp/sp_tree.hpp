#pragma once
/// \file sp_tree.hpp
/// Series-parallel decomposition trees and forests (paper Section II-C).
///
/// A decomposition tree node is either a leaf (an edge of the task graph,
/// possibly one of the two virtual edges (eps, s) / (t, eps) used by
/// Algorithm 1), a series operation (children chained end-to-start), or a
/// parallel operation (children sharing both endpoints). Every tree
/// represents a subgraph with distinct start and end nodes `u`, `v` and can
/// be treated equivalently to an edge (u, v) — the paper's `T ^= [u, v]`
/// notation.
///
/// Trees are kept in *flattened* canonical form: a series node never has a
/// series child and a parallel node never has a parallel child. This matches
/// the decomposition shown in the paper's Fig. 1 and determines which
/// subgraphs the mapping candidate set contains.
///
/// All trees of a decomposition live in one arena (`SpForest`) and are
/// referenced by integer indices.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dag.hpp"

namespace spmap {

enum class SpKind : std::uint8_t { Leaf, Series, Parallel };

/// Arena of series-parallel decomposition trees.
class SpForest {
 public:
  using Index = std::int32_t;
  static constexpr Index kInvalid = -1;

  struct Node {
    SpKind kind = SpKind::Leaf;
    /// Endpoints of the represented subgraph; NodeId::invalid() encodes the
    /// virtual endpoint eps of Algorithm 1.
    NodeId u;
    NodeId v;
    /// The task-graph edge for real leaves; invalid for virtual leaves and
    /// inner operations.
    EdgeId edge;
    /// Number of leaf edges in the subtree whose head is `v` — the paper's
    /// OUTSIZE, used to decide whether a series operation may grow past `v`.
    std::uint32_t outsize = 1;
    /// Number of leaves (edges) in the subtree.
    std::uint32_t leaves = 1;
    std::vector<Index> children;  // empty for leaves
  };

  // ---- construction ----

  /// Adds a leaf for edge (u, v); pass EdgeId::invalid() for virtual edges.
  Index add_leaf(NodeId u, NodeId v, EdgeId edge = EdgeId::invalid());

  /// Chains `first` and `second` in series; requires end(first) == start
  /// (second). Flattens: if `first` is already a series operation it is
  /// extended in place and its index is returned.
  Index make_series(Index first, Index second);

  /// Combines trees with identical endpoints in parallel. Requires
  /// `parts.size() >= 1`; a single part is returned unchanged. Flattens
  /// nested parallel children.
  Index make_parallel(const std::vector<Index>& parts);

  /// Registers a finished tree as a root of the forest.
  void add_root(Index tree);

  // ---- access ----

  const Node& node(Index i) const {
    require(i >= 0 && static_cast<std::size_t>(i) < nodes_.size(),
            "SpForest: index out of range");
    return nodes_[i];
  }
  std::size_t size() const { return nodes_.size(); }
  const std::vector<Index>& roots() const { return roots_; }

  NodeId start(Index i) const { return node(i).u; }
  NodeId end(Index i) const { return node(i).v; }
  std::uint32_t outsize(Index i) const { return node(i).outsize; }
  std::uint32_t leaf_count(Index i) const { return node(i).leaves; }

  /// All distinct task-graph nodes spanned by the subtree (union of real
  /// leaf endpoints; virtual eps endpoints are skipped). Sorted by id.
  std::vector<NodeId> spanned_nodes(Index i) const;

  /// All real task-graph edges in the subtree.
  std::vector<EdgeId> edges(Index i) const;

  /// Total real leaves across all roots.
  std::size_t total_real_leaves() const;

  /// Structural sanity check against the originating graph: endpoints chain
  /// correctly, parallel children share endpoints, leaf/outsize counters are
  /// consistent, and every real leaf references an existing edge with
  /// matching endpoints. Throws spmap::Error on violation.
  void validate(const Dag& dag) const;

  /// Compact textual rendering, e.g. "S(0-1, P(1-3, S(1-2, 2-3)))" — for
  /// debugging and golden tests.
  std::string to_string(Index i) const;

 private:
  void collect_leaves(Index i, std::vector<Index>& out) const;
  void validate_node(const Dag& dag, Index i) const;

  std::vector<Node> nodes_;
  std::vector<Index> roots_;
};

}  // namespace spmap
