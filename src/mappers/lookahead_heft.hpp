#pragma once
/// \file lookahead_heft.hpp
/// Lookahead HEFT (Bittencourt, Sakellariou, Madeira [7]) — the HEFT
/// variant the paper cites among the list schedulers that try to mitigate
/// HEFT's local view: when choosing a device for a task, the scheduler
/// tentatively places the task and then also schedules its *children* by
/// the plain HEFT rule, picking the device that minimizes the maximum
/// child EFT instead of the task's own EFT.
///
/// One level of lookahead multiplies scheduling cost by roughly the device
/// count times the average out-degree — still microseconds at the paper's
/// graph sizes.

#include "mappers/mapper.hpp"

namespace spmap {

class LookaheadHeftMapper final : public Mapper {
 public:
  std::string name() const override { return "LookaheadHEFT"; }
  MapperResult map(const Evaluator& eval) override;
};

}  // namespace spmap
