#include "sched/timeline.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spmap {

double DeviceTimeline::earliest_start(double est, double duration) const {
  double candidate = est;
  for (const auto& [begin, end] : busy_) {
    if (candidate + duration <= begin) {
      return candidate;  // fits in the gap before this interval
    }
    candidate = std::max(candidate, end);
  }
  return candidate;
}

void DeviceTimeline::reserve(double start, double duration) {
  require(duration >= 0.0, "DeviceTimeline: negative duration");
  const std::pair<double, double> interval{start, start + duration};
  const auto it = std::lower_bound(busy_.begin(), busy_.end(), interval);
  // Overlap check against neighbors (zero-length tasks always fit).
  if (it != busy_.begin()) {
    SPMAP_ASSERT(std::prev(it)->second <= start + 1e-12);
  }
  if (it != busy_.end()) {
    SPMAP_ASSERT(interval.second <= it->first + 1e-12);
  }
  busy_.insert(it, interval);
}

}  // namespace spmap
