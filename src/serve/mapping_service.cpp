#include "serve/mapping_service.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "mappers/registry.hpp"
#include "model/cost_model.hpp"
#include "sched/evaluator.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmap {

ReportingContext::ReportingContext(std::shared_ptr<const TaskGraph> graph,
                                   std::shared_ptr<const Platform> platform,
                                   std::size_t reporting_orders)
    : graph_(std::move(graph)),
      platform_(std::move(platform)),
      reporting_orders_(reporting_orders) {}

ReportingContext::Built::Built(const TaskGraph& graph,
                               const Platform& platform,
                               std::size_t reporting_orders)
    : cost(graph.dag, graph.attrs, platform),
      evaluator(cost, {.random_orders = reporting_orders}),
      baseline(evaluator.default_mapping_makespan()) {}

const ReportingContext::Built& ReportingContext::built() const {
  std::call_once(built_once_, [this] {
    built_.emplace(*graph_, *platform_, reporting_orders_);
  });
  return *built_;
}

double ReportingContext::evaluate(const Mapping& mapping) const {
  // Thread-safe path: a per-call context instead of the evaluator's
  // shared internal scratch (jobs of one context run concurrently).
  EvalContext ctx;
  return built().evaluator.evaluate(mapping, ctx);
}

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Shared between the service, its workers and every handle copy. The
/// per-job mutex/cv keeps handle operations independent of the service's
/// queue lock (a wait() never blocks submissions).
struct MappingService::JobState {
  std::uint64_t id = 0;
  MapJob job;
  MapRequest request;
  Rng construction_rng{0};

  mutable std::mutex mutex;
  std::condition_variable terminal;
  JobStatus status = JobStatus::kQueued;
  MapJobResult result;
  /// Guards the exactly-once `MapJob::on_terminal` invocation (the worker
  /// path and the queued-cancel path race for it).
  bool terminal_notified = false;

  bool is_terminal_locked() const {
    return status == JobStatus::kDone || status == JobStatus::kFailed ||
           status == JobStatus::kCancelled;
  }

  /// Claims the one on_terminal invocation; call under `mutex`.
  bool claim_terminal_notification_locked() {
    if (terminal_notified) return false;
    terminal_notified = true;
    return job.on_terminal != nullptr;
  }
};

MappingService::MappingService(Options options) : options_(options) {
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  // Touch the registry before spawning so its one-time init never races.
  MapperRegistry::instance();
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MappingService::~MappingService() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

MappingService::JobHandle MappingService::submit(MapJob job,
                                                 MapRequest request) {
  const bool may_block = options_.when_full == QueueFullPolicy::kBlock;
  auto handle =
      submit_locked(std::move(job), std::move(request), may_block,
                    /*may_reject=*/!may_block);
  if (!handle.has_value()) {
    throw Error("MappingService: queue full (max_queued=" +
                std::to_string(options_.max_queued) + ")");
  }
  return *std::move(handle);
}

std::optional<MappingService::JobHandle> MappingService::try_submit(
    MapJob job, MapRequest request) {
  return submit_locked(std::move(job), std::move(request),
                       /*may_block=*/false, /*may_reject=*/true);
}

std::optional<MappingService::JobHandle> MappingService::submit_locked(
    MapJob job, MapRequest request, bool may_block, bool may_reject) {
  require(!job.mapper_spec.empty(), "MappingService: empty mapper spec");
  require(job.graph != nullptr, "MappingService: job without a graph");
  require(job.platform != nullptr, "MappingService: job without a platform");

  auto state = std::make_shared<JobState>();
  state->job = std::move(job);
  state->request = std::move(request);
  // Per-job cancellation scope: JobHandle::cancel fires only this job's
  // token; the caller's original token (the child's parent) still cancels
  // every job submitted with it.
  state->request.cancel = state->request.cancel.child();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (options_.max_queued > 0 && queued_count_ >= options_.max_queued) {
      if (may_block) {
        queue_space_.wait(
            lock, [this] { return queued_count_ < options_.max_queued; });
      } else {
        ++stats_.rejected;
        (void)may_reject;
        return std::nullopt;
      }
    }
    state->id = next_id_++;
    // The per-job rng stream depends only on the submission index, never
    // on worker scheduling — the determinism contract of the header.
    if (state->job.construction_rng.has_value()) {
      state->construction_rng = *state->job.construction_rng;
    } else {
      std::uint64_t stream = options_.seed + 0x9e3779b97f4a7c15ULL * (state->id + 1);
      state->construction_rng = Rng(splitmix64(stream));
    }
    ++unfinished_;
    ++stats_.submitted;
    ++queued_count_;
    queues_[state->job.priority].push_back(state);
  }
  work_ready_.notify_one();
  return JobHandle(state);
}

void MappingService::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [this] { return unfinished_ == 0; });
}

ServiceStats MappingService::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  ServiceStats snapshot = stats_;
  snapshot.queued = queued_count_;
  return snapshot;
}

void MappingService::worker_loop() {
  for (;;) {
    std::shared_ptr<JobState> state;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return stopping_ || queued_count_ != 0; });
      if (queued_count_ == 0) return;  // stopping and drained
      // Highest waiting priority first (queues_ is ordered descending),
      // FIFO within one priority.
      auto it = queues_.begin();
      state = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) queues_.erase(it);
      --queued_count_;
    }
    queue_space_.notify_one();

    bool run = false;
    bool discarded_cancelled = false;
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      if (state->status == JobStatus::kQueued) {
        state->status = JobStatus::kRunning;
        run = true;
      } else {
        // Cancelled while waiting: the cancel path already made it
        // terminal (and fired on_terminal); just account for it.
        discarded_cancelled = state->status == JobStatus::kCancelled;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (run) ++stats_.running;
      if (discarded_cancelled) ++stats_.cancelled;
    }
    if (run) {
      if (state->job.on_start) state->job.on_start(state->id);
      const JobStatus final_status = execute(*state);
      std::unique_lock<std::mutex> lock(mutex_);
      --stats_.running;
      if (final_status == JobStatus::kFailed) {
        ++stats_.failed;
      } else {
        ++stats_.done;
      }
    }

    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      drained = --unfinished_ == 0;
    }
    if (drained) job_done_.notify_all();
    state->terminal.notify_all();
  }
}

JobStatus MappingService::execute(JobState& state) {
  MapJobResult result;
  JobStatus final_status = JobStatus::kDone;
  try {
    const MapJob& job = state.job;
    // Reuse the shared context's cost model when present; the tables are
    // identical, so only jobs without one pay the construction.
    std::optional<CostModel> owned_cost;
    if (job.reporting == nullptr) {
      owned_cost.emplace(job.graph->dag, job.graph->attrs, *job.platform);
    }
    const CostModel& cost =
        job.reporting != nullptr ? job.reporting->cost() : *owned_cost;
    const Evaluator inner(cost, {.random_orders = job.inner_orders});

    WallTimer timer;
    Rng rng = state.construction_rng;
    auto mapper =
        MapperRegistry::instance().create(job.mapper_spec, job.graph->dag, rng);
    // Bounds baked into the spec (deadline_ms= etc.) tighten the
    // submit-time request instead of being shadowed by it.
    result.report = mapper->map(
        inner, merge_run_bounds(mapper->default_request(), state.request));
    result.wall_seconds = timer.seconds();

    if (job.reporting != nullptr) {
      result.baseline_makespan = job.reporting->baseline();
      result.reported_makespan = job.reporting->evaluate(result.report.mapping);
    } else if (job.reporting_orders.has_value()) {
      const Evaluator reporting(cost,
                                {.random_orders = *job.reporting_orders});
      result.baseline_makespan = reporting.default_mapping_makespan();
      result.reported_makespan = reporting.evaluate(result.report.mapping);
    } else {
      result.reported_makespan = result.report.predicted_makespan;
    }
  } catch (const std::exception& ex) {
    result.error = ex.what();
    final_status = JobStatus::kFailed;
  }

  bool fire = false;
  {
    std::unique_lock<std::mutex> lock(state.mutex);
    state.result = std::move(result);
    state.status = final_status;
    fire = state.claim_terminal_notification_locked();
  }
  // Outside the job lock: the callback may touch the handle or service.
  // No writer mutates result/status after a job turns terminal.
  if (fire) state.job.on_terminal(state.id, final_status, state.result);
  return final_status;
}

// ---- JobHandle ----

std::uint64_t MappingService::JobHandle::id() const {
  return state_ == nullptr ? 0 : state_->id;
}

JobStatus MappingService::JobHandle::status() const {
  if (state_ == nullptr) return JobStatus::kFailed;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->status;
}

bool MappingService::JobHandle::done() const {
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->is_terminal_locked();
}

void MappingService::JobHandle::cancel() const {
  if (state_ == nullptr) return;
  bool became_terminal = false;
  bool fire = false;
  {
    std::unique_lock<std::mutex> lock(state_->mutex);
    if (state_->status == JobStatus::kQueued) {
      // The worker that eventually pops this state sees a non-queued
      // status and skips execution.
      state_->status = JobStatus::kCancelled;
      state_->result.error = "cancelled before execution";
      became_terminal = true;
      fire = state_->claim_terminal_notification_locked();
    }
  }
  // Outside the job lock: the running mapper polls this token.
  state_->request.cancel.request_cancel();
  if (became_terminal) state_->terminal.notify_all();
  if (fire) {
    state_->job.on_terminal(state_->id, JobStatus::kCancelled,
                            state_->result);
  }
}

const MapJobResult& MappingService::JobHandle::wait() const& {
  require(state_ != nullptr, "JobHandle::wait on an empty handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->terminal.wait(lock, [this] { return state_->is_terminal_locked(); });
  return state_->result;
}

bool MappingService::JobHandle::wait_for(double timeout_ms) const {
  if (state_ == nullptr) return true;
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->terminal.wait_for(
      lock, std::chrono::duration<double, std::milli>(timeout_ms),
      [this] { return state_->is_terminal_locked(); });
}

}  // namespace spmap
