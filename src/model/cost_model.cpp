#include "model/cost_model.hpp"

#include <algorithm>

namespace spmap {

namespace {

double device_speed_gops(const Device& dev, const TaskAttrs& attrs,
                         NodeId n) {
  switch (dev.kind) {
    case DeviceKind::Cpu:
    case DeviceKind::Gpu:
      return dev.lane_gops *
             amdahl_speedup(attrs.parallelizability[n.v],
                            dev.lanes_per_slot());
    case DeviceKind::Fpga:
      return dev.stream_gops_per_streamability *
             std::max(attrs.streamability[n.v], 1e-9);
  }
  return 1e-9;
}

}  // namespace

CostModel::CostModel(const Dag& dag, const TaskAttrs& attrs,
                     const Platform& platform)
    : dag_(&dag), attrs_(&attrs), platform_(&platform) {
  attrs.validate(dag);
  platform.validate();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();

  data_mb_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node(i);
    data_mb_[i] = std::max(dag.in_data_mb(node), dag.out_data_mb(node));
  }

  exec_.resize(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node(i);
    const double work_mops = attrs.complexity[i] * data_mb_[i];
    for (std::size_t d = 0; d < m; ++d) {
      const double speed =
          device_speed_gops(platform.device(DeviceId(d)), attrs, node);
      // work is in M point-ops, speed in G point-ops/s.
      exec_[i * m + d] = work_mops / 1000.0 / speed;
    }
  }
}

double CostModel::mean_exec_time(NodeId n) const {
  const std::size_t m = platform_->device_count();
  double sum = 0.0;
  for (std::size_t d = 0; d < m; ++d) sum += exec_[n.v * m + d];
  return sum / static_cast<double>(m);
}

double CostModel::min_exec_time(NodeId n) const {
  const std::size_t m = platform_->device_count();
  double best = exec_[n.v * m];
  for (std::size_t d = 1; d < m; ++d) {
    best = std::min(best, exec_[n.v * m + d]);
  }
  return best;
}

double CostModel::mean_transfer_time(EdgeId e) const {
  const std::size_t m = platform_->device_count();
  if (m < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      sum += transfer_time(e, DeviceId(a), DeviceId(b));
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

double CostModel::mapped_area(const Mapping& m, DeviceId d) const {
  double total = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (m.device[i] == d) total += attrs_->area[i];
  }
  return total;
}

bool CostModel::area_feasible(const Mapping& m) const {
  for (DeviceId f : platform_->fpga_devices()) {
    if (mapped_area(m, f) > platform_->device(f).area_budget) return false;
  }
  return true;
}

double CostModel::max_serial_time() const {
  const std::size_t m = platform_->device_count();
  double total = 0.0;
  for (std::size_t i = 0; i < dag_->node_count(); ++i) {
    double worst = 0.0;
    for (std::size_t d = 0; d < m; ++d) {
      worst = std::max(worst, exec_[i * m + d]);
    }
    total += worst;
  }
  return total;
}

}  // namespace spmap
