#include "util/content_hash.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace spmap {

namespace {

/// Type tags for domain separation. Values are arbitrary but fixed: the
/// digest is a persistent identity only within one process lifetime today,
/// but keeping tags stable costs nothing and keeps test vectors stable.
enum Tag : std::uint64_t {
  kTagU64 = 0x75363475ULL,     // "u64u"
  kTagI64 = 0x69363469ULL,
  kTagBool = 0x626f6f6cULL,    // "bool"
  kTagF64 = 0x66363466ULL,
  kTagStr = 0x73747221ULL,     // "str!"
  kTagStrByte = 0x73747262ULL,
  kTagDigest = 0x64696773ULL,  // "digs"
  kTagNull = 0x6e756c6cULL,    // "null"
  kTagArray = 0x61727221ULL,
  kTagObject = 0x6f626a21ULL,
  kTagKey = 0x6b657921ULL,
};

std::uint64_t mix(std::uint64_t v) {
  std::uint64_t s = v;
  return splitmix64(s);
}

}  // namespace

std::string Digest::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 60 - 8 * (i % 8);
    out[static_cast<std::size_t>(2 * i)] = digits[(word >> shift) & 0xf];
    out[static_cast<std::size_t>(2 * i + 1)] =
        digits[(word >> (shift - 4)) & 0xf];
  }
  return out;
}

ContentHasher::ContentHasher()
    : h1_(0x243f6a8885a308d3ULL), h2_(0x13198a2e03707344ULL) {}

ContentHasher::ContentHasher(std::string_view domain) : ContentHasher() {
  str(domain);
}

void ContentHasher::absorb(std::uint64_t tag, std::uint64_t v) {
  // Two independent splitmix lanes over (tag, value, position). The
  // position term makes the stream order-sensitive even across lane
  // cancellation; the cross-feed (h2_ into lane 1 and vice versa) makes
  // the 128 bits depend jointly on the whole stream.
  ++count_;
  h1_ = mix(h1_ ^ mix(tag ^ 0x9e3779b97f4a7c15ULL * count_) ^ v);
  h2_ = mix(h2_ + (tag * 0xbf58476d1ce4e5b9ULL) + mix(v ^ h1_));
}

ContentHasher& ContentHasher::u64(std::uint64_t v) {
  absorb(kTagU64, v);
  return *this;
}

ContentHasher& ContentHasher::i64(std::int64_t v) {
  absorb(kTagI64, static_cast<std::uint64_t>(v));
  return *this;
}

ContentHasher& ContentHasher::boolean(bool v) {
  absorb(kTagBool, v ? 1 : 0);
  return *this;
}

ContentHasher& ContentHasher::f64(double v) {
  absorb(kTagF64, std::bit_cast<std::uint64_t>(v));
  return *this;
}

ContentHasher& ContentHasher::str(std::string_view s) {
  absorb(kTagStr, s.size());
  // Pack 8 bytes per absorb; the length prefix above disambiguates the
  // zero-padded tail.
  std::uint64_t word = 0;
  int n = 0;
  for (unsigned char c : s) {
    word |= static_cast<std::uint64_t>(c) << (8 * n);
    if (++n == 8) {
      absorb(kTagStrByte, word);
      word = 0;
      n = 0;
    }
  }
  if (n != 0) absorb(kTagStrByte, word);
  return *this;
}

ContentHasher& ContentHasher::digest(const Digest& d) {
  absorb(kTagDigest, d.hi);
  absorb(kTagDigest, d.lo);
  return *this;
}

Digest ContentHasher::digest() const {
  // Finalize into an independent pair so short streams still fill both
  // words (absorb already mixed count_ in).
  std::uint64_t a = h1_ ^ mix(h2_);
  std::uint64_t b = h2_ + mix(h1_ ^ 0x452821e638d01377ULL);
  return Digest{mix(a) ^ b, mix(b ^ a)};
}

namespace {

void hash_json_into(const Json& value, ContentHasher& h) {
  if (value.is_null()) {
    h.u64(kTagNull);
  } else if (value.is_bool()) {
    h.boolean(value.as_bool());
  } else if (value.is_number()) {
    h.f64(value.as_double());
  } else if (value.is_string()) {
    h.str(value.as_string());
  } else if (value.is_array()) {
    const Json::Array& a = value.as_array();
    h.u64(kTagArray).u64(a.size());
    for (const Json& v : a) hash_json_into(v, h);
  } else {
    // Canonical object form: entries hashed in sorted key order (stable
    // sort keeps duplicate keys, if any, in document order).
    const Json::Object& o = value.as_object();
    std::vector<const std::pair<std::string, Json>*> entries;
    entries.reserve(o.size());
    for (const auto& e : o) entries.push_back(&e);
    std::stable_sort(entries.begin(), entries.end(),
                     [](const auto* a, const auto* b) {
                       return a->first < b->first;
                     });
    h.u64(kTagObject).u64(entries.size());
    for (const auto* e : entries) {
      h.u64(kTagKey).str(e->first);
      hash_json_into(e->second, h);
    }
  }
}

}  // namespace

Digest hash_json(const Json& value) {
  ContentHasher h("spmap-json/1");
  hash_json_into(value, h);
  return h.digest();
}

}  // namespace spmap
