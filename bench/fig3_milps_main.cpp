/// Fig. 3 — Decomposition mapping vs. three MILPs on random series-parallel
/// graphs.
///
/// Paper shape to reproduce: SingleNode/SeriesParallel reach 10-20 %
/// relative improvement at millisecond-scale execution time; WGDP-Dev is
/// the only comparably fast MILP but clearly worse; WGDP-Time is the best
/// MILP but its execution time explodes with graph size; ZhouLiu is only
/// usable on the smallest graphs (the paper stops it at 20 tasks with a
/// 5-minute timeout — here it gets --milp-limit seconds and we report its
/// incumbent).
///
/// Flags: --sizes=5,10,... --zhouliu-max-tasks N --graphs N --seed S
///        --milp-limit SEC

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"sizes", "graphs", "seed", "milp-limit",
                     "zhouliu-max-tasks"});
  const auto sizes = flags.get_int_list("sizes", {5, 10, 15, 20, 25, 30});
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double milp_limit = flags.get_double("milp-limit", 2.0);
  const auto zhouliu_max =
      static_cast<std::size_t>(flags.get_int("zhouliu-max-tasks", 20));

  const Platform platform = reference_platform();
  Rng rng(seed);

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto size : sizes) {
    std::vector<Case> cases;
    for (std::size_t g = 0; g < graphs; ++g) {
      Case c;
      c.dag = generate_sp_dag(static_cast<std::size_t>(size), rng);
      c.attrs = random_task_attrs(c.dag, rng);
      cases.push_back(std::move(c));
    }
    std::vector<MapperSpec> specs{
        single_node_spec(false), series_parallel_spec(false),
        wgdp_device_spec(milp_limit), wgdp_time_spec(milp_limit)};
    if (static_cast<std::size_t>(size) <= zhouliu_max) {
      specs.push_back(zhouliu_spec(milp_limit));
    }
    std::fprintf(stderr, "[fig3] %lld tasks (%zu graphs)...\n",
                 static_cast<long long>(size), graphs);
    rows.push_back(run_point(cases, specs, platform, rng));
    xs.push_back(static_cast<double>(size));
  }

  print_series("fig3", "tasks", xs, rows,
               {"WGDP-Time", "WGDP-Dev", "ZhouLiu", "SingleNode",
                "SeriesParallel"});
  return 0;
}
