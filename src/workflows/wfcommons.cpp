#include "workflows/wfcommons.hpp"

#include <algorithm>
#include <map>

#include "util/json.hpp"

namespace spmap {

namespace {

double file_size_mb(const Json& file) {
  double bytes = 0.0;
  if (file.contains("sizeInBytes")) {
    bytes = file.at("sizeInBytes").as_double();
  } else if (file.contains("size")) {
    bytes = file.at("size").as_double();
  }
  require(bytes >= 0.0, "wfcommons: negative file size");
  return bytes / 1e6;
}

double task_runtime_s(const Json& task, const WfCommonsOptions& options) {
  if (task.contains("runtimeInSeconds")) {
    return task.at("runtimeInSeconds").as_double();
  }
  if (task.contains("runtime")) return task.at("runtime").as_double();
  return options.default_runtime_s;
}

}  // namespace

TaskGraph import_wfcommons_json(const std::string& text, Rng& rng,
                                const WfCommonsOptions& options) {
  const Json doc = Json::parse(text);
  require(doc.contains("workflow"), "wfcommons: missing 'workflow' object");
  const Json& wf = doc.at("workflow");
  const Json* tasks = nullptr;
  if (wf.contains("tasks")) {
    tasks = &wf.at("tasks");
  } else if (wf.contains("jobs")) {
    tasks = &wf.at("jobs");
  }
  require(tasks != nullptr && tasks->is_array(),
          "wfcommons: missing 'tasks'/'jobs' array");

  TaskGraph tg;
  const auto& arr = tasks->as_array();
  std::map<std::string, NodeId> by_name;
  // Per task: produced files (name -> MB) and consumed files.
  std::vector<std::map<std::string, double>> outputs(arr.size());
  std::vector<std::map<std::string, double>> inputs(arr.size());
  std::vector<double> runtime(arr.size());

  for (std::size_t i = 0; i < arr.size(); ++i) {
    const Json& task = arr[i];
    const std::string& name = task.at("name").as_string();
    require(!by_name.count(name), "wfcommons: duplicate task name " + name);
    by_name[name] = tg.dag.add_node(name);
    runtime[i] = task_runtime_s(task, options);
    require(runtime[i] >= 0.0, "wfcommons: negative runtime");
    if (task.contains("files")) {
      for (const Json& file : task.at("files").as_array()) {
        const std::string link =
            file.contains("link") ? file.at("link").as_string() : "input";
        const std::string& fname = file.at("name").as_string();
        if (link == "output") {
          outputs[i][fname] = file_size_mb(file);
        } else {
          inputs[i][fname] = file_size_mb(file);
        }
      }
    }
  }

  // Edges: parent -> task, weighted by the files the task reads among the
  // parent's outputs.
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const Json& task = arr[i];
    if (!task.contains("parents")) continue;
    const NodeId child = by_name.at(task.at("name").as_string());
    for (const Json& parent_name : task.at("parents").as_array()) {
      const auto it = by_name.find(parent_name.as_string());
      require(it != by_name.end(),
              "wfcommons: unknown parent " + parent_name.as_string());
      const NodeId parent = it->second;
      double mb = 0.0;
      for (const auto& [fname, size] : outputs[parent.v]) {
        const auto consumed = inputs[i].find(fname);
        if (consumed != inputs[i].end()) {
          mb += std::min(size, consumed->second);
        }
      }
      if (mb <= 0.0) mb = options.default_edge_mb;
      tg.dag.add_edge(parent, child, mb);
    }
  }
  tg.dag.validate();

  // Attributes: complexity reproduces the recorded runtime on the
  // reference device; parallelizability/streamability per Section IV-B.
  tg.attrs.resize(tg.dag.node_count());
  for (std::size_t i = 0; i < tg.dag.node_count(); ++i) {
    const NodeId n(i);
    const double data_mb =
        std::max({tg.dag.in_data_mb(n), tg.dag.out_data_mb(n), 1.0});
    tg.attrs.complexity[i] =
        runtime[i] * options.reference_gops * 1000.0 / data_mb;
    tg.attrs.parallelizability[i] = rng.chance(0.5) ? 1.0 : rng.uniform();
    tg.attrs.streamability[i] = rng.lognormal(2.0, 0.5);
    tg.attrs.area[i] = options.area_per_complexity * tg.attrs.complexity[i];
  }
  tg.attrs.validate(tg.dag);
  return tg;
}

}  // namespace spmap
