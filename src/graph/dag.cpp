#include "graph/dag.hpp"

#include <algorithm>

namespace spmap {

NodeId Dag::add_node(std::string label) {
  const NodeId id(out_.size());
  out_.emplace_back();
  in_.emplace_back();
  labels_.push_back(std::move(label));
  return id;
}

void Dag::add_nodes(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add_node();
}

EdgeId Dag::add_edge(NodeId src, NodeId dst, double data_mb) {
  check(src);
  check(dst);
  require(src != dst, "Dag: self-loop rejected");
  require(data_mb >= 0.0, "Dag: negative edge payload");
  const EdgeId id(edges_.size());
  edges_.push_back({src, dst, data_mb});
  out_[src.v].push_back(id);
  in_[dst.v].push_back(id);
  return id;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  for (EdgeId e : out_edges(from)) {
    if (dst(e) == to) return true;
  }
  return false;
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (in_[i].empty()) out.push_back(NodeId(i));
  }
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> result;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (out_[i].empty()) result.push_back(NodeId(i));
  }
  return result;
}

double Dag::in_data_mb(NodeId n) const {
  double sum = 0.0;
  for (EdgeId e : in_edges(n)) sum += data_mb(e);
  return sum;
}

double Dag::out_data_mb(NodeId n) const {
  double sum = 0.0;
  for (EdgeId e : out_edges(n)) sum += data_mb(e);
  return sum;
}

void Dag::validate() const {
  // Kahn's algorithm; every node must be emitted or there is a cycle.
  std::vector<std::size_t> indeg(node_count());
  for (std::size_t i = 0; i < node_count(); ++i) indeg[i] = in_[i].size();
  std::vector<NodeId> queue;
  for (std::size_t i = 0; i < node_count(); ++i) {
    if (indeg[i] == 0) queue.push_back(NodeId(i));
  }
  std::size_t emitted = 0;
  while (!queue.empty()) {
    const NodeId n = queue.back();
    queue.pop_back();
    ++emitted;
    for (EdgeId e : out_edges(n)) {
      if (--indeg[dst(e).v] == 0) queue.push_back(dst(e));
    }
  }
  require(emitted == node_count(), "Dag: graph contains a cycle");
}

}  // namespace spmap
