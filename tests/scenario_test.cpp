/// Scenario subsystem coverage: workload and scenario JSON round-trips,
/// registry-style diagnostics on unknown keys / types / sweep parameters /
/// mapper specs, committed scenario files staying loadable, and a sweep
/// smoke run asserting results are deterministic for a fixed seed and
/// bit-identical across thread counts.

#include <gtest/gtest.h>

#include "bench/scenario.hpp"
#include "bench/scenario_runner.hpp"
#include "util/error.hpp"

namespace spmap {
namespace {

std::string scenario_dir() { return SPMAP_SCENARIO_DIR; }

// ---- workload specs --------------------------------------------------------

TEST(WorkloadSpec, RoundTripsAllKinds) {
  const char* docs[] = {
      R"({"type": "sp", "tasks": 40, "parallel_probability": 0.5,
          "edge_data_mb": 50})",
      R"({"type": "almost-sp", "tasks": 100, "extra_edges": 20,
          "parallel_probability": 0.6666666666666666, "edge_data_mb": 100})",
      R"({"type": "workflow", "family": "epigenomics", "width": 16})",
      R"({"type": "graph", "path": "g.json"})",
      R"({"type": "wfcommons", "path": "wf.json", "seed": 9})",
  };
  for (const char* text : docs) {
    const WorkloadSpec spec = workload_from_json(Json::parse(text));
    const Json once = workload_to_json(spec);
    const WorkloadSpec again = workload_from_json(once);
    EXPECT_EQ(once.dump(), workload_to_json(again).dump()) << text;
  }
}

TEST(WorkloadSpec, UnknownKeyThrowsListingAccepted) {
  try {
    workload_from_json(Json::parse(R"({"type": "sp", "taks": 40})"));
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("taks"), std::string::npos);
    EXPECT_NE(what.find("tasks"), std::string::npos)
        << "error should list accepted keys: " << what;
  }
}

TEST(WorkloadSpec, UnknownTypeAndFamilyThrowListingAccepted) {
  try {
    workload_from_json(Json::parse(R"({"type": "random"})"));
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("almost-sp"), std::string::npos);
  }
  try {
    workload_from_json(
        Json::parse(R"({"type": "workflow", "family": "montaage"})"));
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("montage"), std::string::npos);
  }
}

TEST(WorkloadSpec, BadValuesThrow) {
  EXPECT_THROW(workload_from_json(Json::parse(R"({"type": "sp",
      "tasks": 1})")),
               Error);
  EXPECT_THROW(workload_from_json(Json::parse(R"({"type": "sp",
      "parallel_probability": 1.5})")),
               Error);
  EXPECT_THROW(workload_from_json(Json::parse(R"({"type": "graph"})")),
               Error);  // file kinds need a path
}

TEST(WorkloadSpec, SweepParameterValidation) {
  WorkloadSpec sp = workload_from_json(Json::parse(R"({"type": "sp"})"));
  apply_sweep_value(sp, "tasks", 64);
  EXPECT_EQ(sp.tasks, 64u);
  try {
    apply_sweep_value(sp, "width", 4);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("width"), std::string::npos);
    EXPECT_NE(what.find("tasks"), std::string::npos)
        << "error should list sweepable parameters: " << what;
  }
}

TEST(WorkloadSpec, PinnedSeedIsRepetitionStableButInstanceDistinct) {
  const WorkloadSpec spec = workload_from_json(
      Json::parse(R"({"type": "sp", "tasks": 12, "seed": 123})"));
  Rng a(1), b(999);  // scenario rng must not matter when the seed is pinned
  const TaskGraph g0a = materialize_workload(spec, a, 0);
  const TaskGraph g0b = materialize_workload(spec, b, 0);
  const TaskGraph g1 = materialize_workload(spec, a, 1);
  EXPECT_EQ(to_json(g0a.dag, g0a.attrs), to_json(g0b.dag, g0b.attrs));
  EXPECT_NE(to_json(g0a.dag, g0a.attrs), to_json(g1.dag, g1.attrs));
}

// ---- scenarios -------------------------------------------------------------

Json small_scenario_doc() {
  Json doc = Json::parse(R"({
    "schema": "spmap-scenario/1",
    "name": "unit_smoke",
    "description": "tiny 2-mapper sweep for the unit tests",
    "workload": {"type": "sp", "tasks": 8},
    "sweep": {"parameter": "tasks", "values": [6, 9]},
    "mappers": ["heft", "spff"],
    "repetitions": 2,
    "reporting_orders": 10,
    "seed": 21
  })");
  doc.set("platform", platform_to_json(reference_platform(), "ref"));
  return doc;
}

TEST(Scenario, RoundTrips) {
  const Scenario s = scenario_from_json(small_scenario_doc());
  const Json once = scenario_to_json(s);
  const Scenario again = scenario_from_json(once);
  EXPECT_EQ(once.dump(2), scenario_to_json(again).dump(2));
  EXPECT_EQ(s.mappers.size(), 2u);
  EXPECT_EQ(s.mappers[0].display, "HEFT");  // registry display name
  EXPECT_EQ(s.sweep.values, (std::vector<std::int64_t>{6, 9}));
}

TEST(Scenario, UnknownKeyAndMissingPiecesThrow) {
  Json doc = small_scenario_doc();
  doc.set("mapers", Json::array());
  EXPECT_THROW(scenario_from_json(doc), Error);

  Json no_mappers = small_scenario_doc();
  no_mappers.set("mappers", Json::array());
  EXPECT_THROW(scenario_from_json(no_mappers), Error);
}

TEST(Scenario, MapperTypoFailsAtParseTime) {
  Json doc = small_scenario_doc();
  Json mappers = Json::array();
  mappers.push_back("spfff");
  doc.set("mappers", std::move(mappers));
  try {
    scenario_from_json(doc);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("spff"), std::string::npos)
        << "error should list known mappers: " << e.what();
  }
  // Same for a bad option key on a known mapper.
  Json doc2 = small_scenario_doc();
  Json mappers2 = Json::array();
  mappers2.push_back("heft:generations=5");
  doc2.set("mappers", std::move(mappers2));
  EXPECT_THROW(scenario_from_json(doc2), Error);
}

TEST(Scenario, MalformedMapperOptionValuesFailAtParseTime) {
  // Option *values* are validated eagerly too (MapperEntry::validate_values):
  // a committed scenario with a nonsense local-search budget fails at load
  // time with a diagnostic naming the accepted values.
  Json doc = small_scenario_doc();
  Json mappers = Json::array();
  mappers.push_back("anneal:iters=-1");
  doc.set("mappers", std::move(mappers));
  try {
    scenario_from_json(doc);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("iters"), std::string::npos) << what;
    EXPECT_NE(what.find(">= 0"), std::string::npos)
        << "error should name the accepted values: " << what;
  }

  // An unknown init= mapper fails eagerly, listing the known mappers.
  Json doc2 = small_scenario_doc();
  Json mappers2 = Json::array();
  mappers2.push_back("hillclimb:init=hefty");
  doc2.set("mappers", std::move(mappers2));
  try {
    scenario_from_json(doc2);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hefty"), std::string::npos) << what;
    EXPECT_NE(what.find("heft"), std::string::npos)
        << "error should list known mappers: " << what;
  }

  // An unknown option key inside the nested init spec is caught eagerly as
  // well, listing what the nested mapper accepts.
  Json doc3 = small_scenario_doc();
  Json mappers3 = Json::array();
  mappers3.push_back("tabu:init=nsga:gens=5");
  doc3.set("mappers", std::move(mappers3));
  try {
    scenario_from_json(doc3);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gens"), std::string::npos) << what;
    EXPECT_NE(what.find("generations"), std::string::npos)
        << "error should list the nested mapper's options: " << what;
  }
}

TEST(Scenario, UnknownSweepKeysFailListingAccepted) {
  // Unknown keys inside the sweep object name what is accepted.
  Json doc = small_scenario_doc();
  Json sweep = Json::object();
  sweep.set("parameter", "tasks");
  Json values = Json::array();
  values.push_back(6);
  sweep.set("values", std::move(values));
  sweep.set("step", 5);
  doc.set("sweep", std::move(sweep));
  try {
    scenario_from_json(doc);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("step"), std::string::npos) << what;
    EXPECT_NE(what.find("parameter"), std::string::npos)
        << "error should list accepted sweep keys: " << what;
    EXPECT_NE(what.find("values"), std::string::npos) << what;
  }

  // An unknown sweep *parameter* names the sweepable parameters.
  Json doc2 = small_scenario_doc();
  Json sweep2 = Json::object();
  sweep2.set("parameter", "taskss");
  Json values2 = Json::array();
  values2.push_back(6);
  sweep2.set("values", std::move(values2));
  doc2.set("sweep", std::move(sweep2));
  try {
    scenario_from_json(doc2);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("tasks"), std::string::npos)
        << "error should list sweepable parameters: " << e.what();
  }
}

TEST(Scenario, SweepParameterMismatchFailsAtParseTime) {
  Json doc = small_scenario_doc();
  Json sweep = Json::object();
  sweep.set("parameter", "width");
  Json values = Json::array();
  values.push_back(4);
  sweep.set("values", std::move(values));
  doc.set("sweep", std::move(sweep));
  EXPECT_THROW(scenario_from_json(doc), Error);
}

TEST(Scenario, CommittedScenarioFilesLoadAndRoundTrip) {
  for (const char* file :
       {"/fig4_list_scheduling.json", "/fig4_local_search.json",
        "/fig7_almost_sp.json", "/examples/fig4_small.json",
        "/examples/montage_small.json"}) {
    const Scenario s = load_scenario_file(scenario_dir() + file);
    EXPECT_FALSE(s.name.empty()) << file;
    EXPECT_FALSE(s.mappers.empty()) << file;
    EXPECT_FALSE(s.platform_path.empty()) << file;  // references, not inline
    const Json once = scenario_to_json(s);
    const Scenario again = scenario_from_json(once, s.base_dir);
    EXPECT_EQ(once.dump(2), scenario_to_json(again).dump(2)) << file;
  }
}

// ---- the runner ------------------------------------------------------------

/// Quality fields of a results document, with the wall-clock timing fields
/// (the only run-to-run nondeterminism) stripped.
std::string quality_fingerprint(const Json& results) {
  std::string out;
  for (const Json& point : results.at("results").as_array()) {
    if (point.contains("sweep_value")) {
      out += std::to_string(point.at("sweep_value").as_int()) + ":";
    }
    for (const Json& m : point.at("mappers").as_array()) {
      out += m.at("name").as_string() + "=";
      out += std::to_string(m.at("improvement_mean").as_double()) + ",";
      out += std::to_string(m.at("makespan_mean").as_double()) + ",";
      out += std::to_string(m.at("baseline_mean").as_double()) + ";";
    }
    out += "\n";
  }
  return out;
}

TEST(ScenarioRunner, SweepSmokeIsDeterministicAcrossRunsAndThreads) {
  const Scenario s = scenario_from_json(small_scenario_doc());
  const Json serial_a = run_scenario(s, {.threads = 1, .progress = false});
  const Json serial_b = run_scenario(s, {.threads = 1, .progress = false});
  const Json threaded = run_scenario(s, {.threads = 3, .progress = false});

  EXPECT_EQ(serial_a.at("schema").as_string(), "spmap-sweep-results/1");
  EXPECT_EQ(serial_a.at("results").as_array().size(), 2u);  // sweep points
  const std::string fingerprint = quality_fingerprint(serial_a);
  EXPECT_EQ(fingerprint, quality_fingerprint(serial_b));
  EXPECT_EQ(fingerprint, quality_fingerprint(threaded));

  // Improvements are in [0, 1] and SPFirstFit finds one on these graphs.
  for (const Json& point : serial_a.at("results").as_array()) {
    for (const Json& m : point.at("mappers").as_array()) {
      const double imp = m.at("improvement_mean").as_double();
      EXPECT_GE(imp, 0.0);
      EXPECT_LE(imp, 1.0);
    }
    EXPECT_GT(point.at("mappers").as_array()[1].at("improvement_mean")
                  .as_double(),
              0.0);
  }
}

TEST(ScenarioRunner, SeedChangesResults) {
  Scenario s = scenario_from_json(small_scenario_doc());
  const Json a = run_scenario(s, {.threads = 1, .progress = false});
  s.seed = 22;
  const Json b = run_scenario(s, {.threads = 1, .progress = false});
  EXPECT_NE(quality_fingerprint(a), quality_fingerprint(b));
}

TEST(ScenarioRunner, CommittedSmokeScenarioRuns) {
  Scenario s = load_scenario_file(scenario_dir() + "/examples/fig4_small.json");
  s.repetitions = 1;  // keep the unit-test budget small
  const Json results = run_scenario(s, {.threads = 2, .progress = false});
  EXPECT_EQ(results.at("platform").as_string(), "paper-cpu-gpu-fpga");
  EXPECT_EQ(results.at("sweep_parameter").as_string(), "tasks");
  EXPECT_EQ(results.at("results").as_array().size(), 3u);
}

}  // namespace
}  // namespace spmap
