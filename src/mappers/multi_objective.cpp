#include "mappers/multi_objective.hpp"

#include <algorithm>
#include <limits>

#include "graph/algorithms.hpp"

namespace spmap {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  const bool no_worse = a.makespan <= b.makespan && a.energy <= b.energy;
  const bool better = a.makespan < b.makespan || a.energy < b.energy;
  return no_worse && better;
}

std::vector<ParetoPoint> pareto_filter(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.makespan != b.makespan) return a.makespan < b.makespan;
              return a.energy < b.energy;
            });
  std::vector<ParetoPoint> front;
  double best_energy = std::numeric_limits<double>::infinity();
  for (auto& p : points) {
    if (p.energy < best_energy) {
      if (!front.empty() && front.back().makespan == p.makespan &&
          front.back().energy == p.energy) {
        continue;  // exact duplicate
      }
      best_energy = p.energy;
      front.push_back(std::move(p));
    }
  }
  return front;
}

namespace {

struct MoIndividual {
  std::vector<DeviceId> genes;
  double makespan = kInfeasible;
  double energy = kInfeasible;
  int rank = 0;
  double crowding = 0.0;
};

/// Deb et al.'s fast non-dominated sorting; assigns ranks (0 = best front).
void non_dominated_sort(std::vector<MoIndividual>& pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominated(n);
  std::vector<int> domination_count(n, 0);
  auto dom = [&](const MoIndividual& a, const MoIndividual& b) {
    const bool no_worse = a.makespan <= b.makespan && a.energy <= b.energy;
    const bool better = a.makespan < b.makespan || a.energy < b.energy;
    return no_worse && better;
  };
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (dom(pop[i], pop[j])) {
        dominated[i].push_back(j);
      } else if (dom(pop[j], pop[i])) {
        ++domination_count[i];
      }
    }
    if (domination_count[i] == 0) {
      pop[i].rank = 0;
      current.push_back(i);
    }
  }
  int rank = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (const std::size_t i : current) {
      for (const std::size_t j : dominated[i]) {
        if (--domination_count[j] == 0) {
          pop[j].rank = rank + 1;
          next.push_back(j);
        }
      }
    }
    ++rank;
    current = std::move(next);
  }
}

/// Crowding distance within each front (boundary points get infinity).
void assign_crowding(std::vector<MoIndividual>& pop) {
  for (auto& ind : pop) ind.crowding = 0.0;
  std::vector<std::size_t> idx(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) idx[i] = i;
  // Group by rank.
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return pop[a].rank < pop[b].rank;
  });
  std::size_t begin = 0;
  while (begin < idx.size()) {
    std::size_t end = begin;
    while (end < idx.size() && pop[idx[end]].rank == pop[idx[begin]].rank) {
      ++end;
    }
    for (const bool by_makespan : {true, false}) {
      std::sort(idx.begin() + begin, idx.begin() + end,
                [&](std::size_t a, std::size_t b) {
                  return by_makespan ? pop[a].makespan < pop[b].makespan
                                     : pop[a].energy < pop[b].energy;
                });
      auto value = [&](std::size_t k) {
        return by_makespan ? pop[idx[k]].makespan : pop[idx[k]].energy;
      };
      const double span = value(end - 1) - value(begin);
      pop[idx[begin]].crowding = kInfeasible;
      pop[idx[end - 1]].crowding = kInfeasible;
      if (span <= 0.0) continue;
      for (std::size_t k = begin + 1; k + 1 < end; ++k) {
        pop[idx[k]].crowding += (value(k + 1) - value(k - 1)) / span;
      }
    }
    begin = end;
  }
}

/// (rank, crowding) ordering: lower rank, then larger crowding.
bool nsga_less(const MoIndividual& a, const MoIndividual& b) {
  if (a.rank != b.rank) return a.rank < b.rank;
  return a.crowding > b.crowding;
}

}  // namespace

std::vector<ParetoPoint> MoNsga2Mapper::optimize(const Evaluator& eval) const {
  const CostModel& cost = eval.cost();
  const Dag& dag = cost.dag();
  const Platform& platform = cost.platform();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();

  Rng rng(params_.seed);
  const double mutation_rate =
      params_.mutation_rate > 0.0
          ? params_.mutation_rate
          : 1.0 / static_cast<double>(std::max<std::size_t>(n, 1));
  const std::vector<NodeId> gene_node = bfs_order(dag);

  auto repair = [&](std::vector<DeviceId>& genes) {
    for (const DeviceId f : platform.fpga_devices()) {
      const double budget = platform.device(f).area_budget;
      for (;;) {
        double used = 0.0;
        std::size_t worst = n;
        double worst_area = -1.0;
        for (std::size_t g = 0; g < n; ++g) {
          if (genes[g] != f) continue;
          const double a = cost.area(gene_node[g]);
          used += a;
          if (a > worst_area) {
            worst_area = a;
            worst = g;
          }
        }
        if (used <= budget || worst == n) break;
        genes[worst] = platform.default_device();
      }
    }
  };

  auto to_mapping = [&](const std::vector<DeviceId>& genes) {
    Mapping mp(n, platform.default_device());
    for (std::size_t g = 0; g < n; ++g) mp[gene_node[g]] = genes[g];
    return mp;
  };

  auto evaluate = [&](MoIndividual& ind) {
    const Mapping mp = to_mapping(ind.genes);
    ind.makespan = eval.evaluate(mp);
    ind.energy = mapping_energy_joules(cost, mp, ind.makespan);
  };

  std::vector<MoIndividual> pop(params_.population);
  for (std::size_t p = 0; p < pop.size(); ++p) {
    pop[p].genes.resize(n);
    for (std::size_t g = 0; g < n; ++g) {
      pop[p].genes[g] =
          p == 0 ? platform.default_device() : DeviceId(rng.below(m));
    }
    repair(pop[p].genes);
    evaluate(pop[p]);
  }
  non_dominated_sort(pop);
  assign_crowding(pop);

  auto tournament = [&]() -> const MoIndividual& {
    const MoIndividual* best = &pop[rng.below(pop.size())];
    for (std::size_t t = 1; t < params_.tournament; ++t) {
      const MoIndividual& challenger = pop[rng.below(pop.size())];
      if (nsga_less(challenger, *best)) best = &challenger;
    }
    return *best;
  };

  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    std::vector<MoIndividual> offspring;
    while (offspring.size() < params_.population) {
      const MoIndividual& pa = tournament();
      const MoIndividual& pb = tournament();
      MoIndividual child;
      child.genes = pa.genes;
      if (rng.chance(params_.crossover_rate) && n > 1) {
        const std::size_t cut = 1 + rng.below(n - 1);
        for (std::size_t g = cut; g < n; ++g) child.genes[g] = pb.genes[g];
      }
      for (std::size_t g = 0; g < n; ++g) {
        if (rng.chance(mutation_rate)) {
          child.genes[g] = DeviceId(rng.below(m));
        }
      }
      repair(child.genes);
      evaluate(child);
      offspring.push_back(std::move(child));
    }
    for (auto& child : offspring) pop.push_back(std::move(child));
    non_dominated_sort(pop);
    assign_crowding(pop);
    std::stable_sort(pop.begin(), pop.end(), nsga_less);
    pop.resize(params_.population);
  }

  std::vector<ParetoPoint> points;
  for (const MoIndividual& ind : pop) {
    if (ind.rank != 0) continue;
    points.push_back(
        ParetoPoint{to_mapping(ind.genes), ind.makespan, ind.energy});
  }
  return pareto_filter(std::move(points));
}

std::vector<ParetoPoint> decomposition_pareto_sweep(
    const Evaluator& eval, const Dag& dag, Rng& rng,
    const std::vector<double>& weights) {
  require(!weights.empty(), "decomposition_pareto_sweep: no weights");
  const CostModel& cost = eval.cost();
  const Mapping base = eval.default_mapping();
  const double ms0 = eval.evaluate(base);
  const double e0 = mapping_energy_joules(cost, base, ms0);
  require(ms0 > 0.0 && e0 > 0.0,
          "decomposition_pareto_sweep: degenerate baseline");

  std::vector<ParetoPoint> points;
  for (const double w : weights) {
    DecompositionParams params;
    params.variant = DecompositionVariant::Threshold;
    params.gamma = 1.0;
    params.objective = [w, ms0, e0](const Evaluator& ev, const Mapping& m) {
      const double ms = ev.evaluate(m);
      if (ms >= kInfeasible) return kInfeasible;
      const double energy = mapping_energy_joules(ev.cost(), m, ms);
      return w * ms / ms0 + (1.0 - w) * energy / e0;
    };
    DecompositionMapper mapper("SPFirstFit-scalarized",
                               series_parallel_subgraphs(dag, rng), params);
    const MapperResult r = mapper.map(eval);
    const double ms = eval.evaluate(r.mapping);
    points.push_back(ParetoPoint{
        r.mapping, ms, mapping_energy_joules(cost, r.mapping, ms)});
  }
  return pareto_filter(std::move(points));
}

}  // namespace spmap
