#pragma once
/// Shared fixtures for mapper tests: a deterministic two-device platform
/// and uniform task attributes with easy-to-hand-check costs.

#include "graph/dag.hpp"
#include "graph/task_attrs.hpp"
#include "model/platform.hpp"

namespace spmap::testing {

/// CPU (1 lane @ 1 Gops) + FPGA (1 Gops per streamability, area 1000,
/// fill 0.1) linked at `bandwidth_gbps` (default 1 GB/s) with no latency.
/// With 100 MB edges and the attrs below: CPU exec 1 s, FPGA exec 0.1 s,
/// transfer 0.1 s.
inline Platform cpu_fpga_platform(double bandwidth_gbps = 1.0,
                                  double fpga_area_budget = 1000.0) {
  Platform p;
  Device cpu;
  cpu.name = "cpu";
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 1.0;
  cpu.lane_gops = 1.0;
  const DeviceId c = p.add_device(cpu);
  Device fpga;
  fpga.name = "fpga";
  fpga.kind = DeviceKind::Fpga;
  fpga.area_budget = fpga_area_budget;
  fpga.stream_gops_per_streamability = 1.0;
  fpga.stream_fill_fraction = 0.1;
  const DeviceId f = p.add_device(fpga);
  p.set_link(c, f, bandwidth_gbps, 0.0);
  return p;
}

/// complexity 10, parallelizability 0 (GPU-hostile), streamability 10,
/// area 10 for every task.
inline TaskAttrs serial_streamable_attrs(std::size_t n) {
  TaskAttrs a;
  a.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    a.complexity[i] = 10.0;
    a.parallelizability[i] = 0.0;
    a.streamability[i] = 10.0;
    a.area[i] = 10.0;
  }
  return a;
}

/// A chain 0 -> 1 -> ... -> n-1 with 100 MB edges.
inline Dag chain_dag(std::size_t n) {
  Dag d(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    d.add_edge(NodeId(i), NodeId(i + 1), 100.0);
  }
  return d;
}

}  // namespace spmap::testing
