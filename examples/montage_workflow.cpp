/// Real-world scenario: mapping a Montage-style astronomy mosaic workflow
/// (paper Section IV-D) onto CPU + GPU + FPGA.
///
///   ./example_montage_workflow [--width N]
///
/// Generates a synthetic Montage instance, runs HEFT, PEFT and both
/// decomposition FirstFit mappers, and reports improvements plus where the
/// heavy tail-end tasks (mBgModel / mAdd) were placed — the paper explains
/// that mapping this handful of dominant tasks correctly is most of the
/// battle on this workflow.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "mappers/registry.hpp"
#include "util/flags.hpp"
#include "workflows/workflows.hpp"

using namespace spmap;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"width", "seed"});
  const auto width = static_cast<std::size_t>(flags.get_int("width", 24));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));

  const WorkflowInstance inst =
      generate_workflow(WorkflowFamily::Montage, width, rng);
  const Platform platform = reference_platform();
  const CostModel cost(inst.dag, inst.attrs, platform);
  const Evaluator eval(cost, {.random_orders = 100});
  const double baseline = eval.default_mapping_makespan();

  std::printf("workflow %s: %zu tasks, %zu edges, baseline %.1f ms\n\n",
              inst.name.c_str(), inst.dag.node_count(),
              inst.dag.edge_count(), baseline * 1e3);

  std::vector<std::unique_ptr<Mapper>> mappers;
  for (const char* name : {"heft", "peft", "snff", "spff"}) {
    mappers.push_back(
        MapperRegistry::instance().create(name, inst.dag, rng));
  }

  for (const auto& mapper : mappers) {
    const MapperResult r = mapper->map(eval);
    const double imp = (baseline - r.predicted_makespan) / baseline;
    std::printf("%-12s makespan %8.1f ms   improvement %5.1f %%\n",
                mapper->name().c_str(), r.predicted_makespan * 1e3,
                100.0 * (imp > 0 ? imp : 0));
    // Where did the dominant tail tasks land?
    for (std::size_t i = 0; i < inst.dag.node_count(); ++i) {
      const auto& label = inst.dag.label(NodeId(i));
      if (label == "mBgModel" || label == "mAdd") {
        std::printf("             %-8s -> %s\n", label.c_str(),
                    platform.device(r.mapping.device[i]).name.c_str());
      }
    }
  }
  return 0;
}
