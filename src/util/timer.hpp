#pragma once
/// \file timer.hpp
/// Wall-clock timing used for the execution-time series of every experiment.

#include <chrono>

namespace spmap {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Deadline helper for solver time limits. A non-positive budget means
/// "no limit".
class Deadline {
 public:
  explicit Deadline(double budget_seconds)
      : budget_(budget_seconds), timer_() {}

  bool expired() const {
    return budget_ > 0.0 && timer_.seconds() >= budget_;
  }
  double remaining() const {
    if (budget_ <= 0.0) return 1e300;
    const double r = budget_ - timer_.seconds();
    return r > 0.0 ? r : 0.0;
  }
  double budget() const { return budget_; }

 private:
  double budget_;
  WallTimer timer_;
};

}  // namespace spmap
