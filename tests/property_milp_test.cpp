/// Parameterized property suite for the MILP substrate: random LPs and MIPs
/// whose solutions must satisfy structural guarantees (feasibility, bound
/// ordering between relaxation and integer optimum, warm-start dominance).

#include <gtest/gtest.h>

#include "milp/branch_and_bound.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace spmap {
namespace {

struct MilpCase {
  std::size_t vars;
  std::size_t rows;
  std::uint64_t seed;
};

/// Random bounded LP/MIP: binary + continuous variables, <= rows with
/// mixed-sign coefficients, all variables in [0, 3].
MilpModel random_model(const MilpCase& param, Rng& rng,
                       double binary_fraction) {
  MilpModel m;
  for (std::size_t v = 0; v < param.vars; ++v) {
    if (rng.chance(binary_fraction)) {
      m.add_binary(rng.uniform(-4.0, 4.0));
    } else {
      m.add_continuous(0.0, 3.0, rng.uniform(-4.0, 4.0));
    }
  }
  for (std::size_t r = 0; r < param.rows; ++r) {
    std::vector<LinTerm> terms;
    for (std::size_t v = 0; v < param.vars; ++v) {
      if (rng.chance(0.7)) {
        terms.push_back({static_cast<int>(v), rng.uniform(-2.0, 2.0)});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    // Generous rhs keeps most instances feasible (x = 0 often works).
    m.add_constraint(std::move(terms), RowSense::Le,
                     rng.uniform(0.5, 6.0));
  }
  return m;
}

class MilpProperty : public ::testing::TestWithParam<MilpCase> {};

TEST_P(MilpProperty, LpSolutionIsFeasibleAndOptimalish) {
  Rng rng(GetParam().seed);
  for (int rep = 0; rep < 5; ++rep) {
    const MilpModel m = random_model(GetParam(), rng, 0.0);
    const LpResult r = solve_lp(m);
    if (r.status != LpStatus::Optimal) continue;  // unbounded instances ok
    // Feasibility of the claimed optimum (integrality vacuous here).
    EXPECT_TRUE(m.is_feasible(r.x, 1e-5));
    EXPECT_NEAR(r.objective, m.objective_value(r.x), 1e-6);
    // x = 0 is feasible by construction (rhs > 0); the optimum cannot be
    // worse than that reference point.
    EXPECT_LE(r.objective, 1e-7);
  }
}

TEST_P(MilpProperty, MipSolutionFeasibleAndBoundedByRelaxation) {
  Rng rng(GetParam().seed + 1);
  for (int rep = 0; rep < 3; ++rep) {
    const MilpModel m = random_model(GetParam(), rng, 0.6);
    const LpResult relax = solve_lp(m);
    MipParams params;
    params.time_limit_s = 5.0;
    const MipResult r = MipSolver(params).solve(m);
    if (!r.has_solution()) continue;
    EXPECT_TRUE(m.is_feasible(r.x, 1e-5));
    if (relax.status == LpStatus::Optimal && r.status == MipStatus::Optimal) {
      // Integer optimum can never beat the LP relaxation.
      EXPECT_GE(r.objective + 1e-6, relax.objective);
    }
  }
}

TEST_P(MilpProperty, WarmStartNeverHurts) {
  Rng rng(GetParam().seed + 2);
  const MilpModel m = random_model(GetParam(), rng, 0.5);
  // All-zero warm start is feasible by construction.
  std::vector<double> zeros(m.var_count(), 0.0);
  ASSERT_TRUE(m.is_feasible(zeros));
  MipParams params;
  params.time_limit_s = 2.0;
  const MipResult with = MipSolver(params).solve(m, &zeros);
  ASSERT_TRUE(with.has_solution());
  EXPECT_LE(with.objective, m.objective_value(zeros) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MilpProperty,
    ::testing::Values(MilpCase{3, 2, 41}, MilpCase{6, 4, 42},
                      MilpCase{10, 6, 43}, MilpCase{14, 8, 44},
                      MilpCase{20, 10, 45}),
    [](const ::testing::TestParamInfo<MilpCase>& param_info) {
      return "v" + std::to_string(param_info.param.vars) + "_r" +
             std::to_string(param_info.param.rows) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
}  // namespace spmap
