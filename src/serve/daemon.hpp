#pragma once
/// \file daemon.hpp
/// The spmap serving daemon: a socket front-end over MappingService.
///
/// One `Daemon` is one listening endpoint (unix-domain or TCP, see
/// util/socket.hpp) speaking `spmap-wire/1` (serve/wire.hpp). The design
/// splits three layers with distinct threading rules:
///
///  * **IO thread** — the thread calling `run()` owns a single poll()
///    loop: the listener, every connection's buffers, every `Session`
///    FSM (serve/session.hpp), and the job table. No connection state is
///    ever touched from another thread.
///  * **Worker threads** — the embedded `MappingService` executes jobs.
///    Its callbacks (`on_incumbent`, `on_terminal`) run on workers; they
///    only append to a mutex-protected event queue and write one byte to
///    a self-pipe, which wakes the IO thread to fan events out to
///    subscribed connections.
///  * **Anyone** — `request_drain()` is safe from any thread and from
///    signal handlers via the same self-pipe (the CLI installs
///    SIGTERM/SIGINT handlers that call it).
///
/// ## Admission
///
/// The service queue is bounded by `max_queued` (running jobs excluded).
/// Submissions are admitted per priority class against *graduated*
/// thresholds — high may fill the whole queue, normal 3/4 of it, low
/// half — so under overload the daemon sheds its least urgent traffic
/// first while high-priority clients still get through. A rejected
/// submit answers `{"ok":false,"error":{"code":"overloaded",...}}`; the
/// connection survives and may retry.
///
/// ## Drain
///
/// `request_drain(grace_ms)` (also the wire `drain` verb and SIGTERM):
/// the listener closes, every session is notified (`draining` event) and
/// moved to its draining state (submits refused, status/cancel/subscribe
/// still served), and in-flight jobs get `grace_ms` to finish. Jobs
/// still live at the grace deadline are cancelled (cooperative, they
/// return their incumbents); jobs still live at the hard deadline
/// (grace + max(grace, 2s)) are abandoned and `run()` returns 1. A
/// clean drain — every job terminal, every `done` event flushed —
/// returns 0.
///
/// ## Crash safety (journal) and reconnect (resume)
///
/// With `journal_path` set, every job state transition is written
/// through an `spmap-journal/1` log (serve/journal.hpp) — `submitted`
/// and `terminal` records are fsynced before the corresponding wire
/// acknowledgement leaves the daemon — and replayed at startup: a
/// restarted daemon answers `status` (terminal results included) for
/// every pre-restart job and re-enqueues jobs that never turned
/// terminal. The journal is written and compacted from the IO thread
/// only, extending the thread-safety contract above unchanged.
///
/// Independently of the journal, every helloed connection gets a
/// session token, and each session's pushed events carry a monotonic
/// `event_seq`; a reconnecting client presents the token via the
/// `resume` verb and receives exactly the events it missed (the daemon
/// keeps a bounded per-session backlog for `resume_window_s` after an
/// abrupt disconnect). Resumption is in-memory: it survives connection
/// loss, not daemon restarts — after a restart clients fall back to a
/// fresh hello and poll by job id, which the journal keeps answerable.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "serve/journal.hpp"
#include "serve/mapping_service.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"
#include "util/mutex.hpp"
#include "util/socket.hpp"
#include "util/timer.hpp"

namespace spmap {

/// Builds a task graph from a wire `generate` spec ({type, tasks, seed,
/// extra_edges, family, width}; see docs/SERVING.md). Shared by the
/// daemon's submit path and the load generator's local bit-identity
/// verification, so the two generation paths cannot drift apart.
TaskGraph graph_from_generate_spec(const Json& spec);

struct DaemonOptions {
  /// Where to listen (unix:PATH or tcp:HOST:PORT; tcp port 0 lets the
  /// kernel pick — read the bound port back from `Daemon::endpoint()`).
  Endpoint endpoint;
  /// MappingService worker threads executing jobs.
  std::size_t workers = 2;
  /// Bound on jobs waiting for a worker; 0 = unbounded (no admission).
  std::size_t max_queued = 64;
  /// Seconds of connection inactivity before an idle close; 0 disables.
  double idle_timeout_s = 0.0;
  /// Default drain grace (finish window before in-flight cancellation).
  double grace_ms = 5000.0;
  /// Frame length limit (serve/wire.hpp).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Service seed: derives the construction rng stream of jobs that do
  /// not pin `construction_seed` themselves.
  std::uint64_t seed = 0x5e9e5eed;
  /// Terminal jobs kept addressable for status/subscribe; older ones are
  /// evicted FIFO (bounds daemon memory under sustained load).
  std::size_t completed_retention = 1024;
  /// Result-cache entry bound (serve/result_cache.hpp); 0 disables the
  /// cache entirely. On by default: cached answers are bit-identical to
  /// recomputation, so repeat submissions of pinned-seed requests are
  /// answered O(1) without occupying a worker.
  std::size_t cache_entries = 4096;
  /// Result-cache byte bound (estimated resident bytes; 0 = unbounded).
  std::size_t cache_bytes = 256u << 20;
  /// Crash-safety journal path (spmap-journal/1); empty disables the
  /// journal (jobs are forgotten on restart, the pre-PR-7 behavior).
  std::string journal_path;
  /// Seconds a session stays resumable after an abrupt disconnect; the
  /// per-session event backlog is dropped once the window closes.
  double resume_window_s = 120.0;
  /// Install SIGTERM/SIGINT handlers that trigger a graceful drain
  /// (process-global: for the CLI, not for embedded/test daemons).
  bool install_signal_handlers = false;
  /// Lifecycle log sink (connections, jobs, drain); nullptr = silent.
  std::FILE* log = nullptr;
};

class Daemon : public SessionHost {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon() override;

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds and listens. Throws spmap::Error on a taken endpoint (a live
  /// unix socket) or bind failure. Must precede run().
  void bind();

  /// The bound endpoint — for tcp port 0 this carries the real port.
  const Endpoint& endpoint() const;

  /// The IO loop: serves until a drain completes. Returns 0 for a clean
  /// drain, 1 when jobs had to be abandoned at the hard deadline.
  int run();

  /// Triggers a graceful drain (grace_ms < 0: the configured default).
  /// Safe from any thread and from signal handlers.
  void request_drain(double grace_ms = -1.0);

  /// Snapshot of the embedded service's admission/lifecycle counters.
  ServiceStats service_stats() const { return service_->stats(); }

  /// The shared result cache (null when `cache_entries` was 0).
  const std::shared_ptr<ResultCache>& result_cache() const { return cache_; }

  // ---- SessionHost (IO thread only) ----
  // The overrides carry SPMAP_REQUIRES(io_role_): daemon-internal calls
  // are compiler-checked to happen on the IO thread. Calls through the
  // SessionHost base (the Session FSM) are outside the analysis — the
  // Session itself lives in the IO thread's Conn table, so they cannot
  // run anywhere else.
  SubmitOutcome submit(std::uint64_t session,
                       const WireSubmit& request) override
      SPMAP_REQUIRES(io_role_);
  std::optional<Json> job_status(std::uint64_t job) override
      SPMAP_REQUIRES(io_role_);
  bool cancel_job(std::uint64_t job) override SPMAP_REQUIRES(io_role_);
  bool subscribe(std::uint64_t session, std::uint64_t job) override
      SPMAP_REQUIRES(io_role_);
  void begin_drain(double grace_ms) override;
  bool draining() const override SPMAP_REQUIRES(io_role_);
  Json server_info() const override;
  Json stats_body() const override;
  std::string register_session(std::uint64_t session) override
      SPMAP_REQUIRES(io_role_);
  ResumeOutcome resume_session(std::uint64_t conn, const std::string& token,
                               std::uint64_t last_seq) override
      SPMAP_REQUIRES(io_role_);

 private:
  /// One accepted connection: socket, protocol FSM, buffers.
  struct Conn {
    Socket socket;
    Session session;
    FrameReader reader;
    std::string outbuf;

    Conn(Socket s, std::uint64_t id, SessionHost& host, SessionConfig config,
         std::size_t max_frame)
        : socket(std::move(s)),
          session(id, host, config),
          reader(max_frame) {}
  };

  /// One submitted job as the wire sees it (IO thread only).
  struct JobEntry {
    MappingService::JobHandle handle;
    std::string priority_class;
    bool want_mapping = false;
    bool started = false;   ///< a worker picked it up (journaled)
    bool terminal = false;
    std::set<std::uint64_t> subscribers;  ///< session ids
    /// Wire submit body, kept for journal compaction (journal mode only).
    Json submit_json;
    /// Terminal status restored from the journal after a restart — such
    /// an entry has no live handle; status answers from this verbatim.
    std::optional<Json> restored_status;
  };

  /// One resumable session (IO thread only): issued at hello, detached
  /// on abrupt disconnect, re-attached by `resume`, expired after
  /// `resume_window_s` detached seconds.
  struct SessionRecord {
    std::string token;
    std::uint64_t conn = 0;       ///< attached connection id; 0 = detached
    std::uint64_t next_seq = 1;   ///< next event_seq to assign
    /// Recent sequenced event lines, for resume replay (bounded).
    std::deque<std::pair<std::uint64_t, std::string>> backlog;
    double detached_at = 0.0;     ///< clock_ seconds; valid when detached
  };

  /// Worker-to-IO-thread notification (see the header comment).
  struct Event {
    enum class Kind { kStarted, kIncumbent, kTerminal, kReplayDone } kind;
    std::uint64_t job = 0;
    IncumbentRecord incumbent;   ///< kIncumbent
    std::uint64_t session = 0;   ///< kReplayDone target
  };

  void wake() const;
  /// Worker-thread side of the handoff: event queue + self-pipe only —
  /// the one daemon entry point that must NOT hold the IO role.
  void push_event(Event event) SPMAP_EXCLUDES(events_mutex_);
  void process_events() SPMAP_REQUIRES(io_role_)
      SPMAP_EXCLUDES(events_mutex_);
  void handle_event(const Event& event) SPMAP_REQUIRES(io_role_);

  void accept_clients(double now) SPMAP_REQUIRES(io_role_);
  void conn_readable(std::uint64_t id, Conn& conn, double now)
      SPMAP_REQUIRES(io_role_);
  /// Appends lines and flushes; false when the connection died.
  bool enqueue_lines(Conn& conn, const std::vector<std::string>& lines)
      SPMAP_REQUIRES(io_role_);
  bool flush_outbuf(Conn& conn) SPMAP_REQUIRES(io_role_);
  void reap_connections(double now) SPMAP_REQUIRES(io_role_);

  void start_drain(double now) SPMAP_REQUIRES(io_role_);
  /// Graduated per-class admission bound (see the header comment).
  std::size_t class_capacity(int priority) const;

  std::shared_ptr<const TaskGraph> resolve_graph(const WireSubmit& request);
  std::shared_ptr<const Platform> resolve_platform(const WireSubmit& request);
  Json status_body(std::uint64_t id, const JobEntry& entry) const
      SPMAP_REQUIRES(io_role_);

  /// Assigns `event_seq`, appends to the session's backlog, and sends the
  /// line when the session has an attached live connection.
  void send_event(std::uint64_t session, const std::string& event,
                  Json body) SPMAP_REQUIRES(io_role_);
  /// Registers a terminal job in the retention FIFO, evicting past the
  /// retention bound.
  void retain_completed(std::uint64_t job) SPMAP_REQUIRES(io_role_);
  /// Drops detached sessions whose resume window closed.
  void expire_sessions(double now) SPMAP_REQUIRES(io_role_);

  // ---- journal (all IO-thread; no-ops when the journal is off) ----
  /// Replays `journal_path`, restores terminal jobs, re-enqueues
  /// unfinished ones, and opens (compacted) for append.
  void init_journal() SPMAP_REQUIRES(io_role_);
  /// Appends one record, logging instead of failing the daemon: a broken
  /// journal degrades to re-execution after restart, never lost jobs.
  void journal_append(const Json& record, bool sync)
      SPMAP_REQUIRES(io_role_);
  /// Rewrites the journal as one submitted(+started/terminal) record per
  /// retained job, bounding the file by the completed retention.
  void compact_journal() SPMAP_REQUIRES(io_role_);
  Json submitted_record(std::uint64_t id, const JobEntry& entry) const;

  void logf(const char* fmt, ...) const;

  /// "Workers only touch the event queue": everything below tagged
  /// SPMAP_GUARDED_BY(io_role_) is owned by the thread inside run() — the
  /// single-owner-IO contract of the header, now compiler-checked. The
  /// constructor and bind() hold the role too (single-threaded setup
  /// precedes run() by contract).
  ThreadRole io_role_;

  DaemonOptions options_;
  std::shared_ptr<ResultCache> cache_;  ///< null when caching is off
  std::unique_ptr<MappingService> service_;
  /// Set by bind(), shape-stable afterwards; endpoint() reads const data
  /// through it from any thread, the IO loop owns its mutable socket
  /// state. Not role-guarded for that one cross-thread endpoint() read.
  std::optional<ListenSocket> listener_;
  int wake_read_ = -1;
  int wake_write_ = -1;

  WallTimer clock_;  ///< the IO loop's monotonic time base (seconds)

  std::map<std::uint64_t, Conn> conns_ SPMAP_GUARDED_BY(io_role_);
  std::uint64_t next_session_id_ SPMAP_GUARDED_BY(io_role_) = 1;

  /// Resumable sessions keyed by session id (== the id of the connection
  /// that helloed them; a resumed session keeps its id across conns).
  std::map<std::uint64_t, SessionRecord> sessions_ SPMAP_GUARDED_BY(io_role_);
  Rng token_rng_ SPMAP_GUARDED_BY(io_role_);
  double last_session_sweep_s_ SPMAP_GUARDED_BY(io_role_) = 0.0;

  std::map<std::uint64_t, JobEntry> jobs_ SPMAP_GUARDED_BY(io_role_);
  std::deque<std::uint64_t> completed_order_
      SPMAP_GUARDED_BY(io_role_);  ///< retention FIFO
  std::uint64_t next_job_id_ SPMAP_GUARDED_BY(io_role_) = 1;
  std::size_t outstanding_
      SPMAP_GUARDED_BY(io_role_) = 0;  ///< submitted, not yet terminal

  std::unique_ptr<Journal> journal_
      SPMAP_GUARDED_BY(io_role_);  ///< null when journaling is off

  Mutex events_mutex_;
  std::deque<Event> events_ SPMAP_GUARDED_BY(events_mutex_);

  std::atomic<bool> drain_requested_{false};
  std::atomic<double> requested_grace_ms_{-1.0};
  bool draining_ SPMAP_GUARDED_BY(io_role_) = false;
  bool cancelled_in_flight_ SPMAP_GUARDED_BY(io_role_) = false;
  double grace_deadline_s_ SPMAP_GUARDED_BY(io_role_) = 0.0;
  double hard_deadline_s_ SPMAP_GUARDED_BY(io_role_) = 0.0;

  std::shared_ptr<const Platform> reference_platform_;
};

}  // namespace spmap
