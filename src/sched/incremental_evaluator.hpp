#pragma once
/// \file incremental_evaluator.hpp
/// Incremental delta-evaluation of single-task reassignments.
///
/// Every search mapper probes candidates that differ from their parent by
/// one or two task reassignments, yet a full `Evaluator::evaluate_order`
/// sweep pays O(V + E) per probe. This engine keeps the complete timing
/// state of one schedule order resident — per-task start/finish times, the
/// per-device execution-slot and link occupation state at checkpointed
/// positions, and per-position replay records — so that
/// `apply(TaskReassignment)` re-propagates finish times only from the first
/// affected position of the walk order, skipping every node whose inputs
/// are untouched and terminating as soon as the perturbation has been
/// absorbed (typically at the next series join of the graph). An undo stack
/// records exactly the entries each apply changed, so a search can
/// speculatively probe and roll back in O(affected suffix).
///
/// ## Exactness
///
/// Results are *value-identical* to `Evaluator::evaluate_order` on the same
/// order (and hence to the naive ReferenceEvaluator): every recomputed
/// start/finish time is produced by the same floating-point operations in
/// the same order as the full sweep, and a node is only skipped when all of
/// its inputs compare equal (`==`) to the values the full sweep would read.
/// The one representational difference is internal: the full sweep keeps
/// per-device slot-ready times in slot-index order and picks the argmin,
/// while this engine keeps each device's slot multiset *sorted* (slots are
/// interchangeable — only the multiset of ready times affects any start
/// time, never the slot index). The canonical form is what makes
/// "state has re-converged to the baseline" detectable by an elementwise
/// compare, which is what bounds the affected suffix.
/// `tests/property_incremental_test.cpp` asserts the three-way agreement
/// after every apply/undo over randomized reassignment sequences.
///
/// ## Feasibility
///
/// FPGA area feasibility is tracked incrementally (O(1) per apply).
/// `makespan()` returns `kInfeasible` while any FPGA budget is exceeded —
/// matching `Evaluator::evaluate` — but the timing state stays consistent,
/// so a search may walk through infeasible intermediate states and
/// `order_makespan()` always reports the schedule-order makespan. On the
/// exact budget boundary the incrementally maintained area sum is resynced
/// against `CostModel::mapped_area`, so the verdict cannot drift.
///
/// ## The hybrid probe
///
/// Delta re-pricing only pays when the perturbation heals before the walk
/// ends: every visited position costs ~2-3x a plain sweep position (dual
/// base/cur state, skip tests, diff refreshes), so on *saturated* configs
/// where a reassignment cascades through most of the suffix the engine used
/// to lose to a plain full sweep. `probe()` therefore routes each call
/// through one of two exact paths:
///
///  * **incremental** — the skip-detecting suffix replay described above;
///  * **suffix sweep** — rebuild the (slot, link) state at the move's
///    position from the nearest committed checkpoint (at most kStride
///    committed-record replays, no skip machinery, no use counters) and
///    re-simulate the suffix with the plain branch-light sweep. Cost is
///    ~(n - p0) sweep positions, i.e. *half* a full sweep for a uniformly
///    random move — strictly cheaper than full re-evaluation, with no
///    delta bookkeeping to lose to.
///
/// In `ProbeMode::kAuto` (the default) the engine measures both paths
/// online: every probe's wall time, normalized per suffix position, feeds a
/// per-path EMA (replay density — how much of the suffix the incremental
/// path actually visits — is what drives the difference, and is exposed via
/// the split replay counters), and each probe takes the path whose EMA
/// predicts the lower cost. Three refinements keep the decision honest: a
/// short warmup samples both paths before trusting the EMAs, a probe whose
/// affected set is provably confined near the move (per-device
/// remaining-use counters show the move's devices idle afterwards and the
/// farthest consumer is close) stays incremental regardless of the EMAs,
/// and every kResampleEvery-th probe re-runs the currently-losing path so
/// the EMAs track drift across applies and resets. Both paths return
/// bit-identical values (tests/property_incremental_test.cpp forces each
/// and compares), so the mode only affects speed, never results. `apply()`
/// always runs incrementally — it must maintain the committed records.
///
/// ## Thread-safety
///
/// An IncrementalEvaluator is mutable state and strictly single-threaded:
/// one instance per thread (the local-search mappers create one per
/// worker). It holds a reference to the Evaluator, which must outlive it;
/// the shared Evaluator itself is immutable and safe to share.

#include <cstdint>
#include <vector>

#include "sched/evaluator.hpp"

namespace spmap {

/// One local-search move: put `node` on `device`.
struct TaskReassignment {
  NodeId node;
  DeviceId device;
};

/// A uniformly random reassignment of a random task to a *different*
/// device — the canonical local-search move (requires >= 2 devices). The
/// local-search mappers and the reassignment benchmarks share this one
/// sampler so they measure the same primitive.
inline TaskReassignment random_reassignment(const Mapping& mapping,
                                            std::size_t device_count,
                                            Rng& rng) {
  const NodeId node(static_cast<std::uint32_t>(rng.below(mapping.size())));
  std::uint64_t pick = rng.below(device_count - 1);
  if (pick >= mapping.device[node.v].v) ++pick;
  return {node, DeviceId(static_cast<std::uint32_t>(pick))};
}

/// How probe() picks between its two exact evaluation paths.
enum class ProbeMode {
  kAuto,              ///< online per-path cost EMAs decide (default)
  kForceIncremental,  ///< always skip-detecting suffix replay
  kForceFallback,     ///< always checkpoint-resume + plain suffix sweep
};

class IncrementalEvaluator {
 public:
  /// Binds to `eval`'s schedule order `order_index` (0 = breadth-first, the
  /// order every search mapper's inner loop uses). The evaluator must
  /// outlive this object. The initial mapping is the all-default mapping;
  /// call `reset` to load another one.
  explicit IncrementalEvaluator(const Evaluator& eval,
                                std::size_t order_index = 0);

  /// Loads `mapping` with one full recording sweep (O(V + E)) and clears
  /// the undo stack. Returns `makespan()`.
  double reset(const Mapping& mapping);

  /// Reassigns one task and re-propagates times from the first affected
  /// position. Pushes one undo frame (a no-op move pushes an empty frame,
  /// so apply/undo always pair). Returns `makespan()`.
  double apply(TaskReassignment move);

  /// The makespan the move *would* produce, leaving the state untouched —
  /// exactly apply() followed by undo(), but trace-free: recomputed times
  /// go to an epoch-tagged overlay and nothing is recorded or rolled back,
  /// so a rejected candidate costs only the replay itself. The returned
  /// value is bit-identical to what apply() would return.
  double probe(TaskReassignment move);

  /// Rolls back the most recent un-undone apply(). Requires `depth() > 0`.
  void undo();

  /// Accepts all applied moves: clears the undo stack (state is kept).
  /// Bounds undo-stack memory in long accept-heavy searches.
  void commit();

  /// Undo frames currently on the stack.
  std::size_t depth() const { return frames_.size(); }

  /// Makespan of the current mapping under the bound schedule order;
  /// `kInfeasible` while any FPGA area budget is exceeded (matching
  /// `Evaluator::evaluate`).
  double makespan() const {
    return over_budget_count_ == 0 ? makespan_value_ : kInfeasible;
  }

  /// The schedule-order makespan regardless of area feasibility (matching
  /// `Evaluator::evaluate_order`, which does not check feasibility).
  double order_makespan() const { return makespan_value_; }

  bool feasible() const { return over_budget_count_ == 0; }

  const Mapping& mapping() const { return mapping_; }

  /// The schedule order this engine simulates.
  const std::vector<NodeId>& order() const;

  /// Per-task times of the current mapping (indexed by node id).
  const std::vector<double>& start_times() const { return start_; }
  const std::vector<double>& finish_times() const { return finish_; }

  /// apply() calls since the last reset(), no-ops included (profiling: one
  /// apply is the incremental counterpart of one single-order evaluation).
  std::size_t apply_count() const { return apply_count_; }
  /// probe() calls since the last reset().
  std::size_t probe_count() const { return probe_count_; }

  /// Positions walked (skip-checked or recomputed) by the last apply() —
  /// the size of the affected suffix actually visited.
  std::size_t last_replayed() const { return last_replayed_; }
  /// Positions fully recomputed by the last apply().
  std::size_t last_recomputed() const { return last_recomputed_; }

  /// Selects the probe path (see "The hybrid probe" above). Results are
  /// bit-identical in every mode; forced modes exist for tests and
  /// measurement.
  void set_probe_mode(ProbeMode mode) { probe_mode_ = mode; }
  ProbeMode probe_mode() const { return probe_mode_; }

  /// True when the most recent probe() took the suffix-sweep path.
  bool last_probe_fallback() const { return last_probe_fallback_; }
  /// Non-no-op probes routed through the incremental path (lifetime total).
  std::size_t incremental_probe_count() const { return inc_probes_; }
  /// Non-no-op probes routed through the suffix-sweep path (lifetime total).
  std::size_t fallback_probe_count() const { return fb_probes_; }
  /// Positions visited by incremental-path probes only — the replay-density
  /// numerator the hybrid decides on (fallback sweeps excluded, so density
  /// is not diluted by exactly the probes that bypassed it).
  std::size_t incremental_replayed_total() const { return inc_replayed_total_; }
  /// Positions re-simulated by suffix-sweep-path probes.
  std::size_t fallback_swept_total() const { return fb_swept_total_; }

 private:
  /// Sentinel: un-dirtied limit (no pending influence).
  static constexpr std::uint32_t kNoDevice = ~0u;
  /// Positions between consecutive (slot, link) state checkpoints. The
  /// state at an arbitrary position is the nearest checkpoint plus a replay
  /// of at most kStride position records.
  static constexpr std::size_t kStride = 64;
  /// Auto-mode hybrid tuning. Position counts alone cannot rank the two
  /// paths — the cost of one replayed position versus one swept position
  /// varies severalfold with slot-span width and cascade density — so the
  /// router measures wall time per path. A warmup alternates the two paths
  /// until each has kWarmupSamples timed probes — committing on fewer
  /// samples of the heavily bimodal per-probe cost routinely anoints the
  /// wrong path, and a wrong incumbent is expensive to dethrone because
  /// challenger evidence accrues at the resample rate. After warmup each
  /// probe takes the cheaper path and the losing path is re-run every
  /// kResampleEvery routed probes so its estimate tracks drift. Estimates are decaying aggregate sums, each
  /// path halved every kCostDecayEvery of its *own* samples so both
  /// estimates always rest on ~1-2x that many samples no matter how rarely
  /// the loser runs: per-probe cost is heavily bimodal (a move that heals
  /// instantly versus one that cascades to the end), so an estimate
  /// resting on a handful of sparse resamples would swing on single
  /// outliers and flip the route. The window-bound test keeps provably
  /// local moves on the incremental path regardless of the estimates.
  static constexpr std::size_t kWarmupSamples = 32;
  static constexpr std::size_t kResampleEvery = 64;
  static constexpr std::size_t kCostDecayEvery = 64;

  struct UndoFrame {
    std::uint32_t node = 0;
    std::uint32_t old_device = 0;
    double old_makespan = 0.0;
    int old_over_budget = 0;
    bool noop = true;
    /// Old start/finish of every node whose times changed.
    struct TimeRec {
      std::uint32_t node;
      double start, finish;
    };
    std::vector<TimeRec> times;
    /// Old streamed flag of every position whose flag flipped.
    std::vector<std::pair<std::uint32_t, std::uint8_t>> streams;
    /// Old transfer record of every in-edge slot whose record changed.
    struct EdgeRec {
      std::uint32_t k;
      std::uint8_t xfer;
      double arrival;
    };
    std::vector<EdgeRec> edges;
    /// Old prefix-max entries.
    std::vector<std::pair<std::uint32_t, double>> prefix;
    /// Old checkpoint blocks (index, S + D doubles).
    std::vector<std::pair<std::uint32_t, std::vector<double>>> checkpoints;
    /// Old single checkpoint cells (flat index into checkpoints_) — the
    /// frozen-device spans patched on an early exit with lingering diffs.
    std::vector<std::pair<std::uint32_t, double>> ck_cells;
    /// Old FPGA area sums of the touched devices.
    std::vector<std::pair<std::uint32_t, double>> areas;

    void reset_keep_capacity() {
      noop = true;
      times.clear();
      streams.clear();
      edges.clear();
      prefix.clear();
      checkpoints.clear();
      ck_cells.clear();
      areas.clear();
    }
  };

  void full_recording_sweep();
  /// Replays committed records to rebuild the (slot, link) state at
  /// position `p0` into base_*, then copies it to cur_* and seeds the
  /// seen-use counters for the prefix.
  void reconstruct_state(std::size_t p0);
  /// Processes position `p` during an apply: skip if clean, else recompute.
  void step(std::size_t p, UndoFrame& frame);
  /// The trace-free twin of step() for probe(): identical reads and
  /// arithmetic, but recomputed times land in the probe overlay and the
  /// committed records stay untouched.
  void probe_step(std::size_t p);
  /// Dense-cascade fallback of probe(): recomputes every position from `p`
  /// to the end against the cur state only — no skip detection, no base
  /// state, just the plain sweep — and returns the folded makespan. Keeps
  /// a dense-cascade probe near plain full-sweep cost instead of paying
  /// delta bookkeeping across the whole suffix. Overlay-aware (eff_* reads):
  /// positions before `p` may hold overlay times from earlier probe_steps.
  double plain_suffix_sweep(std::size_t p, double run_max);
  /// The suffix-sweep probe path's inner loop: like plain_suffix_sweep but
  /// entered with a clean overlay (nothing before `p0` was recomputed), so
  /// source times resolve by position compare — committed below p0, this
  /// sweep's own output at or above — with no overlay tags written or read.
  double fallback_suffix_sweep(std::size_t p0, double run_max);
  /// Rebuilds only the cur (slot, link) state at position `p0` — the
  /// suffix-sweep path needs no base state and no seen-use counters, so
  /// this is the slim sibling of reconstruct_state().
  void reconstruct_cur_state(std::size_t p0);
  /// Auto-mode routing for one probe of `node` (old device `from`, new
  /// device `to`, walk position `p0`): true to take the suffix-sweep path.
  bool choose_fallback(std::size_t p0, std::uint32_t node, std::uint32_t from,
                       std::uint32_t to);
  /// Heuristic last position the move can plausibly influence, from the
  /// committed per-device use counters (checked before any checkpoint is
  /// touched): the farthest consumer of `node`, extended to the last block
  /// in which either endpoint device occupies a slot or link. Routing-only —
  /// a timing cascade may outrun it, which both paths price exactly.
  std::size_t replay_window_bound(std::uint32_t node, std::uint32_t from,
                                  std::uint32_t to) const;
  /// Folds one timed probe into the taken path's cost EMA (auto mode only).
  void note_probe_cost(bool fallback, std::size_t suffix, double ns);
  /// Effective (overlay-aware) times during a probe.
  double eff_start(std::uint32_t node) const {
    return probe_tag_[node] == probe_epoch_ ? probe_start_[node]
                                            : start_[node];
  }
  double eff_finish(std::uint32_t node) const {
    return probe_tag_[node] == probe_epoch_ ? probe_finish_[node]
                                            : finish_[node];
  }
  void snapshot_checkpoint(std::size_t c, UndoFrame& frame);
  /// True once no unvisited position can read any remaining divergent
  /// state: past `limit_`, and every device with a lingering slot/link diff
  /// has zero remaining uses of that state.
  bool can_stop(std::size_t p) const;
  /// Freezes the lingering divergent device spans into all checkpoints at
  /// positions >= p (their state cannot change again — the devices are
  /// unused from p on), recording old cells for undo.
  void patch_tail_checkpoints(std::size_t p, UndoFrame& frame);
  void move_area(UndoFrame& frame, NodeId node, std::uint32_t from,
                 std::uint32_t to);
  void update_area(std::uint32_t device, double delta);
  /// Adjusts the committed use counts (see block_*_uses_) by +/-1.
  void bump_slot_use(std::size_t p, std::uint32_t device, bool add);
  void bump_link_use(std::size_t p, std::uint32_t device, bool add);
  /// Use-count bookkeeping for remapping `node` from `from` to `to`.
  void shift_move_uses(std::uint32_t node, std::uint32_t from,
                       std::uint32_t to);
  /// Pops the device's minimum slot-ready time and inserts `value`,
  /// keeping the span sorted — the canonical form of the full sweep's
  /// "earliest-ready slot" pick + overwrite (value-identical; see header).
  void pop_min_insert(double* slots, std::uint32_t device, double value);
  bool slot_span_equal(std::uint32_t device) const;
  void touch_slot_device(std::uint32_t device);
  void touch_link_device(std::uint32_t device);
  void refresh_touched_diffs();

  // ---- immutable topology/tables (borrowed from the Evaluator) ----
  const Evaluator* eval_;
  std::size_t order_index_;
  const Evaluator::WalkPlan* plan_;
  std::size_t n_ = 0;       // node count
  std::size_t m_ = 0;       // device count
  std::size_t s_total_ = 0;  // total execution slots
  const std::uint32_t* in_src_ = nullptr;
  const double* in_mb1000_ = nullptr;
  const double* exec_ = nullptr;
  const std::uint8_t* is_fpga_ = nullptr;
  const double* fill_ = nullptr;
  const double* lat_ = nullptr;
  const double* bw_ = nullptr;
  const std::size_t* slot_offset_ = nullptr;
  std::vector<std::uint32_t> pos_;                // node -> walk position
  std::vector<std::uint32_t> last_consumer_pos_;  // node -> max consumer pos
  std::vector<std::uint32_t> out_in_slot_;  // out-CSR index -> in-edge slot
  std::vector<double> budget_;                    // per device (FPGAs)
  double area_eps_ = 0.0;
  std::size_t blocks_ = 0;  // checkpoint block count

  // ---- committed state (the current mapping's sweep) ----
  Mapping mapping_;
  std::vector<double> start_, finish_;      // per node
  std::vector<std::uint8_t> streamed_;      // per position
  std::vector<std::uint8_t> edge_xfer_;     // per in-edge slot
  std::vector<double> edge_arrival_;        // per in-edge slot
  std::vector<double> prefix_max_;          // per position
  std::vector<double> checkpoints_;         // [blocks_][s_total + m]
  /// Committed-record use counts per (checkpoint block, device): how many
  /// positions in the block occupy an execution slot of the device, and how
  /// many transfer-edge endpoints touch the device's link. They answer
  /// "does any position >= p still read this device's state?" in O(1)
  /// against the seen_* counters — the early-exit test for diffs lingering
  /// on devices the rest of the walk never touches.
  std::vector<std::uint32_t> block_slot_uses_;  // [block * m + device]
  std::vector<std::uint32_t> block_link_uses_;
  std::vector<std::uint32_t> total_slot_uses_, total_link_uses_;  // per dev
  std::vector<double> area_used_;           // per device
  int over_budget_count_ = 0;
  double makespan_value_ = 0.0;
  std::size_t apply_count_ = 0;
  std::size_t probe_count_ = 0;
  std::size_t last_replayed_ = 0;
  std::size_t last_recomputed_ = 0;

  // ---- hybrid probe state ----
  ProbeMode probe_mode_ = ProbeMode::kAuto;
  /// Per-path measured cost, kept as decaying sums of wall-ns and of suffix
  /// length: the router compares the ratios ns_sum/suffix_sum
  /// (cross-multiplied), an average-cost-per-position estimate over the
  /// recent probe stream. A ratio of sums, not an average of per-probe
  /// ratios — per-probe ns/suffix samples spike as 1/suffix for
  /// late-position moves (fixed costs divided by a tiny suffix).
  double inc_ns_sum_ = 0.0;
  double inc_sfx_sum_ = 0.0;
  double fb_ns_sum_ = 0.0;
  double fb_sfx_sum_ = 0.0;
  std::size_t inc_cost_samples_ = 0;  // auto-mode samples folded in
  std::size_t fb_cost_samples_ = 0;
  std::size_t inc_notes_since_decay_ = 0;
  std::size_t fb_notes_since_decay_ = 0;
  std::size_t probes_since_resample_ = 0;
  bool prefer_fallback_ = false;  // incumbent path (hysteresis anchor)
  bool last_probe_fallback_ = false;
  std::size_t inc_probes_ = 0;
  std::size_t fb_probes_ = 0;
  std::size_t inc_replayed_total_ = 0;
  std::size_t fb_swept_total_ = 0;

  // ---- per-apply scratch ----
  std::vector<double> cur_slot_, cur_link_;    // replayed (new) state
  std::vector<double> base_slot_, base_link_;  // committed (old) state
  std::vector<std::uint8_t> slot_differs_, link_differs_;  // per device
  std::size_t diff_device_count_ = 0;
  std::vector<std::uint32_t> diff_list_;     // devices that had a flag set
  std::vector<std::uint8_t> diff_listed_;    // dedup marker for diff_list_
  std::vector<std::uint8_t> timing_dirty_;   // per node
  std::vector<std::uint32_t> dirty_list_;
  std::vector<std::uint32_t> touched_slot_devs_, touched_link_devs_;
  std::vector<std::uint32_t> seen_slot_, seen_link_;  // per device
  /// Probe overlay: times recomputed by the current probe() live here; an
  /// entry is live iff its tag equals probe_epoch_ (O(1) discard).
  std::vector<double> probe_start_, probe_finish_;
  std::vector<std::uint32_t> probe_tag_;
  std::uint32_t probe_epoch_ = 0;
  std::uint32_t moved_ = kNoDevice;
  std::uint32_t moved_old_dev_ = kNoDevice;
  std::size_t limit_ = 0;

  std::vector<UndoFrame> frames_;
  UndoFrame spare_;  // recycled frame: probe loops stay allocation-free
};

}  // namespace spmap
