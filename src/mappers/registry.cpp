#include "mappers/registry.hpp"

#include <cstdlib>
#include <sstream>

#include "mappers/builtin_registrations.hpp"
#include "util/error.hpp"

namespace spmap {

namespace {

std::string join(const std::vector<std::string>& items, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace

// ---- MapperOptions ----

MapperOptions MapperOptions::parse(const std::string& spec) {
  MapperOptions options;
  if (spec.empty()) return options;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos,
            "mapper options: expected key=value, got '" + item + "' in '" +
                spec + "'");
    const std::string key = item.substr(0, eq);
    require(!key.empty(),
            "mapper options: empty key in '" + spec + "'");
    const bool inserted =
        options.values_.emplace(key, item.substr(eq + 1)).second;
    require(inserted, "mapper options: duplicate key '" + key + "' in '" +
                          spec + "'");
  }
  return options;
}

bool MapperOptions::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string MapperOptions::get(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t MapperOptions::get_int(const std::string& key,
                                    std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  require(end != text && *end == '\0',
          "mapper option '" + key + "': expected an integer, got '" +
              it->second + "'");
  return static_cast<std::int64_t>(value);
}

double MapperOptions::get_double(const std::string& key,
                                 double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  require(end != text && *end == '\0',
          "mapper option '" + key + "': expected a number, got '" +
              it->second + "'");
  return value;
}

bool MapperOptions::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw Error("mapper option '" + key + "': expected a boolean, got '" + v +
              "'");
}

std::string MapperOptions::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out += ',';
    out += key + '=' + value;
  }
  return out;
}

std::string format_option_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::size_t threads_option(const MapperOptions& options) {
  const std::int64_t value = options.get_int("threads", 1);
  require(value >= 1, "mapper option 'threads': must be >= 1");
  return static_cast<std::size_t>(value);
}

// ---- MapperEntry ----

bool MapperEntry::supports_option(const std::string& key) const {
  for (const MapperOptionInfo& info : options) {
    if (info.key == key) return true;
  }
  return false;
}

void MapperEntry::validate_options(const MapperOptions& opts) const {
  for (const auto& [key, value] : opts.values()) {
    (void)value;
    if (supports_option(key)) continue;
    std::vector<std::string> accepted;
    for (const MapperOptionInfo& info : options) accepted.push_back(info.key);
    throw Error("mapper '" + name + "' does not accept option '" + key +
                "'" +
                (accepted.empty()
                     ? " (it takes no options)"
                     : " (accepted: " + join(accepted, ", ") + ")"));
  }
  if (validate_values) validate_values(opts);
}

std::string MapperEntry::default_spec() const {
  std::string out;
  for (const MapperOptionInfo& info : options) {
    if (info.default_value.empty()) continue;
    if (!out.empty()) out += ',';
    out += info.key + '=' + info.default_value;
  }
  return out.empty() ? "-" : out;
}

// ---- MapperRegistry ----

MapperRegistry& MapperRegistry::instance() {
  static MapperRegistry* registry = [] {
    auto* r = new MapperRegistry();
    detail::register_cpu_only_mapper(*r);
    detail::register_heft_mapper(*r);
    detail::register_lookahead_heft_mapper(*r);
    detail::register_peft_mapper(*r);
    detail::register_decomposition_mappers(*r);
    detail::register_nsga2_mapper(*r);
    detail::register_milp_mappers(*r);
    detail::register_local_search_mappers(*r);
    return r;
  }();
  return *registry;
}

void MapperRegistry::add(MapperEntry entry) {
  require(!entry.name.empty(), "MapperRegistry: empty mapper name");
  require(static_cast<bool>(entry.factory),
          "MapperRegistry: mapper '" + entry.name + "' has no factory");
  require(index_.count(entry.name) == 0,
          "MapperRegistry: duplicate mapper name '" + entry.name + "'");
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
}

bool MapperRegistry::contains(const std::string& name) const {
  return index_.count(name) != 0;
}

const MapperEntry& MapperRegistry::at(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw Error("unknown mapper: '" + name + "' (known mappers: " +
                join(names(), ", ") + ")");
  }
  return entries_[it->second];
}

std::vector<std::string> MapperRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const MapperEntry& entry : entries_) out.push_back(entry.name);
  return out;
}

std::pair<std::string, std::string> MapperRegistry::split_spec(
    const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

std::unique_ptr<Mapper> MapperRegistry::create(const std::string& spec,
                                               const Dag& dag,
                                               Rng& rng) const {
  const auto [name, option_spec] = split_spec(spec);
  const MapperEntry& entry = at(name);
  const MapperOptions options = MapperOptions::parse(option_spec);
  entry.validate_options(options);
  const MapperContext context{dag, rng, options};
  std::unique_ptr<Mapper> mapper = entry.factory(context);
  require(mapper != nullptr,
          "MapperRegistry: factory of '" + name + "' returned null");
  return mapper;
}

}  // namespace spmap
