#include "sp/sp_tree.hpp"

#include <algorithm>
#include <sstream>

namespace spmap {

SpForest::Index SpForest::add_leaf(NodeId u, NodeId v, EdgeId edge) {
  Node n;
  n.kind = SpKind::Leaf;
  n.u = u;
  n.v = v;
  n.edge = edge;
  n.outsize = 1;
  n.leaves = 1;
  nodes_.push_back(std::move(n));
  return static_cast<Index>(nodes_.size() - 1);
}

SpForest::Index SpForest::make_series(Index first, Index second) {
  require(first != kInvalid && second != kInvalid,
          "make_series: invalid child");
  require(node(first).v == node(second).u,
          "make_series: endpoints do not chain");
  if (nodes_[first].kind == SpKind::Series) {
    // Flatten: extend the existing series operation in place.
    Node& f = nodes_[first];
    if (nodes_[second].kind == SpKind::Series) {
      for (Index c : nodes_[second].children) f.children.push_back(c);
    } else {
      f.children.push_back(second);
    }
    f.v = nodes_[second].v;
    f.outsize = nodes_[second].outsize;
    f.leaves += nodes_[second].leaves;
    return first;
  }
  Node n;
  n.kind = SpKind::Series;
  n.u = nodes_[first].u;
  n.v = nodes_[second].v;
  n.outsize = nodes_[second].outsize;
  n.leaves = nodes_[first].leaves + nodes_[second].leaves;
  n.children.push_back(first);
  if (nodes_[second].kind == SpKind::Series) {
    for (Index c : nodes_[second].children) n.children.push_back(c);
    n.leaves = nodes_[first].leaves + nodes_[second].leaves;
  } else {
    n.children.push_back(second);
  }
  nodes_.push_back(std::move(n));
  return static_cast<Index>(nodes_.size() - 1);
}

SpForest::Index SpForest::make_parallel(const std::vector<Index>& parts) {
  require(!parts.empty(), "make_parallel: no parts");
  if (parts.size() == 1) return parts.front();
  const NodeId u = node(parts.front()).u;
  const NodeId v = node(parts.front()).v;
  Node n;
  n.kind = SpKind::Parallel;
  n.u = u;
  n.v = v;
  n.outsize = 0;
  n.leaves = 0;
  for (Index p : parts) {
    require(node(p).u == u && node(p).v == v,
            "make_parallel: endpoint mismatch");
    n.outsize += nodes_[p].outsize;
    n.leaves += nodes_[p].leaves;
    if (nodes_[p].kind == SpKind::Parallel) {
      // Flatten nested parallel operations.
      for (Index c : nodes_[p].children) n.children.push_back(c);
    } else {
      n.children.push_back(p);
    }
  }
  nodes_.push_back(std::move(n));
  return static_cast<Index>(nodes_.size() - 1);
}

void SpForest::add_root(Index tree) {
  node(tree);  // bounds check
  roots_.push_back(tree);
}

void SpForest::collect_leaves(Index i, std::vector<Index>& out) const {
  const Node& n = node(i);
  if (n.kind == SpKind::Leaf) {
    out.push_back(i);
    return;
  }
  for (Index c : n.children) collect_leaves(c, out);
}

std::vector<NodeId> SpForest::spanned_nodes(Index i) const {
  std::vector<Index> leaves;
  collect_leaves(i, leaves);
  std::vector<NodeId> out;
  out.reserve(2 * leaves.size());
  for (Index l : leaves) {
    const Node& n = nodes_[l];
    if (n.u.valid()) out.push_back(n.u);
    if (n.v.valid()) out.push_back(n.v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EdgeId> SpForest::edges(Index i) const {
  std::vector<Index> leaves;
  collect_leaves(i, leaves);
  std::vector<EdgeId> out;
  for (Index l : leaves) {
    if (nodes_[l].edge.valid()) out.push_back(nodes_[l].edge);
  }
  return out;
}

std::size_t SpForest::total_real_leaves() const {
  std::size_t total = 0;
  for (Index r : roots_) total += edges(r).size();
  return total;
}

void SpForest::validate_node(const Dag& dag, Index i) const {
  const Node& n = node(i);
  switch (n.kind) {
    case SpKind::Leaf: {
      require(n.children.empty(), "SpForest: leaf with children");
      require(n.leaves == 1, "SpForest: leaf count broken");
      if (n.edge.valid()) {
        require(dag.src(n.edge) == n.u && dag.dst(n.edge) == n.v,
                "SpForest: leaf endpoints disagree with edge");
      }
      break;
    }
    case SpKind::Series: {
      require(n.children.size() >= 2, "SpForest: series with < 2 children");
      require(node(n.children.front()).u == n.u,
              "SpForest: series start mismatch");
      require(node(n.children.back()).v == n.v,
              "SpForest: series end mismatch");
      std::uint32_t leaves = 0;
      for (std::size_t k = 0; k < n.children.size(); ++k) {
        const Node& c = node(n.children[k]);
        require(c.kind != SpKind::Series,
                "SpForest: unflattened series child");
        if (k + 1 < n.children.size()) {
          require(c.v == node(n.children[k + 1]).u,
                  "SpForest: series children do not chain");
        }
        leaves += c.leaves;
        validate_node(dag, n.children[k]);
      }
      require(leaves == n.leaves, "SpForest: series leaf count broken");
      require(n.outsize == node(n.children.back()).outsize,
              "SpForest: series outsize broken");
      break;
    }
    case SpKind::Parallel: {
      require(n.children.size() >= 2, "SpForest: parallel with < 2 children");
      std::uint32_t leaves = 0;
      std::uint32_t outsize = 0;
      for (Index c : n.children) {
        require(node(c).u == n.u && node(c).v == n.v,
                "SpForest: parallel endpoint mismatch");
        require(node(c).kind != SpKind::Parallel,
                "SpForest: unflattened parallel child");
        leaves += node(c).leaves;
        outsize += node(c).outsize;
        validate_node(dag, c);
      }
      require(leaves == n.leaves, "SpForest: parallel leaf count broken");
      require(outsize == n.outsize, "SpForest: parallel outsize broken");
      break;
    }
  }
}

void SpForest::validate(const Dag& dag) const {
  for (Index r : roots_) validate_node(dag, r);
}

std::string SpForest::to_string(Index i) const {
  const Node& n = node(i);
  auto name = [](NodeId id) {
    return id.valid() ? std::to_string(id.v) : std::string("eps");
  };
  if (n.kind == SpKind::Leaf) {
    return name(n.u) + "-" + name(n.v);
  }
  std::ostringstream os;
  os << (n.kind == SpKind::Series ? 'S' : 'P') << '(';
  for (std::size_t k = 0; k < n.children.size(); ++k) {
    if (k) os << ", ";
    os << to_string(n.children[k]);
  }
  os << ')';
  return os.str();
}

}  // namespace spmap
