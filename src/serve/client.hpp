#pragma once
/// \file client.hpp
/// Minimal blocking `spmap-wire/1` client: connect, handshake, send
/// frames, receive frames with a timeout. Shared by the load generator
/// (src/serve/loadgen.hpp), the serving benchmark and the daemon tests —
/// one client implementation, so a protocol change breaks loudly in one
/// place instead of quietly in three.
///
/// ## Thread-safety
///
/// None: one WireClient belongs to one thread (the loadgen runs one per
/// simulated session).

#include <optional>
#include <string>

#include "serve/wire.hpp"
#include "util/socket.hpp"

namespace spmap {

class WireClient {
 public:
  /// Connects (retrying "daemon still starting" failures for
  /// `connect_timeout_ms`) and performs the `hello` handshake. Throws
  /// spmap::Error when the endpoint stays unreachable or the handshake is
  /// refused.
  WireClient(const Endpoint& endpoint, double connect_timeout_ms = 5000.0,
             std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Sends one frame (the '\n' is appended here). Throws spmap::Error on
  /// a dead connection.
  void send(const Json& frame);
  void send_raw(const std::string& line);

  /// The next frame, in arrival order, waiting up to `timeout_ms`
  /// (<= 0: wait forever). std::nullopt on timeout; throws spmap::Error
  /// on EOF/connection loss or a frame that is not a JSON object.
  std::optional<Json> recv(double timeout_ms = -1.0);

  /// Skips frames until one with `"event" == event` arrives (responses
  /// and other events are discarded). std::nullopt on timeout.
  std::optional<Json> recv_event(const std::string& event,
                                 double timeout_ms = -1.0);

  /// The server-info fields the handshake answered with.
  const Json& hello_info() const { return hello_info_; }

 private:
  Socket socket_;
  FrameReader reader_;
  std::vector<std::string> pending_;
  std::size_t pending_next_ = 0;
  Json hello_info_;
};

}  // namespace spmap
