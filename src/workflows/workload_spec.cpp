#include "workflows/workload_spec.hpp"

#include "graph/generators.hpp"
#include "util/fs.hpp"
#include "workflows/wfcommons.hpp"
#include "workflows/workflows.hpp"

namespace spmap {

namespace {

struct KindName {
  WorkloadKind kind;
  const char* name;
};

const KindName kKinds[] = {
    {WorkloadKind::Sp, "sp"},
    {WorkloadKind::AlmostSp, "almost-sp"},
    {WorkloadKind::Workflow, "workflow"},
    {WorkloadKind::WfCommons, "wfcommons"},
    {WorkloadKind::GraphFile, "graph"},
};

WorkloadKind kind_from_string(const std::string& s) {
  for (const KindName& k : kKinds) {
    if (s == k.name) return k.kind;
  }
  std::string known;
  for (const KindName& k : kKinds) {
    if (!known.empty()) known += ", ";
    known += k.name;
  }
  throw Error("workload: unknown type '" + s + "' (accepted: " + known + ")");
}

WorkflowFamily family_from_string(const std::string& name) {
  for (const WorkflowFamily f : all_workflow_families()) {
    if (name == workflow_family_name(f)) return f;
  }
  std::string known;
  for (const WorkflowFamily f : all_workflow_families()) {
    if (!known.empty()) known += ", ";
    known += workflow_family_name(f);
  }
  throw Error("workload: unknown family '" + name + "' (accepted: " + known +
              ")");
}

std::size_t get_count(const Json& doc, const std::string& key,
                      std::size_t fallback, std::int64_t minimum) {
  if (!doc.contains(key)) return fallback;
  const auto v = doc.at(key).as_int();
  require(v >= minimum, "workload: '" + key + "' must be >= " +
                            std::to_string(minimum));
  return static_cast<std::size_t>(v);
}

}  // namespace

const char* workload_kind_name(WorkloadKind kind) {
  for (const KindName& k : kKinds) {
    if (k.kind == kind) return k.name;
  }
  return "sp";
}

WorkloadSpec workload_from_json(const Json& doc) {
  require(doc.contains("type"), "workload: missing 'type'");
  WorkloadSpec spec;
  spec.kind = kind_from_string(doc.at("type").as_string());

  // Only keys the kind actually consumes are accepted, so a parameter on
  // the wrong kind (e.g. "extra_edges" on type "sp") fails loudly instead
  // of silently running a different experiment.
  std::vector<std::string> accepted = {"type", "seed"};
  switch (spec.kind) {
    case WorkloadKind::Sp:
      accepted.insert(accepted.end(),
                      {"tasks", "parallel_probability", "edge_data_mb"});
      break;
    case WorkloadKind::AlmostSp:
      accepted.insert(accepted.end(), {"tasks", "extra_edges",
                                       "parallel_probability",
                                       "edge_data_mb"});
      break;
    case WorkloadKind::Workflow:
      accepted.insert(accepted.end(), {"family", "width"});
      break;
    case WorkloadKind::WfCommons:
    case WorkloadKind::GraphFile:
      accepted.push_back("path");
      break;
  }
  doc.require_keys(
      std::string("workload type '") + workload_kind_name(spec.kind) + "'",
      accepted);

  spec.tasks = get_count(doc, "tasks", spec.tasks, 2);
  spec.extra_edges = get_count(doc, "extra_edges", spec.extra_edges, 0);
  spec.width = get_count(doc, "width", spec.width, 1);
  if (doc.contains("parallel_probability")) {
    spec.parallel_probability = doc.at("parallel_probability").as_double();
    require(spec.parallel_probability >= 0.0 &&
                spec.parallel_probability <= 1.0,
            "workload: 'parallel_probability' must be in [0, 1]");
  }
  if (doc.contains("edge_data_mb")) {
    spec.edge_data_mb = doc.at("edge_data_mb").as_double();
    require(spec.edge_data_mb >= 0.0,
            "workload: 'edge_data_mb' must be >= 0");
  }
  if (doc.contains("family")) {
    spec.family = doc.at("family").as_string();
    family_from_string(spec.family);  // validate eagerly
  }
  if (doc.contains("path")) spec.path = doc.at("path").as_string();
  const bool needs_path = spec.kind == WorkloadKind::WfCommons ||
                          spec.kind == WorkloadKind::GraphFile;
  require(!needs_path || !spec.path.empty(),
          std::string("workload: type '") + workload_kind_name(spec.kind) +
              "' needs a 'path'");
  if (doc.contains("seed")) {
    spec.has_seed = true;
    spec.seed = static_cast<std::uint64_t>(doc.at("seed").as_int());
  }
  return spec;
}

Json workload_to_json(const WorkloadSpec& spec) {
  Json doc = Json::object();
  doc.set("type", workload_kind_name(spec.kind));
  switch (spec.kind) {
    case WorkloadKind::AlmostSp:
      doc.set("tasks", spec.tasks);
      doc.set("extra_edges", spec.extra_edges);
      doc.set("parallel_probability", spec.parallel_probability);
      doc.set("edge_data_mb", spec.edge_data_mb);
      break;
    case WorkloadKind::Sp:
      doc.set("tasks", spec.tasks);
      doc.set("parallel_probability", spec.parallel_probability);
      doc.set("edge_data_mb", spec.edge_data_mb);
      break;
    case WorkloadKind::Workflow:
      doc.set("family", spec.family);
      doc.set("width", spec.width);
      break;
    case WorkloadKind::WfCommons:
    case WorkloadKind::GraphFile:
      doc.set("path", spec.path);
      break;
  }
  if (spec.has_seed) doc.set("seed", spec.seed);
  return doc;
}

std::vector<std::string> sweepable_parameters(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::Sp:
      return {"tasks"};
    case WorkloadKind::AlmostSp:
      return {"tasks", "extra_edges"};
    case WorkloadKind::Workflow:
      return {"width"};
    case WorkloadKind::WfCommons:
    case WorkloadKind::GraphFile:
      return {};
  }
  return {};
}

void apply_sweep_value(WorkloadSpec& spec, const std::string& parameter,
                       std::int64_t value) {
  const std::vector<std::string> accepted = sweepable_parameters(spec.kind);
  bool known = false;
  for (const std::string& p : accepted) {
    if (p == parameter) known = true;
  }
  if (!known) {
    std::string list;
    for (const std::string& p : accepted) {
      if (!list.empty()) list += ", ";
      list += p;
    }
    throw Error(std::string("workload type '") +
                workload_kind_name(spec.kind) + "' cannot sweep '" +
                parameter + "' (sweepable: " + (list.empty() ? "none" : list) +
                ")");
  }
  require(value >= 0, "sweep: negative value for '" + parameter + "'");
  if (parameter == "tasks") {
    require(value >= 2, "sweep: 'tasks' must be >= 2");
    spec.tasks = static_cast<std::size_t>(value);
  } else if (parameter == "extra_edges") {
    spec.extra_edges = static_cast<std::size_t>(value);
  } else if (parameter == "width") {
    require(value >= 1, "sweep: 'width' must be >= 1");
    spec.width = static_cast<std::size_t>(value);
  }
}

TaskGraph materialize_workload(const WorkloadSpec& spec, Rng& rng,
                               std::size_t instance,
                               const std::string& base_dir) {
  // A pinned workload seed derives an instance-specific stream so that
  // repetitions still differ (deterministically) from each other.
  Rng pinned;
  Rng* source = &rng;
  if (spec.has_seed) {
    std::uint64_t state = spec.seed + 0x9e3779b97f4a7c15ULL * (instance + 1);
    pinned.reseed(splitmix64(state));
    source = &pinned;
  }

  TaskGraph tg;
  switch (spec.kind) {
    case WorkloadKind::Sp:
    case WorkloadKind::AlmostSp: {
      SpGenParams params;
      params.parallel_probability = spec.parallel_probability;
      params.edge_data_mb = spec.edge_data_mb;
      tg.dag = generate_sp_dag(spec.tasks, *source, params);
      if (spec.kind == WorkloadKind::AlmostSp) {
        tg.dag = add_random_edges(tg.dag, spec.extra_edges, *source,
                                  spec.edge_data_mb);
      }
      tg.attrs = random_task_attrs(tg.dag, *source);
      break;
    }
    case WorkloadKind::Workflow: {
      WorkflowInstance inst = generate_workflow(
          family_from_string(spec.family), spec.width, *source);
      tg.dag = std::move(inst.dag);
      tg.attrs = std::move(inst.attrs);
      break;
    }
    case WorkloadKind::WfCommons:
      tg = import_wfcommons_json(
          read_text_file(resolve_path(base_dir, spec.path), "workload file"),
          *source);
      break;
    case WorkloadKind::GraphFile:
      tg = task_graph_from_json(
          read_text_file(resolve_path(base_dir, spec.path), "workload file"));
      break;
  }
  return tg;
}

}  // namespace spmap
