#include "mappers/run_api.hpp"

#include "util/thread_pool.hpp"

namespace spmap {

const char* to_string(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kConverged: return "converged";
    case TerminationReason::kBudgetExhausted: return "budget_exhausted";
    case TerminationReason::kDeadline: return "deadline";
    case TerminationReason::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* to_string(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kNone: return "none";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kWarm: return "warm";
  }
  return "unknown";
}

MapRequest merge_run_bounds(const MapRequest& baked, MapRequest request) {
  const auto tighter = [](std::size_t a, std::size_t b) {
    if (a == 0) return b;
    if (b == 0) return a;
    return a < b ? a : b;
  };
  if (baked.deadline_ms > 0.0 &&
      (request.deadline_ms <= 0.0 || baked.deadline_ms < request.deadline_ms)) {
    request.deadline_ms = baked.deadline_ms;
  }
  request.max_evaluations =
      tighter(baked.max_evaluations, request.max_evaluations);
  request.max_iterations =
      tighter(baked.max_iterations, request.max_iterations);
  return request;
}

PoolLease::PoolLease(const MapRequest& request, std::size_t threads) {
  if (request.pool != nullptr) {
    pool_ = request.pool;
  } else if (threads > 1) {
    owned_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_.get();
  }
}

PoolLease::~PoolLease() = default;

}  // namespace spmap
