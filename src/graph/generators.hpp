#pragma once
/// \file generators.hpp
/// Random task-graph generators used by the evaluation (Sections IV-B/IV-C).

#include <cstddef>

#include "graph/dag.hpp"
#include "util/rng.hpp"

namespace spmap {

/// Parameters for the random series-parallel generator.
struct SpGenParams {
  /// Probability that a growth step is a parallel operation; the paper uses
  /// a series:parallel ratio of 1:2, i.e. 2/3.
  double parallel_probability = 2.0 / 3.0;
  /// Payload assigned to every edge (paper: constant 100 MB).
  double edge_data_mb = kDefaultEdgeDataMb;
};

/// Generates a random directed series-parallel DAG with exactly `num_nodes`
/// nodes (paper Section IV-B): start from a single directed edge and apply
/// random series (node insertion on an edge) or parallel (edge duplication)
/// operations in the configured ratio until the node budget is reached;
/// redundant duplicate edges are removed at the end.
///
/// Requires num_nodes >= 2. The result always has a unique source and a
/// unique sink and is guaranteed to be two-terminal series-parallel.
Dag generate_sp_dag(std::size_t num_nodes, Rng& rng,
                    const SpGenParams& params = {});

/// Inserts `extra_edges` new edges into a copy of `dag`, each directed along
/// a random topological order so the result stays acyclic (paper Section
/// IV-C, "almost series-parallel" graphs). Duplicate edges are skipped; up to
/// 20 * extra_edges attempts are made, so on dense graphs fewer edges may be
/// inserted. Returns the augmented graph.
Dag add_random_edges(const Dag& dag, std::size_t extra_edges, Rng& rng,
                     double edge_data_mb = kDefaultEdgeDataMb);

/// Parameters for the layered random DAG generator (stress tests).
struct LayeredGenParams {
  std::size_t layers = 5;
  std::size_t min_width = 1;
  std::size_t max_width = 6;
  /// Probability of an edge between consecutive-layer node pairs.
  double edge_probability = 0.4;
  double edge_data_mb = kDefaultEdgeDataMb;
};

/// Random layered DAG: nodes are grouped in layers; edges connect consecutive
/// layers; every node is connected (no isolated nodes).
Dag generate_layered_dag(Rng& rng, const LayeredGenParams& params = {});

}  // namespace spmap
