#pragma once
/// \file decomposition_forest.hpp
/// Algorithm 1 of the paper: growing a forest of series-parallel
/// decomposition trees for a general DAG.
///
/// Starting from a virtual incoming edge (eps, s), a series operation is
/// grown along the graph. Where a node forks, a parallel operation is grown
/// by advancing a wavefront of active subtrees and merging subtrees that
/// reach the same end node. If the wavefront stalls (the graph is not
/// series-parallel), one active subtree is *cut*: it becomes its own tree in
/// the forest and the expected in-degree of its end node is reduced so the
/// remaining branches can proceed.
///
/// For a series-parallel input the result is a single decomposition tree and
/// `cuts == 0`; in general the forest covers every edge of the DAG exactly
/// once (cut trees plus the core tree).

#include <cstddef>

#include "graph/dag.hpp"
#include "sp/sp_tree.hpp"
#include "util/rng.hpp"

namespace spmap {

/// Strategy for choosing which wavefront subtree to cut when the wavefront
/// stalls (paper line 38: "Choose any Tc"). The paper notes a well-designed
/// heuristic may improve the mapping; the ablation bench compares these.
enum class CutPolicy {
  Random,           ///< Paper default: uniformly random active subtree.
  SmallestSubtree,  ///< Cut the subtree with the fewest edges (lose least).
  LargestSubtree,   ///< Cut the subtree with the most edges.
  FirstActive,      ///< Deterministic: first subtree in wavefront order.
};

struct DecompositionResult {
  SpForest forest;        ///< Core tree last; cut subtrees in cut order.
  std::size_t cuts = 0;   ///< Number of cut operations performed.
  /// Edges that could not be attributed to any grown tree (each becomes a
  /// single-leaf root). Zero for well-formed inputs; tracked defensively.
  std::size_t orphan_edges = 0;
};

/// Runs Algorithm 1 on `dag`, which must have a unique source and a unique
/// sink (normalize_source_sink() first if needed). `rng` is only used by
/// CutPolicy::Random; pass any seeded generator.
DecompositionResult grow_decomposition_forest(
    const Dag& dag, Rng& rng, CutPolicy policy = CutPolicy::Random);

}  // namespace spmap
