#include "workflows/workflows.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "mappers/decomposition.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "sp/recognizer.hpp"

namespace spmap {
namespace {

TEST(Workflows, AllFamiliesGenerateValidDags) {
  Rng rng(1);
  for (const WorkflowFamily family : all_workflow_families()) {
    const WorkflowInstance inst = generate_workflow(family, 12, rng);
    EXPECT_NO_THROW(inst.dag.validate()) << inst.name;
    EXPECT_NO_THROW(inst.attrs.validate(inst.dag)) << inst.name;
    EXPECT_GT(inst.dag.node_count(), 10u) << inst.name;
    EXPECT_GT(inst.dag.edge_count(), 0u) << inst.name;
    EXPECT_EQ(weakly_connected_components(inst.dag), 1u) << inst.name;
  }
}

TEST(Workflows, FamilyNamesMatchTable1) {
  const std::set<std::string> expected{
      "1000genome", "blast",      "bwa",    "cycles", "epigenomics",
      "montage",    "seismology", "soykb",  "srasearch"};
  std::set<std::string> got;
  for (const WorkflowFamily f : all_workflow_families()) {
    got.insert(workflow_family_name(f));
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(table1_workflow_families().size(), 7u);
}

TEST(Workflows, WidthScalesTaskCount) {
  Rng rng(2);
  for (const WorkflowFamily family : all_workflow_families()) {
    const auto small = generate_workflow(family, 5, rng);
    const auto large = generate_workflow(family, 40, rng);
    EXPECT_LT(small.dag.node_count(), large.dag.node_count())
        << workflow_family_name(family);
  }
}

TEST(Workflows, EpigenomicsIsAlmostSeriesParallel) {
  // The paper singles out epigenomics as "long chains executed in parallel,
  // forming a series-parallel graph".
  Rng rng(3);
  const auto inst = generate_workflow(WorkflowFamily::Epigenomics, 12, rng);
  const auto norm = normalize_source_sink(inst.dag);
  EXPECT_TRUE(is_series_parallel(norm.dag));
}

TEST(Workflows, MontageHasHeavyTail) {
  // A few end-of-pipeline tasks (mBgModel, mAdd) must dominate per-task
  // compute demand (the paper's explanation for PEFT doing well there).
  Rng rng(4);
  const auto inst = generate_workflow(WorkflowFamily::Montage, 20, rng);
  double max_complexity = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < inst.attrs.size(); ++i) {
    max_complexity = std::max(max_complexity, inst.attrs.complexity[i]);
    sum += inst.attrs.complexity[i];
  }
  // The heaviest task alone carries a sizable share of the total work.
  EXPECT_GT(max_complexity / sum, 0.05);
}

TEST(Workflows, BenchmarkSetSizesAreGraded) {
  Rng rng(5);
  const auto set =
      workflow_benchmark_set(WorkflowFamily::Cycles, 4, 64, rng);
  ASSERT_EQ(set.size(), 4u);
  for (std::size_t i = 0; i + 1 < set.size(); ++i) {
    EXPECT_LE(set[i].dag.node_count(), set[i + 1].dag.node_count());
  }
}

TEST(Workflows, NegativeControlsResistAcceleration) {
  // bwa and seismology: no algorithm should find a significant improvement
  // (paper Section IV-D) — verify for the decomposition mappers.
  Rng rng(6);
  const Platform platform = reference_platform();
  for (const WorkflowFamily family :
       {WorkflowFamily::Bwa, WorkflowFamily::Seismology}) {
    const auto inst = generate_workflow(family, 10, rng);
    const CostModel cost(inst.dag, inst.attrs, platform);
    const Evaluator eval(cost);
    const double base = eval.default_mapping_makespan();
    auto sp = make_series_parallel_mapper(inst.dag, rng, true);
    const MapperResult r = sp->map(eval);
    const double improvement = (base - r.predicted_makespan) / base;
    EXPECT_LT(improvement, 0.08) << workflow_family_name(family);
  }
}

TEST(Workflows, AcceleratableFamiliesImprove) {
  // Epigenomics and montage must allow double-digit improvements.
  Rng rng(7);
  const Platform platform = reference_platform();
  for (const WorkflowFamily family :
       {WorkflowFamily::Epigenomics, WorkflowFamily::Montage}) {
    const auto inst = generate_workflow(family, 10, rng);
    const CostModel cost(inst.dag, inst.attrs, platform);
    const Evaluator eval(cost);
    const double base = eval.default_mapping_makespan();
    auto sp = make_series_parallel_mapper(inst.dag, rng, true);
    const MapperResult r = sp->map(eval);
    const double improvement = (base - r.predicted_makespan) / base;
    EXPECT_GT(improvement, 0.05) << workflow_family_name(family);
  }
}

TEST(Workflows, DeterministicForSameSeed) {
  Rng a(9);
  Rng b(9);
  const auto i1 = generate_workflow(WorkflowFamily::Soykb, 8, a);
  const auto i2 = generate_workflow(WorkflowFamily::Soykb, 8, b);
  ASSERT_EQ(i1.dag.node_count(), i2.dag.node_count());
  ASSERT_EQ(i1.dag.edge_count(), i2.dag.edge_count());
  for (std::size_t i = 0; i < i1.attrs.size(); ++i) {
    EXPECT_DOUBLE_EQ(i1.attrs.complexity[i], i2.attrs.complexity[i]);
  }
}

TEST(Workflows, WidthZeroRejected) {
  Rng rng(10);
  EXPECT_THROW(generate_workflow(WorkflowFamily::Blast, 0, rng), Error);
}

}  // namespace
}  // namespace spmap
