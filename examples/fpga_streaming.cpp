/// FPGA dataflow streaming and the single-node local minimum.
///
///   ./example_fpga_streaming
///
/// Reproduces, on a hand-built pipeline, the effect that motivates
/// series-parallel decomposition mapping (paper Sections III-B/III-C):
/// when transfers are expensive, re-mapping any *single* task to the FPGA
/// makes things worse, so single-node decomposition is stuck at the all-CPU
/// mapping — but moving the whole chain at once unlocks dataflow streaming
/// and a large win.

#include <cstdio>

#include "mappers/registry.hpp"
#include "model/platform.hpp"

using namespace spmap;

namespace {

Platform slow_link_platform() {
  Platform p;
  Device cpu;
  cpu.name = "host CPU";
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 1.0;
  cpu.lane_gops = 1.0;
  const DeviceId c = p.add_device(cpu);
  Device fpga;
  fpga.name = "FPGA";
  fpga.kind = DeviceKind::Fpga;
  fpga.area_budget = 1000.0;
  fpga.stream_gops_per_streamability = 1.0;
  fpga.stream_fill_fraction = 0.1;
  const DeviceId f = p.add_device(fpga);
  p.set_link(c, f, 0.1, 0.0);  // 0.1 GB/s: a 100 MB hop costs a second
  return p;
}

}  // namespace

int main() {
  constexpr std::size_t kStages = 6;
  Dag dag(kStages);
  for (std::uint32_t i = 0; i + 1 < kStages; ++i) {
    dag.add_edge(NodeId(i), NodeId(i + 1), 100.0);
  }
  TaskAttrs attrs;
  attrs.resize(kStages);
  for (std::size_t i = 0; i < kStages; ++i) {
    attrs.complexity[i] = 10.0;        // 1 s per stage on the CPU
    attrs.parallelizability[i] = 0.0;  // hostile to thread parallelism
    attrs.streamability[i] = 10.0;     // excellent dataflow kernels
    attrs.area[i] = 10.0;
  }

  const Platform platform = slow_link_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  const double baseline = eval.default_mapping_makespan();
  std::printf("all-CPU pipeline makespan            : %6.2f s\n", baseline);

  // Moving one interior stage: pays two 1 s transfers to save 0.9 s.
  Mapping one(kStages, DeviceId(0u));
  one[NodeId(2)] = DeviceId(1u);
  std::printf("stage 2 alone on the FPGA            : %6.2f s  (worse!)\n",
              eval.evaluate(one));

  // The whole chain: no boundary transfers and the stages stream.
  const Mapping whole(kStages, DeviceId(1u));
  std::printf("whole chain on the FPGA (streaming)  : %6.2f s\n",
              eval.evaluate(whole));

  Rng rng(1);
  auto sn = MapperRegistry::instance().create("sn", dag, rng);
  auto sp = MapperRegistry::instance().create("sp", dag, rng);
  const MapperResult rs = sn->map(eval);
  const MapperResult rp = sp->map(eval);
  std::printf("\nSingleNode decomposition finds       : %6.2f s  "
              "(stuck at the local minimum)\n",
              rs.predicted_makespan);
  std::printf("SeriesParallel decomposition finds   : %6.2f s  "
              "(%.0fx faster than all-CPU)\n",
              rp.predicted_makespan, baseline / rp.predicted_makespan);
  return 0;
}
