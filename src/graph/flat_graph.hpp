#pragma once
/// \file flat_graph.hpp
/// Flat CSR (compressed sparse row) view of a Dag.
///
/// `Dag` keeps adjacency as nested `vector<vector<EdgeId>>`, which is
/// convenient to build but costs two pointer chases plus an edge-record
/// lookup per adjacency step. Hot paths that walk the whole graph thousands
/// of times (the evaluator, rank computations) want the adjacency, endpoint
/// and payload data in contiguous index arrays instead. `FlatGraph` is that
/// view: built once from a Dag, immutable afterwards, sharing nothing with
/// the source graph.
///
/// Layout: for each node `v`, its in-edges occupy the contiguous span
/// `[in_offset[v], in_offset[v+1])` of the `in_*` arrays (and likewise for
/// out-edges). Spans preserve the Dag's adjacency order, so any algorithm
/// that folds over `dag.in_edges(v)` left to right produces bit-identical
/// results when folding over the flat span instead.

#include <cstdint>
#include <vector>

#include "graph/dag.hpp"

namespace spmap {

class FlatGraph {
 public:
  FlatGraph() = default;
  /// Builds the CSR arrays from `dag` (O(V + E)); no reference is retained.
  explicit FlatGraph(const Dag& dag);

  std::size_t node_count() const { return node_count_; }
  std::size_t edge_count() const { return in_src_.size(); }

  // ---- in-edge CSR (indexed by the node's in-span) ----

  /// First in-edge slot of node `v`; `in_end(v)` is one past the last.
  std::uint32_t in_begin(NodeId v) const { return in_offset_[v.v]; }
  std::uint32_t in_end(NodeId v) const { return in_offset_[v.v + 1]; }
  /// Producer node of in-edge slot `k`.
  std::uint32_t in_src(std::uint32_t k) const { return in_src_[k]; }
  /// Payload of in-edge slot `k` (MB).
  double in_data_mb(std::uint32_t k) const { return in_data_mb_[k]; }
  /// Dag edge id of in-edge slot `k`.
  EdgeId in_edge(std::uint32_t k) const { return EdgeId(in_edge_[k]); }

  // ---- out-edge CSR ----

  std::uint32_t out_begin(NodeId v) const { return out_offset_[v.v]; }
  std::uint32_t out_end(NodeId v) const { return out_offset_[v.v + 1]; }
  /// Consumer node of out-edge slot `k`.
  std::uint32_t out_dst(std::uint32_t k) const { return out_dst_[k]; }
  double out_data_mb(std::uint32_t k) const { return out_data_mb_[k]; }
  EdgeId out_edge(std::uint32_t k) const { return EdgeId(out_edge_[k]); }

  // ---- raw arrays (for tight loops that index directly) ----

  const std::uint32_t* in_offset_data() const { return in_offset_.data(); }
  const std::uint32_t* in_src_data() const { return in_src_.data(); }
  const double* in_data_mb_data() const { return in_data_mb_.data(); }

 private:
  std::size_t node_count_ = 0;
  std::vector<std::uint32_t> in_offset_;   // node_count + 1
  std::vector<std::uint32_t> in_src_;      // edge_count
  std::vector<double> in_data_mb_;         // edge_count
  std::vector<std::uint32_t> in_edge_;     // edge_count
  std::vector<std::uint32_t> out_offset_;  // node_count + 1
  std::vector<std::uint32_t> out_dst_;     // edge_count
  std::vector<double> out_data_mb_;        // edge_count
  std::vector<std::uint32_t> out_edge_;    // edge_count
};

}  // namespace spmap
