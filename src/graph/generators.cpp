#include "graph/generators.hpp"

#include <algorithm>
#include <utility>

#include "graph/algorithms.hpp"

namespace spmap {

Dag generate_sp_dag(std::size_t num_nodes, Rng& rng,
                    const SpGenParams& params) {
  require(num_nodes >= 2, "generate_sp_dag: need at least 2 nodes");
  require(params.parallel_probability >= 0.0 &&
              params.parallel_probability < 1.0,
          "generate_sp_dag: parallel_probability outside [0, 1)");

  // Grow an edge multiset by series (split an edge with a fresh node) and
  // parallel (duplicate an edge) operations, starting from a single edge.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 1}};
  std::uint32_t next_node = 2;
  while (next_node < num_nodes) {
    const std::size_t pick = rng.below(edges.size());
    if (rng.chance(params.parallel_probability)) {
      edges.push_back(edges[pick]);
    } else {
      const auto [u, v] = edges[pick];
      const std::uint32_t x = next_node++;
      edges[pick] = {u, x};
      edges.push_back({x, v});
    }
  }

  Dag multi(num_nodes);
  for (const auto& [u, v] : edges) {
    multi.add_edge(NodeId(u), NodeId(v), params.edge_data_mb);
  }
  // Paper: "redundant edges are removed from the resulting DAG" — duplicate
  // parallel edges that were never split collapse into one.
  Dag out = remove_duplicate_edges(multi);
  out.validate();
  return out;
}

Dag add_random_edges(const Dag& dag, std::size_t extra_edges, Rng& rng,
                     double edge_data_mb) {
  Dag out = dag;
  const auto order = random_topological_order(dag, rng);
  const std::size_t n = order.size();
  if (n < 2) return out;

  std::size_t added = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * std::max<std::size_t>(extra_edges, 1);
  while (added < extra_edges && attempts < max_attempts) {
    ++attempts;
    std::size_t i = rng.below(n);
    std::size_t j = rng.below(n);
    if (i == j) continue;
    if (i > j) std::swap(i, j);
    const NodeId u = order[i];
    const NodeId v = order[j];
    if (out.has_edge(u, v)) continue;
    out.add_edge(u, v, edge_data_mb);
    ++added;
  }
  out.validate();
  return out;
}

Dag generate_layered_dag(Rng& rng, const LayeredGenParams& params) {
  require(params.layers >= 1, "generate_layered_dag: need >= 1 layer");
  require(params.min_width >= 1 && params.min_width <= params.max_width,
          "generate_layered_dag: bad width range");

  Dag dag;
  std::vector<std::vector<NodeId>> layers(params.layers);
  for (auto& layer : layers) {
    const std::size_t width = static_cast<std::size_t>(rng.range(
        static_cast<std::int64_t>(params.min_width),
        static_cast<std::int64_t>(params.max_width)));
    for (std::size_t i = 0; i < width; ++i) layer.push_back(dag.add_node());
  }
  for (std::size_t l = 0; l + 1 < params.layers; ++l) {
    for (NodeId u : layers[l]) {
      bool connected = false;
      for (NodeId v : layers[l + 1]) {
        if (rng.chance(params.edge_probability)) {
          dag.add_edge(u, v, params.edge_data_mb);
          connected = true;
        }
      }
      if (!connected) {
        dag.add_edge(u, rng.pick(layers[l + 1]), params.edge_data_mb);
      }
    }
    // Guarantee every next-layer node has an input.
    for (NodeId v : layers[l + 1]) {
      if (dag.in_degree(v) == 0) {
        dag.add_edge(rng.pick(layers[l]), v, params.edge_data_mb);
      }
    }
  }
  dag.validate();
  return dag;
}

}  // namespace spmap
