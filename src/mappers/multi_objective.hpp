#pragma once
/// \file multi_objective.hpp
/// Multi-objective (makespan, energy) task mapping — the extension the
/// paper points to in Section II-A: NSGA-II is natively multi-objective,
/// and the decomposition principle transfers via scalarization.
///
/// Two optimizers are provided:
///  * `MoNsga2Mapper` — a faithful NSGA-II (Deb et al. [14]): fast
///    non-dominated sorting, crowding distance, binary tournament on
///    (rank, crowding), elitist environmental selection. Returns the final
///    non-dominated front.
///  * `decomposition_pareto_sweep` — runs the decomposition mapper on a
///    family of weighted-sum scalarizations of (makespan, energy) and
///    returns the non-dominated union, demonstrating that the greedy
///    model-based replacement principle carries over.

#include <vector>

#include "mappers/decomposition.hpp"
#include "mappers/nsga2.hpp"
#include "model/energy.hpp"

namespace spmap {

struct ParetoPoint {
  Mapping mapping;
  double makespan = 0.0;
  double energy = 0.0;
};

/// Non-dominated subset of `points` (minimization in both objectives),
/// sorted by ascending makespan; duplicates collapse.
std::vector<ParetoPoint> pareto_filter(std::vector<ParetoPoint> points);

/// True iff `a` dominates `b` (<= in both objectives, < in at least one).
bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// NSGA-II over (makespan, energy).
class MoNsga2Mapper {
 public:
  explicit MoNsga2Mapper(Nsga2Params params = {}) : params_(params) {}

  /// Returns the non-dominated front of the final population.
  std::vector<ParetoPoint> optimize(const Evaluator& eval) const;

 private:
  Nsga2Params params_;
};

/// Decomposition mapping under weighted-sum scalarizations: for each weight
/// w in `weights`, minimize w * makespan/ms0 + (1-w) * energy/e0 (both
/// normalized by the all-CPU baseline) with the series-parallel FirstFit
/// mapper; returns the non-dominated union of the solutions.
std::vector<ParetoPoint> decomposition_pareto_sweep(
    const Evaluator& eval, const Dag& dag, Rng& rng,
    const std::vector<double>& weights = {0.0, 0.25, 0.5, 0.75, 1.0});

}  // namespace spmap
