#pragma once
/// \file algorithms.hpp
/// Core DAG algorithms: topological orders, reachability, transitive
/// reduction, duplicate-edge removal, longest paths and source/sink
/// normalization.

#include <optional>
#include <vector>

#include "graph/dag.hpp"
#include "util/rng.hpp"

namespace spmap {

/// Deterministic topological order (Kahn, smallest node id first).
/// Throws spmap::Error if the graph has a cycle.
std::vector<NodeId> topological_order(const Dag& dag);

/// Breadth-first (level) topological order: nodes grouped by their longest
/// distance from any source, id-ordered within a level. This is the paper's
/// "breadth-first schedule" order (Section IV-A).
std::vector<NodeId> bfs_order(const Dag& dag);

/// Longest-distance level of each node (sources are level 0).
std::vector<std::size_t> node_levels(const Dag& dag);

/// Random topological order: Kahn's algorithm with uniform choice among the
/// ready nodes (used for the paper's "100 randomly generated schedules").
std::vector<NodeId> random_topological_order(const Dag& dag, Rng& rng);

/// True if `to` is reachable from `from` via directed edges.
bool reachable(const Dag& dag, NodeId from, NodeId to);

/// For each node, whether it is reachable from `from` (including itself).
std::vector<bool> reachable_set(const Dag& dag, NodeId from);

/// Number of weakly connected components.
std::size_t weakly_connected_components(const Dag& dag);

/// Returns a copy of the graph with duplicate (same src, same dst) edges
/// merged; the surviving edge keeps the maximum payload of its duplicates.
Dag remove_duplicate_edges(const Dag& dag);

/// Returns the transitive reduction: the unique minimal subgraph of a DAG
/// with the same reachability. Duplicate edges are removed as a side effect.
/// O(V * E); intended for generator post-processing, not hot paths.
Dag transitive_reduction(const Dag& dag);

/// Result of source/sink normalization.
struct Normalized {
  Dag dag;                  ///< Graph with exactly one source and one sink.
  NodeId source;            ///< The (possibly virtual) unique source.
  NodeId sink;              ///< The (possibly virtual) unique sink.
  bool added_source = false;  ///< True if `source` is a virtual node.
  bool added_sink = false;    ///< True if `sink` is a virtual node.
};

/// Ensures a single start and end node (paper Section III-C: "we may just
/// insert new start and end nodes"). Virtual nodes are labeled "__source" /
/// "__sink" and connected with zero-payload edges so they do not perturb the
/// cost model. Node ids of the original graph are preserved.
Normalized normalize_source_sink(const Dag& dag);

/// Longest path length in edges (the "depth" of the DAG).
std::size_t longest_path_edges(const Dag& dag);

}  // namespace spmap
