// Positive control for the thread-safety compile-fail check (see
// cmake/ThreadSafetyAnalysis.cmake): a correctly locked access through
// the annotated vocabulary. If THIS translation unit stops compiling
// under -Werror=thread-safety, the harness is broken (or the vocabulary
// regressed), and the paired "guarded_bad" failure proves nothing.
#include "util/mutex.hpp"

namespace {

class Counter {
 public:
  void increment() {
    spmap::MutexLock lock(mutex_);
    ++value_;
  }

  int value() const {
    spmap::MutexLock lock(mutex_);
    return value_;
  }

 private:
  mutable spmap::Mutex mutex_;
  int value_ SPMAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  return counter.value() == 1 ? 0 : 1;
}
