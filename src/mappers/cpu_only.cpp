#include "mappers/cpu_only.hpp"

#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"

namespace spmap {

MapperResult CpuOnlyMapper::map(const Evaluator& eval) {
  MapperResult result;
  result.mapping = eval.default_mapping();
  const std::size_t before = eval.evaluation_count();
  result.predicted_makespan = eval.evaluate(result.mapping);
  result.evaluations = eval.evaluation_count() - before;
  return result;
}

void detail::register_cpu_only_mapper(MapperRegistry& registry) {
  MapperEntry entry;
  entry.name = "cpu";
  entry.display_name = "CpuOnly";
  entry.description =
      "All-CPU baseline: every task on the default device (the reference "
      "point of the paper's relative-improvement metric)";
  entry.factory = [](const MapperContext&) {
    return std::make_unique<CpuOnlyMapper>();
  };
  registry.add(std::move(entry));
}

}  // namespace spmap
