#pragma once
/// \file table.hpp
/// Output helpers for the experiment harness: TSV series (machine readable,
/// one row per x-value) and aligned console tables (human readable).

#include <iosfwd>
#include <string>
#include <vector>

namespace spmap {

/// Collects rows of a fixed-width table and renders them either as TSV or as
/// an aligned, human-readable table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  std::size_t columns() const { return header_.size(); }
  std::size_t rows() const { return rows_.size(); }

  /// Appends a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats cells from doubles with the given precision.
  void add_row(double x, const std::vector<double>& values, int precision = 4);

  void write_tsv(std::ostream& os) const;
  void write_aligned(std::ostream& os) const;

  /// Renders the aligned form into a string.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-zero trimming).
std::string format_double(double v, int precision);

/// Formats seconds adaptively (us / ms / s) for human-readable summaries.
std::string format_duration(double seconds);

}  // namespace spmap
