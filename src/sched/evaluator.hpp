#pragma once
/// \file evaluator.hpp
/// Linear-time model-based makespan evaluation (paper Sections II-B, III-A).
///
/// Given a mapping and a topological schedule order, the evaluator simulates
/// the system once, in O(V + E):
///  * each device executes its tasks in schedule order, at most one task
///    per execution slot at a time (a multicore CPU has several slots, so
///    independent tasks overlap even in the all-CPU baseline);
///  * an edge between tasks on different devices pays latency + volume /
///    bandwidth and occupies the *link* of both endpoint devices for its
///    duration — concurrent transfers through one PCIe attachment serialize
///    (the data-intensive modeling assumption of Wilhelm et al. [5]);
///    same-device edges are free;
///  * an edge between two tasks co-mapped on an FPGA *streams*: the consumer
///    may start `fill_fraction * exec(producer)` after the producer START
///    (pipeline overlap) instead of waiting for the producer to finish, and
///    it does not contend for the device (dataflow stages co-reside in
///    fabric);
///  * a mapping that overflows any FPGA's area budget is infeasible and
///    evaluates to +infinity.
///
/// Following Section IV-A, the makespan of a mapping is the minimum over a
/// breadth-first schedule and a configurable number of random topological
/// schedules (the paper uses 100 for reporting; the mapping inner loop uses
/// the breadth-first schedule only by default).
///
/// ## The flat core
///
/// This is the hot path of every search mapper (thousands to millions of
/// calls per experiment), so the simulation never touches `Dag` or
/// `CostModel` inside the loop. At construction the evaluator builds a
/// `FlatGraph` CSR view of the graph and, per prepared schedule order, a
/// *walk plan*: one compact record per node (node id, device-strided offset
/// into the execution-time table, in-edge span) laid out in walk order.
/// Evaluating a mapping is then a branch-light linear sweep over contiguous
/// arrays. The arithmetic is performed in exactly the order of the naive
/// definition (see sched/reference_evaluator.hpp), so flat results are
/// bit-identical to the reference implementation.
///
/// ## Thread-safety contract
///
/// The evaluator itself is immutable after construction. All simulation
/// scratch lives in an explicit `EvalContext`:
///  * `evaluate(mapping, ctx)` / `evaluate_order(mapping, order, ctx)` are
///    const and safe to call concurrently as long as each thread uses its
///    own context;
///  * the context-free convenience overloads (`evaluate(mapping)`, ...)
///    share one internal scratch context plus the `evaluation_count()` /
///    `last_*_times()` counters, and are therefore NOT thread-safe — they
///    exist for the single-threaded call sites (mappers' serial paths,
///    schedule extraction, tests);
///  * `evaluate_batch` runs the context overload with one persistent
///    private context per worker and a deterministic static partition, so
///    its results are bit-identical for every thread count, including the
///    serial path. It is itself a single-caller API (internally parallel,
///    but it shares the counters above): never call it concurrently with
///    itself or the convenience overloads.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/flat_graph.hpp"
#include "model/cost_model.hpp"
#include "util/thread_pool.hpp"

namespace spmap {

struct EvalParams {
  /// Random schedules evaluated in addition to the breadth-first one.
  std::size_t random_orders = 0;
  /// Seed for generating the random schedules (fixed => reproducible).
  std::uint64_t seed = 0x5ced01e5;
};

/// Value returned for infeasible mappings.
inline constexpr double kInfeasible = std::numeric_limits<double>::infinity();

/// Per-thread (or per-call) simulation scratch. Reused across evaluations;
/// buffers grow on first use with a given evaluator. A context may only be
/// used with one evaluator at a time and by one thread at a time.
///
/// All four per-sweep arrays (start, finish, slot_ready, link_ready) live
/// as plain-double segments of one arena allocation, in that order. The
/// structure-of-arrays layout keeps each inner loop of `evaluate_plan`
/// streaming over one contiguous double array (the device-frontier minimum
/// scans slot_ready linearly, the transfer reduction reads finish/link_ready
/// linearly), which is what lets the compiler vectorize them. Segment
/// offsets are rounded up to a cache line (8 doubles) so segments never
/// share a line with each other, and slot_ready/link_ready are adjacent so
/// the per-evaluation reset is a single fill. Segments are addressed by
/// offset, not pointer, so contexts copy and move safely (the pool's
/// per-worker context vector relies on this).
class EvalContext {
 public:
  /// Single-order evaluations performed through this context.
  std::size_t evaluations() const { return evals_; }

 private:
  friend class Evaluator;

  /// (Re)shapes the arena for a graph with `nodes` nodes on a platform
  /// with `slots` total execution slots across `devices` devices. No-op
  /// when the shape is unchanged.
  void layout(std::size_t nodes, std::size_t slots, std::size_t devices);

  double* start() { return arena_.data(); }
  double* finish() { return arena_.data() + finish_off_; }
  double* slot_ready() { return arena_.data() + slot_off_; }
  double* link_ready() { return arena_.data() + link_off_; }
  const double* start() const { return arena_.data(); }
  const double* finish() const { return arena_.data() + finish_off_; }

  std::vector<double> arena_;  // start | finish | slot_ready | link_ready
  std::size_t nodes_ = 0, slots_ = 0, devices_ = 0;  // current shape
  std::size_t finish_off_ = 0, slot_off_ = 0, link_off_ = 0;
  std::size_t reset_len_ = 0;  // doubles to zero from slot_ready() per eval
  std::size_t evals_ = 0;
};

class Evaluator {
 public:
  /// The cost model must outlive the evaluator. Schedule orders, the flat
  /// graph view and the per-order walk plans are built once here.
  explicit Evaluator(const CostModel& cost, EvalParams params = {});

  const CostModel& cost() const { return *cost_; }
  const Dag& dag() const { return cost_->dag(); }
  const FlatGraph& flat_graph() const { return flat_; }

  // ---- thread-safe evaluation (explicit context) ----

  /// Makespan of `mapping`: minimum over the prepared schedule orders.
  /// +infinity if infeasible. Safe to call concurrently with distinct
  /// contexts.
  double evaluate(const Mapping& mapping, EvalContext& ctx) const;

  /// Makespan of `mapping` under one given topological order. Orders taken
  /// from `orders()` use the precomputed walk plan; foreign orders pay a
  /// one-off plan construction.
  double evaluate_order(const Mapping& mapping,
                        const std::vector<NodeId>& order,
                        EvalContext& ctx) const;

  // ---- single-threaded convenience (shared internal scratch) ----

  /// Makespans of a batch of mappings, in order. With a pool the batch is
  /// split into fixed-size chunks dealt round-robin to the workers (each
  /// item still evaluated independently with a persistent per-worker
  /// context), so one expensive region of the batch cannot serialize the
  /// call on a single worker; the chunk→worker map depends only on the
  /// batch size, so results are bit-identical to the serial path for every
  /// thread count. `pool == nullptr` (or a 1-thread pool) runs serially on
  /// the caller. The batch is internally parallel but a *single-caller*
  /// API: it reuses internal scratch and aggregates into
  /// evaluation_count(), so do not call it (or the other convenience
  /// overloads) concurrently from several threads.
  std::vector<double> evaluate_batch(std::span<const Mapping> mappings,
                                     ThreadPool* pool = nullptr) const;

  /// As the context overloads, but using the evaluator's internal scratch
  /// context. NOT thread-safe; see the contract above.
  double evaluate(const Mapping& mapping) const;
  double evaluate_order(const Mapping& mapping,
                        const std::vector<NodeId>& order) const;

  /// Makespan with every task on the platform's default device — the
  /// baseline of the paper's "relative improvement" metric.
  double default_mapping_makespan() const;

  /// The default (all-CPU) mapping itself.
  Mapping default_mapping() const;

  /// Number of single-order evaluations performed so far through the
  /// convenience overloads and evaluate_batch (profiling aid). Evaluations
  /// through caller-owned contexts are counted in EvalContext::evaluations.
  std::size_t evaluation_count() const { return eval_count_; }

  /// Per-task start/finish times of the most recent *convenience-overload*
  /// evaluate_order()/evaluate() call (schedule extraction; see
  /// sched/schedule.hpp). Context and batch evaluations do not touch
  /// these. Empty before the first such call.
  std::span<const double> last_start_times() const {
    return {scratch_.start(), scratch_.nodes_};
  }
  std::span<const double> last_finish_times() const {
    return {scratch_.finish(), scratch_.nodes_};
  }

  const std::vector<std::vector<NodeId>>& orders() const { return orders_; }

 private:
  /// The incremental delta-evaluation engine reuses the walk plans and the
  /// flattened device/link tables (sched/incremental_evaluator.hpp).
  friend class IncrementalEvaluator;

  /// One node of a walk plan: everything the sweep needs, in walk order.
  struct PlanNode {
    std::uint32_t node;         ///< node id (index into start/finish)
    std::uint32_t exec_offset;  ///< node * device_count, into exec table
    std::uint32_t in_begin;     ///< in-edge span in the FlatGraph arrays
    std::uint32_t in_end;
  };
  using WalkPlan = std::vector<PlanNode>;

  WalkPlan build_plan(const std::vector<NodeId>& order) const;
  /// The flat sweep. Infeasibility is NOT checked here.
  double evaluate_plan(const Mapping& mapping, const WalkPlan& plan,
                       EvalContext& ctx) const;

  const CostModel* cost_;
  FlatGraph flat_;
  std::vector<std::vector<NodeId>> orders_;  // [0] = breadth-first
  std::vector<WalkPlan> plans_;              // plans_[i] walks orders_[i]
  std::vector<std::size_t> slot_offset_;     // device -> first slot index
  // Flattened device/link tables so the sweep never calls into Platform.
  std::size_t device_count_ = 0;
  const double* exec_ = nullptr;            // cost model's [node][device]
  std::vector<std::uint8_t> dev_is_fpga_;   // per device
  std::vector<double> dev_fill_;            // per device, stream fill frac
  std::vector<double> link_latency_;        // [from][to], 0 on diagonal
  std::vector<double> link_bandwidth_;      // [from][to], 1 on diagonal
  std::vector<double> in_mb_over_1000_;     // per in-edge slot: data_mb/1000

  mutable EvalContext scratch_;  // backs the convenience overloads
  mutable std::vector<EvalContext> batch_contexts_;  // per-worker, reused
  mutable std::size_t eval_count_ = 0;
};

}  // namespace spmap
