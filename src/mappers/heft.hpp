#pragma once
/// \file heft.hpp
/// Heterogeneous Earliest Finish Time (Topcuoglu et al. [6]).
///
/// Upward ranks are computed from device-averaged execution times and
/// pair-averaged communication times; tasks are then scheduled in rank order
/// onto the device minimizing their earliest finish time, with an
/// insertion-based policy on per-device timelines.
///
/// FPGA area budgets are respected greedily: a device whose remaining area
/// cannot host the task is not considered.

#include "mappers/mapper.hpp"

namespace spmap {

class HeftMapper final : public Mapper {
 public:
  using Mapper::map;
  std::string name() const override { return "HEFT"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;
};

/// Upward rank of every task (exposed for tests and PEFT reuse):
/// rank_u(i) = w_mean(i) + max over successors j of (c_mean(i,j) +
/// rank_u(j)).
std::vector<double> heft_upward_ranks(const CostModel& cost);

}  // namespace spmap
