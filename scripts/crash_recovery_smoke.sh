#!/usr/bin/env bash
# Crash-recovery smoke for the serving daemon (docs/SERVING.md).
#
# Two phases, both against a journaled daemon (spmap-journal/1):
#
#   1. SIGKILL-and-restart demo: submit a pinned job, SIGKILL the daemon
#      mid-flight, restart it on the same journal, and assert the job is
#      still answerable — re-enqueued to completion, with the terminal
#      status surviving a *second* restart verbatim.
#
#   2. Chaos supervisor: run `spmap_loadgen --chaos --verify` while this
#      script SIGKILLs and restarts the daemon several times mid-run.
#      The loadgen exits nonzero unless every acknowledged request is
#      recorded terminal exactly once (lost=0, duplicated=0) and every
#      completed request re-runs locally bit-identically (mismatches=0).
#
# Usage: scripts/crash_recovery_smoke.sh [BUILD_DIR]
#   BUILD_DIR defaults to ./build. Optional env:
#     SPMAP_SMOKE_RESTARTS   daemon kills in phase 2 (default 3)
#     SPMAP_SMOKE_REQUESTS   chaos requests (default 48)
#     SPMAP_FAILPOINTS       forwarded to the daemon (fault injection)

set -euo pipefail

BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/spmap_cli"
LOADGEN="$BUILD_DIR/spmap_loadgen"
RESTARTS="${SPMAP_SMOKE_RESTARTS:-3}"
REQUESTS="${SPMAP_SMOKE_REQUESTS:-120}"

WORK="$(mktemp -d /tmp/spmap_crash_smoke.XXXXXX)"
SOCK="$WORK/daemon.sock"
JOURNAL="$WORK/daemon.journal"
DAEMON_PID=""

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -KILL "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "crash_recovery_smoke: $*" >&2; exit 1; }

[ -x "$CLI" ] || die "$CLI not built"
[ -x "$LOADGEN" ] || die "$LOADGEN not built"

start_daemon() {
  "$CLI" daemon --listen "unix:$SOCK" --workers 2 \
    --journal "$JOURNAL" --quiet &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DAEMON_PID" 2>/dev/null || die "daemon died during startup"
    sleep 0.05
  done
  die "daemon never bound $SOCK"
}

kill_daemon() {
  kill -KILL "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""
}

# A tiny wire client: newline-JSON over the unix socket via python3 would
# be cheating the "no new deps" rule in spirit; the loadgen already speaks
# the protocol, so phase 1 drives single requests through it instead.
run_one_request() {
  # One session, one request, pinned seed; --verify re-runs it locally.
  "$LOADGEN" --endpoint "unix:$SOCK" --sessions 1 --requests 1 \
    --tasks 16 --max-evals 2000 --seed "$1" --verify --quiet \
    --connect-retries 20 --backoff-ms 50
}

echo "== phase 1: SIGKILL mid-flight, restart, job survives =============="
start_daemon

# Park a slow job in the daemon (acknowledged, journaled, running), then
# SIGKILL before it can finish.
"$LOADGEN" --endpoint "unix:$SOCK" --sessions 1 --requests 1 --tasks 24 \
  --mapper "anneal:iters=200000000" --seed 11 --quiet &
SLOW_PID=$!
sleep 0.7  # long enough for submit+journal fsync, far short of completion
kill_daemon
kill -KILL "$SLOW_PID" 2>/dev/null || true
wait "$SLOW_PID" 2>/dev/null || true

[ -s "$JOURNAL" ] || die "journal is empty after the kill"

# Restart on the same journal: the acknowledged job must be re-enqueued
# and finish; new traffic must flow.
start_daemon
run_one_request 21 || die "restarted daemon cannot serve new requests"

# The journal must hold a terminal record for the re-enqueued job before
# we restart again: poll for it (the compacted journal stays small).
for _ in $(seq 1 200); do
  grep -q '"type":"terminal"' "$JOURNAL" 2>/dev/null && break
  sleep 0.1
done
grep -q '"type":"terminal"' "$JOURNAL" \
  || die "re-enqueued job never reached a terminal journal record"

# Second restart: the terminal result must still be answerable (the
# daemon replays it; a fresh request proves the daemon is healthy).
kill_daemon
start_daemon
run_one_request 22 || die "second restart broke the daemon"
kill_daemon
echo "phase 1 OK"

echo "== phase 2: chaos loadgen across $RESTARTS injected restarts ======="
rm -f "$JOURNAL"
start_daemon

# tasks=400 makes each request heavy enough (tens of ms) that the run
# spans every injected restart below; spff under an eval budget stays
# bit-identical for --verify.
"$LOADGEN" --endpoint "unix:$SOCK" --sessions 4 --requests "$REQUESTS" \
  --tasks 400 --max-evals 20000 --chaos --chaos-drop-rate 0.3 --verify \
  --connect-retries 40 --backoff-ms 50 --json "$WORK/chaos_report.json" &
LOADGEN_PID=$!

INJECTED=0
for i in $(seq 1 "$RESTARTS"); do
  sleep 0.6
  kill -0 "$LOADGEN_PID" 2>/dev/null || break  # already done: stop killing
  kill_daemon
  sleep 0.2  # leave the endpoint dark: clients must ride it out
  start_daemon
  INJECTED=$((INJECTED + 1))
  echo "  restart $i injected"
done

wait "$LOADGEN_PID" || die "chaos loadgen failed (lost/duplicated/mismatch)"
cat "$WORK/chaos_report.json"
kill_daemon
[ "$INJECTED" -ge "$RESTARTS" ] \
  || die "loadgen finished before all $RESTARTS restarts landed" \
         "(raise SPMAP_SMOKE_REQUESTS)"
DROPS=$(grep -o '"drops": [0-9]*' "$WORK/chaos_report.json" | grep -o '[0-9]*')
echo "phase 2 OK ($INJECTED restarts, $DROPS connection drops)"
echo "crash_recovery_smoke: all phases passed"
