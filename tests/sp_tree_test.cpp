#include "sp/sp_tree.hpp"

#include <gtest/gtest.h>

namespace spmap {
namespace {

TEST(SpTree, LeafBasics) {
  Dag d(2);
  const EdgeId e = d.add_edge(NodeId(0), NodeId(1));
  SpForest f;
  const auto leaf = f.add_leaf(NodeId(0), NodeId(1), e);
  EXPECT_EQ(f.node(leaf).kind, SpKind::Leaf);
  EXPECT_EQ(f.start(leaf), NodeId(0));
  EXPECT_EQ(f.end(leaf), NodeId(1));
  EXPECT_EQ(f.outsize(leaf), 1u);
  EXPECT_EQ(f.leaf_count(leaf), 1u);
  EXPECT_EQ(f.to_string(leaf), "0-1");
}

TEST(SpTree, VirtualLeafUsesEps) {
  SpForest f;
  const auto leaf = f.add_leaf(NodeId::invalid(), NodeId(0));
  EXPECT_EQ(f.to_string(leaf), "eps-0");
  EXPECT_TRUE(f.spanned_nodes(leaf) == std::vector<NodeId>{NodeId(0)});
}

TEST(SpTree, SeriesChainsAndFlattens) {
  Dag d(4);
  const EdgeId e01 = d.add_edge(NodeId(0), NodeId(1));
  const EdgeId e12 = d.add_edge(NodeId(1), NodeId(2));
  const EdgeId e23 = d.add_edge(NodeId(2), NodeId(3));
  SpForest f;
  auto t = f.add_leaf(NodeId(0), NodeId(1), e01);
  t = f.make_series(t, f.add_leaf(NodeId(1), NodeId(2), e12));
  const auto before = t;
  t = f.make_series(t, f.add_leaf(NodeId(2), NodeId(3), e23));
  // Flattening extends the same series node in place.
  EXPECT_EQ(t, before);
  EXPECT_EQ(f.node(t).children.size(), 3u);
  EXPECT_EQ(f.start(t), NodeId(0));
  EXPECT_EQ(f.end(t), NodeId(3));
  EXPECT_EQ(f.leaf_count(t), 3u);
  EXPECT_EQ(f.to_string(t), "S(0-1, 1-2, 2-3)");
  f.add_root(t);
  EXPECT_NO_THROW(f.validate(d));
}

TEST(SpTree, SeriesEndpointMismatchThrows) {
  SpForest f;
  const auto a = f.add_leaf(NodeId(0), NodeId(1));
  const auto b = f.add_leaf(NodeId(2), NodeId(3));
  EXPECT_THROW(f.make_series(a, b), Error);
}

TEST(SpTree, ParallelCombinesAndFlattens) {
  Dag d(2);
  const EdgeId e1 = d.add_edge(NodeId(0), NodeId(1));
  const EdgeId e2 = d.add_edge(NodeId(0), NodeId(1));
  const EdgeId e3 = d.add_edge(NodeId(0), NodeId(1));
  SpForest f;
  const auto a = f.add_leaf(NodeId(0), NodeId(1), e1);
  const auto b = f.add_leaf(NodeId(0), NodeId(1), e2);
  const auto p = f.make_parallel({a, b});
  EXPECT_EQ(f.node(p).kind, SpKind::Parallel);
  EXPECT_EQ(f.outsize(p), 2u);
  // Nested parallel flattens into one operation.
  const auto c = f.add_leaf(NodeId(0), NodeId(1), e3);
  const auto p2 = f.make_parallel({p, c});
  EXPECT_EQ(f.node(p2).children.size(), 3u);
  EXPECT_EQ(f.outsize(p2), 3u);
  EXPECT_EQ(f.leaf_count(p2), 3u);
}

TEST(SpTree, ParallelSinglePartPassesThrough) {
  SpForest f;
  const auto a = f.add_leaf(NodeId(0), NodeId(1));
  EXPECT_EQ(f.make_parallel({a}), a);
}

TEST(SpTree, ParallelEndpointMismatchThrows) {
  SpForest f;
  const auto a = f.add_leaf(NodeId(0), NodeId(1));
  const auto b = f.add_leaf(NodeId(0), NodeId(2));
  EXPECT_THROW(f.make_parallel({a, b}), Error);
}

TEST(SpTree, SeriesOutsizeTracksLastChild) {
  // Series ending in a parallel operation adopts the parallel's outsize.
  SpForest f;
  const auto head = f.add_leaf(NodeId(0), NodeId(1));
  const auto p = f.make_parallel(
      {f.add_leaf(NodeId(1), NodeId(2)), f.add_leaf(NodeId(1), NodeId(2))});
  const auto t = f.make_series(head, p);
  EXPECT_EQ(f.outsize(t), 2u);
}

TEST(SpTree, SpannedNodesUnionOfLeafEndpoints) {
  SpForest f;
  auto t = f.add_leaf(NodeId(3), NodeId(1));
  t = f.make_series(t, f.add_leaf(NodeId(1), NodeId(7)));
  const auto nodes = f.spanned_nodes(t);
  const std::vector<NodeId> expect{NodeId(1), NodeId(3), NodeId(7)};
  EXPECT_EQ(nodes, expect);
}

TEST(SpTree, EdgesReturnsOnlyRealLeaves) {
  Dag d(2);
  const EdgeId e = d.add_edge(NodeId(0), NodeId(1));
  SpForest f;
  auto t = f.add_leaf(NodeId::invalid(), NodeId(0));
  t = f.make_series(t, f.add_leaf(NodeId(0), NodeId(1), e));
  const auto edges = f.edges(t);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], e);
}

TEST(SpTree, ValidateCatchesBadLeafEdge) {
  Dag d(3);
  const EdgeId e = d.add_edge(NodeId(0), NodeId(1));
  SpForest f;
  // Leaf claims endpoints (1, 2) but the edge is (0, 1).
  const auto leaf = f.add_leaf(NodeId(1), NodeId(2), e);
  f.add_root(leaf);
  EXPECT_THROW(f.validate(d), Error);
}

TEST(SpTree, IndexOutOfRangeThrows) {
  SpForest f;
  EXPECT_THROW(f.node(0), Error);
  EXPECT_THROW(f.node(-1), Error);
}

}  // namespace
}  // namespace spmap
