#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.hpp"
#include "milp/model.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace spmap {
namespace {

// ---- model ----

TEST(MilpModel, BinaryBoundsForced) {
  MilpModel m;
  const int b = m.add_var(VarKind::Binary, -5.0, 9.0, 1.0);
  EXPECT_DOUBLE_EQ(m.lower_bound(b), 0.0);
  EXPECT_DOUBLE_EQ(m.upper_bound(b), 1.0);
}

TEST(MilpModel, FeasibilityCheck) {
  MilpModel m;
  const int x = m.add_continuous(0.0, 10.0, 1.0);
  const int y = m.add_binary(1.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, RowSense::Le, 5.0);
  EXPECT_TRUE(m.is_feasible({3.0, 1.0}));
  EXPECT_FALSE(m.is_feasible({4.0, 1.0}));   // row violated
  EXPECT_FALSE(m.is_feasible({3.0, 0.5}));   // fractional binary
  EXPECT_FALSE(m.is_feasible({-1.0, 0.0}));  // bound violated
  EXPECT_DOUBLE_EQ(m.objective_value({3.0, 1.0}), 4.0);
}

TEST(MilpModel, BadVarIndexThrows) {
  MilpModel m;
  EXPECT_THROW(m.add_constraint({{3, 1.0}}, RowSense::Le, 0.0), Error);
  EXPECT_THROW(m.lower_bound(0), Error);
}

// ---- LP ----

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 => (4, 0), obj 12.
  MilpModel m;
  const int x = m.add_continuous(0.0, 1e30, -3.0);
  const int y = m.add_continuous(0.0, 1e30, -2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Le, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, RowSense::Le, 6.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -12.0, 1e-7);
  EXPECT_NEAR(r.x[x], 4.0, 1e-7);
  EXPECT_NEAR(r.x[y], 0.0, 1e-7);
}

TEST(Simplex, EqualityAndGeRows) {
  // min x + y s.t. x + y = 2, x >= 0.5 => obj 2 with x in [0.5, 2].
  MilpModel m;
  const int x = m.add_continuous(0.0, 1e30, 1.0);
  const int y = m.add_continuous(0.0, 1e30, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Eq, 2.0);
  m.add_constraint({{x, 1.0}}, RowSense::Ge, 0.5);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-7);
  EXPECT_GE(r.x[x], 0.5 - 1e-7);
}

TEST(Simplex, InfeasibleDetected) {
  MilpModel m;
  const int x = m.add_continuous(0.0, 1.0, 1.0);
  m.add_constraint({{x, 1.0}}, RowSense::Ge, 2.0);
  EXPECT_EQ(solve_lp(m).status, LpStatus::Infeasible);
}

TEST(Simplex, UnboundedDetected) {
  MilpModel m;
  m.add_continuous(0.0, 1e30, -1.0);  // min -x; ub >= 1e29 counts as +inf
  EXPECT_EQ(solve_lp(m).status, LpStatus::Unbounded);
}

TEST(Simplex, ShiftedLowerBounds) {
  // min x s.t. x >= -3 via variable bound; x in [-3, 7].
  MilpModel m;
  const int x = m.add_continuous(-3.0, 7.0, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[x], -3.0, 1e-7);
}

TEST(Simplex, FixedVariableSubstitution) {
  // y fixed to 2 by equal bounds; min x s.t. x + y >= 5 => x = 3.
  MilpModel m;
  const int x = m.add_continuous(0.0, 1e30, 1.0);
  const int y = m.add_continuous(2.0, 2.0, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowSense::Ge, 5.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-7);
  EXPECT_NEAR(r.x[y], 2.0, 1e-12);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min y s.t. -x - y <= -4 (i.e. x + y >= 4), x <= 1 => y >= 3.
  MilpModel m;
  const int x = m.add_continuous(0.0, 1.0, 0.0);
  const int y = m.add_continuous(0.0, 1e30, 1.0);
  m.add_constraint({{x, -1.0}, {y, -1.0}}, RowSense::Le, -4.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP; must not cycle.
  MilpModel m;
  const int x1 = m.add_continuous(0.0, 1e30, -0.75);
  const int x2 = m.add_continuous(0.0, 1e30, 150.0);
  const int x3 = m.add_continuous(0.0, 1e30, -0.02);
  const int x4 = m.add_continuous(0.0, 1e30, 6.0);
  m.add_constraint({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
                   RowSense::Le, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
                   RowSense::Le, 0.0);
  m.add_constraint({{x3, 1.0}}, RowSense::Le, 1.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
}

TEST(Simplex, RepeatedVariableTermsAccumulate) {
  // x + x <= 4 means 2x <= 4.
  MilpModel m;
  const int x = m.add_continuous(0.0, 1e30, -1.0);
  m.add_constraint({{x, 1.0}, {x, 1.0}}, RowSense::Le, 4.0);
  const LpResult r = solve_lp(m);
  ASSERT_EQ(r.status, LpStatus::Optimal);
  EXPECT_NEAR(r.x[x], 2.0, 1e-7);
}

// ---- MIP ----

TEST(Mip, Knapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6 => b + c (weight 6, value 20).
  MilpModel m;
  const int a = m.add_binary(-10.0);
  const int b = m.add_binary(-13.0);
  const int c = m.add_binary(-7.0);
  m.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, RowSense::Le, 6.0);
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_NEAR(r.x[a], 0.0, 1e-6);
  EXPECT_NEAR(r.x[b], 1.0, 1e-6);
  EXPECT_NEAR(r.x[c], 1.0, 1e-6);
}

TEST(Mip, IntegerRounding) {
  // max x s.t. 2x <= 7, x integer => 3 (LP gives 3.5).
  MilpModel m;
  const int x = m.add_var(VarKind::Integer, 0.0, 100.0, -1.0);
  m.add_constraint({{x, 2.0}}, RowSense::Le, 7.0);
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.x[x], 3.0, 1e-6);
}

TEST(Mip, InfeasibleBinaryProblem) {
  MilpModel m;
  const int a = m.add_binary(1.0);
  const int b = m.add_binary(1.0);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, RowSense::Ge, 3.0);
  const MipResult r = MipSolver().solve(m);
  EXPECT_EQ(r.status, MipStatus::Infeasible);
  EXPECT_FALSE(r.has_solution());
}

TEST(Mip, MixedIntegerContinuous) {
  // min y s.t. y >= x - 0.5, y >= 0.5 - x, x binary => x in {0,1}, y = 0.5.
  MilpModel m;
  const int x = m.add_binary(0.0);
  const int y = m.add_continuous(0.0, 1e30, 1.0);
  m.add_constraint({{y, 1.0}, {x, -1.0}}, RowSense::Ge, -0.5);
  m.add_constraint({{y, 1.0}, {x, 1.0}}, RowSense::Ge, 0.5);
  const MipResult r = MipSolver().solve(m);
  ASSERT_EQ(r.status, MipStatus::Optimal);
  EXPECT_NEAR(r.objective, 0.5, 1e-6);
}

TEST(Mip, WarmStartGuaranteesSolutionUnderTinyLimit) {
  // A generalized assignment problem with a tight time limit: the warm
  // start must survive as the returned solution.
  MilpModel m;
  std::vector<int> vars;
  Rng rng(3);
  std::vector<double> warm(40, 0.0);
  for (int i = 0; i < 20; ++i) {
    const int a = m.add_binary(rng.uniform(1.0, 5.0));
    const int b = m.add_binary(rng.uniform(1.0, 5.0));
    m.add_constraint({{a, 1.0}, {b, 1.0}}, RowSense::Eq, 1.0);
    vars.push_back(a);
    vars.push_back(b);
    warm[static_cast<std::size_t>(a)] = 1.0;
  }
  MipParams params;
  params.time_limit_s = 1e-9;  // expire immediately
  params.max_nodes = 1;
  const MipResult r = MipSolver(params).solve(m, &warm);
  ASSERT_TRUE(r.has_solution());
  EXPECT_TRUE(r.timed_out || r.nodes >= 1);
  EXPECT_TRUE(m.is_feasible(r.x));
}

TEST(Mip, AssignmentProblemMatchesBruteForce) {
  // 4 tasks x 3 machines, minimize total cost, each task on one machine,
  // machine 0 capacity 2 tasks. Brute force over 3^4 assignments.
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    double cost[4][3];
    for (auto& row : cost) {
      for (double& c : row) c = rng.uniform(1.0, 10.0);
    }
    MilpModel m;
    int x[4][3];
    for (int i = 0; i < 4; ++i) {
      std::vector<LinTerm> one;
      for (int j = 0; j < 3; ++j) {
        x[i][j] = m.add_binary(cost[i][j]);
        one.push_back({x[i][j], 1.0});
      }
      m.add_constraint(one, RowSense::Eq, 1.0);
    }
    std::vector<LinTerm> cap;
    for (int i = 0; i < 4; ++i) cap.push_back({x[i][0], 1.0});
    m.add_constraint(cap, RowSense::Le, 2.0);

    const MipResult r = MipSolver().solve(m);
    ASSERT_EQ(r.status, MipStatus::Optimal);

    double best = 1e300;
    for (int a0 = 0; a0 < 3; ++a0) {
      for (int a1 = 0; a1 < 3; ++a1) {
        for (int a2 = 0; a2 < 3; ++a2) {
          for (int a3 = 0; a3 < 3; ++a3) {
            const int on0 = (a0 == 0) + (a1 == 0) + (a2 == 0) + (a3 == 0);
            if (on0 > 2) continue;
            best = std::min(best, cost[0][a0] + cost[1][a1] + cost[2][a2] +
                                      cost[3][a3]);
          }
        }
      }
    }
    EXPECT_NEAR(r.objective, best, 1e-6) << "trial " << trial;
  }
}

TEST(Mip, RandomSmallMipsMatchBruteForce) {
  // Random binary MIPs with 8 vars, 4 <= rows; brute force 256 points.
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    MilpModel m;
    double obj[8];
    for (int v = 0; v < 8; ++v) {
      obj[v] = rng.uniform(-5.0, 5.0);
      m.add_binary(obj[v]);
    }
    double a[4][8];
    double rhs[4];
    for (int r = 0; r < 4; ++r) {
      std::vector<LinTerm> terms;
      for (int v = 0; v < 8; ++v) {
        a[r][v] = rng.uniform(-3.0, 3.0);
        terms.push_back({v, a[r][v]});
      }
      rhs[r] = rng.uniform(-2.0, 6.0);
      m.add_constraint(terms, RowSense::Le, rhs[r]);
    }
    const MipResult result = MipSolver().solve(m);

    double best = 1e300;
    for (int mask = 0; mask < 256; ++mask) {
      bool ok = true;
      for (int r = 0; r < 4 && ok; ++r) {
        double lhs = 0.0;
        for (int v = 0; v < 8; ++v) {
          if (mask & (1 << v)) lhs += a[r][v];
        }
        ok = lhs <= rhs[r] + 1e-9;
      }
      if (!ok) continue;
      double o = 0.0;
      for (int v = 0; v < 8; ++v) {
        if (mask & (1 << v)) o += obj[v];
      }
      best = std::min(best, o);
    }
    if (best > 1e299) {
      EXPECT_EQ(result.status, MipStatus::Infeasible) << "trial " << trial;
    } else {
      ASSERT_EQ(result.status, MipStatus::Optimal) << "trial " << trial;
      EXPECT_NEAR(result.objective, best, 1e-6) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace spmap
