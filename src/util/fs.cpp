#include "util/fs.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace spmap {

std::string read_text_file(const std::string& path, const std::string& what) {
  std::ifstream in(path);
  require(in.good(), "cannot open " + what + ": " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string resolve_path(const std::string& base_dir,
                         const std::string& path) {
  if (path.empty() || path.front() == '/' || base_dir.empty()) return path;
  return base_dir + "/" + path;
}

}  // namespace spmap
