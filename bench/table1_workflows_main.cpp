/// Table I — real-world workflow families (WfCommons-style synthetic
/// recreations, Section IV-D): average positive relative improvement and
/// summed execution time per family for HEFT, PEFT, NSGA-II and the two
/// decomposition FirstFit mappers.
///
/// Paper shape to reproduce: decomposition mapping clearly beats HEFT/PEFT
/// on most families (HEFT/PEFT at 0 % on blast and cycles); PEFT is
/// competitive on montage (a few tail-end tasks dominate); NSGA-II matches
/// decomposition quality at a much higher execution time; SNFirstFit and
/// SPFirstFit land within a point of each other.
///
/// Flags: --instances N --max-width N --seed S --generations N

#include <cstdio>
#include <iostream>

#include "harness.hpp"
#include "util/flags.hpp"
#include "workflows/workflows.hpp"

using namespace spmap;
using namespace spmap::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"instances", "max-width", "seed", "generations"});
  const auto instances =
      static_cast<std::size_t>(flags.get_int("instances", 3));
  const auto max_width =
      static_cast<std::size_t>(flags.get_int("max-width", 32));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 6));
  const auto generations =
      static_cast<std::size_t>(flags.get_int("generations", 200));

  const Platform platform = reference_platform();
  Rng rng(seed);

  const std::vector<MapperSpec> specs{heft_spec(), peft_spec(),
                                      nsga2_spec(generations),
                                      single_node_spec(true),
                                      series_parallel_spec(true)};
  const std::vector<std::string> order{"HEFT", "PEFT", "NSGAII",
                                       "SNFirstFit", "SPFirstFit"};

  std::vector<std::string> header{"set"};
  for (const auto& name : order) header.push_back(name);
  Table improvement_table(header);
  Table time_table(header);

  for (const WorkflowFamily family : table1_workflow_families()) {
    std::fprintf(stderr, "[table1] %s...\n", workflow_family_name(family));
    std::vector<Case> cases;
    for (auto& inst :
         workflow_benchmark_set(family, instances, max_width, rng)) {
      cases.push_back(Case{std::move(inst.dag), std::move(inst.attrs)});
    }
    const auto metrics = run_point(cases, specs, platform, rng);

    std::vector<std::string> imp_row{workflow_family_name(family)};
    std::vector<std::string> time_row{workflow_family_name(family)};
    for (const auto& name : order) {
      const AlgoMetrics& m = metrics.at(name);
      imp_row.push_back(format_double(100.0 * m.improvement.mean(), 1) +
                        " %");
      // Paper reports the *summed* execution time over the whole set.
      double total = 0.0;
      for (const double s : m.mapper_seconds.values()) total += s;
      time_row.push_back(format_duration(total));
    }
    improvement_table.add_row(std::move(imp_row));
    time_table.add_row(std::move(time_row));
  }

  std::printf("## table1: average positive relative improvement\n");
  improvement_table.write_tsv(std::cout);
  std::printf("\n");
  improvement_table.write_aligned(std::cout);
  std::printf("\n## table1: summed mapper execution time per set\n");
  time_table.write_tsv(std::cout);
  std::printf("\n");
  time_table.write_aligned(std::cout);
  return 0;
}
