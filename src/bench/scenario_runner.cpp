#include "bench/scenario_runner.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "serve/mapping_service.hpp"
#include "serve/result_cache.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace spmap {

namespace {

/// Everything measured for one (repetition, mapper) pair.
struct CellResult {
  double improvement = 0.0;
  double makespan = 0.0;
  double baseline = 0.0;
  double seconds = 0.0;
};

/// Runs one sweep point: every (repetition, mapper) pair becomes one
/// MappingService job, submitted FIFO with its pre-derived construction
/// rng and collected in submission order — so the numbers are
/// bit-identical for every worker count (see the header contract).
std::vector<CellResult> run_point(const Scenario& scenario,
                                  const std::vector<std::shared_ptr<const TaskGraph>>& cases,
                                  const std::vector<Rng>& rngs,
                                  const std::shared_ptr<const Platform>& platform,
                                  MappingService& service, bool log_jobs) {
  const std::size_t mapper_count = scenario.mappers.size();
  std::vector<MappingService::JobHandle> handles;
  handles.reserve(cases.size() * mapper_count);
  for (std::size_t c = 0; c < cases.size(); ++c) {
    // One reporting context per repetition, shared by the whole mapper
    // line-up: min over BFS + random schedules (Sec. IV-A) plus the
    // all-CPU baseline, built once instead of per job.
    const auto reporting = std::make_shared<const ReportingContext>(
        cases[c], platform, scenario.reporting_orders);
    for (std::size_t m = 0; m < mapper_count; ++m) {
      MapJob job;
      job.mapper_spec = scenario.mappers[m].spec;
      job.graph = cases[c];
      job.platform = platform;
      // Inner evaluator: BFS only (the linear-time mapping cost function).
      job.inner_orders = 0;
      job.reporting = reporting;
      job.construction_rng = rngs[c * mapper_count + m];
      handles.push_back(service.submit(std::move(job)));
      if (log_jobs) {
        std::fprintf(stderr,
                     "[serve] job %llu queued: mapper=%s repetition=%zu\n",
                     static_cast<unsigned long long>(handles.back().id()),
                     scenario.mappers[m].spec.c_str(), c);
      }
    }
  }

  std::vector<CellResult> cells(handles.size());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const MapJobResult& result = handles[i].wait();
    if (!result.error.empty()) {
      // Fail fast: cancel everything outstanding so the service's
      // drain-on-destruction does not run the rest of a doomed sweep.
      for (const auto& handle : handles) handle.cancel();
      throw Error("scenario job '" +
                  scenario.mappers[i % mapper_count].spec +
                  "' failed: " + result.error);
    }
    CellResult& cell = cells[i];
    cell.makespan = result.reported_makespan;
    cell.baseline = result.baseline_makespan;
    if (cell.baseline > 0.0 && cell.makespan < cell.baseline) {
      cell.improvement = (cell.baseline - cell.makespan) / cell.baseline;
    }
    cell.seconds = result.wall_seconds;
    if (log_jobs) {
      std::fprintf(
          stderr,
          "[serve] job %llu %s: mapper=%s makespan=%.6f "
          "termination=%s wall_ms=%.3f\n",
          static_cast<unsigned long long>(handles[i].id()),
          to_string(handles[i].status()),
          scenario.mappers[i % mapper_count].spec.c_str(), cell.makespan,
          to_string(result.report.termination), 1e3 * cell.seconds);
    }
  }
  return cells;
}

Json point_to_json(const Scenario& scenario,
                   const std::vector<CellResult>& cells) {
  const std::size_t mapper_count = scenario.mappers.size();
  const std::size_t reps = cells.size() / mapper_count;
  Json mappers = Json::array();
  for (std::size_t m = 0; m < mapper_count; ++m) {
    Samples improvement, makespan, baseline, seconds;
    for (std::size_t c = 0; c < reps; ++c) {
      const CellResult& cell = cells[c * mapper_count + m];
      improvement.add(cell.improvement);
      makespan.add(cell.makespan);
      baseline.add(cell.baseline);
      seconds.add(cell.seconds);
    }
    double seconds_total = 0.0;
    for (const double s : seconds.values()) seconds_total += s;

    Json entry = Json::object();
    entry.set("name", scenario.mappers[m].display);
    entry.set("spec", scenario.mappers[m].spec);
    entry.set("improvement_mean", improvement.mean());
    entry.set("improvement_min", improvement.min());
    entry.set("improvement_max", improvement.max());
    entry.set("makespan_mean", makespan.mean());
    entry.set("baseline_mean", baseline.mean());
    entry.set("mapper_seconds_mean", seconds.mean());
    entry.set("mapper_seconds_total", seconds_total);
    mappers.push_back(std::move(entry));
  }
  Json point = Json::object();
  point.set("mappers", std::move(mappers));
  return point;
}

}  // namespace

Json run_scenario(const Scenario& scenario, const SweepRunOptions& options) {
  require(!scenario.mappers.empty(), "run_scenario: no mappers");
  std::shared_ptr<ResultCache> cache;
  if (options.cache_entries > 0) {
    ResultCacheOptions cache_options;
    cache_options.max_entries = options.cache_entries;
    if (options.cache_bytes > 0) cache_options.max_bytes = options.cache_bytes;
    cache = std::make_shared<ResultCache>(cache_options);
  }
  MappingService service({.workers = options.threads, .cache = cache});
  const auto platform =
      std::make_shared<const Platform>(scenario.platform.platform);
  Rng rng(scenario.seed);

  std::vector<std::int64_t> points;
  if (scenario.sweep.enabled()) {
    points = scenario.sweep.values;
  } else {
    points.push_back(0);  // one unnamed point
  }

  Json results = Json::array();
  for (const std::int64_t value : points) {
    WorkloadSpec workload = scenario.workload;
    if (scenario.sweep.enabled()) {
      apply_sweep_value(workload, scenario.sweep.parameter, value);
    }
    // Graphs and rng streams are derived serially so the job phase is
    // worker-count invariant.
    std::vector<std::shared_ptr<const TaskGraph>> cases;
    cases.reserve(scenario.repetitions);
    for (std::size_t r = 0; r < scenario.repetitions; ++r) {
      cases.push_back(std::make_shared<const TaskGraph>(
          materialize_workload(workload, rng, r, scenario.base_dir)));
    }
    std::vector<Rng> rngs;
    rngs.reserve(cases.size() * scenario.mappers.size());
    for (std::size_t c = 0; c < cases.size(); ++c) {
      for (std::size_t m = 0; m < scenario.mappers.size(); ++m) {
        rngs.push_back(rng.split());
      }
    }
    if (options.progress) {
      if (scenario.sweep.enabled()) {
        std::fprintf(stderr, "[%s] %s=%lld (%zu repetitions)...\n",
                     scenario.name.empty() ? "sweep" : scenario.name.c_str(),
                     scenario.sweep.parameter.c_str(),
                     static_cast<long long>(value), cases.size());
      } else {
        std::fprintf(stderr, "[%s] %zu repetitions...\n",
                     scenario.name.empty() ? "sweep" : scenario.name.c_str(),
                     cases.size());
      }
    }
    const std::vector<CellResult> cells = run_point(
        scenario, cases, rngs, platform, service, options.log_jobs);
    Json point = point_to_json(scenario, cells);
    if (scenario.sweep.enabled()) {
      // Prepend the sweep value so it leads the object.
      Json ordered = Json::object();
      ordered.set("sweep_value", value);
      ordered.set("mappers", point.at("mappers"));
      point = std::move(ordered);
    }
    results.push_back(std::move(point));
  }

  Json doc = Json::object();
  doc.set("schema", "spmap-sweep-results/1");
  doc.set("scenario", scenario.name);
  if (!scenario.description.empty()) {
    doc.set("description", scenario.description);
  }
  doc.set("platform", scenario.platform.name);
  doc.set("workload", workload_to_json(scenario.workload));
  doc.set("seed", scenario.seed);
  doc.set("repetitions", scenario.repetitions);
  doc.set("reporting_orders", scenario.reporting_orders);
  doc.set("threads", service.worker_count());
  if (scenario.sweep.enabled()) {
    doc.set("sweep_parameter", scenario.sweep.parameter);
  }
  if (cache) {
    // Flat keys, all starting with "cache", so a byte-diff against a
    // cache-off run only needs to strip `"cache` lines (CI does exactly
    // that) — never a nested object.
    const ServiceStats service_stats = service.stats();
    const ResultCacheStats cache_stats = cache->stats();
    doc.set("cache_entries_limit", options.cache_entries);
    doc.set("cache_hits", service_stats.cache_hits);
    doc.set("cache_misses", service_stats.cache_misses);
    doc.set("cache_warm", service_stats.cache_warm);
    doc.set("cache_inserts", cache_stats.inserts);
    doc.set("cache_evictions", cache_stats.evictions);
    doc.set("cache_resident_entries", cache_stats.entries);
    doc.set("cache_resident_bytes", cache_stats.bytes);
  }
  doc.set("results", std::move(results));
  return doc;
}

void print_sweep_tables(const Json& results, std::ostream& os) {
  const std::string scenario = results.at("scenario").as_string();
  const bool swept = results.contains("sweep_parameter");
  const std::string x_name =
      swept ? results.at("sweep_parameter").as_string() : std::string("point");
  const Json::Array& points = results.at("results").as_array();
  require(!points.empty(), "print_sweep_tables: empty results");

  std::vector<std::string> header{x_name};
  for (const Json& m : points.front().at("mappers").as_array()) {
    header.push_back(m.at("name").as_string());
  }

  const auto emit = [&](const char* metric, const char* field, double scale,
                        int precision) {
    Table table(header);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Json& point = points[i];
      std::vector<double> values;
      for (const Json& m : point.at("mappers").as_array()) {
        values.push_back(scale * m.at(field).as_double());
      }
      const double x = point.contains("sweep_value")
                           ? static_cast<double>(point.at("sweep_value").as_int())
                           : static_cast<double>(i);
      table.add_row(x, values, precision);
    }
    os << "## " << scenario << ": " << metric << "\n";
    table.write_tsv(os);
    os << "\n";
    table.write_aligned(os);
    os << "\n";
  };

  emit("relative improvement (mean over repetitions)", "improvement_mean",
       1.0, 4);
  emit("mapper execution time [ms] (mean over repetitions)",
       "mapper_seconds_mean", 1e3, 3);
}

Json run_report_write(const Scenario& scenario,
                      const SweepRunOptions& options,
                      const std::string& out_path, std::ostream& os) {
  const Json results = run_scenario(scenario, options);
  print_sweep_tables(results, os);
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    require(file.good(), "cannot open output file: " + out_path);
    file << results.dump(2) << '\n';
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return results;
}

}  // namespace spmap
