#pragma once
/// \file local_search.hpp
/// Local-search mapper family on the incremental delta-evaluation engine.
///
/// The standard refinement pass of the list-scheduling literature: seed a
/// mapping with any registered base mapper (`init=`), then walk the
/// single-task-reassignment neighborhood. Three acceptance strategies:
///
///  * `hillclimb` — randomized first-improvement hill climbing: apply a
///    random reassignment, keep it iff it strictly improves the makespan.
///  * `anneal`    — simulated annealing: worsening moves are accepted with
///    Metropolis probability exp(-delta/T) under a geometric cooling
///    schedule (100 cooling steps from t0 down).
///  * `tabu`      — tabu search: each iteration probes a candidate set of
///    reassignments, takes the best non-tabu one (even if worsening),
///    and tabus the moved task for `tenure` iterations; aspiration admits
///    tabu moves that beat the best mapping seen.
///
/// Every probe goes through an IncrementalEvaluator bound to the
/// evaluator's breadth-first schedule order, so a candidate costs
/// O(affected suffix) instead of a full O(V + E) sweep; accepted moves are
/// committed, rejected ones rolled back through the undo stack.
///
/// `restarts=` independent searches (distinct rng streams, same seed
/// mapping) run on a ThreadPool via the static partition; the reported
/// result is the best restart by (makespan, restart index), so results are
/// bit-identical for every `threads=` value.

#include <cstdint>
#include <memory>
#include <string>

#include "mappers/mapper.hpp"

namespace spmap {

struct LocalSearchParams {
  enum class Variant { kHillClimb, kAnneal, kTabu };
  Variant variant = Variant::kHillClimb;
  /// Registry spec of the mapper that produces the seed mapping.
  std::string init = "heft";
  /// Probe budget per restart; 0 derives 50 * tasks.
  std::size_t iterations = 0;
  /// Independent searches; the best result wins.
  std::size_t restarts = 1;
  std::uint64_t seed = 0x10ca15ea;
  /// Worker threads for parallel restarts (thread-count invariant).
  std::size_t threads = 1;
  // ---- anneal ----
  /// Initial temperature; 0 derives 5% of the seed makespan.
  double t0 = 0.0;
  /// Per-step factor of the geometric cooling schedule (100 steps).
  double cooling = 0.9;
  // ---- tabu ----
  /// Iterations a moved task stays tabu; 0 derives max(8, tasks / 8).
  std::size_t tenure = 0;
  /// Probed candidate reassignments per tabu iteration.
  std::size_t candidates = 16;
};

class LocalSearchMapper final : public Mapper {
 public:
  /// `init_mapper` produces the seed mapping (consumed by every restart).
  LocalSearchMapper(LocalSearchParams params,
                    std::unique_ptr<Mapper> init_mapper);

  using Mapper::map;
  std::string name() const override;
  MapReport map(const Evaluator& eval, const MapRequest& request) override;

 private:
  LocalSearchParams params_;
  std::unique_ptr<Mapper> init_;
};

}  // namespace spmap
