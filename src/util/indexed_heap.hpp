#pragma once
/// \file indexed_heap.hpp
/// Binary max-heap over dense integer keys with in-place priority updates.
///
/// This is the data structure behind the gamma-threshold / FirstFit variants
/// of decomposition mapping (paper Section III-D): mapping operations are
/// keyed 0..n-1, prioritized by their expected makespan improvement, and
/// re-prioritized whenever they are re-evaluated.

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace spmap {

/// Max-heap keyed by dense std::size_t ids with O(log n) push/pop/update and
/// O(1) contains/priority lookup.
class IndexedMaxHeap {
 public:
  explicit IndexedMaxHeap(std::size_t key_space = 0) { reset(key_space); }

  /// Clears the heap and resizes the key space to [0, key_space).
  void reset(std::size_t key_space) {
    heap_.clear();
    pos_.assign(key_space, npos);
    prio_.assign(key_space, 0.0);
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  std::size_t key_space() const { return pos_.size(); }

  bool contains(std::size_t key) const {
    SPMAP_ASSERT(key < pos_.size());
    return pos_[key] != npos;
  }

  double priority(std::size_t key) const {
    SPMAP_ASSERT(contains(key));
    return prio_[key];
  }

  /// Inserts a new key or updates the priority of an existing one.
  void push_or_update(std::size_t key, double priority) {
    SPMAP_ASSERT(key < pos_.size());
    if (pos_[key] == npos) {
      prio_[key] = priority;
      pos_[key] = heap_.size();
      heap_.push_back(key);
      sift_up(heap_.size() - 1);
    } else {
      const double old = prio_[key];
      prio_[key] = priority;
      if (priority > old) {
        sift_up(pos_[key]);
      } else if (priority < old) {
        sift_down(pos_[key]);
      }
    }
  }

  /// Key with the highest priority. Requires non-empty.
  std::size_t top() const {
    require(!heap_.empty(), "IndexedMaxHeap::top on empty heap");
    return heap_.front();
  }

  double top_priority() const { return prio_[top()]; }

  /// Removes and returns the key with the highest priority.
  std::size_t pop() {
    const std::size_t key = top();
    remove(key);
    return key;
  }

  /// Removes an arbitrary key from the heap.
  void remove(std::size_t key) {
    SPMAP_ASSERT(contains(key));
    const std::size_t hole = pos_[key];
    const std::size_t last = heap_.size() - 1;
    if (hole != last) {
      heap_[hole] = heap_[last];
      pos_[heap_[hole]] = hole;
    }
    heap_.pop_back();
    pos_[key] = npos;
    if (hole < heap_.size()) {
      const std::size_t moved = heap_[hole];
      sift_down(hole);
      if (pos_[moved] == hole) sift_up(hole);
    }
  }

 private:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (prio_[heap_[i]] <= prio_[heap_[parent]]) break;
      swap_at(i, parent);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < heap_.size() && prio_[heap_[l]] > prio_[heap_[best]]) best = l;
      if (r < heap_.size() && prio_[heap_[r]] > prio_[heap_[best]]) best = r;
      if (best == i) break;
      swap_at(i, best);
      i = best;
    }
  }

  void swap_at(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  std::vector<std::size_t> heap_;  // heap of keys
  std::vector<std::size_t> pos_;   // key -> heap position (npos = absent)
  std::vector<double> prio_;       // key -> priority
};

}  // namespace spmap
