#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spmap {

namespace {

constexpr double kEps = 1e-9;
constexpr double kFeasTol = 1e-7;
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Upper bounds at or above this are treated as +infinity (no bound row).
constexpr double kUnboundedThreshold = 1e29;

/// Dense two-phase tableau. Rows 0..m-1 are constraints, row m is the
/// (reduced-cost) objective row. Column layout: structural shifted
/// variables, then slack/surplus, then artificials, then rhs.
class Tableau {
 public:
  Tableau(const MilpModel& model, const std::vector<double>& lb,
          const std::vector<double>& ub, std::size_t max_iterations)
      : model_(model), lb_(lb), ub_(ub), max_iter_(max_iterations) {}

  LpResult solve() {
    if (!build()) return {LpStatus::Infeasible, 0.0, {}};
    if (!phase1()) return phase1_failed_result_;
    const LpStatus status = phase2();
    LpResult result;
    result.status = status;
    if (status == LpStatus::Optimal) {
      result.x = extract();
      result.objective = model_.objective_value(result.x);
    }
    return result;
  }

 private:
  // ---- construction ----

  bool build() {
    const std::size_t nv = model_.var_count();
    fixed_.assign(nv, false);
    col_of_var_.assign(nv, -1);
    std::size_t free_vars = 0;
    for (std::size_t v = 0; v < nv; ++v) {
      require(std::isfinite(lb_[v]),
              "simplex: variables need finite lower bounds");
      if (ub_[v] - lb_[v] < kEps) {
        fixed_[v] = true;  // pinned to its lower bound
      } else {
        col_of_var_[v] = static_cast<int>(free_vars++);
      }
    }
    n_struct_ = free_vars;

    // Assemble rows: model rows plus upper-bound rows for free variables
    // with finite upper bounds.
    struct RawRow {
      std::vector<std::pair<int, double>> terms;  // (column, coeff)
      RowSense sense;
      double rhs;
    };
    std::vector<RawRow> raw;
    for (const auto& row : model_.rows()) {
      RawRow r;
      r.sense = row.sense;
      r.rhs = row.rhs;
      // Accumulate coefficients per column; shift fixed/lower bounds into
      // the rhs.
      std::vector<double> dense(n_struct_, 0.0);
      for (const LinTerm& t : row.terms) {
        r.rhs -= t.coeff * lb_[t.var];
        if (!fixed_[t.var]) dense[col_of_var_[t.var]] += t.coeff;
      }
      bool any = false;
      for (std::size_t c = 0; c < n_struct_; ++c) {
        if (std::abs(dense[c]) > kEps) {
          r.terms.emplace_back(static_cast<int>(c), dense[c]);
          any = true;
        }
      }
      if (!any) {
        // Constant row: check consistency and drop.
        const bool ok = (r.sense == RowSense::Le && 0.0 <= r.rhs + kFeasTol) ||
                        (r.sense == RowSense::Ge && 0.0 >= r.rhs - kFeasTol) ||
                        (r.sense == RowSense::Eq &&
                         std::abs(r.rhs) <= kFeasTol);
        if (!ok) return false;
        continue;
      }
      raw.push_back(std::move(r));
    }
    for (std::size_t v = 0; v < nv; ++v) {
      if (fixed_[v] || ub_[v] >= kUnboundedThreshold) continue;
      RawRow r;
      r.sense = RowSense::Le;
      r.rhs = ub_[v] - lb_[v];
      r.terms.emplace_back(col_of_var_[v], 1.0);
      raw.push_back(std::move(r));
    }

    // Normalize rhs >= 0.
    for (RawRow& r : raw) {
      if (r.rhs < 0.0) {
        r.rhs = -r.rhs;
        for (auto& [c, a] : r.terms) a = -a;
        if (r.sense == RowSense::Le) r.sense = RowSense::Ge;
        else if (r.sense == RowSense::Ge) r.sense = RowSense::Le;
      }
    }

    m_ = raw.size();
    // Count slack (Le) and surplus+artificial (Ge) and artificial (Eq).
    std::size_t slacks = 0;
    std::size_t artificials = 0;
    for (const RawRow& r : raw) {
      if (r.sense == RowSense::Le) ++slacks;
      else if (r.sense == RowSense::Ge) ++slacks, ++artificials;
      else ++artificials;
    }
    n_cols_ = n_struct_ + slacks + artificials;
    art_begin_ = n_cols_ - artificials;
    t_.assign((m_ + 1) * (n_cols_ + 1), 0.0);
    basis_.assign(m_, 0);

    std::size_t slack_col = n_struct_;
    std::size_t art_col = art_begin_;
    for (std::size_t i = 0; i < m_; ++i) {
      const RawRow& r = raw[i];
      for (const auto& [c, coeff] : r.terms) at(i, c) = coeff;
      rhs(i) = r.rhs;
      switch (r.sense) {
        case RowSense::Le:
          at(i, slack_col) = 1.0;
          basis_[i] = slack_col++;
          break;
        case RowSense::Ge:
          at(i, slack_col) = -1.0;
          ++slack_col;
          at(i, art_col) = 1.0;
          basis_[i] = art_col++;
          break;
        case RowSense::Eq:
          at(i, art_col) = 1.0;
          basis_[i] = art_col++;
          break;
      }
    }
    return true;
  }

  // ---- phases ----

  bool phase1() {
    if (art_begin_ == n_cols_) {
      // No artificials: basis of slacks is already feasible.
      return true;
    }
    // Phase-1 objective: minimize the sum of artificials. Reduced-cost row =
    // -(sum of rows whose basis is artificial).
    for (std::size_t j = 0; j <= n_cols_; ++j) at(m_, j) = 0.0;
    for (std::size_t j = art_begin_; j < n_cols_; ++j) at(m_, j) = 1.0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] >= art_begin_) {
        for (std::size_t j = 0; j <= n_cols_; ++j) at(m_, j) -= at(i, j);
      }
    }
    const LpStatus status = iterate(/*allow_artificials=*/false);
    if (status == LpStatus::IterationLimit) {
      phase1_failed_result_ = {LpStatus::IterationLimit, 0.0, {}};
      return false;
    }
    // Phase-1 optimum is -rhs of the objective row.
    if (-rhs(m_) > 1e-6) {
      phase1_failed_result_ = {LpStatus::Infeasible, 0.0, {}};
      return false;
    }
    // Drive leftover artificial basics out (they sit at value ~0).
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < art_begin_) continue;
      std::size_t pivot_col = n_cols_;
      for (std::size_t j = 0; j < art_begin_; ++j) {
        if (std::abs(at(i, j)) > 1e-7) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col < n_cols_) {
        pivot(i, pivot_col);
      }
      // Otherwise the row is redundant; the artificial stays basic at zero
      // and its column is banned from entering, which keeps it at zero.
    }
    return true;
  }

  LpStatus phase2() {
    // True objective on the shifted structural variables.
    for (std::size_t j = 0; j <= n_cols_; ++j) at(m_, j) = 0.0;
    for (std::size_t v = 0; v < model_.var_count(); ++v) {
      if (!fixed_[v]) {
        at(m_, col_of_var_[v]) = model_.objective_coeff(static_cast<int>(v));
      }
    }
    // Restore reduced costs w.r.t. the current basis.
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = at(m_, basis_[i]);
      if (std::abs(cb) > kEps) {
        for (std::size_t j = 0; j <= n_cols_; ++j) at(m_, j) -= cb * at(i, j);
      }
    }
    return iterate(/*allow_artificials=*/false);
  }

  /// Simplex iterations on the current objective row. Artificial columns
  /// never re-enter. Returns Optimal/Unbounded/IterationLimit.
  LpStatus iterate(bool allow_artificials) {
    const std::size_t enter_limit =
        allow_artificials ? n_cols_ : art_begin_;
    std::size_t stall = 0;
    double last_obj = rhs(m_);
    for (std::size_t iter = 0; iter < max_iter_; ++iter) {
      const bool bland = stall > 256;
      // Entering column: most negative reduced cost (or Bland: first).
      std::size_t enter = n_cols_;
      double best = -kEps;
      for (std::size_t j = 0; j < enter_limit; ++j) {
        const double r = at(m_, j);
        if (r < best) {
          enter = j;
          best = r;
          if (bland) break;
        }
      }
      if (enter == n_cols_) return LpStatus::Optimal;

      // Ratio test; Bland tie-break on smallest basis index.
      std::size_t leave = m_;
      double best_ratio = kInf;
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = at(i, enter);
        if (a > kEps) {
          const double ratio = rhs(i) / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m_ || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return LpStatus::Unbounded;
      pivot(leave, enter);

      const double obj = rhs(m_);
      if (obj < last_obj - 1e-12) {
        stall = 0;
        last_obj = obj;
      } else {
        ++stall;
      }
    }
    return LpStatus::IterationLimit;
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = at(row, col);
    SPMAP_ASSERT(std::abs(p) > kEps);
    const double inv = 1.0 / p;
    for (std::size_t j = 0; j <= n_cols_; ++j) at(row, j) *= inv;
    at(row, col) = 1.0;  // fight rounding
    for (std::size_t i = 0; i <= m_; ++i) {
      if (i == row) continue;
      const double f = at(i, col);
      if (std::abs(f) < kEps) continue;
      for (std::size_t j = 0; j <= n_cols_; ++j) {
        at(i, j) -= f * at(row, j);
      }
      at(i, col) = 0.0;
    }
    basis_[row] = col;
  }

  std::vector<double> extract() const {
    std::vector<double> y(n_cols_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) y[basis_[i]] = rhs(i);
    std::vector<double> x(model_.var_count());
    for (std::size_t v = 0; v < model_.var_count(); ++v) {
      x[v] = lb_[v] + (fixed_[v] ? 0.0 : y[col_of_var_[v]]);
    }
    return x;
  }

  double& at(std::size_t i, std::size_t j) {
    return t_[i * (n_cols_ + 1) + j];
  }
  double at(std::size_t i, std::size_t j) const {
    return t_[i * (n_cols_ + 1) + j];
  }
  double& rhs(std::size_t i) { return t_[i * (n_cols_ + 1) + n_cols_]; }
  double rhs(std::size_t i) const { return t_[i * (n_cols_ + 1) + n_cols_]; }

  const MilpModel& model_;
  std::vector<double> lb_, ub_;
  std::size_t max_iter_;

  std::vector<bool> fixed_;
  std::vector<int> col_of_var_;
  std::size_t n_struct_ = 0;
  std::size_t m_ = 0;
  std::size_t n_cols_ = 0;
  std::size_t art_begin_ = 0;
  std::vector<double> t_;
  std::vector<std::size_t> basis_;
  LpResult phase1_failed_result_;
};

}  // namespace

LpResult solve_lp(const MilpModel& model, const std::vector<double>& lb,
                  const std::vector<double>& ub, std::size_t max_iterations) {
  require(lb.size() == model.var_count() && ub.size() == model.var_count(),
          "solve_lp: bound vector size mismatch");
  Tableau tableau(model, lb, ub, max_iterations);
  return tableau.solve();
}

LpResult solve_lp(const MilpModel& model, std::size_t max_iterations) {
  std::vector<double> lb(model.var_count());
  std::vector<double> ub(model.var_count());
  for (std::size_t v = 0; v < model.var_count(); ++v) {
    lb[v] = model.lower_bound(static_cast<int>(v));
    ub[v] = model.upper_bound(static_cast<int>(v));
  }
  return solve_lp(model, lb, ub, max_iterations);
}

}  // namespace spmap
