/// Ablation — the branch-cut policy of Algorithm 1.
///
/// The paper remarks (Section III-C, Fig. 2 discussion) that the choice of
/// which wavefront subtree to cut affects decomposition quality, and that a
/// well-designed heuristic might improve the mapping. This sweep compares
/// the paper's random choice against smallest-subtree, largest-subtree and
/// first-active policies on almost series-parallel graphs.
///
/// Flags: --tasks N --edges=10,40,... --graphs N --seed S

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

namespace {

MapperSpec cut_spec(const std::string& name, const std::string& policy) {
  return spec_from_registry("spff:cut=" + policy, name);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"tasks", "edges", "graphs", "seed"});
  const auto tasks = static_cast<std::size_t>(flags.get_int("tasks", 80));
  const auto edge_counts = flags.get_int_list("edges", {10, 40, 80});
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 8));

  const Platform platform = reference_platform();
  Rng rng(seed);

  const std::vector<MapperSpec> specs{
      cut_spec("cut=random", "random"), cut_spec("cut=smallest", "smallest"),
      cut_spec("cut=largest", "largest"), cut_spec("cut=first", "first")};

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto extra : edge_counts) {
    std::vector<Case> cases;
    for (std::size_t g = 0; g < graphs; ++g) {
      Case c;
      const Dag base = generate_sp_dag(tasks, rng);
      c.dag = add_random_edges(base, static_cast<std::size_t>(extra), rng);
      c.attrs = random_task_attrs(c.dag, rng);
      cases.push_back(std::move(c));
    }
    std::fprintf(stderr, "[ablation_cut] +%lld edges...\n",
                 static_cast<long long>(extra));
    rows.push_back(run_point(cases, specs, platform, rng));
    xs.push_back(static_cast<double>(extra));
  }

  print_series("ablation_cut_policy", "added_edges", xs, rows,
               {"cut=random", "cut=smallest", "cut=largest", "cut=first"});
  return 0;
}
