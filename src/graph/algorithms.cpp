#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace spmap {

std::vector<NodeId> topological_order(const Dag& dag) {
  const std::size_t n = dag.node_count();
  std::vector<std::size_t> indeg(n);
  for (std::size_t i = 0; i < n; ++i) indeg[i] = dag.in_degree(NodeId(i));
  // Min-heap on node id for determinism.
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>>
      ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) ready.push(static_cast<std::uint32_t>(i));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v(ready.top());
    ready.pop();
    order.push_back(v);
    for (EdgeId e : dag.out_edges(v)) {
      if (--indeg[dag.dst(e).v] == 0) ready.push(dag.dst(e).v);
    }
  }
  require(order.size() == n, "topological_order: graph contains a cycle");
  return order;
}

std::vector<std::size_t> node_levels(const Dag& dag) {
  const auto topo = topological_order(dag);
  std::vector<std::size_t> level(dag.node_count(), 0);
  for (NodeId v : topo) {
    for (EdgeId e : dag.out_edges(v)) {
      level[dag.dst(e).v] = std::max(level[dag.dst(e).v], level[v.v] + 1);
    }
  }
  return level;
}

std::vector<NodeId> bfs_order(const Dag& dag) {
  const auto level = node_levels(dag);
  std::vector<NodeId> order;
  order.reserve(dag.node_count());
  for (std::size_t i = 0; i < dag.node_count(); ++i) order.push_back(NodeId(i));
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (level[a.v] != level[b.v]) return level[a.v] < level[b.v];
    return a.v < b.v;
  });
  return order;
}

std::vector<NodeId> random_topological_order(const Dag& dag, Rng& rng) {
  const std::size_t n = dag.node_count();
  std::vector<std::size_t> indeg(n);
  std::vector<NodeId> ready;
  for (std::size_t i = 0; i < n; ++i) {
    indeg[i] = dag.in_degree(NodeId(i));
    if (indeg[i] == 0) ready.push_back(NodeId(i));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t k = rng.below(ready.size());
    const NodeId v = ready[k];
    ready[k] = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (EdgeId e : dag.out_edges(v)) {
      if (--indeg[dag.dst(e).v] == 0) ready.push_back(dag.dst(e));
    }
  }
  require(order.size() == n, "random_topological_order: cyclic graph");
  return order;
}

std::vector<bool> reachable_set(const Dag& dag, NodeId from) {
  std::vector<bool> seen(dag.node_count(), false);
  std::vector<NodeId> stack{from};
  seen[from.v] = true;
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    for (EdgeId e : dag.out_edges(v)) {
      const NodeId w = dag.dst(e);
      if (!seen[w.v]) {
        seen[w.v] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

bool reachable(const Dag& dag, NodeId from, NodeId to) {
  return reachable_set(dag, from)[to.v];
}

std::size_t weakly_connected_components(const Dag& dag) {
  const std::size_t n = dag.node_count();
  std::vector<bool> seen(n, false);
  std::size_t components = 0;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    ++components;
    std::vector<NodeId> stack{NodeId(start)};
    seen[start] = true;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      auto visit = [&](NodeId w) {
        if (!seen[w.v]) {
          seen[w.v] = true;
          stack.push_back(w);
        }
      };
      for (EdgeId e : dag.out_edges(v)) visit(dag.dst(e));
      for (EdgeId e : dag.in_edges(v)) visit(dag.src(e));
    }
  }
  return components;
}

namespace {

/// Copies nodes + labels of `dag` into a fresh graph without edges.
Dag copy_nodes(const Dag& dag) {
  Dag out;
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    out.add_node(dag.label(NodeId(i)));
  }
  return out;
}

}  // namespace

Dag remove_duplicate_edges(const Dag& dag) {
  Dag out = copy_nodes(dag);
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    const NodeId u(i);
    // Collect the best payload per destination, preserving first-seen order.
    std::vector<std::pair<NodeId, double>> dsts;
    for (EdgeId e : dag.out_edges(u)) {
      const NodeId v = dag.dst(e);
      auto it = std::find_if(dsts.begin(), dsts.end(),
                             [&](const auto& p) { return p.first == v; });
      if (it == dsts.end()) {
        dsts.emplace_back(v, dag.data_mb(e));
      } else {
        it->second = std::max(it->second, dag.data_mb(e));
      }
    }
    for (const auto& [v, mb] : dsts) out.add_edge(u, v, mb);
  }
  return out;
}

Dag transitive_reduction(const Dag& dag) {
  const Dag simple = remove_duplicate_edges(dag);
  const auto topo = topological_order(simple);
  // position in topological order, for ordering checks
  std::vector<std::size_t> pos(simple.node_count());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i].v] = i;

  Dag out = copy_nodes(simple);
  for (std::size_t i = 0; i < simple.node_count(); ++i) {
    const NodeId u(i);
    // Edge u->v is redundant iff v is reachable from u via a path of
    // length >= 2, i.e. through some other successor of u.
    const auto& outs = simple.out_edges(u);
    for (EdgeId e : outs) {
      const NodeId v = simple.dst(e);
      bool redundant = false;
      for (EdgeId e2 : outs) {
        const NodeId w = simple.dst(e2);
        if (w == v) continue;
        if (pos[w.v] < pos[v.v] && reachable(simple, w, v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) out.add_edge(u, v, simple.data_mb(e));
    }
  }
  return out;
}

Normalized normalize_source_sink(const Dag& dag) {
  Normalized result{dag, NodeId::invalid(), NodeId::invalid(), false, false};
  require(dag.node_count() > 0, "normalize_source_sink: empty graph");
  const auto srcs = result.dag.sources();
  const auto snks = result.dag.sinks();
  require(!srcs.empty() && !snks.empty(),
          "normalize_source_sink: graph has a cycle");

  if (srcs.size() == 1) {
    result.source = srcs.front();
  } else {
    result.source = result.dag.add_node("__source");
    result.added_source = true;
    for (NodeId s : srcs) result.dag.add_edge(result.source, s, 0.0);
  }
  if (snks.size() == 1) {
    result.sink = snks.front();
  } else {
    result.sink = result.dag.add_node("__sink");
    result.added_sink = true;
    for (NodeId t : snks) result.dag.add_edge(t, result.sink, 0.0);
  }
  return result;
}

std::size_t longest_path_edges(const Dag& dag) {
  const auto level = node_levels(dag);
  std::size_t best = 0;
  for (std::size_t l : level) best = std::max(best, l);
  return best;
}

}  // namespace spmap
