#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All randomized components of spmap (graph generators, schedule sampling,
/// the genetic algorithm, branch-cut policies) draw from spmap::Rng, a
/// xoshiro256** engine seeded through splitmix64. Unlike the distributions in
/// <random>, every sampler here is bit-reproducible across platforms and
/// compilers, which keeps experiment results stable.

#include <bit>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace spmap {

/// splitmix64 step; used for seeding and as a cheap standalone hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n) {
    SPMAP_ASSERT(n > 0);
    // Unbiased multiply-shift rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    SPMAP_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal deviate (Box-Muller; deterministic across platforms).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Lognormal deviate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    require(!v.empty(), "Rng::pick on empty vector");
    return v[below(v.size())];
  }

  /// Derives an independent child generator (for parallel substreams).
  Rng split() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

  /// Order-sensitive fingerprint of the generator's exact state: equal
  /// fingerprints mean the two generators will produce identical draws
  /// forever (the cached Box-Muller deviate included). The result cache
  /// folds this into its key so a memoized run is only ever served for a
  /// construction stream that would replay it bit-identically.
  std::uint64_t fingerprint() const {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (std::uint64_t s : state_) {
      std::uint64_t x = h ^ s;
      h = splitmix64(x);
    }
    if (has_cached_normal_) {
      std::uint64_t x = h ^ std::bit_cast<std::uint64_t>(cached_normal_);
      h = splitmix64(x);
    }
    return h;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;

  friend class RngTestPeer;
};

}  // namespace spmap
