/// The anytime run API (mappers/run_api.hpp): deadlines and cancellation
/// terminate promptly with the right TerminationReason and a valid
/// incumbent; budgets truncate deterministically (identical budget + seed
/// => bit-identical MapReport across threads= values, wall-clock fields
/// excluded); one-shot mappers report convergence; shared run options bake
/// into the default request.

#include <gtest/gtest.h>

#include <thread>

#include "graph/generators.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

struct RunApiCase {
  Dag dag;
  TaskAttrs attrs;
  Platform platform;
  CostModel cost;
  Evaluator eval;

  explicit RunApiCase(std::uint64_t seed, std::size_t tasks = 40)
      : dag([&] {
          Rng rng(seed);
          return generate_sp_dag(tasks, rng);
        }()),
        attrs([&] {
          Rng rng(seed + 1);
          return random_task_attrs(dag, rng);
        }()),
        platform(reference_platform()),
        cost(dag, attrs, platform),
        eval(cost) {}

  MapReport run(const std::string& spec, const MapRequest& request,
                std::uint64_t rng_seed = 1) const {
    Rng rng(rng_seed);
    auto mapper = MapperRegistry::instance().create(spec, dag, rng);
    return mapper->map(eval, request);
  }
};

void expect_valid_mapping(const RunApiCase& c, const MapReport& report) {
  ASSERT_EQ(report.mapping.size(), c.dag.node_count());
  EXPECT_NO_THROW(
      report.mapping.validate(c.dag.node_count(), c.platform.device_count()));
  EXPECT_LT(report.predicted_makespan, kInfeasible);
}

// ---- termination reasons ----

TEST(RunApi, OneShotMappersConverge) {
  const RunApiCase c(11);
  for (const char* spec : {"cpu", "heft", "peft", "laheft", "spff"}) {
    const MapReport report = c.run(spec, MapRequest{});
    EXPECT_EQ(report.termination, TerminationReason::kConverged) << spec;
    expect_valid_mapping(c, report);
    ASSERT_FALSE(report.trajectory.empty()) << spec;
    EXPECT_EQ(report.trajectory.back().makespan, report.predicted_makespan)
        << spec;
  }
}

TEST(RunApi, LocalSearchDeadlineReturnsIncumbentPromptly) {
  const RunApiCase c(12);
  MapRequest request;
  request.deadline_ms = 10.0;
  // A search that would take minutes unbounded.
  const MapReport report =
      c.run("anneal:iters=500000000,restarts=8,seed=3", request);
  EXPECT_EQ(report.termination, TerminationReason::kDeadline);
  expect_valid_mapping(c, report);
  // "Promptly": the same order of magnitude as the deadline, far from the
  // unbounded runtime. Generous bound for loaded CI machines.
  EXPECT_LT(report.wall_seconds, 2.0);
}

TEST(RunApi, ParallelLocalSearchDeadline) {
  const RunApiCase c(13);
  MapRequest request;
  request.deadline_ms = 10.0;
  const MapReport report =
      c.run("hillclimb:iters=500000000,restarts=8,threads=4,seed=3", request);
  EXPECT_EQ(report.termination, TerminationReason::kDeadline);
  expect_valid_mapping(c, report);
  EXPECT_LT(report.wall_seconds, 2.0);
}

TEST(RunApi, NsgaDeadlineReturnsIncumbentPromptly) {
  const RunApiCase c(14);
  MapRequest request;
  request.deadline_ms = 10.0;
  const MapReport report = c.run("nsga:generations=100000000,pop=20", request);
  EXPECT_EQ(report.termination, TerminationReason::kDeadline);
  expect_valid_mapping(c, report);
  EXPECT_LT(report.wall_seconds, 2.0);
}

TEST(RunApi, PreCancelledTokenStopsEveryMapper) {
  const RunApiCase c(15, 20);
  MapRequest request;
  request.cancel.request_cancel();
  for (const char* spec :
       {"heft", "peft", "laheft", "sn", "spff", "nsga:generations=5,pop=8",
        "hillclimb:iters=1000", "tabu:iters=1000", "wgdp-dev"}) {
    const MapReport report = c.run(spec, request);
    EXPECT_EQ(report.termination, TerminationReason::kCancelled) << spec;
    expect_valid_mapping(c, report);
  }
}

TEST(RunApi, CancellationFromAnotherThreadTerminates) {
  const RunApiCase c(16);
  MapRequest request;
  CancelToken token = request.cancel;  // copies alias the same flag
  std::thread canceller([token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.request_cancel();
  });
  const MapReport report =
      c.run("anneal:iters=500000000,restarts=4,seed=9", request);
  canceller.join();
  EXPECT_EQ(report.termination, TerminationReason::kCancelled);
  expect_valid_mapping(c, report);
  EXPECT_LT(report.wall_seconds, 5.0);
}

// ---- budgets ----

TEST(RunApi, NsgaIterationBudget) {
  const RunApiCase c(17);
  MapRequest request;
  request.max_iterations = 3;
  const MapReport report = c.run("nsga:generations=50,pop=10,seed=2", request);
  EXPECT_EQ(report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(report.iterations, 3u);
  expect_valid_mapping(c, report);
}

TEST(RunApi, NsgaEvaluationBudget) {
  const RunApiCase c(18);
  MapRequest request;
  request.max_evaluations = 25;  // initial pop (10) + two generations
  const MapReport report = c.run("nsga:generations=50,pop=10,seed=2", request);
  EXPECT_EQ(report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_LE(report.evaluations, 30u);
  expect_valid_mapping(c, report);
}

TEST(RunApi, LocalSearchBudgetTruncatesProbes) {
  const RunApiCase c(19);
  MapRequest request;
  request.max_iterations = 100;
  const MapReport report =
      c.run("hillclimb:iters=5000,restarts=4,seed=7", request);
  EXPECT_EQ(report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(report.iterations, 100u);
  expect_valid_mapping(c, report);
}

TEST(RunApi, BudgetLargerThanPlannedWorkConverges) {
  const RunApiCase c(20);
  MapRequest request;
  request.max_iterations = 1000000;
  const MapReport report =
      c.run("hillclimb:iters=50,restarts=2,seed=7", request);
  EXPECT_EQ(report.termination, TerminationReason::kConverged);
  EXPECT_EQ(report.iterations, 100u);  // 2 restarts * 50 probes, untruncated
}

TEST(RunApi, MilpNodeBudget) {
  const RunApiCase c(21, 12);
  MapRequest request;
  request.max_iterations = 5;  // B&B nodes
  const MapReport report = c.run("zhouliu:time-limit=10", request);
  EXPECT_EQ(report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_LE(report.iterations, 5u);
  expect_valid_mapping(c, report);  // warm start guarantees an incumbent
}

// ---- determinism ----

/// Deterministic (non-wall-clock) fields of two reports must match.
void expect_reports_identical(const MapReport& a, const MapReport& b,
                              const std::string& label) {
  EXPECT_EQ(a.mapping, b.mapping) << label;
  EXPECT_EQ(a.predicted_makespan, b.predicted_makespan) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.evaluations, b.evaluations) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size()) << label;
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].makespan, b.trajectory[i].makespan) << label;
    EXPECT_EQ(a.trajectory[i].iteration, b.trajectory[i].iteration) << label;
  }
}

TEST(RunApi, BudgetedReportBitIdenticalAcrossThreadCounts) {
  const RunApiCase c(22);
  MapRequest request;
  request.max_iterations = 777;  // truncates mid-restart
  for (const char* base : {"hillclimb", "anneal", "tabu"}) {
    const std::string spec =
        std::string(base) + ":iters=400,restarts=4,seed=11,threads=";
    const MapReport serial = c.run(spec + "1", request);
    const MapReport parallel = c.run(spec + "4", request);
    EXPECT_EQ(serial.termination, TerminationReason::kBudgetExhausted);
    expect_reports_identical(serial, parallel, base);
  }
}

TEST(RunApi, NsgaBudgetedReportBitIdenticalAcrossThreadCounts) {
  const RunApiCase c(23);
  MapRequest request;
  request.max_evaluations = 64;
  const MapReport serial =
      c.run("nsga:generations=50,pop=16,seed=4,threads=1", request);
  const MapReport parallel =
      c.run("nsga:generations=50,pop=16,seed=4,threads=4", request);
  expect_reports_identical(serial, parallel, "nsga");
}

TEST(RunApi, RequestSeedOverridesConstructedSeed) {
  const RunApiCase c(24);
  MapRequest pinned;
  pinned.seed = 99;
  const MapReport a = c.run("anneal:iters=2000,seed=5", pinned);
  const MapReport b = c.run("anneal:iters=2000,seed=6", pinned);
  expect_reports_identical(a, b, "request-seed");
}

TEST(RunApi, RequestSeedPinsStochasticInitToo) {
  const RunApiCase c(29);
  MapRequest pinned;
  pinned.seed = 99;
  // Unseeded stochastic init: each construction draws a different nsga
  // seed, so reproducibility across mapper objects requires the per-run
  // seed to reach the init sub-run as well. Distinct construction rngs
  // (rng_seed 1 vs 2) make any leak of constructed seeds visible.
  const std::string spec = "hillclimb:init=nsga:generations=3,iters=500";
  const MapReport a = c.run(spec, pinned, /*rng_seed=*/1);
  const MapReport b = c.run(spec, pinned, /*rng_seed=*/2);
  expect_reports_identical(a, b, "request-seed-init");
}

void expect_monotone_trajectory(const MapReport& report) {
  ASSERT_FALSE(report.trajectory.empty());
  for (std::size_t i = 1; i < report.trajectory.size(); ++i) {
    EXPECT_LE(report.trajectory[i].makespan,
              report.trajectory[i - 1].makespan);
    EXPECT_GE(report.trajectory[i].seconds,
              report.trajectory[i - 1].seconds);
  }
  EXPECT_EQ(report.trajectory.back().makespan, report.predicted_makespan);
}

TEST(RunApi, TrajectoryIsMonotonicAndEndsAtReportedMakespan) {
  const RunApiCase c(30);
  expect_monotone_trajectory(c.run("anneal:iters=3000,seed=4", MapRequest{}));
}

TEST(RunApi, TrajectoryMonotonicUnderReportingEvaluator) {
  // The seed incumbent is priced by the evaluator's min-over-orders
  // metric while probes use the BFS order; the trajectory must stay a
  // monotone best-makespan curve regardless.
  const RunApiCase c(31);
  const Evaluator reporting(c.cost, {.random_orders = 32});
  Rng rng(1);
  auto mapper =
      MapperRegistry::instance().create("anneal:iters=3000,seed=4", c.dag, rng);
  expect_monotone_trajectory(mapper->map(reporting, MapRequest{}));
}

// ---- shared pool + baked requests ----

TEST(RunApi, SharedPoolMatchesPrivatePool) {
  const RunApiCase c(25);
  ThreadPool pool(4);
  MapRequest shared;
  shared.pool = &pool;
  const MapReport a = c.run("nsga:generations=6,pop=12,seed=8", shared);
  const MapReport b =
      c.run("nsga:generations=6,pop=12,seed=8,threads=4", MapRequest{});
  expect_reports_identical(a, b, "shared-pool");
}

TEST(RunApi, SharedRunOptionsBakeIntoDefaultRequest) {
  const RunApiCase c(26);
  Rng rng(1);
  auto mapper = MapperRegistry::instance().create(
      "hillclimb:iters=5000,restarts=4,seed=7,max_iters=100", c.dag, rng);
  EXPECT_EQ(mapper->default_request().max_iterations, 100u);
  const MapReport report = mapper->map(c.eval);  // request-free overload
  EXPECT_EQ(report.termination, TerminationReason::kBudgetExhausted);
  EXPECT_EQ(report.iterations, 100u);
}

TEST(RunApi, SharedRunOptionsAcceptedByEveryMapper) {
  const RunApiCase c(27, 10);
  Rng rng(1);
  for (const std::string& name : MapperRegistry::instance().names()) {
    EXPECT_NO_THROW(MapperRegistry::instance().create(
        name + ":deadline_ms=1000,max_evals=100000,max_iters=100000", c.dag,
        rng))
        << name;
  }
  EXPECT_THROW(
      MapperRegistry::instance().create("heft:deadline_ms=-1", c.dag, rng),
      Error);
  EXPECT_THROW(
      MapperRegistry::instance().create("heft:max_evals=-1", c.dag, rng),
      Error);
}

TEST(RunApi, IncumbentCallbackFires) {
  const RunApiCase c(28);
  MapRequest request;
  std::size_t calls = 0;
  double last = kInfeasible;
  request.on_incumbent = [&](const IncumbentRecord& r) {
    ++calls;
    last = r.makespan;
  };
  const MapReport report = c.run("anneal:iters=2000,seed=3", request);
  EXPECT_EQ(calls, report.trajectory.size());
  EXPECT_GT(calls, 0u);
  EXPECT_EQ(last, report.trajectory.back().makespan);
}

TEST(RunApi, TerminationReasonLabels) {
  EXPECT_STREQ(to_string(TerminationReason::kConverged), "converged");
  EXPECT_STREQ(to_string(TerminationReason::kBudgetExhausted),
               "budget_exhausted");
  EXPECT_STREQ(to_string(TerminationReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(TerminationReason::kCancelled), "cancelled");
}

}  // namespace
}  // namespace spmap
