/// The command-line contract of the shipped tools (tools/exit_codes.hpp):
/// exit 0 = success, 1 = runtime failure (diagnostics on stderr),
/// 2 = usage error. Enforced two ways: statically, by grepping the tool
/// sources (via SPMAP_SOURCE_DIR) for convention violations, and
/// behaviorally, by running the built spmap_cli (via SPMAP_CLI_PATH)
/// against bad invocations and checking the codes.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const std::vector<std::string>& tool_sources() {
  static const std::vector<std::string> sources = {
      std::string(SPMAP_SOURCE_DIR) + "/tools/spmap_cli.cpp",
      std::string(SPMAP_SOURCE_DIR) + "/tools/spmap_loadgen.cpp",
  };
  return sources;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// ---- static source audit ---------------------------------------------------

TEST(CliContractSource, ToolsUseTheNamedExitCodes) {
  for (const std::string& path : tool_sources()) {
    const std::string source = read_file(path);
    EXPECT_NE(source.find("#include \"exit_codes.hpp\""), std::string::npos)
        << path << " must include tools/exit_codes.hpp";
    EXPECT_NE(source.find("kExitUsage"), std::string::npos) << path;
    EXPECT_NE(source.find("kExitFailure"), std::string::npos) << path;
  }
}

TEST(CliContractSource, NoBareNumericExitCodes) {
  // `return 0;` at function scope is fine in helpers, but the magic
  // numbers 1 and 2 as exit codes must not appear: every non-zero exit
  // goes through the named constants so the contract is greppable.
  for (const std::string& path : tool_sources()) {
    const std::string source = read_file(path);
    EXPECT_EQ(count_occurrences(source, "return 1;"), 0u)
        << path << " returns a bare 1 somewhere";
    EXPECT_EQ(count_occurrences(source, "return 2;"), 0u)
        << path << " returns a bare 2 somewhere";
    EXPECT_EQ(count_occurrences(source, "exit(1)"), 0u) << path;
    EXPECT_EQ(count_occurrences(source, "exit(2)"), 0u) << path;
  }
}

TEST(CliContractSource, DiagnosticsGoToStderr) {
  // Error reporting is `fprintf(stderr, "<tool>: ...")`; the tool-name
  // prefix must never show up in a stdout printf.
  for (const std::string& path : tool_sources()) {
    const std::string source = read_file(path);
    EXPECT_GT(count_occurrences(source, "fprintf(stderr,"), 0u) << path;
    EXPECT_EQ(count_occurrences(source, "printf(\"spmap_cli:"), 0u) << path;
    EXPECT_EQ(count_occurrences(source, "printf(\"spmap_loadgen:"), 0u)
        << path;
  }
}

// ---- behavioral audit of the built binary ----------------------------------

#ifdef SPMAP_CLI_PATH

/// Runs the CLI with stdout/stderr redirected; returns the exit code.
int run_cli(const std::string& arguments, const std::string& stdout_file,
            const std::string& stderr_file) {
  const std::string command = std::string(SPMAP_CLI_PATH) + " " + arguments +
                              " >" + stdout_file + " 2>" + stderr_file;
  const int raw = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(raw)) << command;
  return WEXITSTATUS(raw);
}

struct CliCase {
  const char* name;
  std::string arguments;
  int expected_exit;
};

TEST(CliContractBinary, ExitCodesMatchTheContract) {
  const std::string tmp = ::testing::TempDir();
  const std::vector<CliCase> cases = {
      {"no_arguments", "", 2},
      {"unknown_subcommand", "frobnicate", 2},
      {"unknown_flag", "generate --bogus 1", 1},
      {"missing_input_file", "evaluate --graph /nonexistent.json "
                             "--mapping /nonexistent.json", 1},
      {"daemon_bad_endpoint", "daemon --listen bogus^spec", 1},
      {"generate_ok", "generate --type sp --tasks 6 --seed 1 --out " + tmp +
                          "/cli_contract_graph.json", 0},
  };
  for (const CliCase& c : cases) {
    const std::string out = tmp + "/cli_contract_stdout";
    const std::string err = tmp + "/cli_contract_stderr";
    EXPECT_EQ(run_cli(c.arguments, out, err), c.expected_exit) << c.name;
    if (c.expected_exit != 0) {
      EXPECT_FALSE(read_file(err).empty())
          << c.name << ": non-zero exit must explain itself on stderr";
      // Diagnostics never leak to stdout.
      EXPECT_EQ(read_file(out).find("spmap_cli:"), std::string::npos)
          << c.name;
    } else {
      // Progress notes on stderr are fine; error-prefixed lines are not.
      EXPECT_EQ(read_file(err).find("spmap_cli:"), std::string::npos)
          << c.name;
    }
  }
}

#endif  // SPMAP_CLI_PATH

}  // namespace
