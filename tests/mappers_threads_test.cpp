/// Thread-count invariance of the search mappers: a mapper configured with
/// threads=k must produce the exact same mapping and predicted makespan as
/// its serial (threads=1) configuration — the parallel batch evaluation is
/// an implementation detail, never a semantic one.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"

namespace spmap {
namespace {

/// Runs one registry spec twice (threads=1 vs threads=4) on the same graph
/// and expects bit-identical outcomes.
void expect_thread_invariant(const std::string& base_spec,
                             std::uint64_t graph_seed) {
  Rng graph_rng(graph_seed);
  const Dag dag = generate_sp_dag(40, graph_rng);
  const TaskAttrs attrs = random_task_attrs(dag, graph_rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  const char* const sep = base_spec.find(':') == std::string::npos ? ":" : ",";
  MapperResult serial;
  MapperResult parallel;
  {
    Rng rng(1);
    auto mapper = MapperRegistry::instance().create(base_spec + sep +
                                                    "threads=1", dag, rng);
    serial = mapper->map(eval);
  }
  {
    Rng rng(1);
    auto mapper = MapperRegistry::instance().create(base_spec + sep +
                                                    "threads=4", dag, rng);
    parallel = mapper->map(eval);
  }
  EXPECT_EQ(serial.mapping, parallel.mapping) << base_spec;
  EXPECT_EQ(serial.predicted_makespan, parallel.predicted_makespan)
      << base_spec;
  EXPECT_EQ(serial.iterations, parallel.iterations) << base_spec;
  EXPECT_EQ(serial.evaluations, parallel.evaluations) << base_spec;
}

TEST(MapperThreads, Nsga2Invariant) {
  expect_thread_invariant("nsga:generations=8,pop=16,seed=5", 301);
}

TEST(MapperThreads, SingleNodeInvariant) {
  expect_thread_invariant("sn", 302);
}

TEST(MapperThreads, SnFirstFitInvariant) {
  expect_thread_invariant("snff", 303);
}

TEST(MapperThreads, SeriesParallelInvariant) {
  expect_thread_invariant("sp", 304);
}

TEST(MapperThreads, SpFirstFitInvariant) {
  expect_thread_invariant("spff:gamma=2", 305);
}

TEST(MapperThreads, LookaheadHeftInvariant) {
  expect_thread_invariant("laheft", 306);
}

}  // namespace
}  // namespace spmap
