#pragma once
/// \file run_api.hpp
/// The anytime run API of every mapping algorithm: MapRequest / MapReport.
///
/// PR 4 added mapper families that behave like *jobs* — iterative searches
/// that can stop at any point and still hold a valid incumbent. This header
/// is the contract that lets every driver treat them that way:
///
///  * `MapRequest` bounds and observes one run: a wall-clock deadline, an
///    iteration/evaluation budget, a cooperative `CancelToken`, an optional
///    per-run seed and shared `ThreadPool`, and an incumbent callback.
///  * `MapReport` explains one run: the mapping and its predicted makespan
///    (as every mapper always returned), plus wall time, the incumbent
///    trajectory, and a `TerminationReason` saying *why* the run stopped.
///  * `RunControl` is the implementation helper mappers use for honest
///    budget/deadline/cancellation checks in their inner loops.
///
/// ## Semantics
///
/// A mapper must return a *valid* mapping for every request, no matter how
/// tight: budgets and deadlines truncate the search, they never forfeit the
/// incumbent. One-shot algorithms (HEFT, PEFT, the decomposition seeds'
/// construction) that run to completion report `kConverged`; anytime
/// algorithms report whichever bound stopped them first.
///
/// ## Determinism
///
/// With a pinned seed and *budget-only* limits (no deadline, no
/// cancellation), a report is bit-identical for every `threads=` value and
/// every shared pool — except the wall-clock fields (`wall_seconds` and
/// `IncumbentRecord::seconds`), which measure real time. Deadlines and
/// cancellation are inherently racy against the scheduler and exempt from
/// the determinism contract.
///
/// ## Thread-safety
///
/// `CancelToken` is freely copyable and thread-safe: any thread may call
/// `request_cancel()` while a run polls `cancelled()`. A `MapRequest` may
/// be shared across concurrent runs (it is read-only to the mapper). One
/// `RunControl` belongs to one run; its latching API (`should_stop`,
/// `record_incumbent`) is single-threaded, while the const probes
/// (`cancelled`, `deadline_expired`, `interrupted`, `elapsed_seconds`) are
/// safe from parallel workers inside the run.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "model/mapping.hpp"
#include "util/timer.hpp"

namespace spmap {

class ThreadPool;

/// Why a map() run returned.
enum class TerminationReason {
  kConverged,        ///< The algorithm completed its own planned work.
  kBudgetExhausted,  ///< The request's iteration/evaluation budget ran out.
  kDeadline,         ///< The request's wall-clock deadline passed.
  kCancelled,        ///< The request's CancelToken was triggered.
};

/// Stable lower-case label ("converged", "budget_exhausted", ...).
const char* to_string(TerminationReason reason);

/// How the result cache participated in producing a report (stamped by
/// the MappingService; a direct Mapper::map call is always kNone).
enum class CacheOutcome {
  kNone,  ///< No cache consulted (cache off, or the job was uncacheable:
          ///< unpinned construction rng, or a wall-clock deadline).
  kMiss,  ///< Cache consulted, no entry: the job executed normally.
  kHit,   ///< Served from the memo without occupying a worker. Every
          ///< other field is bit-identical to recomputation (wall-clock
          ///< fields report the *original* run).
  kWarm,  ///< Executed, but a cached incumbent for the same problem was
          ///< offered as the warm-start seed (opt-in; see MapRequest).
};

/// Stable lower-case label ("none", "miss", "hit", "warm").
const char* to_string(CacheOutcome outcome);

/// Cooperative cancellation flag, shared between a run and its observers.
/// Copies alias the same flag; cancellation is sticky (no reset).
/// `child()` derives a token that also observes this one — cancelling the
/// parent cancels every child, cancelling a child stays local. The
/// MappingService hands each job a child of the submitted request's token,
/// so `JobHandle::cancel` is per-job while a caller-held parent can still
/// cancel a whole batch.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  /// Requests cancellation of this token (and its children); safe from
  /// any thread, idempotent.
  void request_cancel() const {
    state_->flag.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const { return state_->cancelled(); }

  /// A token cancelled when either it or this (its parent) is cancelled.
  CancelToken child() const {
    CancelToken c;
    c.state_->parent = state_;
    return c;
  }

 private:
  struct State {
    std::atomic<bool> flag{false};
    std::shared_ptr<const State> parent;

    bool cancelled() const {
      return flag.load(std::memory_order_relaxed) ||
             (parent != nullptr && parent->cancelled());
    }
  };

  std::shared_ptr<State> state_;
};

/// One point of the incumbent trajectory: the best makespan known after
/// `iteration` algorithm iterations, `seconds` after the run started.
struct IncumbentRecord {
  double makespan = 0.0;
  std::size_t iteration = 0;
  /// Wall-clock offset from run start. Excluded from the determinism
  /// contract (see the header comment).
  double seconds = 0.0;
};

/// Everything a caller may impose on or observe about one map() run.
/// The default-constructed request means "run to completion, unobserved" —
/// exactly the pre-request behaviour of every mapper.
struct MapRequest {
  /// Wall-clock deadline in milliseconds; <= 0 means none. The run returns
  /// its best incumbent with `TerminationReason::kDeadline` once it fires.
  double deadline_ms = 0.0;
  /// Cap on model evaluations (probes count for the incremental engine);
  /// 0 means unlimited. Checked between atomic units of work (a probe, a
  /// cohort, one evaluate() over all of an evaluator's prepared orders),
  /// so a run may overshoot by up to one unit before stopping.
  std::size_t max_evaluations = 0;
  /// Cap on algorithm iterations (GA generations, search probes, B&B
  /// nodes, tasks placed); 0 means unlimited.
  std::size_t max_iterations = 0;
  /// Per-run seed overriding the mapper's constructed seed. Unset keeps
  /// the constructed one, so repeated runs of one mapper object repeat.
  std::optional<std::uint64_t> seed;
  /// Cooperative cancellation; the run polls it in its inner loop.
  CancelToken cancel;
  /// Shared worker pool. When set, mappers with a `threads=` option use it
  /// instead of constructing a private pool (results stay bit-identical
  /// for every pool size). The pool must outlive the run.
  ThreadPool* pool = nullptr;
  /// Fired on every new incumbent, from the run's own thread. Parallel
  /// mappers may replay the winning trajectory at the end of the run
  /// instead of interleaving callbacks (see each mapper's contract).
  std::function<void(const IncumbentRecord&)> on_incumbent;
  /// Optional warm-start seed: a known-good mapping for the same
  /// (graph, platform). The local-search family uses it as the search
  /// seed *instead of* running its init= mapper (the seed still wins
  /// ties, so the run never reports worse than this mapping as evaluated
  /// by the run's own evaluator); other mappers ignore it. Deliberately
  /// opt-in everywhere: a warm seed changes results relative to a cold
  /// run, so determinism-sensitive drivers (scenario sweeps, the cache's
  /// bit-identity contract) never set it. Ignored if not sized for the
  /// graph. The mapping must stay alive and unchanged for the whole run.
  std::shared_ptr<const Mapping> warm_start;

  bool has_budget() const { return max_evaluations || max_iterations; }
};

/// The result of one map() run. Supersedes the old `MapperResult` (which
/// is now an alias): same mapping/makespan/counter fields, plus the
/// explanation of how and why the run ended.
struct MapReport {
  Mapping mapping;
  /// Makespan of `mapping` as seen by the evaluator passed to map().
  double predicted_makespan = 0.0;
  /// Algorithm-specific progress counter (greedy iterations, GA
  /// generations, B&B nodes, search probes, ...).
  std::size_t iterations = 0;
  /// Number of single-schedule model evaluations consumed (incremental
  /// probes/applies count once each).
  std::size_t evaluations = 0;
  /// Wall-clock duration of the run (excluded from determinism).
  double wall_seconds = 0.0;
  TerminationReason termination = TerminationReason::kConverged;
  /// How the result cache participated (service-level field: mappers
  /// never set it; the MappingService stamps it on the way out).
  CacheOutcome cache = CacheOutcome::kNone;
  /// Best-makespan improvements in run order (first entry: the first
  /// incumbent; last entry: the returned mapping's makespan).
  std::vector<IncumbentRecord> trajectory;
};

/// Legacy name, kept so pre-request call sites read unchanged.
using MapperResult = MapReport;

/// Per-run bookkeeping used by mapper implementations: owns the run timer,
/// latches the first stop reason, and collects the incumbent trajectory.
/// See the thread-safety contract in the header comment.
class RunControl {
 public:
  /// The request must outlive the control (it is borrowed, not copied).
  explicit RunControl(const MapRequest& request)
      : request_(&request),
        deadline_s_(request.deadline_ms > 0.0 ? request.deadline_ms / 1e3
                                              : 0.0) {}

  // ---- const probes (safe from parallel workers) ----

  bool cancelled() const { return request_->cancel.cancelled(); }
  bool deadline_expired() const {
    return deadline_s_ > 0.0 && timer_.seconds() >= deadline_s_;
  }
  /// Cancelled or past the deadline — the two external interrupts parallel
  /// workers must poll themselves (budgets are partitioned serially).
  bool interrupted() const { return cancelled() || deadline_expired(); }
  double elapsed_seconds() const { return timer_.seconds(); }
  const MapRequest& request() const { return *request_; }

  // ---- latching API (run thread only) ----

  /// True once the run must stop: cancellation, deadline, or — given the
  /// progress counters — an exhausted budget. Latches the first reason;
  /// keeps returning true afterwards.
  bool should_stop(std::size_t iterations, std::size_t evaluations) {
    if (stop_) return true;
    if (cancelled()) {
      stop_ = TerminationReason::kCancelled;
    } else if (deadline_expired()) {
      stop_ = TerminationReason::kDeadline;
    } else if (budget_exhausted(iterations, evaluations)) {
      stop_ = TerminationReason::kBudgetExhausted;
    }
    return stop_.has_value();
  }

  bool budget_exhausted(std::size_t iterations,
                        std::size_t evaluations) const {
    return (request_->max_iterations != 0 &&
            iterations >= request_->max_iterations) ||
           (request_->max_evaluations != 0 &&
            evaluations >= request_->max_evaluations);
  }

  /// Latches `reason` unless a stop reason is already recorded.
  void stop(TerminationReason reason) {
    if (!stop_) stop_ = reason;
  }

  bool stopped() const { return stop_.has_value(); }
  /// The latched stop reason, or kConverged when the run completed.
  TerminationReason reason() const {
    return stop_.value_or(TerminationReason::kConverged);
  }

  /// Appends a trajectory point and fires the request's callback.
  void record_incumbent(double makespan, std::size_t iteration) {
    trajectory_.push_back({makespan, iteration, timer_.seconds()});
    if (request_->on_incumbent) request_->on_incumbent(trajectory_.back());
  }

  /// Replays an externally collected trajectory (parallel mappers record
  /// per-worker and replay the winner) through record_incumbent, keeping
  /// the recorded timestamps.
  void adopt_trajectory(std::vector<IncumbentRecord> trajectory) {
    for (IncumbentRecord& r : trajectory) {
      trajectory_.push_back(r);
      if (request_->on_incumbent) request_->on_incumbent(trajectory_.back());
    }
  }

  /// Stamps wall time, termination reason and trajectory onto `report`.
  /// Call exactly once, as the run's last step.
  void finalize(MapReport& report) {
    report.wall_seconds = timer_.seconds();
    report.termination = reason();
    report.trajectory = std::move(trajectory_);
  }

 private:
  const MapRequest* request_;
  double deadline_s_;
  WallTimer timer_;
  std::optional<TerminationReason> stop_;
  std::vector<IncumbentRecord> trajectory_;
};

/// Folds the bounds of `baked` (a mapper's default request, built from the
/// shared `deadline_ms=`/`max_evals=`/`max_iters=` spec options) into
/// `request`: each bound takes the tighter of the two (non-zero minimum).
/// Cancel token, seed, pool and callback stay `request`'s own — a baked
/// request never carries those. Drivers that accept explicit requests for
/// registry-built mappers (MappingService, the CLI) run
/// `merge_run_bounds(mapper.default_request(), request)` so spec-level
/// bounds are honored alongside caller-level ones.
MapRequest merge_run_bounds(const MapRequest& baked, MapRequest request);

/// Resolves the worker pool of a run: the request's shared pool when set,
/// else a freshly constructed private pool of `threads` workers (none when
/// `threads <= 1` — the serial path stays allocation-free).
class PoolLease {
 public:
  PoolLease(const MapRequest& request, std::size_t threads);
  ~PoolLease();

  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  /// nullptr means "run serially".
  ThreadPool* get() const { return pool_; }

 private:
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_;
};

}  // namespace spmap
