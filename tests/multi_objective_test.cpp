#include "mappers/multi_objective.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::serial_streamable_attrs;

// ---- energy model ----

TEST(Energy, AllCpuBaseline) {
  const Dag d = chain_dag(3);
  const auto attrs = serial_streamable_attrs(3);
  // Build a platform with distinct, easy-to-check power numbers.
  Platform pw;
  Device cpu;
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 1;
  cpu.lane_gops = 1.0;
  cpu.idle_watts = 10.0;
  cpu.active_watts = 100.0;
  cpu.transfer_watts = 5.0;
  const DeviceId c = pw.add_device(cpu);
  Device fpga;
  fpga.kind = DeviceKind::Fpga;
  fpga.area_budget = 1000.0;
  fpga.stream_gops_per_streamability = 1.0;
  fpga.idle_watts = 2.0;
  fpga.active_watts = 20.0;
  fpga.transfer_watts = 4.0;
  pw.add_device(fpga);
  pw.set_link(c, DeviceId(1u), 1.0, 0.0);

  const CostModel cost(d, attrs, pw);
  const Evaluator eval(cost);
  const Mapping m(3, c);
  const double ms = eval.evaluate(m);  // 3 s serial
  // idle: (10 + 2) * 3; active: (100 - 10) * 3 tasks * 1 s; no transfers.
  EXPECT_NEAR(mapping_energy_joules(cost, m, ms), 12.0 * 3.0 + 90.0 * 3.0,
              1e-9);
}

TEST(Energy, CrossDeviceTransferCharged) {
  Dag d(2);
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  const auto attrs = serial_streamable_attrs(2);
  Platform pw;
  Device cpu;
  cpu.kind = DeviceKind::Cpu;
  cpu.lanes = 1;
  cpu.lane_gops = 1.0;
  cpu.transfer_watts = 7.0;
  const DeviceId c = pw.add_device(cpu);
  Device fpga;
  fpga.kind = DeviceKind::Fpga;
  fpga.area_budget = 1000.0;
  fpga.stream_gops_per_streamability = 1.0;
  pw.add_device(fpga);
  pw.set_link(c, DeviceId(1u), 1.0, 0.0);
  const CostModel cost(d, attrs, pw);
  const Evaluator eval(cost);
  Mapping m(2, c);
  m[NodeId(1)] = DeviceId(1u);
  const double ms = eval.evaluate(m);
  // transfer = 0.1 s at 7 W from the CPU side; active powers are zero.
  EXPECT_NEAR(mapping_energy_joules(cost, m, ms), 0.7, 1e-9);
}

TEST(Energy, ValidationErrors) {
  const Dag d = chain_dag(2);
  const auto attrs = serial_streamable_attrs(2);
  const Platform p = testing::cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  EXPECT_THROW(mapping_energy_joules(cost, Mapping(5, DeviceId(0u)), 1.0),
               Error);
  EXPECT_THROW(mapping_energy_joules(cost, Mapping(2, DeviceId(0u)), -1.0),
               Error);
}

// ---- pareto utilities ----

TEST(Pareto, DominatesSemantics) {
  const ParetoPoint a{{}, 1.0, 1.0};
  const ParetoPoint b{{}, 2.0, 2.0};
  const ParetoPoint c{{}, 1.0, 2.0};
  const ParetoPoint d{{}, 2.0, 1.0};
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_TRUE(dominates(a, c));
  EXPECT_FALSE(dominates(c, d));
  EXPECT_FALSE(dominates(d, c));
  EXPECT_FALSE(dominates(a, a));
}

TEST(Pareto, FilterKeepsOnlyNonDominated) {
  std::vector<ParetoPoint> pts{{{}, 3.0, 1.0}, {{}, 1.0, 3.0},
                               {{}, 2.0, 2.0}, {{}, 3.0, 3.0},
                               {{}, 2.0, 2.0}};
  const auto front = pareto_filter(pts);
  ASSERT_EQ(front.size(), 3u);
  // Sorted by makespan; (3,3) dominated; duplicate (2,2) collapsed.
  EXPECT_DOUBLE_EQ(front[0].makespan, 1.0);
  EXPECT_DOUBLE_EQ(front[1].makespan, 2.0);
  EXPECT_DOUBLE_EQ(front[2].makespan, 3.0);
  for (std::size_t i = 0; i + 1 < front.size(); ++i) {
    EXPECT_GT(front[i].energy, front[i + 1].energy);
  }
}

// ---- optimizers ----

class MultiObjectiveTest : public ::testing::Test {
 protected:
  MultiObjectiveTest() : rng_(7), platform_(reference_platform()) {
    dag_ = generate_sp_dag(25, rng_);
    attrs_ = random_task_attrs(dag_, rng_);
    cost_.emplace(dag_, attrs_, platform_);
    eval_.emplace(*cost_, EvalParams{});
  }

  Rng rng_;
  Platform platform_;
  Dag dag_;
  TaskAttrs attrs_;
  std::optional<CostModel> cost_;
  std::optional<Evaluator> eval_;
};

TEST_F(MultiObjectiveTest, Nsga2FrontIsNonDominated) {
  Nsga2Params params;
  params.population = 24;
  params.generations = 20;
  MoNsga2Mapper mo(params);
  const auto front = mo.optimize(*eval_);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 0; i < front.size(); ++i) {
    EXPECT_TRUE(cost_->area_feasible(front[i].mapping));
    EXPECT_NEAR(front[i].makespan, eval_->evaluate(front[i].mapping), 1e-12);
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(dominates(front[i], front[j]));
      }
    }
  }
}

TEST_F(MultiObjectiveTest, Nsga2FindsTradeoffs) {
  // With a seeded all-CPU individual and conflicting objectives, the front
  // should usually contain more than one point.
  Nsga2Params params;
  params.population = 30;
  params.generations = 30;
  MoNsga2Mapper mo(params);
  const auto front = mo.optimize(*eval_);
  EXPECT_GE(front.size(), 2u);
  // Sorted by makespan => energy strictly decreasing along the front.
  for (std::size_t i = 0; i + 1 < front.size(); ++i) {
    EXPECT_LT(front[i].makespan, front[i + 1].makespan);
    EXPECT_GT(front[i].energy, front[i + 1].energy);
  }
}

TEST_F(MultiObjectiveTest, ScalarizedDecompositionSweep) {
  const auto front = decomposition_pareto_sweep(*eval_, dag_, rng_);
  ASSERT_FALSE(front.empty());
  for (const auto& p : front) {
    EXPECT_TRUE(cost_->area_feasible(p.mapping));
    EXPECT_LT(p.makespan, kInfeasible);
  }
  // The pure-makespan scalarization (w = 1) must be at least as fast as the
  // all-CPU default.
  EXPECT_LE(front.front().makespan, eval_->default_mapping_makespan() + 1e-9);
}

TEST_F(MultiObjectiveTest, SweepExtremesOrdering) {
  // w = 1 optimizes makespan only; w = 0 optimizes energy only. The
  // fastest point cannot be more energy-frugal than the frugal extreme.
  const auto front = decomposition_pareto_sweep(*eval_, dag_, rng_,
                                                {0.0, 1.0});
  ASSERT_FALSE(front.empty());
  if (front.size() >= 2) {
    EXPECT_LT(front.front().makespan, front.back().makespan);
    EXPECT_GT(front.front().energy, front.back().energy);
  }
}

}  // namespace
}  // namespace spmap
