#include "util/thread_pool.hpp"

#include <algorithm>

namespace spmap {

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(std::max<std::size_t>(1, threads)) {
  threads_.reserve(thread_count_ - 1);
  for (std::size_t w = 1; w < thread_count_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::partition(std::size_t n,
                                                          std::size_t workers,
                                                          std::size_t w) {
  // First (n % workers) blocks get one extra item; blocks stay contiguous.
  const std::size_t base = n / workers;
  const std::size_t extra = n % workers;
  const std::size_t begin = w * base + std::min(w, extra);
  const std::size_t end = begin + base + (w < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (thread_count_ == 1 || n <= 1) {
    if (n > 0) fn(0, n, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    error_ = nullptr;
    pending_ = thread_count_ - 1;
    ++job_epoch_;
  }
  work_ready_.notify_all();

  // The caller is worker 0.
  const auto [begin, end] = partition(n, thread_count_, 0);
  std::exception_ptr caller_error;
  try {
    if (begin < end) fn(begin, end, 0);
  } catch (...) {
    caller_error = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (!error_ && caller_error) error_ = caller_error;
  if (error_) {
    const std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* job;
    std::size_t n;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
      n = job_n_;
    }
    const auto [begin, end] = partition(n, thread_count_, worker);
    std::exception_ptr err;
    try {
      if (begin < end) (*job)(begin, end, worker);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (err && !error_) error_ = err;
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

}  // namespace spmap
