#include "harness.hpp"

#include <cstdio>
#include <iostream>

#include "mappers/decomposition.hpp"
#include "mappers/heft.hpp"
#include "mappers/milp_mappers.hpp"
#include "mappers/nsga2.hpp"
#include "mappers/peft.hpp"
#include "sched/evaluator.hpp"
#include "util/timer.hpp"

namespace spmap::bench {

std::map<std::string, AlgoMetrics> run_point(
    const std::vector<Case>& cases, const std::vector<MapperSpec>& specs,
    const Platform& platform, Rng& rng, std::size_t reporting_orders) {
  std::map<std::string, AlgoMetrics> metrics;
  for (const Case& c : cases) {
    const CostModel cost(c.dag, c.attrs, platform);
    // Inner evaluator: the linear-time cost function used while mapping.
    const Evaluator inner(cost, {.random_orders = 0});
    // Reporting evaluator: min over BFS + `reporting_orders` random
    // schedules (Section IV-A).
    const Evaluator reporting(cost, {.random_orders = reporting_orders});
    const double baseline = reporting.default_mapping_makespan();

    for (const MapperSpec& spec : specs) {
      Rng mapper_rng = rng.split();
      WallTimer timer;
      auto mapper = spec.make(c.dag, mapper_rng);
      const MapperResult result = mapper->map(inner);
      const double seconds = timer.seconds();

      const double reported = reporting.evaluate(result.mapping);
      double improvement = 0.0;
      if (baseline > 0.0 && reported < baseline) {
        improvement = (baseline - reported) / baseline;
      }
      metrics[spec.name].improvement.add(improvement);
      metrics[spec.name].mapper_seconds.add(seconds);
    }
  }
  return metrics;
}

MapperSpec heft_spec() {
  return {"HEFT",
          [](const Dag&, Rng&) { return std::make_unique<HeftMapper>(); }};
}

MapperSpec peft_spec() {
  return {"PEFT",
          [](const Dag&, Rng&) { return std::make_unique<PeftMapper>(); }};
}

MapperSpec single_node_spec(bool first_fit) {
  return {first_fit ? "SNFirstFit" : "SingleNode",
          [first_fit](const Dag& dag, Rng&) {
            return make_single_node_mapper(dag, first_fit);
          }};
}

MapperSpec series_parallel_spec(bool first_fit) {
  return {first_fit ? "SPFirstFit" : "SeriesParallel",
          [first_fit](const Dag& dag, Rng& rng) {
            return make_series_parallel_mapper(dag, rng, first_fit);
          }};
}

MapperSpec nsga2_spec(std::size_t generations) {
  return {"NSGAII", [generations](const Dag&, Rng& rng) {
            Nsga2Params params;
            params.generations = generations;
            params.seed = rng();
            return std::make_unique<Nsga2Mapper>(params);
          }};
}

MapperSpec wgdp_device_spec(double time_limit_s) {
  return {"WGDP-Dev", [time_limit_s](const Dag&, Rng&) {
            MilpMapperParams params;
            params.time_limit_s = time_limit_s;
            return std::make_unique<WgdpDeviceMapper>(params);
          }};
}

MapperSpec wgdp_time_spec(double time_limit_s) {
  return {"WGDP-Time", [time_limit_s](const Dag&, Rng&) {
            MilpMapperParams params;
            params.time_limit_s = time_limit_s;
            return std::make_unique<WgdpTimeMapper>(params);
          }};
}

MapperSpec zhouliu_spec(double time_limit_s) {
  return {"ZhouLiu", [time_limit_s](const Dag&, Rng&) {
            MilpMapperParams params;
            params.time_limit_s = time_limit_s;
            return std::make_unique<ZhouLiuMapper>(params);
          }};
}

void print_series(const std::string& experiment, const std::string& x_name,
                  const std::vector<double>& xs,
                  const std::vector<std::map<std::string, AlgoMetrics>>& rows,
                  const std::vector<std::string>& algo_order) {
  require(xs.size() == rows.size(), "print_series: size mismatch");

  auto emit = [&](const char* metric,
                  const std::function<double(const AlgoMetrics&)>& get,
                  int precision) {
    std::vector<std::string> header{x_name};
    for (const auto& name : algo_order) header.push_back(name);
    Table table(std::move(header));
    for (std::size_t i = 0; i < xs.size(); ++i) {
      std::vector<double> values;
      for (const auto& name : algo_order) {
        const auto it = rows[i].find(name);
        values.push_back(it == rows[i].end() ? -1.0 : get(it->second));
      }
      table.add_row(xs[i], values, precision);
    }
    std::printf("## %s: %s\n", experiment.c_str(), metric);
    table.write_tsv(std::cout);
    std::printf("\n");
    table.write_aligned(std::cout);
    std::printf("\n");
  };

  emit("relative improvement (mean over graphs; missing = -1)",
       [](const AlgoMetrics& m) { return m.improvement.mean(); }, 4);
  emit("mapper execution time [ms] (mean over graphs; missing = -1)",
       [](const AlgoMetrics& m) { return m.mapper_seconds.mean() * 1e3; }, 3);
}

}  // namespace spmap::bench
