#pragma once
/// \file exit_codes.hpp
/// The exit-code contract shared by every spmap command-line tool, and
/// enforced by tests/cli_contract_test.cpp (which greps the tool sources
/// for violations):
///
///   kExitOk (0)       the command did what was asked
///   kExitFailure (1)  a runtime failure — bad input file, infeasible
///                     result, failed verification, abandoned drain.
///                     The diagnostic goes to **stderr**; stdout stays
///                     machine-parseable.
///   kExitUsage (2)    the invocation itself is wrong (unknown
///                     subcommand, missing required flag)
///
/// Tools must return these named constants, never bare integer literals,
/// so the contract is greppable.

namespace spmap::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;

}  // namespace spmap::cli
