#pragma once
/// \file journal.hpp
/// `spmap-journal/1`: the daemon's crash-safe job journal.
///
/// An append-only, newline-delimited record log the serving daemon
/// writes through on every job state transition and replays at startup,
/// so a restarted daemon still answers `status` — terminal results
/// included — for jobs submitted before the crash, and re-enqueues jobs
/// that were accepted but never finished.
///
/// ## On-disk format
///
/// One record is one line:
///
///     <crc32 as 8 lower-case hex chars> <compact JSON object> '\n'
///
/// The CRC (IEEE 802.3, the zlib polynomial) covers exactly the JSON
/// bytes between the single separating space and the newline. Records
/// are self-delimiting and individually checksummed, so replay can
/// recover the longest committed prefix of a journal whose tail was lost
/// mid-write (power cut, SIGKILL between write and fsync): the first
/// line that is truncated, fails its CRC, or does not parse ends the
/// replay — everything before it is exactly what was committed.
///
/// Record objects share `{"type": ..., "job": N}`; per docs/FORMATS.md:
///
///   type "submitted"  + "submit": the full wire submit body — enough to
///                       re-enqueue the job after a restart
///   type "started"    the job moved queued -> running
///   type "incumbent"  + makespan/iteration/seconds of one improvement
///   type "terminal"   + "status": the terminal status body, verbatim
///                       what the `status` verb answers
///
/// ## Durability
///
/// `append(record, /*sync=*/true)` fsyncs before returning — the daemon
/// syncs the acknowledged transitions (submitted, terminal) and leaves
/// the chatty ones (started, incumbent) buffered; a lost unsynced tail
/// only loses progress markers, never an acknowledgement.
///
/// ## Compaction
///
/// `rewrite(records)` atomically replaces the journal (write temp,
/// fsync, rename) with a consolidated snapshot — the daemon compacts to
/// one submitted + one terminal record per retained job once enough
/// appends accumulate, so the file stays bounded by the completed-job
/// retention instead of growing with traffic.
///
/// ## Thread-safety
///
/// None. The daemon writes from its IO thread only; replay happens
/// before the IO loop starts. That single-owner contract is machine
/// checked, not just prose: the daemon's `journal_` member is declared
/// `SPMAP_GUARDED_BY(io_role_)` (see src/serve/daemon.hpp and the
/// `ThreadRole` capability in src/util/mutex.hpp), so any code path
/// reaching the journal off the IO thread fails to compile under
/// `-Werror=thread-safety`.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace spmap {

/// Schema tag of the record stream (recorded in FORMATS.md; the format
/// itself is line-per-record, so the tag lives here and in the docs, not
/// in a file header — an empty journal is a valid journal).
inline constexpr const char* kJournalSchema = "spmap-journal/1";

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xffffffff) of `data` —
/// the per-record checksum of the journal format.
std::uint32_t crc32_ieee(const void* data, std::size_t size);

/// One journal line, serialized: `<crc8hex> <compact json>\n`.
std::string journal_line(const Json& record);

/// The committed prefix of a journal file (see `replay_journal`).
struct JournalReplay {
  std::vector<Json> records;  ///< valid records, in append order
  std::size_t committed_bytes = 0;  ///< file prefix the records occupy
  /// True when bytes past the committed prefix were dropped (a torn tail
  /// or corruption) — the restarted daemon logs it and truncates.
  bool tail_dropped = false;
  std::string tail_error;  ///< why the first bad line was rejected
};

/// Parses one journal line (without its '\n'). Returns false (with
/// `error` set) on a bad CRC, bad hex, or non-object JSON.
bool parse_journal_line(const std::string& line, Json& out,
                        std::string& error);

/// Replays a journal file: returns every record of the longest committed
/// prefix. A missing file is an empty (valid) journal. Throws
/// spmap::Error only on I/O errors reading an existing file.
JournalReplay replay_journal(const std::string& path);

/// The daemon-side writer. Opens in append mode (creating the file), or
/// use `rewrite` to atomically replace the contents first.
class Journal {
 public:
  explicit Journal(std::string path);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }

  /// Appends one record; `sync` fsyncs before returning (the commit
  /// barrier of acknowledged transitions). Throws spmap::Error when the
  /// write or sync fails — and honors the `journal.append` failpoint.
  void append(const Json& record, bool sync);

  /// Atomically replaces the journal with `records` (compaction): writes
  /// `<path>.tmp`, fsyncs, renames over `path`, reopens for append.
  void rewrite(const std::vector<Json>& records);

  /// Records appended since open/rewrite — the daemon's compaction
  /// trigger reads it.
  std::size_t appended() const { return appended_; }

 private:
  void open_append();
  void close_file();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t appended_ = 0;
};

}  // namespace spmap
