#pragma once
/// \file nsga2.hpp
/// Single-objective NSGA-II genetic algorithm (paper Section IV-A).
///
/// Configuration follows the paper: topologically sorted genome with one
/// gene (device) per task, single-point crossover at rate 0.9, per-gene
/// mutation rate 1/n, population 100, default 500 generations, and a repair
/// function that restores FPGA-area feasibility after variation. With a
/// single objective, NSGA-II's non-dominated sorting degenerates to elitist
/// (mu + lambda) truncation selection on fitness, which is what this
/// implementation performs.

#include <cstdint>

#include "mappers/mapper.hpp"

namespace spmap {

struct Nsga2Params {
  std::size_t population = 100;
  std::size_t generations = 500;
  double crossover_rate = 0.9;
  /// Per-gene mutation probability; <= 0 derives the paper's 1/n.
  double mutation_rate = 0.0;
  std::uint64_t seed = 0x6e5ca2;
  /// Binary tournament size for parent selection.
  std::size_t tournament = 2;
  /// Worker threads for fitness evaluation (Evaluator::evaluate_batch).
  /// Results are bit-identical for every thread count; 1 = serial.
  std::size_t threads = 1;
};

class Nsga2Mapper final : public Mapper {
 public:
  explicit Nsga2Mapper(Nsga2Params params = {}) : params_(params) {}

  using Mapper::map;
  std::string name() const override { return "NSGAII"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;

 private:
  Nsga2Params params_;
};

}  // namespace spmap
