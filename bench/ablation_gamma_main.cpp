/// Ablation — the gamma-threshold look-ahead of Section III-D.
///
/// Paper claim to verify: "using a gamma-threshold heuristic with gamma > 1
/// does not provide a significant benefit in comparison with the FirstFit
/// variant" — while all threshold variants are much cheaper than the basic
/// (exhaustive re-evaluation) principle.
///
/// Sweeps gamma in {1 (FirstFit), 1.25, 1.5, 2, 4} plus the basic variant
/// on random series-parallel graphs.
///
/// Flags: --tasks N --graphs N --seed S

#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "harness.hpp"
#include "util/flags.hpp"

using namespace spmap;
using namespace spmap::bench;

namespace {

MapperSpec gamma_spec(const std::string& name, double gamma) {
  char opts[48];
  std::snprintf(opts, sizeof(opts), "spff:gamma=%g", gamma);
  return spec_from_registry(opts, name);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"tasks", "graphs", "seed"});
  const auto sizes = flags.get_int_list("tasks", {50, 100, 150});
  const auto graphs = static_cast<std::size_t>(flags.get_int("graphs", 10));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  const Platform platform = reference_platform();
  Rng rng(seed);

  const std::vector<MapperSpec> specs{
      gamma_spec("gamma=1.0", 1.0),  gamma_spec("gamma=1.25", 1.25),
      gamma_spec("gamma=1.5", 1.5),  gamma_spec("gamma=2.0", 2.0),
      gamma_spec("gamma=4.0", 4.0),  series_parallel_spec(false)};

  std::vector<double> xs;
  std::vector<std::map<std::string, AlgoMetrics>> rows;
  for (const auto size : sizes) {
    std::vector<Case> cases;
    for (std::size_t g = 0; g < graphs; ++g) {
      Case c;
      c.dag = generate_sp_dag(static_cast<std::size_t>(size), rng);
      c.attrs = random_task_attrs(c.dag, rng);
      cases.push_back(std::move(c));
    }
    std::fprintf(stderr, "[ablation_gamma] %lld tasks...\n",
                 static_cast<long long>(size));
    rows.push_back(run_point(cases, specs, platform, rng));
    xs.push_back(static_cast<double>(size));
  }

  print_series("ablation_gamma", "tasks", xs, rows,
               {"gamma=1.0", "gamma=1.25", "gamma=1.5", "gamma=2.0",
                "gamma=4.0", "SeriesParallel"});
  return 0;
}
