#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spmap {

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Samples::ensure_sorted() const {
  if (sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Samples::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Samples::min() const {
  ensure_sorted();
  require(!sorted_.empty(), "Samples::min on empty sample set");
  return sorted_.front();
}

double Samples::max() const {
  ensure_sorted();
  require(!sorted_.empty(), "Samples::max on empty sample set");
  return sorted_.back();
}

double Samples::quantile(double q) const {
  ensure_sorted();
  require(!sorted_.empty(), "Samples::quantile on empty sample set");
  require(q >= 0.0 && q <= 1.0, "quantile q outside [0, 1]");
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double average_positive_relative_improvement(
    const std::vector<double>& baselines, const std::vector<double>& values) {
  require(baselines.size() == values.size(),
          "improvement: baseline/value size mismatch");
  if (baselines.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < baselines.size(); ++i) {
    if (baselines[i] > 0.0) {
      const double imp = (baselines[i] - values[i]) / baselines[i];
      if (imp > 0.0) sum += imp;
    }
  }
  return sum / static_cast<double>(baselines.size());
}

}  // namespace spmap
