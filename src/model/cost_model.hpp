#pragma once
/// \file cost_model.hpp
/// Model-based cost function (paper Sections II-B, IV-A; Wilhelm et al. [5]).
///
/// The cost model turns (task graph, task attributes, platform) into
/// per-task execution times and per-edge transfer times:
///
///   work(i)       = complexity(i) * data(i)            [M point-ops]
///   data(i)       = max(total in-MB, total out-MB)     [MB]
///   exec(i, d)    = work(i) / speed(i, d)
///   speed(i, CPU/GPU) = lane_gops * amdahl(parallelizability(i),
///                                          lanes / slots)
///   speed(i, FPGA)    = stream_gops_per_streamability * streamability(i)
///   transfer(e, a, b) = 0 if a == b else latency(a,b) + MB(e)/bandwidth(a,b)
///
/// Tasks with zero complexity (e.g. virtual normalization nodes) cost
/// nothing everywhere. Execution times are precomputed for all (task,
/// device) pairs, so lookups in the evaluator hot loop are O(1).

#include <vector>

#include "graph/dag.hpp"
#include "graph/task_attrs.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "util/rng.hpp"

namespace spmap {

class CostModel {
 public:
  /// References must outlive the model.
  CostModel(const Dag& dag, const TaskAttrs& attrs, const Platform& platform);

  const Dag& dag() const { return *dag_; }
  const TaskAttrs& attrs() const { return *attrs_; }
  const Platform& platform() const { return *platform_; }

  /// Data volume processed by a task (MB).
  double task_data_mb(NodeId n) const { return data_mb_[n.v]; }

  /// Execution time of task `n` on device `d` in seconds.
  double exec_time(NodeId n, DeviceId d) const {
    return exec_[n.v * platform_->device_count() + d.v];
  }

  /// Transfer time of edge `e` when producer is on `from`, consumer on `to`.
  double transfer_time(EdgeId e, DeviceId from, DeviceId to) const {
    if (from == to) return 0.0;
    return platform_->latency_s(from, to) +
           dag_->data_mb(e) / 1000.0 / platform_->bandwidth_gbps(from, to);
  }

  /// Mean execution time over all devices (HEFT's task weight). Cached at
  /// construction — O(1).
  double mean_exec_time(NodeId n) const { return mean_exec_[n.v]; }
  /// Minimum execution time over all devices. Cached at construction.
  double min_exec_time(NodeId n) const { return min_exec_[n.v]; }
  /// Mean transfer time of edge `e` over all ordered pairs of distinct
  /// devices (HEFT's average communication cost). The mean distributes over
  /// the transfer formula, so it reduces to two platform-wide scalars
  /// (mean latency, mean inverse bandwidth) cached at construction — O(1)
  /// instead of the former O(device_count^2) loop per call.
  double mean_transfer_time(EdgeId e) const {
    return mean_latency_s_ +
           dag_->data_mb(e) / 1000.0 * mean_inv_bandwidth_;
  }

  /// FPGA area demanded by a task.
  double area(NodeId n) const { return attrs_->area[n.v]; }

  /// Total area mapped onto device `d` (meaningful for FPGAs).
  double mapped_area(const Mapping& m, DeviceId d) const;

  /// True iff no FPGA's area budget is exceeded.
  bool area_feasible(const Mapping& m) const;

  /// Sum over tasks of the maximum execution time over devices — the
  /// paper's normalization yardstick for cost-function overhead and a
  /// trivial upper bound for any serial schedule.
  double max_serial_time() const;

  /// Raw node-major [node][device] execution-time table (node_count *
  /// device_count entries). The evaluator's flat core indexes it directly.
  const double* exec_data() const { return exec_.data(); }

 private:
  const Dag* dag_;
  const TaskAttrs* attrs_;
  const Platform* platform_;
  std::vector<double> data_mb_;    // per node
  std::vector<double> exec_;       // node-major [node][device]
  std::vector<double> mean_exec_;  // per node
  std::vector<double> min_exec_;   // per node
  std::vector<DeviceId> fpga_devices_;  // cached: area_feasible is hot
  double mean_latency_s_ = 0.0;    // over ordered distinct device pairs
  double mean_inv_bandwidth_ = 0.0;
};

/// A uniformly random device assignment over the model's platform, with
/// FPGA area overflow repaired toward the default device (lowest node ids
/// first). The canonical random-candidate generator of the batch
/// benchmarks and the evaluator equivalence tests.
Mapping random_feasible_mapping(const CostModel& cost, Rng& rng);

}  // namespace spmap
