#include "util/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmap {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "unix socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in tcp_address(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  require(inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
          "not a numeric IPv4 address: " + host);
  return addr;
}

}  // namespace

Endpoint Endpoint::parse(const std::string& spec) {
  require(!spec.empty(), "empty endpoint (want unix:PATH or tcp:HOST:PORT)");
  Endpoint ep;
  if (spec.rfind("unix:", 0) == 0) {
    ep.kind = Kind::kUnix;
    ep.path = spec.substr(5);
    require(!ep.path.empty(), "unix endpoint without a path: " + spec);
    return ep;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    require(colon != std::string::npos && colon > 0,
            "tcp endpoint must be tcp:HOST:PORT: " + spec);
    ep.kind = Kind::kTcp;
    ep.host = rest.substr(0, colon);
    const std::string port = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long value = std::strtoul(port.c_str(), &end, 10);
    require(end != nullptr && *end == '\0' && !port.empty() && value <= 65535,
            "bad tcp port: " + spec);
    ep.port = static_cast<std::uint16_t>(value);
    return ep;
  }
  // A bare path is a unix socket; anything else is a typo worth naming.
  require(spec.find('/') != std::string::npos,
          "unrecognized endpoint (want unix:PATH or tcp:HOST:PORT): " + spec);
  ep.kind = Kind::kUnix;
  ep.path = spec;
  return ep;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::ListenSocket(const Endpoint& endpoint, int backlog)
    : endpoint_(endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    Socket sock(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) fail_errno("socket(AF_UNIX)");
    sockaddr_un addr = unix_address(endpoint.path);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      if (errno != EADDRINUSE) fail_errno("bind " + endpoint.to_string());
      // A socket file exists. Replace it only if it is stale (no
      // listener answers); a live daemon keeps its endpoint.
      Socket probe(::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0));
      if (probe.valid() &&
          ::connect(probe.fd(), reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        throw Error("endpoint already served: " + endpoint.to_string());
      }
      ::unlink(endpoint.path.c_str());
      if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        fail_errno("bind " + endpoint.to_string());
      }
    }
    unlink_on_close_ = true;
    if (::listen(sock.fd(), backlog) != 0) {
      fail_errno("listen " + endpoint.to_string());
    }
    set_nonblocking(sock.fd());
    socket_ = std::move(sock);
    return;
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) fail_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail_errno("bind " + endpoint.to_string());
  }
  if (::listen(sock.fd(), backlog) != 0) {
    fail_errno("listen " + endpoint.to_string());
  }
  // Report the ephemeral port the kernel picked for port 0 requests.
  socklen_t len = sizeof(addr);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    endpoint_.port = ntohs(addr.sin_port);
  }
  set_nonblocking(sock.fd());
  socket_ = std::move(sock);
}

ListenSocket::~ListenSocket() { shut(); }

void ListenSocket::shut() {
  if (!socket_.valid()) return;
  socket_.close();
  if (unlink_on_close_) ::unlink(endpoint_.path.c_str());
}

Socket ListenSocket::accept_client() const {
  const int fd = ::accept4(socket_.fd(), nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  return Socket(fd);  // invalid on EAGAIN — the caller polls
}

Socket connect_endpoint(const Endpoint& endpoint, double retry_for_ms) {
  const WallTimer timer;
  for (;;) {
    Socket sock(::socket(
        endpoint.kind == Endpoint::Kind::kUnix ? AF_UNIX : AF_INET,
        SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!sock.valid()) fail_errno("socket");
    int rc;
    if (endpoint.kind == Endpoint::Kind::kUnix) {
      sockaddr_un addr = unix_address(endpoint.path);
      rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    } else {
      sockaddr_in addr = tcp_address(endpoint.host, endpoint.port);
      rc = ::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr));
    }
    if (rc == 0) return sock;
    const bool not_up_yet =
        errno == ECONNREFUSED || errno == ENOENT || errno == EAGAIN;
    if (!not_up_yet || timer.millis() >= retry_for_ms) {
      fail_errno("connect " + endpoint.to_string());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

ssize_t send_some(int fd, const char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

ssize_t recv_some(int fd, char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n > 0) return n;
    if (n == 0) return -1;  // orderly EOF: the connection is over
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

}  // namespace spmap
