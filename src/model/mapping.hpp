#pragma once
/// \file mapping.hpp
/// A task mapping: one device per task-graph node.

#include <vector>

#include "graph/ids.hpp"
#include "util/error.hpp"

namespace spmap {

struct Mapping {
  std::vector<DeviceId> device;

  Mapping() = default;
  /// Uniform mapping: every one of `n` tasks on device `d`.
  Mapping(std::size_t n, DeviceId d) : device(n, d) {}

  std::size_t size() const { return device.size(); }

  DeviceId operator[](NodeId n) const {
    SPMAP_ASSERT(n.v < device.size());
    return device[n.v];
  }
  DeviceId& operator[](NodeId n) {
    SPMAP_ASSERT(n.v < device.size());
    return device[n.v];
  }

  bool operator==(const Mapping&) const = default;

  /// Throws spmap::Error unless sized `n` with all devices < device_count.
  void validate(std::size_t n, std::size_t device_count) const {
    require(device.size() == n, "Mapping: size mismatch");
    for (DeviceId d : device) {
      require(d.valid() && d.v < device_count,
              "Mapping: device id out of range");
    }
  }
};

}  // namespace spmap
