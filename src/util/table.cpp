#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace spmap {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table requires a non-empty header");
}

void Table::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "Table row width mismatch");
  rows_.push_back(std::move(row));
}

void Table::add_row(double x, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(format_double(x, 0));
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void Table::write_tsv(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << '\t';
    os << header_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << '\t';
      os << row[c];
    }
    os << '\n';
  }
}

void Table::write_aligned(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream oss;
  write_aligned(oss);
  return oss.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string format_duration(double seconds) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2);
  if (seconds < 1e-3) {
    oss << seconds * 1e6 << " us";
  } else if (seconds < 1.0) {
    oss << seconds * 1e3 << " ms";
  } else {
    oss << seconds << " s";
  }
  return oss.str();
}

}  // namespace spmap
