#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "model/platform.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/mapping_service.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spmap {

namespace {

struct MixEntry {
  std::string cls;
  std::uint64_t weight;
};

std::vector<MixEntry> parse_mix(const std::string& mix) {
  std::vector<MixEntry> entries;
  std::size_t pos = 0;
  while (pos < mix.size()) {
    const std::size_t comma = mix.find(',', pos);
    const std::string item =
        mix.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? mix.size() : comma + 1;
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos && eq > 0 && eq + 1 < item.size(),
            "loadgen mix entries must be class=weight, got \"" + item +
                "\"");
    const std::string cls = item.substr(0, eq);
    require(cls == "low" || cls == "normal" || cls == "high",
            "loadgen mix class must be low, normal or high, got \"" + cls +
                "\"");
    const std::string weight = item.substr(eq + 1);
    char* end = nullptr;
    const unsigned long value = std::strtoul(weight.c_str(), &end, 10);
    require(end != nullptr && *end == '\0' && value >= 1,
            "loadgen mix weight must be a positive integer, got \"" +
                weight + "\"");
    entries.push_back({cls, value});
  }
  require(!entries.empty(), "loadgen mix is empty");
  return entries;
}

/// The deterministic identity of request `index`: every stream (class
/// pick, generation, construction, run seed) is a splitmix64 draw from a
/// state derived from the base seed and the index alone — independent of
/// session scheduling, so `verify` can reconstruct any request.
struct RequestSpec {
  std::string cls;
  std::uint64_t generate_seed = 0;
  std::uint64_t construction_seed = 0;
  std::uint64_t run_seed = 0;
};

RequestSpec request_spec(const LoadgenOptions& options, std::uint64_t index,
                         const std::vector<MixEntry>& mix) {
  // --distinct K folds the index: requests i and i+K are the same problem
  // with the same pinned seeds, so a caching daemon answers the repeats
  // from its memo.
  if (options.distinct > 0) index %= options.distinct;
  std::uint64_t state =
      options.seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  RequestSpec spec;
  spec.generate_seed = splitmix64(state);
  spec.construction_seed = splitmix64(state);
  spec.run_seed = splitmix64(state);
  std::uint64_t total = 0;
  for (const MixEntry& entry : mix) total += entry.weight;
  std::uint64_t pick = splitmix64(state) % total;
  for (const MixEntry& entry : mix) {
    if (pick < entry.weight) {
      spec.cls = entry.cls;
      break;
    }
    pick -= entry.weight;
  }
  return spec;
}

Json submit_frame(const LoadgenOptions& options, std::uint64_t tag,
                  const RequestSpec& spec) {
  Json generate = Json::object();
  generate.set("type", Json("sp"));
  generate.set("tasks", Json(options.tasks));
  generate.set("seed", Json(spec.generate_seed));

  Json frame = Json::object();
  frame.set("op", Json("submit"));
  frame.set("tag", Json(tag));
  frame.set("mapper", Json(options.mapper));
  frame.set("class", Json(spec.cls));
  frame.set("generate", std::move(generate));
  if (options.max_evaluations > 0) {
    frame.set("max_evals", Json(options.max_evaluations));
  }
  frame.set("seed", Json(spec.run_seed));
  frame.set("construction_seed", Json(spec.construction_seed));
  if (options.reporting_orders > 0) {
    frame.set("reporting_orders", Json(options.reporting_orders));
  }
  frame.set("subscribe", Json(true));
  return frame;
}

/// One finished request with everything `verify` needs.
struct Sample {
  RequestSpec spec;
  double latency_ms = 0.0;
  double makespan = 0.0;
  double reported_makespan = 0.0;
};

struct SessionOutcome {
  std::vector<Sample> samples;
  std::map<std::string, LoadgenClassStats> counts;
  std::vector<std::string> errors;
  bool connected = false;
  // Cache outcomes of completed requests (see LoadgenReport).
  std::size_t cache_hits = 0;
  std::size_t cache_warm = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_none = 0;
  // Chaos accounting (see LoadgenReport).
  std::size_t drops = 0;
  std::size_t resumes = 0;
  std::size_t rehellos = 0;
  std::size_t lost = 0;
  std::size_t duplicated = 0;
};

WireClientOptions client_options(const LoadgenOptions& options,
                                 std::uint64_t session_index) {
  WireClientOptions copts;
  copts.connect_timeout_ms = options.connect_timeout_ms;
  copts.connect_retries = options.connect_retries;
  copts.backoff_ms = options.backoff_ms;
  copts.jitter_seed = options.seed ^ (0x6a17e500u + session_index);
  if (options.chaos) {
    // Chaos recovery has to ride out daemon restarts: give reconnect a
    // real retry schedule even when the caller asked for none.
    copts.connect_retries = std::max<std::size_t>(copts.connect_retries, 10);
  }
  return copts;
}

void note_error(SessionOutcome& out, std::string message) {
  if (out.errors.size() < 8) out.errors.push_back(std::move(message));
}

bool frame_ok(const Json& frame) {
  return frame.contains("ok") && frame.at("ok").is_bool() &&
         frame.at("ok").as_bool();
}

std::string frame_error_code(const Json& frame) {
  if (frame.contains("error") && frame.at("error").is_object() &&
      frame.at("error").contains("code")) {
    return frame.at("error").at("code").as_string();
  }
  return "";
}

/// Records a `done` event for the request it answers.
void record_done(const Json& done, const RequestSpec& spec, double latency_ms,
                 SessionOutcome& out) {
  LoadgenClassStats& stats = out.counts[spec.cls];
  const std::string state =
      done.contains("state") ? done.at("state").as_string() : "";
  if (state == "done") {
    ++stats.completed;
    const std::string cache =
        done.contains("cache") ? done.at("cache").as_string() : "none";
    if (cache == "hit") {
      ++out.cache_hits;
    } else if (cache == "warm") {
      ++out.cache_warm;
    } else if (cache == "miss") {
      ++out.cache_misses;
    } else {
      ++out.cache_none;
    }
    Sample sample;
    sample.spec = spec;
    sample.latency_ms = latency_ms;
    sample.makespan = done.at("makespan").as_double();
    sample.reported_makespan = done.at("reported_makespan").as_double();
    out.samples.push_back(std::move(sample));
  } else {
    ++stats.failed;
    note_error(out, "job finished as " + state + ": " +
                        (done.contains("error")
                             ? done.at("error").as_string()
                             : ""));
  }
}

/// Closed loop: submit, wait for the `done`, repeat.
void run_closed_session(const LoadgenOptions& options,
                        const std::vector<MixEntry>& mix,
                        std::uint64_t first_index, std::uint64_t count,
                        SessionOutcome& out) {
  WireClient client(options.endpoint, client_options(options, first_index));
  out.connected = true;
  const WallTimer clock;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t index = first_index + i;
    const RequestSpec spec = request_spec(options, index, mix);
    ++out.counts[spec.cls].submitted;
    const double t0 = clock.seconds();
    client.send(submit_frame(options, index, spec));
    // Responses answer in request order and this session has nothing
    // else outstanding: the first non-event frame is the submit answer.
    std::optional<Json> answer;
    for (;;) {
      answer = client.recv(60e3);
      if (!answer.has_value() || !answer->contains("event")) break;
    }
    if (!answer.has_value()) {
      ++out.counts[spec.cls].failed;
      note_error(out, "submit response timed out");
      return;
    }
    if (!frame_ok(*answer)) {
      if (frame_error_code(*answer) == "overloaded") {
        ++out.counts[spec.cls].rejected;
      } else {
        ++out.counts[spec.cls].failed;
        note_error(out, "submit refused: " + answer->dump());
      }
      continue;
    }
    const std::uint64_t job =
        static_cast<std::uint64_t>(answer->at("job").as_int());
    for (;;) {
      std::optional<Json> frame = client.recv_event("done", 120e3);
      if (!frame.has_value()) {
        ++out.counts[spec.cls].failed;
        note_error(out, "done event timed out");
        return;
      }
      if (static_cast<std::uint64_t>(frame->at("job").as_int()) != job) {
        continue;  // a straggler from an earlier request
      }
      record_done(*frame, spec, 1e3 * (clock.seconds() - t0), out);
      break;
    }
  }
}

/// A uniform [0,1) roll from the session's deterministic chaos stream.
bool chaos_roll(Rng& rng, double rate) {
  return (static_cast<double>(rng() >> 11) * 0x1.0p-53) < rate;
}

/// Reconnects until the endpoint answers again (the daemon may be mid-
/// restart under the supervisor). True when the session resumed; false
/// when it fell back to a fresh hello.
bool chaos_recover(WireClient& client, SessionOutcome& out) {
  const WallTimer timer;
  for (;;) {
    try {
      const bool resumed = client.reconnect(/*try_resume=*/true);
      if (resumed) {
        ++out.resumes;
      } else {
        ++out.rehellos;
      }
      return resumed;
    } catch (const Error& ex) {
      if (timer.seconds() > 60.0) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

/// Chaos closed loop: one request at a time, but the connection is
/// deliberately killed around the interesting points, and the session
/// must still account for every acknowledged submit exactly once.
void run_chaos_session(const LoadgenOptions& options,
                       const std::vector<MixEntry>& mix,
                       std::uint64_t first_index, std::uint64_t count,
                       SessionOutcome& out) {
  WireClient client(options.endpoint, client_options(options, first_index));
  out.connected = true;
  std::uint64_t chaos_state = options.seed ^ (0xc4a05u + first_index);
  Rng chaos_rng(splitmix64(chaos_state));
  const WallTimer clock;
  std::set<std::uint64_t> recorded;  // job ids already accounted terminal

  // Reads the next response (skipping events, which are accounted only
  // for duplicate detection). Throws on connection loss.
  const auto next_answer = [&]() -> std::optional<Json> {
    for (;;) {
      std::optional<Json> frame = client.recv(60e3);
      if (!frame.has_value() || !frame->contains("event")) return frame;
      if (frame->at("event").as_string() == "done" &&
          frame->contains("job")) {
        const auto jid =
            static_cast<std::uint64_t>(frame->at("job").as_int());
        if (recorded.count(jid) != 0) ++out.duplicated;
      }
    }
  };

  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t index = first_index + i;
    const RequestSpec spec = request_spec(options, index, mix);
    ++out.counts[spec.cls].submitted;
    const double t0 = clock.seconds();

    // ---- submit until acknowledged --------------------------------------
    // A drop between send and answer leaves the submit's fate unknown: we
    // re-submit. If the first copy *was* accepted it runs as an orphan
    // whose done event we ignore (its job id is never known to us) — the
    // daemon wastes a run, but the request is recorded exactly once.
    std::uint64_t job = 0;
    bool settled = false;  // rejected/failed before acknowledgement
    for (;;) {
      try {
        client.send(submit_frame(options, index, spec));
        if (options.chaos && chaos_roll(chaos_rng, options.chaos_drop_rate)) {
          ++out.drops;
          client.drop_connection();
          chaos_recover(client, out);
          continue;  // fate unknown: re-submit
        }
        std::optional<Json> answer = next_answer();
        if (!answer.has_value()) {
          ++out.counts[spec.cls].failed;
          note_error(out, "submit response timed out");
          settled = true;
          break;
        }
        if (!frame_ok(*answer)) {
          if (frame_error_code(*answer) == "overloaded") {
            ++out.counts[spec.cls].rejected;
          } else {
            ++out.counts[spec.cls].failed;
            note_error(out, "submit refused: " + answer->dump());
          }
          settled = true;
          break;
        }
        job = static_cast<std::uint64_t>(answer->at("job").as_int());
        break;
      } catch (const Error&) {
        ++out.drops;  // incidental: daemon killed mid-submit
        chaos_recover(client, out);
      }
    }
    if (settled) continue;

    // ---- post-ack injected drop -----------------------------------------
    // Counted in the await loop below, where the dead socket surfaces.
    if (options.chaos && chaos_roll(chaos_rng, options.chaos_drop_rate)) {
      client.drop_connection();
    }

    // ---- await the terminal result, across drops and restarts -----------
    bool done = false;
    bool poll_status = false;  // lost the subscription: fall back to status
    const WallTimer request_timer;
    while (!done) {
      if (request_timer.seconds() > 180.0) {
        ++out.counts[spec.cls].failed;
        ++out.lost;
        note_error(out, "job " + std::to_string(job) +
                            " never turned terminal (180s)");
        break;
      }
      try {
        if (poll_status) {
          Json status = Json::object();
          status.set("op", Json("status"));
          status.set("job", Json(job));
          client.send(status);
          std::optional<Json> answer = next_answer();
          if (!answer.has_value()) continue;
          if (!frame_ok(*answer)) {
            // The daemon does not know the job: an acknowledged submit
            // was lost — exactly what the journal must prevent.
            ++out.counts[spec.cls].failed;
            ++out.lost;
            note_error(out, "job " + std::to_string(job) +
                                " unknown after reconnect: " +
                                answer->dump());
            break;
          }
          const std::string state = answer->at("state").as_string();
          if (state == "queued" || state == "running") {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
            continue;
          }
          record_done(*answer, spec, 1e3 * (clock.seconds() - t0), out);
          recorded.insert(job);
          done = true;
          continue;
        }
        std::optional<Json> frame = client.recv_event("done", 120e3);
        if (!frame.has_value()) continue;  // request_timer bounds us
        const auto jid =
            static_cast<std::uint64_t>(frame->at("job").as_int());
        if (jid != job) {
          // A replayed orphan or straggler; double delivery of an
          // already-recorded job counts as duplication.
          if (recorded.count(jid) != 0) ++out.duplicated;
          continue;
        }
        record_done(*frame, spec, 1e3 * (clock.seconds() - t0), out);
        recorded.insert(job);
        done = true;
      } catch (const Error&) {
        ++out.drops;
        const bool resumed = chaos_recover(client, out);
        // Resumed: the missed events (the done included, if it fired
        // while we were gone) were just replayed — keep listening. Fresh
        // hello: the subscription is gone; poll status by job id, which
        // a journaled daemon answers across restarts.
        if (!resumed) poll_status = true;
      }
    }
  }
}

/// Open loop: submit on a cadence, collect completions as they arrive.
void run_open_session(const LoadgenOptions& options,
                      const std::vector<MixEntry>& mix,
                      std::uint64_t session_index, SessionOutcome& out) {
  WireClient client(options.endpoint,
                    client_options(options, session_index));
  out.connected = true;
  const WallTimer clock;
  const double interval_s = 1.0 / std::max(options.rate_hz, 1e-3);

  struct InFlight {
    RequestSpec spec;
    double t0 = 0.0;
  };
  std::deque<InFlight> awaiting_answer;       // submit responses, in order
  std::map<std::uint64_t, InFlight> running;  // by job id
  double next_submit = 0.0;
  std::uint64_t submitted = 0;

  const auto pump = [&](double wait_ms) {
    std::optional<Json> frame = client.recv(wait_ms);
    if (!frame.has_value()) return;
    if (frame->contains("ok")) {
      require(!awaiting_answer.empty(),
              "loadgen: response without an outstanding request");
      InFlight flight = awaiting_answer.front();
      awaiting_answer.pop_front();
      if (!frame_ok(*frame)) {
        if (frame_error_code(*frame) == "overloaded") {
          ++out.counts[flight.spec.cls].rejected;
        } else {
          ++out.counts[flight.spec.cls].failed;
          note_error(out, "submit refused: " + frame->dump());
        }
        return;
      }
      running.emplace(static_cast<std::uint64_t>(frame->at("job").as_int()),
                      flight);
      return;
    }
    if (frame->contains("event") &&
        frame->at("event").as_string() == "done") {
      const auto it = running.find(
          static_cast<std::uint64_t>(frame->at("job").as_int()));
      if (it == running.end()) return;
      record_done(*frame, it->second.spec,
                  1e3 * (clock.seconds() - it->second.t0), out);
      running.erase(it);
    }
    // incumbent/draining events: observed, not accounted
  };

  while (clock.seconds() < options.duration_s) {
    if (clock.seconds() >= next_submit) {
      // Open-loop request indices interleave sessions: session s takes
      // indices s, s+N, s+2N... — still a pure function of the index.
      const std::uint64_t index =
          session_index + submitted * options.sessions;
      const RequestSpec spec = request_spec(options, index, mix);
      ++out.counts[spec.cls].submitted;
      awaiting_answer.push_back({spec, clock.seconds()});
      client.send(submit_frame(options, index, spec));
      ++submitted;
      next_submit += interval_s;
    }
    pump(2.0);
  }
  // Drain the tail: wait for outstanding work, bounded.
  const WallTimer drain;
  while ((!running.empty() || !awaiting_answer.empty()) &&
         drain.seconds() < 60.0) {
    pump(50.0);
  }
  for (const auto& [job, flight] : running) {
    (void)job;
    ++out.counts[flight.spec.cls].failed;
    note_error(out, "request never finished before the drain window");
  }
  for (const InFlight& flight : awaiting_answer) {
    ++out.counts[flight.spec.cls].failed;
    note_error(out, "submit was never answered");
  }
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/// Re-runs every completed request through a local MappingService with
/// the identical job construction and demands bit-identical makespans.
/// With --distinct, repeated identities are re-executed locally only
/// once (the local run is deterministic, so one execution answers every
/// repeat) but every sample is still compared and counted.
void verify_samples(const LoadgenOptions& options,
                    const std::vector<Sample>& samples,
                    LoadgenReport& report) {
  const auto platform =
      std::make_shared<const Platform>(reference_platform());
  MappingServiceOptions service_options;
  service_options.workers = 1;
  MappingService service(service_options);
  struct LocalRun {
    std::string error;
    double makespan = 0.0;
    double reported_makespan = 0.0;
  };
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>, LocalRun>
      memo;
  for (const Sample& sample : samples) {
    const auto key = std::make_tuple(sample.spec.generate_seed,
                                     sample.spec.construction_seed,
                                     sample.spec.run_seed);
    auto it = memo.find(key);
    if (it == memo.end()) {
      Json generate = Json::object();
      generate.set("type", Json("sp"));
      generate.set("tasks", Json(options.tasks));
      generate.set("seed", Json(sample.spec.generate_seed));

      MapJob job;
      job.mapper_spec = options.mapper;
      job.graph = std::make_shared<const TaskGraph>(
          graph_from_generate_spec(generate));
      job.platform = platform;
      job.inner_orders = 0;
      if (options.reporting_orders > 0) {
        job.reporting_orders = options.reporting_orders;
      } else {
        job.reporting_orders = 0;
      }
      job.construction_rng = Rng(sample.spec.construction_seed);

      MapRequest request;
      request.max_evaluations = options.max_evaluations;
      request.seed = sample.spec.run_seed;

      MappingService::JobHandle handle =
          service.submit(std::move(job), std::move(request));
      const MapJobResult& result = handle.wait();
      LocalRun run;
      run.error = result.error;
      run.makespan = result.report.predicted_makespan;
      run.reported_makespan = result.reported_makespan;
      it = memo.emplace(key, std::move(run)).first;
    }
    const LocalRun& local = it->second;
    ++report.verified;
    if (!local.error.empty() || local.makespan != sample.makespan ||
        local.reported_makespan != sample.reported_makespan) {
      ++report.mismatches;
      if (report.errors.size() < 8) {
        report.errors.push_back(
            "verify mismatch: server makespan " +
            std::to_string(sample.makespan) + " local " +
            std::to_string(local.makespan));
      }
    }
  }
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  require(options.sessions >= 1, "loadgen: sessions must be >= 1");
  require(!options.chaos || !options.open_loop,
          "loadgen: chaos mode requires the closed loop");
  const std::vector<MixEntry> mix = parse_mix(options.mix);

  std::vector<SessionOutcome> outcomes(options.sessions);
  std::vector<std::thread> threads;
  threads.reserve(options.sessions);
  const WallTimer wall;

  for (std::size_t s = 0; s < options.sessions; ++s) {
    threads.emplace_back([&, s] {
      SessionOutcome& out = outcomes[s];
      try {
        if (options.open_loop) {
          run_open_session(options, mix, s, out);
        } else {
          // Closed loop: split `requests` across sessions, remainder to
          // the first ones, contiguous global index ranges.
          const std::uint64_t base = options.requests / options.sessions;
          const std::uint64_t extra =
              s < options.requests % options.sessions ? 1 : 0;
          std::uint64_t first = 0;
          for (std::size_t t = 0; t < s; ++t) {
            first += options.requests / options.sessions +
                     (t < options.requests % options.sessions ? 1 : 0);
          }
          if (options.chaos) {
            run_chaos_session(options, mix, first, base + extra, out);
          } else {
            run_closed_session(options, mix, first, base + extra, out);
          }
        }
      } catch (const std::exception& ex) {
        note_error(out, std::string("session failed: ") + ex.what());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadgenReport report;
  report.sessions = options.sessions;
  report.wall_seconds = wall.seconds();

  bool any_connected = false;
  std::map<std::string, std::vector<double>> latencies;
  std::vector<Sample> samples;
  for (SessionOutcome& out : outcomes) {
    any_connected = any_connected || out.connected;
    for (auto& [cls, stats] : out.counts) {
      LoadgenClassStats& total = report.classes[cls];
      total.submitted += stats.submitted;
      total.completed += stats.completed;
      total.rejected += stats.rejected;
      total.failed += stats.failed;
    }
    for (Sample& sample : out.samples) {
      latencies[sample.spec.cls].push_back(sample.latency_ms);
      samples.push_back(std::move(sample));
    }
    for (std::string& error : out.errors) {
      if (report.errors.size() < 16) {
        report.errors.push_back(std::move(error));
      }
    }
    report.drops += out.drops;
    report.resumes += out.resumes;
    report.rehellos += out.rehellos;
    report.lost += out.lost;
    report.duplicated += out.duplicated;
    report.cache_hits += out.cache_hits;
    report.cache_warm += out.cache_warm;
    report.cache_misses += out.cache_misses;
    report.cache_none += out.cache_none;
  }
  require(any_connected,
          "loadgen: no session could connect to " +
              options.endpoint.to_string());

  for (auto& [cls, values] : latencies) {
    std::sort(values.begin(), values.end());
    LoadgenClassStats& stats = report.classes[cls];
    stats.p50_ms = percentile(values, 0.50);
    stats.p95_ms = percentile(values, 0.95);
    stats.p99_ms = percentile(values, 0.99);
    stats.max_ms = values.back();
    double sum = 0.0;
    for (const double v : values) sum += v;
    stats.mean_ms = sum / static_cast<double>(values.size());
  }
  for (const auto& [cls, stats] : report.classes) {
    (void)cls;
    report.submitted += stats.submitted;
    report.completed += stats.completed;
    report.rejected += stats.rejected;
    report.failed += stats.failed;
  }
  report.throughput_rps =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.completed) / report.wall_seconds
          : 0.0;

  if (options.verify) verify_samples(options, samples, report);
  return report;
}

Json loadgen_report_json(const LoadgenOptions& options,
                         const LoadgenReport& report) {
  Json doc = Json::object();
  doc.set("schema", Json("spmap-loadgen-report/1"));
  doc.set("endpoint", Json(options.endpoint.to_string()));
  doc.set("mode", Json(options.open_loop ? "open" : "closed"));
  doc.set("sessions", Json(report.sessions));
  doc.set("mix", Json(options.mix));
  doc.set("mapper", Json(options.mapper));
  doc.set("tasks", Json(options.tasks));
  doc.set("max_evals", Json(options.max_evaluations));
  doc.set("seed", Json(options.seed));
  if (options.distinct > 0) doc.set("distinct", Json(options.distinct));
  if (options.open_loop) {
    doc.set("rate_hz", Json(options.rate_hz));
    doc.set("duration_s", Json(options.duration_s));
  } else {
    doc.set("requests", Json(options.requests));
  }
  doc.set("wall_seconds", Json(report.wall_seconds));
  doc.set("throughput_rps", Json(report.throughput_rps));
  doc.set("submitted", Json(report.submitted));
  doc.set("completed", Json(report.completed));
  doc.set("rejected", Json(report.rejected));
  doc.set("failed", Json(report.failed));
  doc.set("verified", Json(report.verified));
  doc.set("mismatches", Json(report.mismatches));
  doc.set("cache_hits", Json(report.cache_hits));
  doc.set("cache_warm", Json(report.cache_warm));
  doc.set("cache_misses", Json(report.cache_misses));
  doc.set("cache_none", Json(report.cache_none));
  doc.set("cache_hit_rate",
          Json(report.completed > 0
                   ? static_cast<double>(report.cache_hits) /
                         static_cast<double>(report.completed)
                   : 0.0));
  if (options.chaos) {
    doc.set("chaos", Json(true));
    doc.set("chaos_drop_rate", Json(options.chaos_drop_rate));
    doc.set("drops", Json(report.drops));
    doc.set("resumes", Json(report.resumes));
    doc.set("rehellos", Json(report.rehellos));
    doc.set("lost", Json(report.lost));
    doc.set("duplicated", Json(report.duplicated));
  }
  Json classes = Json::object();
  for (const auto& [cls, stats] : report.classes) {
    Json entry = Json::object();
    entry.set("submitted", Json(stats.submitted));
    entry.set("completed", Json(stats.completed));
    entry.set("rejected", Json(stats.rejected));
    entry.set("failed", Json(stats.failed));
    entry.set("p50_ms", Json(stats.p50_ms));
    entry.set("p95_ms", Json(stats.p95_ms));
    entry.set("p99_ms", Json(stats.p99_ms));
    entry.set("mean_ms", Json(stats.mean_ms));
    entry.set("max_ms", Json(stats.max_ms));
    classes.set(cls, std::move(entry));
  }
  doc.set("classes", std::move(classes));
  Json errors = Json::array();
  for (const std::string& error : report.errors) {
    errors.push_back(Json(error));
  }
  doc.set("errors", std::move(errors));
  return doc;
}

}  // namespace spmap
