#pragma once
/// \file subgraph_set.hpp
/// Candidate subgraph sets for decomposition-based mapping (paper Section
/// III-B/III-C).
///
/// A `SubgraphSet` is the linear-size family of node groups a decomposition
/// mapper is allowed to re-map as a unit:
///  * single-node decomposition: every task alone;
///  * series-parallel decomposition: every task alone, plus for every series
///    operation of the decomposition forest the spanned nodes *without* the
///    operation's start and end node, plus for every parallel operation the
///    spanned nodes *including* start and end node.

#include <cstddef>
#include <vector>

#include "graph/dag.hpp"
#include "sp/decomposition_forest.hpp"

namespace spmap {

/// A family of candidate subgraphs; each subgraph is a sorted, duplicate-free
/// list of task-graph node ids.
struct SubgraphSet {
  std::vector<std::vector<NodeId>> subgraphs;

  std::size_t size() const { return subgraphs.size(); }
};

/// The single-node candidate set: {{0}, {1}, ..., {n-1}} (Section III-B).
SubgraphSet single_node_subgraphs(std::size_t node_count);

/// Builds the series-parallel candidate set of Section III-C for an
/// arbitrary task graph: the graph is source/sink-normalized, decomposed
/// with Algorithm 1 under `policy`, and the operations of every tree in the
/// resulting forest contribute subgraphs as described above. Virtual
/// normalization nodes never appear in any subgraph. The returned set is
/// deduplicated and always contains all singletons.
SubgraphSet series_parallel_subgraphs(const Dag& dag, Rng& rng,
                                      CutPolicy policy = CutPolicy::Random);

/// As above, but reuses an existing decomposition of the (already
/// normalized) graph; `real_node_count` bounds the ids of non-virtual nodes.
SubgraphSet subgraphs_from_forest(const SpForest& forest,
                                  std::size_t real_node_count);

}  // namespace spmap
