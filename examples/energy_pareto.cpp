/// Multi-objective mapping: makespan vs. energy Pareto fronts.
///
///   ./example_energy_pareto [--tasks N] [--seed S]
///
/// The paper notes its algorithmic ideas transfer to multi-objective
/// optimization. This example compares two routes on one random
/// series-parallel graph:
///  * a true NSGA-II over (makespan, energy), and
///  * the series-parallel decomposition mapper run on a sweep of
///    weighted-sum scalarizations.
/// Both print their non-dominated fronts; typically the GA traces a denser
/// front while the scalarized decomposition finds the extremes in a
/// fraction of the time.

#include <cstdio>

#include "graph/generators.hpp"
#include "mappers/multi_objective.hpp"
#include "util/flags.hpp"
#include "util/timer.hpp"

using namespace spmap;

namespace {

void print_front(const char* title, const std::vector<ParetoPoint>& front,
                 double seconds) {
  std::printf("%s (%zu points, %.1f ms)\n", title, front.size(),
              seconds * 1e3);
  std::printf("  %12s  %12s\n", "makespan", "energy");
  for (const auto& p : front) {
    std::printf("  %9.1f ms  %10.1f J\n", p.makespan * 1e3, p.energy);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"tasks", "seed"});
  const auto n = static_cast<std::size_t>(flags.get_int("tasks", 40));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 11)));

  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  const Mapping base = eval.default_mapping();
  const double ms0 = eval.evaluate(base);
  std::printf("graph: %zu tasks; all-CPU: %.1f ms, %.1f J\n\n",
              dag.node_count(), ms0 * 1e3,
              mapping_energy_joules(cost, base, ms0));

  {
    WallTimer timer;
    Nsga2Params params;
    params.population = 60;
    params.generations = 120;
    MoNsga2Mapper mo(params);
    const auto front = mo.optimize(eval);
    print_front("NSGA-II front", front, timer.seconds());
  }
  {
    WallTimer timer;
    const auto front = decomposition_pareto_sweep(
        eval, dag, rng, {0.0, 0.2, 0.4, 0.6, 0.8, 1.0});
    print_front("Scalarized SPFirstFit front", front, timer.seconds());
  }
  return 0;
}
