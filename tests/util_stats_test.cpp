#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace spmap {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Samples, Quantiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(Samples, QuantileValidation) {
  Samples s;
  EXPECT_THROW(s.median(), Error);
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), Error);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1.0);
}

TEST(Samples, SortCacheInvalidatedByAdd) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Improvement, BasicPositive) {
  // 20 % and 10 % improvements average to 15 %.
  const double imp = average_positive_relative_improvement({10.0, 10.0},
                                                           {8.0, 9.0});
  EXPECT_NEAR(imp, 0.15, 1e-12);
}

TEST(Improvement, DeteriorationsCountAsZero) {
  // Paper Section IV-A: deteriorations are truncated to zero improvement.
  const double imp = average_positive_relative_improvement({10.0, 10.0},
                                                           {8.0, 15.0});
  EXPECT_NEAR(imp, 0.10, 1e-12);
}

TEST(Improvement, SizeMismatchThrows) {
  EXPECT_THROW(
      average_positive_relative_improvement({1.0}, {1.0, 2.0}), Error);
}

TEST(Improvement, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(average_positive_relative_improvement({}, {}), 0.0);
}

}  // namespace
}  // namespace spmap
