#include "sp/decomposition_forest.hpp"

#include <algorithm>
#include <map>

namespace spmap {

namespace {

using Ix = SpForest::Index;

/// Mutable state of one Algorithm 1 run.
class Grower {
 public:
  Grower(const Dag& dag, Rng& rng, CutPolicy policy)
      : dag_(dag), rng_(rng), policy_(policy) {
    indeg_.resize(dag.node_count());
    for (std::size_t i = 0; i < dag.node_count(); ++i) {
      indeg_[i] = dag.in_degree(NodeId(i));
    }
    consumed_.assign(dag.edge_count(), false);
  }

  DecompositionResult run(NodeId source) {
    // GROW_DECOMPOSITION_FOREST: grow a series operation from the virtual
    // incoming edge (eps, s); the result is the core decomposition tree.
    Ix core = grow_series(forest_.add_leaf(NodeId::invalid(), source));
    forest_.add_root(core);

    // Defensive sweep: every real edge must be covered by exactly one leaf.
    // Anything left over (impossible for well-formed inputs, but cheap to
    // guarantee) becomes a single-leaf root, equivalent to cutting it.
    std::size_t orphans = 0;
    for (std::size_t e = 0; e < dag_.edge_count(); ++e) {
      if (!consumed_[e]) {
        const EdgeId id(e);
        forest_.add_root(
            forest_.add_leaf(dag_.src(id), dag_.dst(id), id));
        ++orphans;
      }
    }
    return DecompositionResult{std::move(forest_), cuts_, orphans};
  }

 private:
  /// Consumes the unique unconsumed out-edge leaf v -> w, or the virtual
  /// sink edge (t, eps) when v has no successors.
  Ix take_leaf(NodeId v, EdgeId e) {
    SPMAP_ASSERT(!consumed_[e.v]);
    consumed_[e.v] = true;
    return forest_.add_leaf(v, dag_.dst(e), e);
  }

  std::vector<EdgeId> unconsumed_out_edges(NodeId v) const {
    std::vector<EdgeId> out;
    for (EdgeId e : dag_.out_edges(v)) {
      if (!consumed_[e.v]) out.push_back(e);
    }
    return out;
  }

  /// GROW_SERIES (paper lines 6-17): extends `tree` while its end node has
  /// all inputs inside the tree; forks recurse into grow_parallel.
  Ix grow_series(Ix tree) {
    for (;;) {
      const NodeId v = forest_.end(tree);
      if (!v.valid()) break;                              // reached eps
      if (indeg_[v.v] > forest_.outsize(tree)) break;     // external inputs
      if (dag_.out_degree(v) == 0) {
        // Unique sink: extend with the virtual outgoing edge (t, eps).
        tree = forest_.make_series(
            tree, forest_.add_leaf(v, NodeId::invalid()));
        break;
      }
      const auto outs = unconsumed_out_edges(v);
      if (outs.empty()) break;  // defensive: nothing left to grow into
      if (outs.size() == 1) {
        tree = forest_.make_series(tree, take_leaf(v, outs.front()));
      } else {
        tree = forest_.make_series(tree, grow_parallel(v, outs));
      }
    }
    return tree;
  }

  /// GROW_PARALLEL (paper lines 19-42): wavefront of active subtrees rooted
  /// at fork node `v`; merge subtrees with equal end nodes, grow the rest,
  /// cut one subtree when stalled.
  Ix grow_parallel(NodeId v, const std::vector<EdgeId>& outs) {
    std::vector<Ix> wave;
    wave.reserve(outs.size());
    for (EdgeId e : outs) wave.push_back(take_leaf(v, e));

    for (;;) {
      bool changed = true;
      while (changed) {
        changed = false;
        changed |= merge_equal_endpoints(wave);
        if (wave.size() == 1) return wave.front();
        for (Ix& t : wave) {
          const NodeId end_before = forest_.end(t);
          const std::uint32_t leaves_before = forest_.leaf_count(t);
          t = grow_series(t);
          if (forest_.end(t) != end_before ||
              forest_.leaf_count(t) != leaves_before) {
            changed = true;
          }
        }
      }
      // Wavefront stalled: the graph is not series-parallel here. Cut one
      // active subtree (paper lines 38-40): it becomes its own root and the
      // expected in-degree of its end node drops by its outsize so the
      // remaining branches may proceed.
      const std::size_t pick = choose_cut(wave);
      const Ix cut = wave[pick];
      wave.erase(wave.begin() + static_cast<std::ptrdiff_t>(pick));
      forest_.add_root(cut);
      ++cuts_;
      const NodeId end = forest_.end(cut);
      if (end.valid()) {
        indeg_[end.v] -= std::min<std::size_t>(indeg_[end.v],
                                               forest_.outsize(cut));
      }
      if (wave.size() == 1) return wave.front();
    }
  }

  /// PARALLEL merge step (paper lines 26-28): combine all wavefront subtrees
  /// with identical end nodes. Returns true if anything merged.
  bool merge_equal_endpoints(std::vector<Ix>& wave) {
    // Group by end node id; eps groups under the invalid id.
    std::map<std::uint32_t, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      groups[forest_.end(wave[i]).v].push_back(i);
    }
    bool merged = false;
    std::vector<Ix> next;
    std::vector<bool> taken(wave.size(), false);
    for (std::size_t i = 0; i < wave.size(); ++i) {
      if (taken[i]) continue;
      const auto& group = groups[forest_.end(wave[i]).v];
      if (group.size() >= 2) {
        std::vector<Ix> parts;
        for (std::size_t k : group) {
          parts.push_back(wave[k]);
          taken[k] = true;
        }
        next.push_back(forest_.make_parallel(parts));
        merged = true;
      } else {
        next.push_back(wave[i]);
        taken[i] = true;
      }
    }
    wave = std::move(next);
    return merged;
  }

  std::size_t choose_cut(const std::vector<Ix>& wave) {
    SPMAP_ASSERT(wave.size() >= 2);
    switch (policy_) {
      case CutPolicy::Random:
        return rng_.below(wave.size());
      case CutPolicy::SmallestSubtree: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < wave.size(); ++i) {
          if (forest_.leaf_count(wave[i]) < forest_.leaf_count(wave[best])) {
            best = i;
          }
        }
        return best;
      }
      case CutPolicy::LargestSubtree: {
        std::size_t best = 0;
        for (std::size_t i = 1; i < wave.size(); ++i) {
          if (forest_.leaf_count(wave[i]) > forest_.leaf_count(wave[best])) {
            best = i;
          }
        }
        return best;
      }
      case CutPolicy::FirstActive:
        return 0;
    }
    return 0;
  }

  const Dag& dag_;
  Rng& rng_;
  CutPolicy policy_;
  SpForest forest_;
  std::vector<std::size_t> indeg_;
  std::vector<bool> consumed_;
  std::size_t cuts_ = 0;
};

}  // namespace

DecompositionResult grow_decomposition_forest(const Dag& dag, Rng& rng,
                                              CutPolicy policy) {
  require(dag.node_count() > 0, "grow_decomposition_forest: empty graph");
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  require(sources.size() == 1 && sinks.size() == 1,
          "grow_decomposition_forest: graph must have unique source and "
          "sink (use normalize_source_sink)");
  Grower grower(dag, rng, policy);
  return grower.run(sources.front());
}

}  // namespace spmap
