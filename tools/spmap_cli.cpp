/// spmap_cli — command-line driver for the spmap library.
///
/// Subcommands:
///   generate   Create a task graph (random SP / almost-SP / workflow) and
///              write it as JSON.
///   decompose  Print the series-parallel decomposition forest of a graph.
///   map        Run a mapping algorithm and print mapping + makespan
///              (+ optional Gantt chart / schedule JSON).
///   evaluate   Evaluate an explicit mapping.
///
/// Examples:
///   spmap_cli generate --type sp --tasks 40 --seed 7 --out g.json
///   spmap_cli generate --type workflow --family montage --width 16 --out m.json
///   spmap_cli decompose --in g.json
///   spmap_cli map --in g.json --mapper spff --gantt
///   spmap_cli evaluate --in g.json --mapping 0,0,1,2,0,...

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mappers/cpu_only.hpp"
#include "mappers/decomposition.hpp"
#include "mappers/heft.hpp"
#include "mappers/lookahead_heft.hpp"
#include "mappers/milp_mappers.hpp"
#include "mappers/nsga2.hpp"
#include "mappers/peft.hpp"
#include "sched/schedule.hpp"
#include "sp/decomposition_forest.hpp"
#include "util/flags.hpp"
#include "workflows/wfcommons.hpp"
#include "workflows/workflows.hpp"

using namespace spmap;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: spmap_cli <generate|import|decompose|map|evaluate> "
               "[flags]\n"
               "  import    --wf FILE [--seed S] [--out FILE]   "
               "(WfCommons wfformat -> spmap JSON)\n"
               "  generate  --type sp|almost-sp|workflow --tasks N "
               "[--extra-edges K] [--family NAME --width W] [--seed S] "
               "[--out FILE]\n"
               "  decompose --in FILE [--seed S] [--dot]\n"
               "  map       --in FILE --mapper cpu|heft|laheft|peft|sn|snff|"
               "sp|spff|nsga|wgdp-dev|wgdp-time|zhouliu [--seed S] "
               "[--gantt] [--schedule-json] [--random-orders N]\n"
               "  evaluate  --in FILE --mapping 0,1,2,... "
               "[--random-orders N]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "cannot open input file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_output(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::fputs(content.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  require(out.good(), "cannot open output file: " + path);
  out << content;
}

WorkflowFamily family_by_name(const std::string& name) {
  for (const WorkflowFamily f : all_workflow_families()) {
    if (name == workflow_family_name(f)) return f;
  }
  throw Error("unknown workflow family: " + name);
}

int cmd_generate(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"type", "tasks", "extra-edges", "family", "width",
                     "seed", "out"});
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const std::string type = flags.get("type", "sp");

  Dag dag;
  TaskAttrs attrs;
  if (type == "sp" || type == "almost-sp") {
    const auto tasks = static_cast<std::size_t>(flags.get_int("tasks", 30));
    dag = generate_sp_dag(tasks, rng);
    if (type == "almost-sp") {
      const auto extra =
          static_cast<std::size_t>(flags.get_int("extra-edges", 10));
      dag = add_random_edges(dag, extra, rng);
    }
    attrs = random_task_attrs(dag, rng);
  } else if (type == "workflow") {
    const auto width = static_cast<std::size_t>(flags.get_int("width", 12));
    WorkflowInstance inst =
        generate_workflow(family_by_name(flags.get("family", "montage")),
                          width, rng);
    dag = std::move(inst.dag);
    attrs = std::move(inst.attrs);
  } else {
    throw Error("unknown --type: " + type);
  }
  write_output(flags.get("out", ""), to_json(dag, attrs) + "\n");
  std::fprintf(stderr, "generated %zu tasks, %zu edges\n", dag.node_count(),
               dag.edge_count());
  return 0;
}

int cmd_import(int argc, char** argv) {
  const Flags flags(argc, argv, {"wf", "seed", "out"});
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const TaskGraph tg =
      import_wfcommons_json(read_file(flags.get("wf", "")), rng);
  write_output(flags.get("out", ""), to_json(tg.dag, tg.attrs) + "\n");
  std::fprintf(stderr, "imported %zu tasks, %zu edges\n",
               tg.dag.node_count(), tg.dag.edge_count());
  return 0;
}

int cmd_decompose(int argc, char** argv) {
  const Flags flags(argc, argv, {"in", "seed", "dot"});
  const TaskGraph tg = task_graph_from_json(read_file(flags.get("in", "")));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  if (flags.get_bool("dot", false)) {
    std::fputs(to_dot(tg.dag).c_str(), stdout);
  }
  const Normalized norm = normalize_source_sink(tg.dag);
  const auto result = grow_decomposition_forest(norm.dag, rng);
  std::printf("nodes=%zu edges=%zu trees=%zu cuts=%zu series_parallel=%s\n",
              tg.dag.node_count(), tg.dag.edge_count(),
              result.forest.roots().size(), result.cuts,
              result.cuts == 0 ? "yes" : "no");
  for (std::size_t i = 0; i < result.forest.roots().size(); ++i) {
    std::printf("tree %zu: %s\n", i,
                result.forest.to_string(result.forest.roots()[i]).c_str());
  }
  const auto set = subgraphs_from_forest(result.forest, tg.dag.node_count());
  std::printf("candidate subgraphs: %zu\n", set.size());
  return 0;
}

std::unique_ptr<Mapper> mapper_by_name(const std::string& name,
                                       const Dag& dag, Rng& rng) {
  if (name == "cpu") return std::make_unique<CpuOnlyMapper>();
  if (name == "heft") return std::make_unique<HeftMapper>();
  if (name == "laheft") return std::make_unique<LookaheadHeftMapper>();
  if (name == "peft") return std::make_unique<PeftMapper>();
  if (name == "sn") return make_single_node_mapper(dag, false);
  if (name == "snff") return make_single_node_mapper(dag, true);
  if (name == "sp") return make_series_parallel_mapper(dag, rng, false);
  if (name == "spff") return make_series_parallel_mapper(dag, rng, true);
  if (name == "nsga") return std::make_unique<Nsga2Mapper>();
  if (name == "wgdp-dev") return std::make_unique<WgdpDeviceMapper>();
  if (name == "wgdp-time") return std::make_unique<WgdpTimeMapper>();
  if (name == "zhouliu") return std::make_unique<ZhouLiuMapper>();
  throw Error("unknown mapper: " + name);
}

int cmd_map(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"in", "mapper", "seed", "gantt", "schedule-json",
                     "random-orders"});
  const TaskGraph tg = task_graph_from_json(read_file(flags.get("in", "")));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const Platform platform = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, platform);
  const auto orders =
      static_cast<std::size_t>(flags.get_int("random-orders", 100));
  const Evaluator eval(cost, {.random_orders = orders});

  auto mapper = mapper_by_name(flags.get("mapper", "spff"), tg.dag, rng);
  const MapperResult r = mapper->map(eval);
  const double baseline = eval.default_mapping_makespan();
  std::printf("mapper=%s makespan=%.6f baseline=%.6f improvement=%.2f%%\n",
              mapper->name().c_str(), r.predicted_makespan, baseline,
              100.0 * std::max(0.0, (baseline - r.predicted_makespan) /
                                        baseline));
  std::printf("mapping=");
  for (std::size_t i = 0; i < r.mapping.size(); ++i) {
    std::printf("%s%u", i ? "," : "", r.mapping.device[i].v);
  }
  std::printf("\n");
  const Schedule schedule = extract_schedule(eval, r.mapping);
  if (flags.get_bool("gantt", false)) {
    std::fputs(schedule.to_gantt(tg.dag, platform).c_str(), stdout);
  }
  if (flags.get_bool("schedule-json", false)) {
    std::fputs((schedule.to_json(tg.dag, platform).dump(2) + "\n").c_str(),
               stdout);
  }
  return 0;
}

int cmd_evaluate(int argc, char** argv) {
  const Flags flags(argc, argv, {"in", "mapping", "random-orders"});
  const TaskGraph tg = task_graph_from_json(read_file(flags.get("in", "")));
  const Platform platform = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, platform);
  const auto orders =
      static_cast<std::size_t>(flags.get_int("random-orders", 100));
  const Evaluator eval(cost, {.random_orders = orders});

  Mapping mapping(tg.dag.node_count(), platform.default_device());
  const std::string spec = flags.get("mapping", "");
  if (!spec.empty()) {
    std::stringstream ss(spec);
    std::string item;
    std::size_t i = 0;
    while (std::getline(ss, item, ',')) {
      require(i < mapping.size(), "evaluate: mapping longer than graph");
      mapping.device[i++] = DeviceId(
          static_cast<std::uint32_t>(std::stoul(item)));
    }
    require(i == mapping.size(), "evaluate: mapping shorter than graph");
  }
  mapping.validate(tg.dag.node_count(), platform.device_count());
  const double ms = eval.evaluate(mapping);
  std::printf("makespan=%.6f feasible=%s\n", ms,
              ms < kInfeasible ? "yes" : "no");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
    if (cmd == "import") return cmd_import(argc - 1, argv + 1);
    if (cmd == "decompose") return cmd_decompose(argc - 1, argv + 1);
    if (cmd == "map") return cmd_map(argc - 1, argv + 1);
    if (cmd == "evaluate") return cmd_evaluate(argc - 1, argv + 1);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "spmap_cli: %s\n", ex.what());
    return 1;
  }
  return usage();
}
