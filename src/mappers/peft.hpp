#pragma once
/// \file peft.hpp
/// Predict Earliest Finish Time (Arabnejad and Barbosa [8]).
///
/// PEFT replaces HEFT's averaged upward rank with an Optimistic Cost Table
/// (OCT): for every (task, device) pair, the optimistic remaining cost to
/// finish the application if the task ran on that device. Tasks are
/// prioritized by their device-averaged OCT, and device selection minimizes
/// EFT(task, device) + OCT(task, device) — looking one step further ahead
/// than HEFT, which is why it performs slightly better on complex systems
/// (Maurya and Tripathi [10]).

#include "mappers/mapper.hpp"

namespace spmap {

class PeftMapper final : public Mapper {
 public:
  using Mapper::map;
  std::string name() const override { return "PEFT"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;
};

/// The optimistic cost table, node-major: oct[node * device_count + device].
/// Exit tasks have OCT zero everywhere.
std::vector<double> peft_oct(const CostModel& cost);

}  // namespace spmap
