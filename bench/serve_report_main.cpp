/// serve_report — machine-readable serving benchmark of the spmap daemon.
///
/// Boots an in-process daemon (serve/daemon.hpp) on a private unix
/// socket, drives it with the load generator (serve/loadgen.hpp) in the
/// configurations below, and writes the results as JSON (default:
/// BENCH_serve.json) — the serving counterpart of BENCH_eval.json, so
/// every revision appends a comparable data point to the repository's
/// performance history.
///
/// Configurations:
///   closed loop, sessions ∈ {8, 32}  — capacity: throughput and
///     per-class latency with the daemon saturated, bit-identity
///     verification on
///   open loop, tiny queue            — overload: offered load far above
///     capacity against max_queued=4; measures the structured-rejection
///     path (shed low/normal traffic, p99 of what completed)
///   warm_cache_repeat                — result cache: one warm-up pass
///     populates the daemon's memo with K distinct identities, then a
///     repeat phase folds many requests onto the same K (`--distinct`);
///     reports the hit rate with bit-identity verification still on
///     (cached answers must equal recomputation exactly)
///
/// Flags:
///   --out=PATH    output file (default BENCH_serve.json)
///   --smoke       tiny request counts: a CI compile-and-run gate, not a
///                 measurement
///   --seed=N      deterministic request-stream seed (default 1)
///
/// JSON schema (`"schema": "spmap-bench-serve/1"`):
///   {
///     "schema": "spmap-bench-serve/1",
///     "smoke": false, "seed": 1,
///     "hardware_threads": ...,
///     "workers": ...,            // daemon worker threads
///     "results": [
///       {"name": "closed_loop", "sessions": S, "requests": R,
///        "wall_seconds": ..., "throughput_rps": ...,
///        "verified": R, "mismatches": 0,     // must stay 0
///        "classes": {"high": {"submitted": ..., "completed": ...,
///                             "rejected": ..., "p50_ms": ...,
///                             "p95_ms": ..., "p99_ms": ...,
///                             "mean_ms": ...}, ...}},
///       {"name": "open_loop_overload", "sessions": S, "rate_hz": ...,
///        "duration_s": ..., "max_queued": 4, ...same fields...,
///        "rejected": N},          // > 0: the shed path was exercised
///       {"name": "warm_cache_repeat", "distinct": K, ...same fields...,
///        "cache_hits": ..., "cache_warm": ..., "cache_misses": ...,
///        "cache_none": ..., "cache_hit_rate": ...}
///     ]
///   }

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "serve/daemon.hpp"
#include "serve/loadgen.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace spmap;

/// An in-process daemon on a private unix socket; drains on destruction.
class LocalDaemon {
 public:
  explicit LocalDaemon(std::size_t workers, std::size_t max_queued) {
    DaemonOptions options;
    options.endpoint = Endpoint::parse(
        "unix:/tmp/spmap_bench_serve_" + std::to_string(::getpid()) + "_" +
        std::to_string(++instance_) + ".sock");
    options.workers = workers;
    options.max_queued = max_queued;
    daemon_ = std::make_unique<Daemon>(std::move(options));
    daemon_->bind();
    io_ = std::thread([this] { daemon_->run(); });
  }

  ~LocalDaemon() {
    daemon_->request_drain(0.0);
    io_.join();
  }

  const Endpoint& endpoint() const { return daemon_->endpoint(); }

 private:
  static int instance_;
  std::unique_ptr<Daemon> daemon_;
  std::thread io_;
};

int LocalDaemon::instance_ = 0;

/// Appends one result row built from a finished loadgen run.
void report_run(Json& results, const char* name, const LoadgenOptions& options,
                const LoadgenReport& report, std::size_t max_queued) {
  Json row = Json::object();
  row.set("name", name);
  row.set("sessions", report.sessions);
  row.set("mix", Json(options.mix));
  if (options.open_loop) {
    row.set("rate_hz", Json(options.rate_hz));
    row.set("duration_s", Json(options.duration_s));
    row.set("max_queued", max_queued);
  } else {
    row.set("requests", options.requests);
  }
  row.set("tasks", options.tasks);
  row.set("max_evals", options.max_evaluations);
  row.set("submitted", report.submitted);
  row.set("completed", report.completed);
  row.set("rejected", report.rejected);
  row.set("failed", report.failed);
  row.set("wall_seconds", report.wall_seconds);
  row.set("throughput_rps", report.throughput_rps);
  if (options.verify) {
    row.set("verified", report.verified);
    row.set("mismatches", report.mismatches);
  }
  if (options.distinct > 0) {
    row.set("distinct", options.distinct);
    row.set("cache_hits", report.cache_hits);
    row.set("cache_warm", report.cache_warm);
    row.set("cache_misses", report.cache_misses);
    row.set("cache_none", report.cache_none);
    row.set("cache_hit_rate",
            report.completed > 0
                ? static_cast<double>(report.cache_hits) /
                      static_cast<double>(report.completed)
                : 0.0);
  }
  Json classes = Json::object();
  for (const auto& [cls, stats] : report.classes) {
    Json entry = Json::object();
    entry.set("submitted", stats.submitted);
    entry.set("completed", stats.completed);
    entry.set("rejected", stats.rejected);
    entry.set("p50_ms", stats.p50_ms);
    entry.set("p95_ms", stats.p95_ms);
    entry.set("p99_ms", stats.p99_ms);
    entry.set("mean_ms", stats.mean_ms);
    classes.set(cls, std::move(entry));
  }
  row.set("classes", std::move(classes));
  results.push_back(std::move(row));

  std::printf("%-18s sessions=%-3zu completed=%-5zu rejected=%-5zu "
              "%.0f req/s  (verified=%zu mismatches=%zu)\n",
              name, report.sessions, report.completed, report.rejected,
              report.throughput_rps, report.verified, report.mismatches);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"out", "smoke", "seed"});
  const bool smoke = flags.get_bool("smoke", false);
  const std::string out_path = flags.get("out", "BENCH_serve.json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::size_t workers = 2;

  Json results = Json::array();

  // ---- closed loop: capacity with bit-identity verification ----
  for (const std::size_t sessions : {std::size_t{8}, std::size_t{32}}) {
    LocalDaemon daemon(workers, /*max_queued=*/256);
    LoadgenOptions options;
    options.endpoint = daemon.endpoint();
    options.sessions = sessions;
    options.requests = smoke ? 2 * sessions : 16 * sessions;
    options.mix = "high=1,normal=2,low=1";
    options.tasks = 24;
    options.max_evaluations = 2000;
    options.seed = seed;
    options.verify = true;
    const LoadgenReport report = run_loadgen(options);
    report_run(results, "closed_loop", options, report, 256);
    if (report.failed > 0 || report.mismatches > 0) {
      std::fprintf(stderr,
                   "FATAL: closed loop sessions=%zu failed=%zu "
                   "mismatches=%zu\n",
                   sessions, report.failed, report.mismatches);
      return 1;
    }
  }

  // ---- open loop: offered load far above a tiny queue ----
  {
    const std::size_t max_queued = 4;
    LocalDaemon daemon(workers, max_queued);
    LoadgenOptions options;
    options.endpoint = daemon.endpoint();
    options.sessions = smoke ? 4 : 16;
    options.open_loop = true;
    options.rate_hz = smoke ? 20.0 : 50.0;
    options.duration_s = smoke ? 0.25 : 2.0;
    options.mix = "high=1,normal=2,low=1";
    options.tasks = 48;
    options.max_evaluations = 20000;  // slow enough to pile up the queue
    options.seed = seed + 1;
    const LoadgenReport report = run_loadgen(options);
    report_run(results, "open_loop_overload", options, report, max_queued);
    if (report.failed > 0) {
      std::fprintf(stderr, "FATAL: open loop failed=%zu\n", report.failed);
      return 1;
    }
  }

  // ---- warm cache: repeated identities answered from the result memo ----
  {
    const std::size_t distinct = 8;
    LocalDaemon daemon(workers, /*max_queued=*/256);
    // Warm-up: one session, exactly K requests, one per identity — every
    // one a miss that populates the memo.
    LoadgenOptions warmup;
    warmup.endpoint = daemon.endpoint();
    warmup.sessions = 1;
    warmup.requests = distinct;
    warmup.tasks = 24;
    warmup.max_evaluations = 2000;
    warmup.seed = seed + 2;
    warmup.distinct = distinct;
    const LoadgenReport warmed = run_loadgen(warmup);
    if (warmed.failed > 0) {
      std::fprintf(stderr, "FATAL: cache warm-up failed=%zu\n", warmed.failed);
      return 1;
    }
    // Repeat phase: many sessions folding onto the same K identities; the
    // memo answers the repeats, and verify proves cached == recomputed.
    LoadgenOptions options;
    options.endpoint = daemon.endpoint();
    options.sessions = smoke ? 4 : 8;
    options.requests = smoke ? 4 * distinct : 16 * distinct;
    options.mix = "high=1,normal=2,low=1";
    options.tasks = 24;
    options.max_evaluations = 2000;
    options.seed = seed + 2;  // same stream as the warm-up
    options.distinct = distinct;
    options.verify = true;
    const LoadgenReport report = run_loadgen(options);
    report_run(results, "warm_cache_repeat", options, report, 256);
    if (report.failed > 0 || report.mismatches > 0) {
      std::fprintf(stderr,
                   "FATAL: warm cache repeat failed=%zu mismatches=%zu\n",
                   report.failed, report.mismatches);
      return 1;
    }
    if (report.cache_hits == 0) {
      std::fprintf(stderr, "FATAL: warm cache repeat saw no cache hits\n");
      return 1;
    }
  }

  Json doc = Json::object();
  doc.set("schema", "spmap-bench-serve/1");
  doc.set("smoke", smoke);
  doc.set("seed", seed);
  doc.set("hardware_threads",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
  doc.set("workers", workers);
  doc.set("results", std::move(results));

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << doc.dump(2) << '\n';
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
