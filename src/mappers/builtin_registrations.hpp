#pragma once
/// \file builtin_registrations.hpp
/// Internal: per-implementation registration hooks for the MapperRegistry.
///
/// Each function is defined in the .cpp of the mapper(s) it registers, so
/// the registration (names, descriptions, option handling) lives next to
/// the algorithm. MapperRegistry::instance() calls all of them once; the
/// explicit calls also guarantee the object files are linked in from the
/// static library, which blanket self-registering globals would not.

namespace spmap {

class MapperRegistry;

namespace detail {

void register_cpu_only_mapper(MapperRegistry& registry);     // cpu_only.cpp
void register_heft_mapper(MapperRegistry& registry);         // heft.cpp
void register_lookahead_heft_mapper(MapperRegistry& r);      // lookahead_heft.cpp
void register_peft_mapper(MapperRegistry& registry);         // peft.cpp
void register_decomposition_mappers(MapperRegistry& r);      // decomposition.cpp
void register_nsga2_mapper(MapperRegistry& registry);        // nsga2.cpp
void register_milp_mappers(MapperRegistry& registry);        // milp_mappers.cpp
void register_local_search_mappers(MapperRegistry& r);       // local_search.cpp

}  // namespace detail
}  // namespace spmap
