/// Side-by-side comparison of every mapping algorithm in spmap on one
/// random series-parallel task graph (the paper's Section IV-B setting).
///
///   ./example_mapper_comparison [--tasks N] [--seed S] [--milp-limit SEC]
///
/// Prints mapping quality (relative improvement over all-CPU), execution
/// time of the mapper itself, and how many model evaluations it consumed.

#include <cstdio>
#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "mappers/cpu_only.hpp"
#include "mappers/decomposition.hpp"
#include "mappers/heft.hpp"
#include "mappers/milp_mappers.hpp"
#include "mappers/nsga2.hpp"
#include "mappers/peft.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace spmap;

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {"tasks", "seed", "milp-limit"});
  const auto n = static_cast<std::size_t>(flags.get_int("tasks", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const double milp_limit = flags.get_double("milp-limit", 5.0);

  Rng rng(seed);
  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 100});
  const double baseline = eval.default_mapping_makespan();

  std::printf("random series-parallel graph: %zu tasks, %zu edges\n",
              dag.node_count(), dag.edge_count());
  std::printf("all-CPU baseline makespan: %.2f ms\n\n", baseline * 1e3);

  MilpMapperParams milp;
  milp.time_limit_s = milp_limit;
  Nsga2Params ga;
  ga.generations = 100;

  std::vector<std::unique_ptr<Mapper>> mappers;
  mappers.push_back(std::make_unique<CpuOnlyMapper>());
  mappers.push_back(std::make_unique<HeftMapper>());
  mappers.push_back(std::make_unique<PeftMapper>());
  mappers.push_back(std::make_unique<WgdpDeviceMapper>(milp));
  mappers.push_back(std::make_unique<WgdpTimeMapper>(milp));
  mappers.push_back(std::make_unique<ZhouLiuMapper>(milp));
  mappers.push_back(std::make_unique<Nsga2Mapper>(ga));
  mappers.push_back(make_single_node_mapper(dag, false));
  mappers.push_back(make_single_node_mapper(dag, true));
  mappers.push_back(make_series_parallel_mapper(dag, rng, false));
  mappers.push_back(make_series_parallel_mapper(dag, rng, true));

  Table table({"mapper", "improvement", "mapper time", "evaluations"});
  for (const auto& mapper : mappers) {
    WallTimer timer;
    const MapperResult r = mapper->map(eval);
    const double elapsed = timer.seconds();
    const double imp =
        std::max(0.0, (baseline - r.predicted_makespan) / baseline);
    table.add_row({mapper->name(), format_double(100.0 * imp, 1) + " %",
                   format_duration(elapsed), std::to_string(r.evaluations)});
  }
  std::puts(table.to_string().c_str());
  return 0;
}
