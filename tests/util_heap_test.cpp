#include "util/indexed_heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace spmap {
namespace {

TEST(IndexedMaxHeap, PushPopOrder) {
  IndexedMaxHeap h(5);
  h.push_or_update(0, 1.0);
  h.push_or_update(1, 5.0);
  h.push_or_update(2, 3.0);
  EXPECT_EQ(h.pop(), 1u);
  EXPECT_EQ(h.pop(), 2u);
  EXPECT_EQ(h.pop(), 0u);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMaxHeap, UpdateIncrease) {
  IndexedMaxHeap h(3);
  h.push_or_update(0, 1.0);
  h.push_or_update(1, 2.0);
  h.push_or_update(0, 10.0);
  EXPECT_EQ(h.top(), 0u);
  EXPECT_DOUBLE_EQ(h.top_priority(), 10.0);
}

TEST(IndexedMaxHeap, UpdateDecrease) {
  IndexedMaxHeap h(3);
  h.push_or_update(0, 10.0);
  h.push_or_update(1, 2.0);
  h.push_or_update(0, 1.0);
  EXPECT_EQ(h.top(), 1u);
}

TEST(IndexedMaxHeap, RemoveMiddle) {
  IndexedMaxHeap h(4);
  for (std::size_t i = 0; i < 4; ++i) {
    h.push_or_update(i, static_cast<double>(i));
  }
  h.remove(2);
  EXPECT_FALSE(h.contains(2));
  EXPECT_EQ(h.pop(), 3u);
  EXPECT_EQ(h.pop(), 1u);
  EXPECT_EQ(h.pop(), 0u);
}

TEST(IndexedMaxHeap, TopOnEmptyThrows) {
  IndexedMaxHeap h(1);
  EXPECT_THROW(h.top(), Error);
}

TEST(IndexedMaxHeap, ResetClearsState) {
  IndexedMaxHeap h(2);
  h.push_or_update(0, 1.0);
  h.reset(10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.key_space(), 10u);
  EXPECT_FALSE(h.contains(0));
}

// Property test: against a reference implementation under random operations.
TEST(IndexedMaxHeap, RandomizedAgainstReference) {
  constexpr std::size_t kKeys = 64;
  IndexedMaxHeap h(kKeys);
  std::vector<double> ref(kKeys);
  std::vector<bool> present(kKeys, false);
  Rng rng(99);

  auto ref_top = [&]() {
    std::size_t best = kKeys;
    for (std::size_t k = 0; k < kKeys; ++k) {
      if (present[k] && (best == kKeys || ref[k] > ref[best])) best = k;
    }
    return best;
  };

  for (int step = 0; step < 5000; ++step) {
    const auto op = rng.below(4);
    const std::size_t key = rng.below(kKeys);
    switch (op) {
      case 0:
      case 1: {
        const double p = rng.uniform(-100.0, 100.0);
        h.push_or_update(key, p);
        ref[key] = p;
        present[key] = true;
        break;
      }
      case 2:
        if (present[key]) {
          h.remove(key);
          present[key] = false;
        }
        break;
      case 3:
        if (!h.empty()) {
          const std::size_t got = h.pop();
          const std::size_t want = ref_top();
          ASSERT_TRUE(present[got]);
          // Priorities must match (keys may differ on ties).
          ASSERT_DOUBLE_EQ(ref[got], ref[want]);
          present[got] = false;
        }
        break;
    }
    // Invariant: top always has the max priority.
    if (!h.empty()) {
      const std::size_t want = ref_top();
      ASSERT_DOUBLE_EQ(h.top_priority(), ref[want]);
    }
  }
}

}  // namespace
}  // namespace spmap
