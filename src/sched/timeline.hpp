#pragma once
/// \file timeline.hpp
/// Per-device busy-interval timeline for insertion-based list scheduling
/// (the scheduling phase of HEFT and PEFT).

#include <vector>

namespace spmap {

/// A set of disjoint busy intervals on one device, kept sorted by start.
/// Supports the insertion-based policy of HEFT: a task may be placed in any
/// gap that is long enough, not only after the last scheduled task.
class DeviceTimeline {
 public:
  /// Earliest start time >= `est` at which a task of length `duration` fits.
  double earliest_start(double est, double duration) const;

  /// Marks [start, start + duration) busy. The interval must not overlap an
  /// existing one (checked in debug builds).
  void reserve(double start, double duration);

  void clear() { busy_.clear(); }
  std::size_t interval_count() const { return busy_.size(); }

  /// Finish time of the last busy interval (0 when idle).
  double last_finish() const {
    return busy_.empty() ? 0.0 : busy_.back().second;
  }

 private:
  std::vector<std::pair<double, double>> busy_;  // [start, end), sorted
};

}  // namespace spmap
