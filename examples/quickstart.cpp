/// Quickstart: build a task graph, describe a heterogeneous platform, and
/// let series-parallel decomposition mapping place the tasks.
///
///   ./example_quickstart
///
/// Walks through the full public API surface in ~60 lines: Dag + TaskAttrs
/// -> Platform -> CostModel -> Evaluator -> MapperRegistry -> Mapper.

#include <cstdio>

#include "graph/io.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"

using namespace spmap;

int main() {
  // 1. The application: a small fork-join pipeline.
  //    decode -> {denoise, fft} -> mix -> encode
  Dag dag;
  const NodeId decode = dag.add_node("decode");
  const NodeId denoise = dag.add_node("denoise");
  const NodeId fft = dag.add_node("fft");
  const NodeId mix = dag.add_node("mix");
  const NodeId encode = dag.add_node("encode");
  dag.add_edge(decode, denoise, 100.0);  // payloads in MB
  dag.add_edge(decode, fft, 100.0);
  dag.add_edge(denoise, mix, 100.0);
  dag.add_edge(fft, mix, 100.0);
  dag.add_edge(mix, encode, 100.0);

  // 2. Task attributes: complexity (ops per data point), Amdahl
  //    parallelizability, FPGA streamability and area demand.
  TaskAttrs attrs;
  attrs.resize(dag.node_count());
  attrs.complexity = {4.0, 12.0, 9.0, 6.0, 5.0};
  attrs.parallelizability = {0.3, 1.0, 1.0, 0.6, 0.2};
  attrs.streamability = {2.0, 10.0, 14.0, 8.0, 3.0};
  attrs.area = {4.0, 12.0, 9.0, 6.0, 5.0};

  // 3. The platform of the paper: Epyc CPU + Vega 56 GPU + Zynq FPGA.
  const Platform platform = reference_platform();

  // 4. Model-based evaluation: cost model + makespan evaluator
  //    (breadth-first schedule + 100 random schedules, Section IV-A).
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 100});
  const double baseline = eval.default_mapping_makespan();

  // 5. Map with the series-parallel decomposition FirstFit heuristic,
  //    picked by name from the MapperRegistry (see `spmap_cli
  //    list-mappers` for everything that is available).
  Rng rng(42);
  auto mapper = MapperRegistry::instance().create("spff", dag, rng);
  const MapperResult result = mapper->map(eval);

  std::printf("all-CPU baseline makespan : %8.2f ms\n", baseline * 1e3);
  std::printf("%s makespan        : %8.2f ms\n", mapper->name().c_str(),
              result.predicted_makespan * 1e3);
  std::printf("relative improvement      : %8.1f %%\n\n",
              100.0 * (baseline - result.predicted_makespan) / baseline);
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    const DeviceId d = result.mapping.device[i];
    std::printf("  %-8s -> %s\n", dag.label(NodeId(i)).c_str(),
                platform.device(d).name.c_str());
  }
  std::printf("\nGraphviz of the task graph:\n%s", to_dot(dag).c_str());
  return 0;
}
