#include "mappers/nsga2.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::cpu_fpga_platform;
using testing::serial_streamable_attrs;

Nsga2Params small_params(std::size_t gens = 30, std::size_t pop = 24) {
  Nsga2Params p;
  p.population = pop;
  p.generations = gens;
  return p;
}

TEST(Nsga2, NeverWorseThanDefault) {
  // The initial population contains the all-default individual; elitism
  // guarantees the result is at least as good.
  Rng rng(3);
  for (int rep = 0; rep < 3; ++rep) {
    const Dag d = generate_sp_dag(25, rng);
    const TaskAttrs attrs = random_task_attrs(d, rng);
    const Platform p = reference_platform();
    const CostModel cost(d, attrs, p);
    const Evaluator eval(cost);
    Nsga2Mapper mapper(small_params());
    const MapperResult r = mapper.map(eval);
    EXPECT_LE(r.predicted_makespan, eval.default_mapping_makespan() + 1e-9);
    EXPECT_TRUE(cost.area_feasible(r.mapping));
  }
}

TEST(Nsga2, EscapesSingleNodeLocalMinimum) {
  // Costly transfers: single moves hurt, but the GA can move whole regions
  // in one crossover/mutation step.
  const Dag d = chain_dag(6);
  const auto attrs = serial_streamable_attrs(6);
  const Platform p = cpu_fpga_platform(/*bandwidth_gbps=*/0.2);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Nsga2Mapper mapper(small_params(60, 40));
  const MapperResult r = mapper.map(eval);
  EXPECT_LT(r.predicted_makespan, 0.7 * eval.default_mapping_makespan());
}

TEST(Nsga2, DeterministicForFixedSeed) {
  Rng rng(9);
  const Dag d = generate_sp_dag(20, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Nsga2Mapper a(small_params());
  Nsga2Mapper b(small_params());
  EXPECT_EQ(a.map(eval).mapping, b.map(eval).mapping);
}

TEST(Nsga2, RepairKeepsAreaFeasible) {
  const Dag d = chain_dag(10);
  TaskAttrs attrs = serial_streamable_attrs(10);  // area 10 each
  const Platform p = cpu_fpga_platform(1.0, /*fpga_area_budget=*/35.0);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Nsga2Mapper mapper(small_params(40, 30));
  const MapperResult r = mapper.map(eval);
  EXPECT_TRUE(cost.area_feasible(r.mapping));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(Nsga2, MoreGenerationsNeverHurt) {
  Rng rng(15);
  const Dag d = generate_sp_dag(30, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Nsga2Params short_run = small_params(10);
  Nsga2Params long_run = small_params(80);
  const double short_ms = Nsga2Mapper(short_run).map(eval).predicted_makespan;
  const double long_ms = Nsga2Mapper(long_run).map(eval).predicted_makespan;
  // Same seed, elitist selection: longer runs are monotonically at least
  // as good.
  EXPECT_LE(long_ms, short_ms + 1e-9);
}

TEST(Nsga2, EvaluationCountScalesWithGenerations) {
  const Dag d = chain_dag(8);
  const auto attrs = serial_streamable_attrs(8);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  Nsga2Mapper mapper(small_params(5, 10));
  const MapperResult r = mapper.map(eval);
  // init pop + generations * offspring.
  EXPECT_EQ(r.evaluations, 10u + 5u * 10u);
}

}  // namespace
}  // namespace spmap
