#include "mappers/local_search.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"
#include "sched/incremental_evaluator.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spmap {

namespace {

/// Outcome of one restart; the best by (makespan, restart index) wins.
struct RestartResult {
  Mapping mapping;
  double makespan = kInfeasible;
  std::size_t applies = 0;
  /// Probes actually executed (== the allotment unless interrupted).
  std::size_t executed = 0;
  /// Set when the restart broke on an external interrupt.
  bool hit_cancel = false;
  bool hit_deadline = false;
  /// Per-restart incumbent improvements; the winning restart's sequence
  /// becomes the report's trajectory.
  std::vector<IncumbentRecord> trajectory;
};

/// Deadline/cancellation poll shared by the three inner loops (workers may
/// run in parallel: only the const RunControl probes are used). Returns
/// true when the restart must stop, recording which interrupt fired.
bool interrupted(const RunControl& control, RestartResult& r) {
  if (control.cancelled()) {
    r.hit_cancel = true;
    return true;
  }
  if (control.deadline_expired()) {
    r.hit_deadline = true;
    return true;
  }
  return false;
}

void note_incumbent(const RunControl& control, RestartResult& r,
                    double makespan, std::size_t iteration) {
  r.trajectory.push_back({makespan, iteration, control.elapsed_seconds()});
}

// Moves are drawn by random_reassignment (incremental_evaluator.hpp), the
// sampler shared with the reassignment benchmarks.

RestartResult run_hillclimb(IncrementalEvaluator& inc, std::size_t devices,
                            std::size_t iterations, Rng rng,
                            const RunControl& control) {
  RestartResult r;
  double best = inc.makespan();
  std::size_t i = 0;
  for (; i < iterations; ++i) {
    if (interrupted(control, r)) break;
    const TaskReassignment move = random_reassignment(inc.mapping(), devices, rng);
    // Trace-free probe first: the common rejected case records nothing.
    const double probed = inc.probe(move);
    if (probed < best) {
      best = probed;
      inc.apply(move);
      inc.commit();
      note_incumbent(control, r, best, i + 1);
    }
  }
  r.mapping = inc.mapping();
  r.makespan = best;
  r.applies = inc.apply_count() + inc.probe_count();
  r.executed = i;
  return r;
}

RestartResult run_anneal(IncrementalEvaluator& inc, std::size_t devices,
                         std::size_t iterations, double t0, double cooling,
                         Rng rng, const RunControl& control) {
  RestartResult r;
  double current = inc.makespan();
  r.mapping = inc.mapping();
  r.makespan = current;
  if (t0 <= 0.0) t0 = 0.05 * current;  // derived: 5% of the seed makespan
  // Geometric schedule with 100 cooling steps across the probe budget.
  const std::size_t step = std::max<std::size_t>(1, iterations / 100);
  double temperature = t0;
  std::size_t i = 0;
  for (; i < iterations; ++i) {
    if (interrupted(control, r)) break;
    if (i != 0 && i % step == 0) temperature *= cooling;
    const TaskReassignment move = random_reassignment(inc.mapping(), devices, rng);
    const double probed = inc.probe(move);
    const bool accept =
        probed < current ||
        (temperature > 0.0 && probed < kInfeasible &&
         rng.chance(std::exp(-(probed - current) / temperature)));
    if (accept) {
      current = probed;
      inc.apply(move);
      inc.commit();
      if (current < r.makespan) {
        r.makespan = current;
        r.mapping = inc.mapping();
        note_incumbent(control, r, current, i + 1);
      }
    }
  }
  r.applies = inc.apply_count() + inc.probe_count();
  r.executed = i;
  return r;
}

RestartResult run_tabu(IncrementalEvaluator& inc, std::size_t devices,
                       std::size_t iterations, std::size_t tenure,
                       std::size_t candidates, Rng rng,
                       const RunControl& control) {
  RestartResult r;
  r.mapping = inc.mapping();
  r.makespan = inc.makespan();
  const std::size_t n = inc.mapping().size();
  if (tenure == 0) tenure = std::max<std::size_t>(8, n / 8);
  std::vector<std::size_t> tabu_until(n, 0);
  const std::size_t rounds = std::max<std::size_t>(1, iterations / candidates);
  std::size_t probes = 0;
  bool stop = false;
  for (std::size_t round = 1; round <= rounds && !stop; ++round) {
    TaskReassignment best_move{NodeId(0u), DeviceId(0u)};
    double best_probed = kInfeasible;
    bool have_move = false;
    for (std::size_t c = 0; c < candidates; ++c) {
      // The probe allotment is a hard cap: a truncated round still
      // considers whatever candidates it managed to price.
      if (probes >= iterations || interrupted(control, r)) {
        stop = true;
        break;
      }
      const TaskReassignment move = random_reassignment(inc.mapping(), devices, rng);
      const double probed = inc.probe(move);
      ++probes;
      // Tabu unless it aspires (beats the best mapping seen so far).
      if (tabu_until[move.node.v] >= round && probed >= r.makespan) continue;
      if (!have_move || probed < best_probed) {
        have_move = true;
        best_probed = probed;
        best_move = move;
      }
    }
    if (!have_move || best_probed >= kInfeasible) continue;
    inc.apply(best_move);
    inc.commit();
    tabu_until[best_move.node.v] = round + tenure;
    if (best_probed < r.makespan) {
      r.makespan = best_probed;
      r.mapping = inc.mapping();
      note_incumbent(control, r, best_probed, probes);
    }
  }
  r.applies = inc.apply_count() + inc.probe_count();
  r.executed = probes;
  return r;
}

}  // namespace

LocalSearchMapper::LocalSearchMapper(LocalSearchParams params,
                                     std::unique_ptr<Mapper> init_mapper)
    : params_(std::move(params)), init_(std::move(init_mapper)) {
  require(init_ != nullptr, "LocalSearchMapper: null init mapper");
  require(params_.restarts >= 1, "LocalSearchMapper: restarts must be >= 1");
}

std::string LocalSearchMapper::name() const {
  switch (params_.variant) {
    case LocalSearchParams::Variant::kHillClimb: return "HillClimb";
    case LocalSearchParams::Variant::kAnneal: return "SimAnneal";
    case LocalSearchParams::Variant::kTabu: return "TabuSearch";
  }
  return "LocalSearch";
}

MapReport LocalSearchMapper::map(const Evaluator& eval,
                                 const MapRequest& request) {
  RunControl control(request);
  const std::size_t n = eval.dag().node_count();
  const std::size_t devices = eval.cost().platform().device_count();
  const std::size_t evals_before = eval.evaluation_count();

  // A warm-start seed (MapRequest::warm_start, offered by the result
  // cache's incumbent index) replaces the init run entirely: the search
  // starts from the known-good mapping, re-priced by this run's own
  // evaluator. The seed-wins-ties comparison at the end then guarantees
  // the run never reports worse than the warm seed. Mis-sized or
  // out-of-range warm mappings are ignored, falling back to init=.
  const Mapping* warm = request.warm_start.get();
  bool warm_ok = warm != nullptr && warm->size() == n && n > 0;
  if (warm_ok) {
    for (DeviceId d : warm->device) {
      if (!d.valid() || d.v >= devices) {
        warm_ok = false;
        break;
      }
    }
  }
  MapReport seed;
  if (warm_ok) {
    seed.mapping = *warm;
    seed.predicted_makespan = eval.evaluate(seed.mapping);
    seed.iterations = 0;
    seed.termination = TerminationReason::kConverged;
  } else {
    // The init run shares the deadline window, the cancel token and the
    // evaluation budget (a seed that overruns any of them must stop too;
    // whatever the init consumes is deducted from the search's allotment
    // below). The *iteration* budget stays with the search: probes and
    // init iterations (tasks placed, generations) are different units. A
    // pinned per-run seed pins the init too (derived stream, so a
    // stochastic init= does not correlate with the search rng).
    MapRequest init_request;
    if (request.deadline_ms > 0.0) {
      init_request.deadline_ms = std::max(
          0.001, request.deadline_ms - control.elapsed_seconds() * 1e3);
    }
    init_request.max_evaluations = request.max_evaluations;
    if (request.seed.has_value()) {
      init_request.seed = *request.seed ^ 0x9e3779b97f4a7c15ULL;
    }
    init_request.cancel = request.cancel;
    init_request.pool = request.pool;
    // Like every explicit-request driver, fold in the bounds baked into
    // the init= sub-spec (e.g. init=nsga:deadline_ms=20).
    seed = init_->map(
        eval, merge_run_bounds(init_->default_request(), init_request));
  }

  const std::size_t iterations =
      params_.iterations != 0 ? params_.iterations : 50 * std::max<std::size_t>(n, 1);

  MapReport report;
  if (n == 0 || devices < 2 || iterations == 0 ||
      seed.termination == TerminationReason::kCancelled ||
      seed.termination == TerminationReason::kDeadline) {
    if (seed.termination != TerminationReason::kConverged) {
      control.stop(seed.termination);
    }
    report = std::move(seed);
    report.evaluations = eval.evaluation_count() - evals_before;
    report.trajectory.clear();
    control.record_incumbent(report.predicted_makespan, 0);
    control.finalize(report);
    return report;
  }

  // The request budget caps the total probe count. Allotments are carved
  // out serially — restart r takes up to its planned `iterations` from
  // what is left — so a bounded run executes the exact probe sequence of
  // the unbounded run's prefix, bit-identical for every thread count.
  // Saturating product: huge sentinel iters= values must not wrap to a
  // tiny (or zero) budget.
  constexpr std::size_t kNoBudget = ~std::size_t{0};
  std::size_t budget = iterations > kNoBudget / params_.restarts
                           ? kNoBudget
                           : iterations * params_.restarts;
  bool truncated = false;
  if (request.max_iterations != 0) {
    budget = std::min(budget, request.max_iterations);
  }
  if (request.max_evaluations != 0) {
    const std::size_t spent = eval.evaluation_count() - evals_before;
    budget = std::min(budget, request.max_evaluations > spent
                                  ? request.max_evaluations - spent
                                  : 0);
  }
  std::vector<std::size_t> allotment(params_.restarts, 0);
  {
    std::size_t remaining = budget;
    for (std::size_t r = 0; r < params_.restarts; ++r) {
      allotment[r] = std::min(iterations, remaining);
      remaining -= allotment[r];
      if (allotment[r] < iterations) truncated = true;
    }
  }

  // Restart rng streams are derived serially up front; the restart loop
  // below runs on the pool's static partition with one persistent
  // IncrementalEvaluator per worker, so every number is bit-identical for
  // every thread count.
  Rng master(request.seed.value_or(params_.seed));
  std::vector<std::uint64_t> restart_seeds(params_.restarts);
  for (auto& s : restart_seeds) s = master();

  // The seed mapping is the run's first incumbent; record it before the
  // search so the trajectory's timestamps stay monotonic.
  control.record_incumbent(seed.predicted_makespan, 0);

  const PoolLease lease(request, params_.threads);
  ThreadPool* pool = lease.get();
  const std::size_t workers =
      pool == nullptr ? 1 : std::max<std::size_t>(1, pool->thread_count());
  std::vector<std::unique_ptr<IncrementalEvaluator>> engines(
      std::max<std::size_t>(workers, 1));
  std::vector<RestartResult> restarts(params_.restarts);

  auto run_block = [&](std::size_t begin, std::size_t end,
                       std::size_t worker) {
    if (begin == end) return;
    if (engines[worker] == nullptr) {
      engines[worker] = std::make_unique<IncrementalEvaluator>(eval);
    }
    IncrementalEvaluator& inc = *engines[worker];
    for (std::size_t restart = begin; restart < end; ++restart) {
      if (allotment[restart] == 0) {
        restarts[restart].mapping = seed.mapping;
        restarts[restart].makespan = kInfeasible;  // never beats the seed
        continue;
      }
      inc.reset(seed.mapping);
      Rng rng(restart_seeds[restart]);
      switch (params_.variant) {
        case LocalSearchParams::Variant::kHillClimb:
          restarts[restart] = run_hillclimb(inc, devices, allotment[restart],
                                            rng, control);
          break;
        case LocalSearchParams::Variant::kAnneal:
          restarts[restart] = run_anneal(inc, devices, allotment[restart],
                                         params_.t0, params_.cooling, rng,
                                         control);
          break;
        case LocalSearchParams::Variant::kTabu:
          restarts[restart] = run_tabu(inc, devices, allotment[restart],
                                       params_.tenure, params_.candidates,
                                       rng, control);
          break;
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(params_.restarts, run_block);
  } else {
    run_block(0, params_.restarts, 0);
  }

  std::size_t applies = 0;
  std::size_t executed = 0;
  bool hit_cancel = false;
  bool hit_deadline = false;
  RestartResult* best = &restarts.front();
  for (RestartResult& r : restarts) {
    applies += r.applies;
    executed += r.executed;
    hit_cancel |= r.hit_cancel;
    hit_deadline |= r.hit_deadline;
    if (r.makespan < best->makespan) best = &r;
  }
  if (hit_cancel) {
    control.stop(TerminationReason::kCancelled);
  } else if (hit_deadline) {
    control.stop(TerminationReason::kDeadline);
  } else if (truncated) {
    control.stop(TerminationReason::kBudgetExhausted);
  }

  // The searched makespan is the breadth-first-order one; report the final
  // mapping through the evaluator's own metric (min over its prepared
  // orders) like every other mapper. The seed wins ties, so a local search
  // never reports a worse mapping than its init. The trajectory is the
  // seed incumbent followed by the winning restart's improvement sequence
  // (replayed here: parallel restarts must not interleave callbacks); a
  // final entry re-prices the returned mapping under the evaluator's own
  // metric so the last entry always equals the reported makespan.
  const double searched = eval.evaluate(best->mapping);
  if (searched < seed.predicted_makespan) {
    report.mapping = best->mapping;
    report.predicted_makespan = searched;
    // Restart entries carry the BFS-order probe metric while the seed
    // entry carries the evaluator's reported (min-over-orders) metric;
    // keep only genuine improvements over the seed incumbent so the
    // trajectory stays a monotone best-makespan curve under either
    // metric. (The probe metric never under-prices the reported one, so
    // dropped entries were not improvements.)
    std::erase_if(best->trajectory, [&](const IncumbentRecord& r) {
      return r.makespan >= seed.predicted_makespan;
    });
    const double last_probed = best->trajectory.empty()
                                   ? seed.predicted_makespan
                                   : best->trajectory.back().makespan;
    // Same unit as the adopted entries: the winning restart's own probe
    // count, not the global sum over all restarts.
    const std::size_t last_probe = best->executed;
    control.adopt_trajectory(std::move(best->trajectory));
    if (searched != last_probed) {
      control.record_incumbent(searched, last_probe);
    }
  } else {
    report.mapping = std::move(seed.mapping);
    report.predicted_makespan = seed.predicted_makespan;
  }
  report.iterations = executed;
  // One apply re-prices a candidate: the incremental counterpart of one
  // single-schedule evaluation, plus the init's and the final full sweeps.
  report.evaluations = applies + (eval.evaluation_count() - evals_before);
  control.finalize(report);
  return report;
}

namespace {

/// Shared option-value validation; also run at scenario parse time through
/// MapperEntry::validate_values, so committed files fail eagerly.
void validate_local_search_values(const MapperOptions& options,
                                  bool anneal_opts, bool tabu_opts) {
  const std::int64_t iters = options.get_int("iters", 0);
  require(iters >= 0,
          "mapper option 'iters': must be >= 0 (0 derives 50 * tasks)");
  const std::int64_t restarts = options.get_int("restarts", 1);
  require(restarts >= 1, "mapper option 'restarts': must be >= 1");
  threads_option(options);  // validates threads >= 1
  if (options.has("seed")) {
    // Route through the shared helper so the parse-time diagnostic cannot
    // drift from the one create() raises (the rng is never drawn: the
    // option is present).
    Rng unused(0);
    seed_option(options, unused);
  }
  if (options.has("init")) {
    const std::string init = options.get("init", "");
    require(!init.empty(), "mapper option 'init': must name a mapper");
    // Resolve eagerly: unknown names and bad nested options throw here,
    // listing what the registry accepts.
    const auto [name, nested] = MapperRegistry::split_spec(init);
    MapperRegistry::instance().at(name).validate_options(
        MapperOptions::parse(nested));
  }
  if (anneal_opts) {
    const double t0 = options.get_double("t0", 0.0);
    require(t0 >= 0.0,
            "mapper option 't0': must be >= 0 (0 derives 5% of the seed "
            "makespan)");
    const double cooling = options.get_double("cooling", 0.9);
    require(cooling > 0.0 && cooling < 1.0,
            "mapper option 'cooling': must be in (0, 1)");
  }
  if (tabu_opts) {
    const std::int64_t tenure = options.get_int("tenure", 0);
    require(tenure >= 0,
            "mapper option 'tenure': must be >= 0 (0 derives max(8, "
            "tasks / 8))");
    const std::int64_t candidates = options.get_int("candidates", 16);
    require(candidates >= 1, "mapper option 'candidates': must be >= 1");
  }
}

MapperEntry make_local_search_entry(const char* name, const char* display,
                                    const char* description,
                                    LocalSearchParams::Variant variant) {
  const bool anneal_opts = variant == LocalSearchParams::Variant::kAnneal;
  const bool tabu_opts = variant == LocalSearchParams::Variant::kTabu;
  const LocalSearchParams defaults;
  MapperEntry entry;
  entry.name = name;
  entry.display_name = display;
  entry.description = description;
  entry.options = {
      {"init", defaults.init,
       "registry spec of the mapper that seeds the search"},
      {"iters", "0", "probes per restart; 0 derives 50 * tasks"},
      {"restarts", std::to_string(defaults.restarts),
       "independent searches; the best result wins"},
      {"seed", "", "search seed; unset draws from the construction rng"},
      {"threads", std::to_string(defaults.threads),
       "parallel-restart worker threads (results thread-count invariant)"},
  };
  if (anneal_opts) {
    entry.options.push_back(
        {"t0", "0",
         "initial temperature; 0 derives 5% of the seed makespan"});
    entry.options.push_back({"cooling", format_option_value(defaults.cooling),
                             "geometric cooling factor (100 steps)"});
  }
  if (tabu_opts) {
    entry.options.push_back(
        {"tenure", "0",
         "iterations a moved task stays tabu; 0 derives max(8, tasks/8)"});
    entry.options.push_back({"candidates",
                             std::to_string(defaults.candidates),
                             "probed reassignments per tabu iteration"});
  }
  entry.validate_values = [anneal_opts, tabu_opts](const MapperOptions& o) {
    validate_local_search_values(o, anneal_opts, tabu_opts);
  };
  entry.factory = [variant, anneal_opts, tabu_opts](const MapperContext& ctx) {
    // Values were already validated: MapperRegistry::create runs the
    // entry's validate_values hook before invoking the factory.
    LocalSearchParams params;
    params.variant = variant;
    params.init = ctx.options.get("init", params.init);
    params.iterations =
        static_cast<std::size_t>(ctx.options.get_int("iters", 0));
    params.restarts = static_cast<std::size_t>(
        ctx.options.get_int("restarts",
                            static_cast<std::int64_t>(params.restarts)));
    params.threads = threads_option(ctx.options);
    if (anneal_opts) {
      params.t0 = ctx.options.get_double("t0", params.t0);
      params.cooling = ctx.options.get_double("cooling", params.cooling);
    }
    if (tabu_opts) {
      params.tenure =
          static_cast<std::size_t>(ctx.options.get_int("tenure", 0));
      params.candidates = static_cast<std::size_t>(ctx.options.get_int(
          "candidates", static_cast<std::int64_t>(params.candidates)));
    }
    // Construct the seed mapper first, then draw the search seed, so the
    // construction-rng stream is consumed in a fixed documented order.
    std::unique_ptr<Mapper> init =
        MapperRegistry::instance().create(params.init, ctx.dag, ctx.rng);
    params.seed = seed_option(ctx.options, ctx.rng);
    return std::make_unique<LocalSearchMapper>(std::move(params),
                                               std::move(init));
  };
  return entry;
}

}  // namespace

void detail::register_local_search_mappers(MapperRegistry& registry) {
  registry.add(make_local_search_entry(
      "hillclimb", "HillClimb",
      "Randomized first-improvement hill climbing over single-task "
      "reassignments, priced by the incremental delta evaluator; refines "
      "any registered mapper via init=",
      LocalSearchParams::Variant::kHillClimb));
  registry.add(make_local_search_entry(
      "anneal", "SimAnneal",
      "Simulated annealing over single-task reassignments (Metropolis "
      "acceptance, geometric cooling), priced by the incremental delta "
      "evaluator; refines any registered mapper via init=",
      LocalSearchParams::Variant::kAnneal));
  registry.add(make_local_search_entry(
      "tabu", "TabuSearch",
      "Tabu search over single-task reassignments (candidate probes, "
      "task-level tabu tenure, aspiration), priced by the incremental "
      "delta evaluator; refines any registered mapper via init=",
      LocalSearchParams::Variant::kTabu));
}

}  // namespace spmap
