#pragma once
/// \file error.hpp
/// Error handling primitives for spmap.
///
/// Recoverable misuse of the public API throws spmap::Error; internal
/// invariants in hot paths are checked with SPMAP_ASSERT, which compiles to a
/// cheap branch in debug builds and to nothing in NDEBUG builds.

#include <stdexcept>
#include <string>

namespace spmap {

/// Exception thrown on recoverable misuse of the spmap public API
/// (malformed graphs, out-of-range ids, infeasible configurations, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws spmap::Error with the given message if `cond` is false.
inline void require(bool cond, const char* message) {
  if (!cond) throw Error(message);
}
inline void require(bool cond, const std::string& message) {
  if (!cond) throw Error(message);
}

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace spmap

#ifdef NDEBUG
#define SPMAP_ASSERT(expr) ((void)0)
#else
#define SPMAP_ASSERT(expr) \
  ((expr) ? (void)0 : ::spmap::detail::assert_fail(#expr, __FILE__, __LINE__))
#endif
