#include "workflows/workflows.hpp"

#include <algorithm>
#include <cmath>

namespace spmap {

const char* workflow_family_name(WorkflowFamily family) {
  switch (family) {
    case WorkflowFamily::Genome1000: return "1000genome";
    case WorkflowFamily::Blast: return "blast";
    case WorkflowFamily::Bwa: return "bwa";
    case WorkflowFamily::Cycles: return "cycles";
    case WorkflowFamily::Epigenomics: return "epigenomics";
    case WorkflowFamily::Montage: return "montage";
    case WorkflowFamily::Seismology: return "seismology";
    case WorkflowFamily::Soykb: return "soykb";
    case WorkflowFamily::Srasearch: return "srasearch";
  }
  return "?";
}

std::vector<WorkflowFamily> all_workflow_families() {
  return {WorkflowFamily::Genome1000, WorkflowFamily::Blast,
          WorkflowFamily::Bwa,        WorkflowFamily::Cycles,
          WorkflowFamily::Epigenomics, WorkflowFamily::Montage,
          WorkflowFamily::Seismology, WorkflowFamily::Soykb,
          WorkflowFamily::Srasearch};
}

std::vector<WorkflowFamily> table1_workflow_families() {
  return {WorkflowFamily::Genome1000, WorkflowFamily::Blast,
          WorkflowFamily::Cycles,     WorkflowFamily::Epigenomics,
          WorkflowFamily::Montage,    WorkflowFamily::Soykb,
          WorkflowFamily::Srasearch};
}

namespace {

/// Incremental workflow assembly: tasks carry a per-type complexity
/// multiplier; attributes follow the Section IV-B augmentation on top.
class Builder {
 public:
  /// `compute_scale` scales task complexity (ops per data point);
  /// `area_scale` scales FPGA area demand. Area is derived from the
  /// *unscaled* complexity draw: a compute-light task still occupies its
  /// full circuit footprint in fabric.
  Builder(std::string name, Rng& rng, double compute_scale,
          double area_scale = 1.0)
      : name_(std::move(name)),
        rng_(rng),
        compute_scale_(compute_scale),
        area_scale_(area_scale) {}

  NodeId task(const char* type, double complexity_multiplier) {
    const NodeId id = dag_.add_node(type);
    attrs_.resize(dag_.node_count());
    const double raw = rng_.lognormal(2.0, 0.5);
    attrs_.complexity[id.v] = compute_scale_ * complexity_multiplier * raw;
    attrs_.streamability[id.v] = rng_.lognormal(2.0, 0.5);
    attrs_.parallelizability[id.v] =
        rng_.chance(0.5) ? 1.0 : rng_.uniform();
    attrs_.area[id.v] = area_scale_ * complexity_multiplier * raw;
    return id;
  }

  /// A host-I/O-bound task (staging, archive reads/writes, concatenation):
  /// essentially serial and not expressible as a dataflow pipeline, so
  /// accelerators cannot help it. Such tasks anchor their neighborhood to
  /// the CPU, which is what makes the bwa/seismology families resist
  /// acceleration (paper Section IV-D).
  NodeId io_task(const char* type, double complexity_multiplier) {
    const NodeId id = task(type, complexity_multiplier);
    attrs_.streamability[id.v] = 0.02 * rng_.lognormal(2.0, 0.5);
    attrs_.parallelizability[id.v] = 0.3 * rng_.uniform();
    return id;
  }

  void edge(NodeId from, NodeId to, double mb) {
    // Jitter data volumes around the family profile.
    dag_.add_edge(from, to, mb * rng_.lognormal(0.0, 0.25));
  }

  WorkflowInstance finish() {
    dag_.validate();
    attrs_.validate(dag_);
    return WorkflowInstance{std::move(name_), std::move(dag_),
                            std::move(attrs_)};
  }

  Rng& rng() { return rng_; }

 private:
  std::string name_;
  Rng& rng_;
  double compute_scale_;
  double area_scale_;
  Dag dag_;
  TaskAttrs attrs_;
};

WorkflowInstance make_1000genome(std::size_t width, Rng& rng,
                                 std::string name) {
  Builder b(std::move(name), rng, 1.0);
  const std::size_t chromosomes = std::max<std::size_t>(1, width / 10);
  const std::size_t chunks = std::max<std::size_t>(2, width / chromosomes);
  for (std::size_t c = 0; c < chromosomes; ++c) {
    const NodeId sifting = b.task("sifting", 0.8);
    const NodeId merge = b.task("individuals_merge", 1.5);
    for (std::size_t k = 0; k < chunks; ++k) {
      const NodeId ind = b.task("individuals", 2.0);
      b.edge(ind, merge, 80.0);
    }
    const NodeId overlap = b.task("mutation_overlap", 1.2);
    const NodeId freq = b.task("frequency", 1.2);
    b.edge(merge, overlap, 120.0);
    b.edge(merge, freq, 120.0);
    b.edge(sifting, overlap, 30.0);
    b.edge(sifting, freq, 30.0);
  }
  return b.finish();
}

WorkflowInstance make_blast(std::size_t width, Rng& rng, std::string name) {
  // Database scans: a wide, data-bound fan-out behind host-side staging.
  // Accelerating single scans barely pays once the shared link serializes
  // the database shards — list schedulers that trust their per-edge
  // transfer estimates (HEFT/PEFT) scatter the scans and end up *worse*
  // than the all-CPU mapping (Table I shows them at 0 %).
  Builder b(std::move(name), rng, 0.35, /*area_scale=*/2.0);
  const NodeId split = b.io_task("split_fasta", 0.6);
  const NodeId merge = b.io_task("cat_blast", 0.5);
  const NodeId post = b.io_task("cleanup", 0.4);
  for (std::size_t k = 0; k < width; ++k) {
    const NodeId blast = b.task("blastall", 3.0);
    b.edge(split, blast, 180.0);
    b.edge(blast, merge, 120.0);
  }
  b.edge(merge, post, 120.0);
  return b.finish();
}

WorkflowInstance make_bwa(std::size_t width, Rng& rng, std::string name) {
  // Negative control: data-heavy, compute-light alignment; moving any task
  // costs more sender-side transfer time than its execution saves, and the
  // large genome-index circuit footprint (area_scale 5) keeps more than a
  // couple of tasks from fitting into the FPGA fabric at once.
  Builder b(std::move(name), rng, 0.04, /*area_scale=*/5.0);
  const NodeId index = b.io_task("bwa_index", 1.0);
  const NodeId reduce = b.io_task("fastq_reduce", 0.5);
  const NodeId cat = b.io_task("cat_bwa", 0.5);
  for (std::size_t k = 0; k < width; ++k) {
    const NodeId align = b.task("bwa_align", 1.0);
    b.edge(index, align, 400.0);
    b.edge(reduce, align, 400.0);
    b.edge(align, cat, 250.0);
  }
  return b.finish();
}

WorkflowInstance make_cycles(std::size_t width, Rng& rng, std::string name) {
  // Crop-simulation ensembles: many medium chains over sizable state
  // files. Data-bound enough that HEFT/PEFT's contention-blind scattering
  // backfires (Table I: 0 %), while evaluation-guided mappers still find
  // profitable groups.
  Builder b(std::move(name), rng, 0.45, /*area_scale=*/1.5);
  const NodeId plots = b.io_task("cycles_plots", 1.0);
  for (std::size_t e = 0; e < width; ++e) {
    const NodeId baseline = b.task("baseline_cycles", 1.5);
    const NodeId sim = b.task("cycles", 2.5);
    const NodeId fert = b.task("fertilizer_increase_output_parser", 0.8);
    const NodeId parser = b.task("cycles_output_summary", 0.8);
    b.edge(baseline, sim, 120.0);
    b.edge(sim, fert, 140.0);
    b.edge(sim, parser, 140.0);
    b.edge(fert, plots, 50.0);
    b.edge(parser, plots, 50.0);
  }
  return b.finish();
}

WorkflowInstance make_epigenomics(std::size_t width, Rng& rng,
                                  std::string name) {
  // Parallel lanes of long sequential chains — almost perfectly
  // series-parallel; the paper's showcase for SP decomposition mapping.
  Builder b(std::move(name), rng, 1.0);
  const std::size_t lanes = std::max<std::size_t>(2, width / 6);
  const std::size_t chunks = std::max<std::size_t>(2, width / lanes);
  const NodeId global_merge = b.task("mapMergeGlobal", 1.5);
  for (std::size_t l = 0; l < lanes; ++l) {
    const NodeId split = b.task("fastqSplit", 0.6);
    const NodeId lane_merge = b.task("mapMerge", 1.2);
    for (std::size_t k = 0; k < chunks; ++k) {
      const NodeId filter = b.task("filterContams", 1.2);
      const NodeId sol = b.task("sol2sanger", 0.9);
      const NodeId bfq = b.task("fastq2bfq", 0.9);
      const NodeId map = b.task("map", 3.0);
      b.edge(split, filter, 100.0);
      b.edge(filter, sol, 100.0);
      b.edge(sol, bfq, 100.0);
      b.edge(bfq, map, 100.0);
      b.edge(map, lane_merge, 60.0);
    }
    b.edge(lane_merge, global_merge, 120.0);
  }
  const NodeId index = b.task("maqIndex", 1.8);
  const NodeId pileup = b.task("pileup", 1.5);
  b.edge(global_merge, index, 200.0);
  b.edge(index, pileup, 200.0);
  return b.finish();
}

WorkflowInstance make_montage(std::size_t width, Rng& rng, std::string name) {
  // Mosaicking kernels are compact arithmetic pipelines: large compute
  // demand (mAdd/mBgModel dominate the makespan) but a modest circuit
  // footprint, so the dominant tail tasks remain FPGA-eligible.
  Builder b(std::move(name), rng, 1.0, /*area_scale=*/0.3);
  std::vector<NodeId> projects;
  for (std::size_t k = 0; k < width; ++k) {
    projects.push_back(b.task("mProject", 2.0));
  }
  // Pairwise difference fits on overlapping neighbors (~2 per image).
  const NodeId concat = b.task("mConcatFit", 1.0);
  for (std::size_t k = 0; k < width; ++k) {
    const NodeId diff = b.task("mDiffFit", 0.7);
    b.edge(projects[k], diff, 40.0);
    b.edge(projects[(k + 1) % width], diff, 40.0);
    b.edge(diff, concat, 10.0);
  }
  // Heavy tail: background model, per-image correction, final mosaic.
  const NodeId bgmodel = b.task("mBgModel", 15.0);
  b.edge(concat, bgmodel, 30.0);
  const NodeId imgtbl = b.task("mImgtbl", 1.0);
  for (std::size_t k = 0; k < width; ++k) {
    const NodeId bg = b.task("mBackground", 1.0);
    b.edge(projects[k], bg, 60.0);
    b.edge(bgmodel, bg, 20.0);
    b.edge(bg, imgtbl, 60.0);
  }
  const NodeId add = b.task("mAdd", 30.0);
  const NodeId shrink = b.task("mShrink", 3.0);
  const NodeId jpeg = b.task("mJPEG", 1.0);
  b.edge(imgtbl, add, 400.0);
  b.edge(add, shrink, 400.0);
  b.edge(shrink, jpeg, 100.0);
  return b.finish();
}

WorkflowInstance make_seismology(std::size_t width, Rng& rng,
                                 std::string name) {
  // Negative control: tiny data-light tasks, accelerator latency dominates.
  // The stage-in root models reading the seismogram archive on the host:
  // farming deconvolutions out to an accelerator costs host-side sends.
  Builder b(std::move(name), rng, 0.05);
  const NodeId stage_in = b.io_task("stage_in", 0.5);
  const NodeId sift = b.io_task("siftSTFByMisfit", 1.0);
  for (std::size_t k = 0; k < width; ++k) {
    const NodeId decon = b.task("sG1IterDecon", 1.0);
    b.edge(stage_in, decon, 2.0);
    b.edge(decon, sift, 2.0);
  }
  return b.finish();
}

WorkflowInstance make_soykb(std::size_t width, Rng& rng, std::string name) {
  // Variant-calling pipelines are dominated by I/O-bound SAM/BAM shuffling;
  // only small acceleration margins exist (Table I: 1-3 %).
  Builder b(std::move(name), rng, 0.18, /*area_scale=*/2.0);
  const NodeId combine = b.io_task("combine_variants", 1.5);
  for (std::size_t s = 0; s < width; ++s) {
    const NodeId align = b.task("alignment_to_reference", 2.5);
    const NodeId sort = b.task("sort_sam", 0.8);
    const NodeId dedup = b.task("dedup", 0.8);
    const NodeId add = b.task("add_replace", 0.6);
    const NodeId target = b.task("realign_target_creator", 1.2);
    const NodeId realign = b.task("indel_realign", 1.5);
    b.edge(align, sort, 90.0);
    b.edge(sort, dedup, 90.0);
    b.edge(dedup, add, 90.0);
    b.edge(add, target, 90.0);
    b.edge(target, realign, 90.0);
    // Two haplotype callers per sample.
    for (int h = 0; h < 2; ++h) {
      const NodeId caller = b.task("haplotype_caller", 2.0);
      b.edge(realign, caller, 60.0);
      b.edge(caller, combine, 30.0);
    }
  }
  const NodeId genotype = b.task("genotype_gvcfs", 2.0);
  const NodeId filtering = b.task("snp_filtering", 0.8);
  b.edge(combine, genotype, 120.0);
  b.edge(genotype, filtering, 120.0);
  return b.finish();
}

WorkflowInstance make_srasearch(std::size_t width, Rng& rng,
                                std::string name) {
  Builder b(std::move(name), rng, 1.0);
  const NodeId merge = b.task("merge_results", 0.8);
  for (std::size_t k = 0; k < width; ++k) {
    const NodeId dump = b.task("fasterq_dump", 1.0);
    const NodeId search = b.task("search", 2.2);
    b.edge(dump, search, 100.0);
    b.edge(search, merge, 40.0);
  }
  return b.finish();
}

}  // namespace

WorkflowInstance generate_workflow(WorkflowFamily family, std::size_t width,
                                   Rng& rng) {
  require(width >= 1, "generate_workflow: width must be >= 1");
  std::string name = std::string(workflow_family_name(family)) + "-" +
                     std::to_string(width);
  switch (family) {
    case WorkflowFamily::Genome1000:
      return make_1000genome(width, rng, std::move(name));
    case WorkflowFamily::Blast:
      return make_blast(width, rng, std::move(name));
    case WorkflowFamily::Bwa: return make_bwa(width, rng, std::move(name));
    case WorkflowFamily::Cycles:
      return make_cycles(width, rng, std::move(name));
    case WorkflowFamily::Epigenomics:
      return make_epigenomics(width, rng, std::move(name));
    case WorkflowFamily::Montage:
      return make_montage(width, rng, std::move(name));
    case WorkflowFamily::Seismology:
      return make_seismology(width, rng, std::move(name));
    case WorkflowFamily::Soykb:
      return make_soykb(width, rng, std::move(name));
    case WorkflowFamily::Srasearch:
      return make_srasearch(width, rng, std::move(name));
  }
  throw Error("generate_workflow: unknown family");
}

std::vector<WorkflowInstance> workflow_benchmark_set(WorkflowFamily family,
                                                     std::size_t instances,
                                                     std::size_t max_width,
                                                     Rng& rng) {
  require(instances >= 1, "workflow_benchmark_set: need >= 1 instance");
  std::vector<WorkflowInstance> set;
  const std::size_t min_width = std::max<std::size_t>(2, max_width / 8);
  for (std::size_t i = 0; i < instances; ++i) {
    const double t = instances == 1
                         ? 1.0
                         : static_cast<double>(i) /
                               static_cast<double>(instances - 1);
    const auto width = static_cast<std::size_t>(
        std::lround(static_cast<double>(min_width) +
                    t * static_cast<double>(max_width - min_width)));
    set.push_back(generate_workflow(family, std::max<std::size_t>(1, width),
                                    rng));
  }
  return set;
}

}  // namespace spmap
