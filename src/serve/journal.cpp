#include "serve/journal.hpp"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace spmap {

namespace {

/// Lazily built reflected CRC-32 table (polynomial 0xedb88320).
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::string crc_hex(std::uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return std::string(buf, 8);
}

/// Parses exactly 8 lower-case hex chars; returns false on anything else.
bool parse_crc_hex(const std::string& text, std::uint32_t& out) {
  if (text.size() != 8) return false;
  std::uint32_t value = 0;
  for (char ch : text) {
    std::uint32_t digit;
    if (ch >= '0' && ch <= '9') {
      digit = static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      digit = static_cast<std::uint32_t>(ch - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

void fsync_file(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    throw Error("journal: flush of " + path + " failed: " +
                std::strerror(errno));
  }
  if (::fsync(::fileno(file)) != 0) {
    throw Error("journal: fsync of " + path + " failed: " +
                std::strerror(errno));
  }
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string journal_line(const Json& record) {
  const std::string body = record.dump();
  return crc_hex(crc32_ieee(body.data(), body.size())) + " " + body + "\n";
}

bool parse_journal_line(const std::string& line, Json& out,
                        std::string& error) {
  // "<crc8hex> <json>" — a shorter line is a torn tail by construction.
  if (line.size() < 10 || line[8] != ' ') {
    error = "malformed record framing";
    return false;
  }
  std::uint32_t stored = 0;
  if (!parse_crc_hex(line.substr(0, 8), stored)) {
    error = "malformed record checksum";
    return false;
  }
  const char* body = line.data() + 9;
  const std::size_t body_size = line.size() - 9;
  if (crc32_ieee(body, body_size) != stored) {
    error = "record checksum mismatch";
    return false;
  }
  Json parsed;
  try {
    parsed = Json::parse(std::string(body, body_size));
  } catch (const Error& e) {
    error = std::string("record is not valid JSON: ") + e.what();
    return false;
  }
  if (!parsed.is_object()) {
    error = "record is not a JSON object";
    return false;
  }
  out = std::move(parsed);
  return true;
}

JournalReplay replay_journal(const std::string& path) {
  JournalReplay replay;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) return replay;  // a missing journal is empty
    throw Error("journal: cannot open " + path + ": " +
                std::strerror(errno));
  }
  std::string line;
  int ch;
  bool saw_newline = true;
  while (true) {
    line.clear();
    saw_newline = false;
    while ((ch = std::fgetc(file)) != EOF) {
      if (ch == '\n') {
        saw_newline = true;
        break;
      }
      line.push_back(static_cast<char>(ch));
    }
    if (line.empty() && !saw_newline) break;  // clean EOF
    if (!saw_newline) {
      // Torn tail: the last record lost its newline mid-write.
      replay.tail_dropped = true;
      replay.tail_error = "truncated final record";
      break;
    }
    Json record;
    std::string error;
    if (!parse_journal_line(line, record, error)) {
      replay.tail_dropped = true;
      replay.tail_error = error;
      break;
    }
    replay.records.push_back(std::move(record));
    replay.committed_bytes += line.size() + 1;
  }
  if (std::ferror(file)) {
    std::fclose(file);
    throw Error("journal: read error on " + path);
  }
  std::fclose(file);
  return replay;
}

Journal::Journal(std::string path) : path_(std::move(path)) {
  open_append();
}

Journal::~Journal() { close_file(); }

void Journal::open_append() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    throw Error("journal: cannot open " + path_ + " for append: " +
                std::strerror(errno));
  }
}

void Journal::close_file() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void Journal::append(const Json& record, bool sync) {
  if (failpoint("journal.append")) {
    throw Error("journal: injected append failure (failpoint)");
  }
  const std::string line = journal_line(record);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    throw Error("journal: write to " + path_ + " failed: " +
                std::strerror(errno));
  }
  failpoint("journal.sync");  // crash here = torn/unsynced tail
  if (sync) fsync_file(file_, path_);
  ++appended_;
}

void Journal::rewrite(const std::vector<Json>& records) {
  const std::string tmp = path_ + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) {
    throw Error("journal: cannot open " + tmp + ": " + std::strerror(errno));
  }
  for (const Json& record : records) {
    const std::string line = journal_line(record);
    if (std::fwrite(line.data(), 1, line.size(), out) != line.size()) {
      std::fclose(out);
      std::remove(tmp.c_str());
      throw Error("journal: write to " + tmp + " failed: " +
                  std::strerror(errno));
    }
  }
  try {
    fsync_file(out, tmp);
  } catch (...) {
    std::fclose(out);
    std::remove(tmp.c_str());
    throw;
  }
  std::fclose(out);
  close_file();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    const int saved = errno;
    std::remove(tmp.c_str());
    open_append();
    throw Error("journal: rename " + tmp + " -> " + path_ + " failed: " +
                std::strerror(saved));
  }
  open_append();
  appended_ = 0;
}

}  // namespace spmap
