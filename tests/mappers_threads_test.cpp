/// Thread-count invariance of the search mappers: a mapper configured with
/// threads=k must produce the exact same mapping and predicted makespan as
/// its serial (threads=1) configuration — the parallel batch evaluation is
/// an implementation detail, never a semantic one.

#include <gtest/gtest.h>

#include "bench/scenario.hpp"
#include "graph/generators.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "workflows/workload_spec.hpp"

namespace spmap {
namespace {

/// Runs one registry spec twice (threads=1 vs threads=4) on the same graph
/// and expects bit-identical outcomes.
void expect_thread_invariant(const std::string& base_spec,
                             std::uint64_t graph_seed) {
  Rng graph_rng(graph_seed);
  const Dag dag = generate_sp_dag(40, graph_rng);
  const TaskAttrs attrs = random_task_attrs(dag, graph_rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  const char* const sep = base_spec.find(':') == std::string::npos ? ":" : ",";
  MapperResult serial;
  MapperResult parallel;
  {
    Rng rng(1);
    auto mapper = MapperRegistry::instance().create(base_spec + sep +
                                                    "threads=1", dag, rng);
    serial = mapper->map(eval);
  }
  {
    Rng rng(1);
    auto mapper = MapperRegistry::instance().create(base_spec + sep +
                                                    "threads=4", dag, rng);
    parallel = mapper->map(eval);
  }
  EXPECT_EQ(serial.mapping, parallel.mapping) << base_spec;
  EXPECT_EQ(serial.predicted_makespan, parallel.predicted_makespan)
      << base_spec;
  EXPECT_EQ(serial.iterations, parallel.iterations) << base_spec;
  EXPECT_EQ(serial.evaluations, parallel.evaluations) << base_spec;
}

TEST(MapperThreads, Nsga2Invariant) {
  expect_thread_invariant("nsga:generations=8,pop=16,seed=5", 301);
}

TEST(MapperThreads, SingleNodeInvariant) {
  expect_thread_invariant("sn", 302);
}

TEST(MapperThreads, SnFirstFitInvariant) {
  expect_thread_invariant("snff", 303);
}

TEST(MapperThreads, SeriesParallelInvariant) {
  expect_thread_invariant("sp", 304);
}

TEST(MapperThreads, SpFirstFitInvariant) {
  expect_thread_invariant("spff:gamma=2", 305);
}

TEST(MapperThreads, LookaheadHeftInvariant) {
  expect_thread_invariant("laheft", 306);
}

TEST(MapperThreads, HillClimbInvariant) {
  expect_thread_invariant("hillclimb:init=heft,iters=400,restarts=4,seed=9",
                          307);
}

TEST(MapperThreads, AnnealInvariant) {
  expect_thread_invariant("anneal:init=heft,iters=400,restarts=4,seed=9",
                          308);
}

TEST(MapperThreads, TabuInvariant) {
  expect_thread_invariant("tabu:init=heft,iters=400,restarts=4,seed=9", 309);
}

// The committed fig4 local-search scenario's own mapper specs must be
// thread-count invariant: every spec of the line-up, run with threads=1 and
// threads=4 on a graph materialized from the scenario's workload, produces
// identical mappings and makespans.
TEST(MapperThreads, CommittedLocalSearchScenarioInvariant) {
  const Scenario scenario =
      load_scenario_file(std::string(SPMAP_SCENARIO_DIR) +
                         "/fig4_local_search.json");
  Rng workload_rng(scenario.seed);
  const TaskGraph tg =
      materialize_workload(scenario.workload, workload_rng, 0);
  const Platform platform = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, platform);
  const Evaluator eval(cost);

  for (const ScenarioMapper& m : scenario.mappers) {
    const auto [name, options] = MapperRegistry::split_spec(m.spec);
    if (!MapperRegistry::instance().at(name).supports_option("threads")) {
      continue;  // the plain HEFT baseline has no parallel path
    }
    const char* const sep =
        m.spec.find(':') == std::string::npos ? ":" : ",";
    MapperResult serial;
    MapperResult parallel;
    {
      Rng rng(7);
      auto mapper = MapperRegistry::instance().create(
          m.spec + sep + "threads=1", tg.dag, rng);
      serial = mapper->map(eval);
    }
    {
      Rng rng(7);
      auto mapper = MapperRegistry::instance().create(
          m.spec + sep + "threads=4", tg.dag, rng);
      parallel = mapper->map(eval);
    }
    EXPECT_EQ(serial.mapping, parallel.mapping) << m.spec;
    EXPECT_EQ(serial.predicted_makespan, parallel.predicted_makespan)
        << m.spec;
    EXPECT_EQ(serial.evaluations, parallel.evaluations) << m.spec;
  }
}

}  // namespace
}  // namespace spmap
