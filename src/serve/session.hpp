#pragma once
/// \file session.hpp
/// Per-connection session state machine of the serving daemon.
///
/// Modeled on the per-session FSM daemons the ROADMAP points at (pppcpd's
/// PPP_FSM): every connection owns one `Session`, a pure state machine
/// that consumes complete frames and emits response lines — no sockets,
/// no clocks of its own, no threads — so the whole protocol surface is
/// table-testable without a daemon. The daemon owns the IO (poll loop,
/// buffers, timers) and calls in; side effects (submitting jobs,
/// cancelling, subscribing) go out through the `SessionHost` interface.
///
/// ## States
///
///       .-----------.  hello ok   .--------.  server drain  .----------.
///   --> | kHandshake| ----------> | kActive| -------------> | kDraining|
///       '-----------'             '--------'                '----------'
///             |                     |    |                        |
///             | bad hello /         |    | framing error /        |
///             | framing error       |    | idle timeout           | jobs
///             v                     v    v                        v done
///          kClosed <------------------------------------------ kClosed
///
///  * kHandshake — a valid `hello` (or `resume`, which re-attaches the
///    connection to a detached session and replays missed events)
///    advances; an unknown resume token answers `unknown_session` and
///    stays in kHandshake so the client can fall back to a fresh hello;
///    anything else answers with an error and closes.
///  * kActive — verbs served; `frame_too_long` / `bad_utf8` / `bad_json`
///    answer and close (the stream can no longer be trusted), while
///    `unknown_op` / `bad_request` / `unknown_job` answer and keep the
///    session (app-level mistakes are recoverable).
///  * kDraining — entered when the server starts draining: `submit` is
///    refused with code `draining`; `status`/`stats`/`cancel`/`subscribe`
///    still work so clients can watch their in-flight jobs finish.
///  * kClosed — terminal; the daemon flushes pending output and closes.
///
/// ## Thread-safety
///
/// None: a Session belongs to the daemon's IO thread.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/wire.hpp"
#include "util/json.hpp"

namespace spmap {

enum class SessionState { kHandshake, kActive, kDraining, kClosed };

/// Stable lower-case label ("handshake", "active", ...).
const char* to_string(SessionState state);

/// A parsed, validated `submit` request (the session did the schema work;
/// the host only decides admission and runs it).
struct WireSubmit {
  std::string mapper_spec;
  /// Wire class "low"|"normal"|"high" mapped to MapJob priority 0|1|2.
  int priority = 1;
  std::string priority_class = "normal";
  /// Exactly one of `graph` (inline spmap task-graph document) or
  /// `generate` (server-side generation spec, the loadgen path) is set.
  std::optional<Json> graph;
  std::optional<Json> generate;
  /// Optional inline `spmap-platform/1` document (default: the paper's
  /// reference platform).
  std::optional<Json> platform;
  // Run bounds, forwarded into the MapRequest.
  double deadline_ms = 0.0;
  std::size_t max_evaluations = 0;
  std::size_t max_iterations = 0;
  std::optional<std::uint64_t> seed;
  /// Pins the registry construction rng (required for client-side
  /// bit-identity verification).
  std::optional<std::uint64_t> construction_seed;
  /// Random orders of a reporting evaluation pass (0 = none).
  std::size_t reporting_orders = 0;
  /// Push incumbent/done events for this job to the submitting session.
  bool subscribe = false;
  /// Include the device assignment in the done/status payload.
  bool want_mapping = false;
  /// Opt into warm-start reuse (MapJob::allow_warm_start): on a result-
  /// cache near-miss the run is seeded with the best cached incumbent of
  /// the same problem. Off by default because a warm seed changes results
  /// relative to a cold run — clients that verify bit-identity leave it
  /// off.
  bool warm = false;
};

/// What the host answered a submit with.
struct SubmitOutcome {
  bool accepted = false;
  std::uint64_t job = 0;           ///< valid when accepted
  WireErrorCode code = WireErrorCode::kInternal;  ///< when rejected
  std::string message;             ///< when rejected
};

/// Serializes a validated submit to its wire body (mapper/class/graph/...,
/// no op/tag) — the journal's "submitted" payload, re-parseable with
/// `wire_submit_from_json` after a daemon restart.
Json to_json(const WireSubmit& request);

/// Parses/validates a submit body (a `submit` frame or a journaled
/// `to_json` document; `op`/`tag` are tolerated and ignored). Throws
/// spmap::Error with a client-ready message on schema violations.
WireSubmit wire_submit_from_json(const Json& body);

/// What the host answered a `resume` handshake with. On success the
/// session adopts `session`/`token`, and `replay` holds the event lines
/// (with `event_seq` numbers the client missed) to send right after the
/// ok response — ordering stays inside the FSM, pure and testable.
struct ResumeOutcome {
  bool ok = false;
  std::uint64_t session = 0;
  std::string token;
  std::vector<std::string> replay;
  WireErrorCode code = WireErrorCode::kUnknownSession;  ///< when !ok
  std::string message;                                  ///< when !ok
};

/// The daemon-side effects a session can trigger. All calls happen on the
/// daemon's IO thread, synchronously under a frame.
class SessionHost {
 public:
  virtual ~SessionHost() = default;

  /// Admission + submission of a validated request from `session`.
  virtual SubmitOutcome submit(std::uint64_t session,
                               const WireSubmit& request) = 0;
  /// Status body for the `ok` response (fields per docs/SERVING.md), or
  /// std::nullopt for an unknown job id.
  virtual std::optional<Json> job_status(std::uint64_t job) = 0;
  /// Requests cancellation; false for an unknown job id. Cancelling a
  /// terminal job is a no-op success (idempotent double-cancel).
  virtual bool cancel_job(std::uint64_t job) = 0;
  /// Subscribes `session` to `job`'s incumbent/done events; false for an
  /// unknown job id.
  virtual bool subscribe(std::uint64_t session, std::uint64_t job) = 0;
  /// Starts a server-wide drain (grace_ms < 0: the server default).
  virtual void begin_drain(double grace_ms) = 0;
  /// True once the server stopped accepting new work.
  virtual bool draining() const = 0;
  /// Extra fields for the hello response (server name, worker count...).
  virtual Json server_info() const { return Json::object(); }
  /// Body of the `stats` verb: live admission/lifecycle/cache counters.
  /// Default: empty (minimal hosts without observability).
  virtual Json stats_body() const { return Json::object(); }
  /// Issues a resume token for a freshly-helloed session. An empty token
  /// means the host does not support resumption (tests, minimal hosts):
  /// the hello response then omits session/token.
  virtual std::string register_session(std::uint64_t session) {
    (void)session;
    return {};
  }
  /// Re-attaches connection `conn` to the detached session owning
  /// `token`, replaying events after `last_seq`. Default: unsupported.
  virtual ResumeOutcome resume_session(std::uint64_t conn,
                                       const std::string& token,
                                       std::uint64_t last_seq) {
    (void)conn;
    (void)last_seq;
    ResumeOutcome outcome;
    outcome.message = "unknown session token \"" + token + "\"";
    return outcome;
  }
};

struct SessionConfig {
  /// Seconds of inactivity before the session is closed; 0 disables.
  double idle_timeout_s = 0.0;
};

/// One connection's protocol state. Every entry point returns the lines
/// to write to the peer (possibly empty); once `state()` is kClosed the
/// daemon flushes and closes.
class Session {
 public:
  Session(std::uint64_t id, SessionHost& host, SessionConfig config = {});

  /// Consumes one complete frame received at time `now` (monotonic
  /// seconds, the daemon's clock).
  std::vector<std::string> on_frame(const std::string& line, double now);

  /// The frame reader latched an overflow: answer and close.
  std::vector<std::string> on_frame_overflow();

  /// Periodic idle check; emits the idle_timeout error and closes when
  /// the configured timeout elapsed.
  std::vector<std::string> on_idle_check(double now);

  /// The server entered drain: notify the peer, move kActive sessions to
  /// kDraining (a handshaking session just closes).
  std::vector<std::string> on_server_drain();

  std::uint64_t id() const { return id_; }
  SessionState state() const { return state_; }
  bool closed() const { return state_ == SessionState::kClosed; }
  double last_activity() const { return last_activity_; }

 private:
  std::vector<std::string> handle_hello(const Frame& frame);
  std::vector<std::string> handle_resume(const Frame& frame);
  std::vector<std::string> handle_submit(const Frame& frame);
  std::vector<std::string> handle_status(const Frame& frame);
  std::vector<std::string> handle_stats(const Frame& frame);
  std::vector<std::string> handle_cancel(const Frame& frame);
  std::vector<std::string> handle_subscribe(const Frame& frame);
  std::vector<std::string> handle_drain(const Frame& frame);

  std::uint64_t id_;
  SessionHost* host_;
  SessionConfig config_;
  SessionState state_ = SessionState::kHandshake;
  double last_activity_ = 0.0;
};

}  // namespace spmap
