#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace spmap {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.below(5)];
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalMatchesPaperParameters) {
  // Paper Section IV-B: lognormal(mu=2, sigma=0.5) has median ~7.4 and 90 %
  // of the mass in [3, 17].
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::sort(xs.begin(), xs.end());
  const double median = xs[xs.size() / 2];
  EXPECT_NEAR(median, std::exp(2.0), 0.15);
  const auto in_range =
      std::count_if(xs.begin(), xs.end(),
                    [](double x) { return x >= 3.0 && x <= 17.0; });
  EXPECT_GT(static_cast<double>(in_range) / static_cast<double>(xs.size()),
            0.85);
}

TEST(Rng, ChanceProbability) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), Error);
}

TEST(Rng, SplitIsIndependent) {
  Rng rng(31);
  Rng child = rng.split();
  // Parent and child should produce different streams.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (rng() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace spmap
