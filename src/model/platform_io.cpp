#include "model/platform_io.hpp"

#include <map>

#include "util/fs.hpp"

namespace spmap {

namespace {

const char* kSchema = "spmap-platform/1";

DeviceKind kind_from_string(const std::string& s) {
  if (s == "cpu") return DeviceKind::Cpu;
  if (s == "gpu") return DeviceKind::Gpu;
  if (s == "fpga") return DeviceKind::Fpga;
  throw Error("platform device: unknown kind '" + s +
              "' (accepted: cpu, gpu, fpga)");
}

const char* kind_to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Cpu:
      return "cpu";
    case DeviceKind::Gpu:
      return "gpu";
    case DeviceKind::Fpga:
      return "fpga";
  }
  return "cpu";
}

double get_double(const Json& obj, const std::string& key, double fallback) {
  return obj.contains(key) ? obj.at(key).as_double() : fallback;
}

Device device_from_json(const Json& doc) {
  Device d;
  require(doc.contains("name") && !doc.at("name").as_string().empty(),
          "platform device: missing or empty 'name'");
  d.name = doc.at("name").as_string();
  require(doc.contains("kind"), "platform device '" + d.name +
                                    "': missing 'kind' (cpu, gpu or fpga)");
  d.kind = kind_from_string(doc.at("kind").as_string());

  // Only keys the kind actually consumes are accepted — serialization emits
  // exactly these, which is what keeps parse -> serialize -> parse the
  // identity (an fpga with "lanes" would otherwise parse and then silently
  // drop it on the way back out).
  std::vector<std::string> accepted = {"name", "kind", "idle_watts",
                                       "active_watts", "transfer_watts"};
  if (d.is_fpga()) {
    accepted.insert(accepted.end(), {"area_budget",
                                     "stream_gops_per_streamability",
                                     "stream_fill_fraction"});
  } else {
    accepted.insert(accepted.end(), {"lanes", "lane_gops", "slots"});
  }
  doc.require_keys("platform device '" + d.name + "'", accepted);
  d.lanes = get_double(doc, "lanes", 1.0);
  d.lane_gops = get_double(doc, "lane_gops", 1.0);
  if (doc.contains("slots")) {
    const auto slots = doc.at("slots").as_int();
    require(slots >= 1, "platform device '" + d.name + "': slots must be >= 1");
    d.slots = static_cast<std::size_t>(slots);
  }
  d.area_budget = get_double(doc, "area_budget", 0.0);
  d.stream_gops_per_streamability =
      get_double(doc, "stream_gops_per_streamability", 0.0);
  d.stream_fill_fraction = get_double(doc, "stream_fill_fraction", 0.1);
  d.idle_watts = get_double(doc, "idle_watts", 0.0);
  d.active_watts = get_double(doc, "active_watts", 0.0);
  d.transfer_watts = get_double(doc, "transfer_watts", 0.0);
  return d;
}

Json device_to_json(const Device& d) {
  Json doc = Json::object();
  doc.set("name", d.name);
  doc.set("kind", kind_to_string(d.kind));
  if (d.is_fpga()) {
    doc.set("area_budget", d.area_budget);
    doc.set("stream_gops_per_streamability", d.stream_gops_per_streamability);
    doc.set("stream_fill_fraction", d.stream_fill_fraction);
  } else {
    doc.set("lanes", d.lanes);
    doc.set("lane_gops", d.lane_gops);
    doc.set("slots", d.slots);
  }
  doc.set("idle_watts", d.idle_watts);
  doc.set("active_watts", d.active_watts);
  doc.set("transfer_watts", d.transfer_watts);
  return doc;
}

}  // namespace

Json platform_to_json(const Platform& platform, const std::string& name) {
  Json devices = Json::array();
  for (const Device& d : platform.devices()) {
    devices.push_back(device_to_json(d));
  }
  Json links = Json::array();
  for (std::size_t a = 0; a < platform.device_count(); ++a) {
    for (std::size_t b = a + 1; b < platform.device_count(); ++b) {
      Json link = Json::object();
      link.set("a", platform.device(DeviceId(a)).name);
      link.set("b", platform.device(DeviceId(b)).name);
      link.set("bandwidth_gbps",
               platform.bandwidth_gbps(DeviceId(a), DeviceId(b)));
      link.set("latency_s", platform.latency_s(DeviceId(a), DeviceId(b)));
      links.push_back(std::move(link));
    }
  }
  Json doc = Json::object();
  doc.set("schema", kSchema);
  if (!name.empty()) doc.set("name", name);
  doc.set("devices", std::move(devices));
  doc.set("links", std::move(links));
  return doc;
}

NamedPlatform platform_from_json(const Json& doc) {
  doc.require_keys("platform", {"schema", "name", "devices", "links"});
  require(doc.contains("schema") && doc.at("schema").as_string() == kSchema,
          std::string("platform: missing or unsupported 'schema' (expected "
                      "\"") +
              kSchema + "\")");
  NamedPlatform out;
  if (doc.contains("name")) out.name = doc.at("name").as_string();

  require(doc.contains("devices") && !doc.at("devices").as_array().empty(),
          "platform: needs a non-empty 'devices' array");
  std::map<std::string, DeviceId> by_name;
  for (const Json& device_doc : doc.at("devices").as_array()) {
    Device d = device_from_json(device_doc);
    require(by_name.count(d.name) == 0,
            "platform: duplicate device name '" + d.name + "'");
    const std::string device_name = d.name;
    by_name.emplace(device_name, out.platform.add_device(std::move(d)));
  }

  auto device_ref = [&](const Json& link, const char* key) {
    const std::string& name = link.at(key).as_string();
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      std::string known;
      for (const auto& [n, id] : by_name) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw Error("platform link: unknown device '" + name +
                  "' (devices: " + known + ")");
    }
    return it->second;
  };
  if (doc.contains("links")) {
    for (const Json& link : doc.at("links").as_array()) {
      link.require_keys("platform link",
                        {"a", "b", "bandwidth_gbps", "latency_s"});
      out.platform.set_link(device_ref(link, "a"), device_ref(link, "b"),
                            link.at("bandwidth_gbps").as_double(),
                            link.at("latency_s").as_double());
    }
  }
  out.platform.validate();
  return out;
}

NamedPlatform platform_from_json_text(const std::string& text) {
  return platform_from_json(Json::parse(text));
}

NamedPlatform load_platform_file(const std::string& path) {
  return platform_from_json_text(read_text_file(path, "platform file"));
}

}  // namespace spmap
