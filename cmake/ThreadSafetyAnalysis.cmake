# Clang Thread Safety Analysis wiring for SPMAP_THREAD_SAFETY_ANALYSIS=ON.
#
# Adds -Wthread-safety -Werror=thread-safety to every target, then runs a
# two-sided compile-fail check at configure time:
#
#   * tests/compile_fail/guarded_ok.cpp  — correctly locked access; MUST
#     compile (the positive control that proves the harness itself works).
#   * tests/compile_fail/guarded_bad.cpp — the same code minus the lock;
#     MUST fail, proving an unguarded access really breaks the build and
#     the annotation macros have not silently degraded to no-ops.
#
# Either side going the wrong way is a FATAL_ERROR: a broken harness that
# "passes" would let the whole annotation layer rot unnoticed.

if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  message(FATAL_ERROR
    "SPMAP_THREAD_SAFETY_ANALYSIS=ON requires clang: gcc/msvc compile the "
    "annotation macros to nothing, so the option would silently check "
    "nothing. Configure with clang++ or drop the option.")
endif()

add_compile_options(-Wthread-safety -Werror=thread-safety)

set(_spmap_tsa_flags "-Wthread-safety -Werror=thread-safety")

try_compile(SPMAP_TSA_POSITIVE_OK
  ${CMAKE_BINARY_DIR}/compile_fail/guarded_ok
  ${CMAKE_CURRENT_SOURCE_DIR}/tests/compile_fail/guarded_ok.cpp
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
    "-DCMAKE_CXX_FLAGS:STRING=${_spmap_tsa_flags}"
  CXX_STANDARD 20
  CXX_STANDARD_REQUIRED ON
  OUTPUT_VARIABLE _spmap_tsa_positive_log)

if(NOT SPMAP_TSA_POSITIVE_OK)
  message(FATAL_ERROR
    "thread-safety compile-fail harness broken: the positive control "
    "tests/compile_fail/guarded_ok.cpp does not compile under "
    "-Werror=thread-safety.\n${_spmap_tsa_positive_log}")
endif()

try_compile(SPMAP_TSA_NEGATIVE_COMPILED
  ${CMAKE_BINARY_DIR}/compile_fail/guarded_bad
  ${CMAKE_CURRENT_SOURCE_DIR}/tests/compile_fail/guarded_bad.cpp
  CMAKE_FLAGS
    "-DINCLUDE_DIRECTORIES=${CMAKE_CURRENT_SOURCE_DIR}/src"
    "-DCMAKE_CXX_FLAGS:STRING=${_spmap_tsa_flags}"
  CXX_STANDARD 20
  CXX_STANDARD_REQUIRED ON
  OUTPUT_VARIABLE _spmap_tsa_negative_log)

if(SPMAP_TSA_NEGATIVE_COMPILED)
  message(FATAL_ERROR
    "thread-safety annotations are not enforcing anything: the unguarded "
    "access in tests/compile_fail/guarded_bad.cpp compiled under "
    "-Werror=thread-safety. Check the macro gate in "
    "src/util/thread_annotations.hpp.")
endif()

message(STATUS
  "Thread safety analysis: -Werror=thread-safety on, compile-fail check ok")
