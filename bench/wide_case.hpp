#pragma once
/// \file wide_case.hpp
/// The shared wide-workflow benchmark configuration.
///
/// One definition for the "wide_manycore" regime measured both by
/// bench_micro_core (BM_EvaluateMakespanWide / BM_IncrementalReassignWide)
/// and by bench_perf_report (the `incremental_reassign` rows of
/// BENCH_eval.json), so the two surfaces cannot drift apart: a 16-wide
/// layered DAG (independent branch bundles with joins) on the many-core
/// scale-out platform, starting from the all-CPU default mapping.
/// Schedules here are dependency- rather than queue-bound — the regime
/// local search refines and the incremental evaluator is built for.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/incremental_evaluator.hpp"

namespace spmap::benchcase {

struct WideCase {
  Dag dag;
  TaskAttrs attrs;
  Platform platform;
  Mapping mapping;

  explicit WideCase(std::size_t n, std::uint64_t seed)
      : platform(manycore_platform()) {
    Rng rng(seed);
    dag = generate_layered_dag(rng,
                               {.layers = std::max<std::size_t>(1, n / 16),
                                .min_width = 16,
                                .max_width = 16,
                                .edge_probability = 0.25});
    attrs = random_task_attrs(dag, rng);
    mapping = Mapping(dag.node_count(), platform.default_device());
  }
};

/// A deterministic stream of *genuine* single-task reassignments — the
/// local-search move sampler (never the task's current device), so no
/// O(1) no-op probes dilute a measurement.
inline std::vector<TaskReassignment> random_moves(std::size_t count,
                                                  const Mapping& mapping,
                                                  std::size_t devices,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TaskReassignment> moves;
  moves.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    moves.push_back(random_reassignment(mapping, devices, rng));
  }
  return moves;
}

}  // namespace spmap::benchcase
