#include "mappers/milp_mappers.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"
#include "util/error.hpp"

namespace spmap {

namespace {

constexpr double kBigUb = 1e30;  // treated as +infinity by the LP layer

/// Shared builder state for the assignment-style formulations.
struct Builder {
  const CostModel& cost;
  const Dag& dag;
  const Platform& platform;
  std::size_t n;
  std::size_t m;
  MilpModel model;
  std::vector<int> x;  // assignment binaries, node-major [i * m + d]

  explicit Builder(const CostModel& c)
      : cost(c),
        dag(c.dag()),
        platform(c.platform()),
        n(c.dag().node_count()),
        m(c.platform().device_count()) {}

  int xvar(std::size_t i, std::size_t d) const { return x[i * m + d]; }

  /// Assignment binaries + one-device-per-task rows + FPGA area rows.
  void add_assignment() {
    x.resize(n * m);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<LinTerm> one;
      for (std::size_t d = 0; d < m; ++d) {
        x[i * m + d] = model.add_binary(0.0);
        one.push_back({x[i * m + d], 1.0});
      }
      model.add_constraint(std::move(one), RowSense::Eq, 1.0);
    }
    for (const DeviceId f : platform.fpga_devices()) {
      std::vector<LinTerm> area;
      for (std::size_t i = 0; i < n; ++i) {
        const double a = cost.area(NodeId(i));
        if (a > 0.0) area.push_back({xvar(i, f.v), a});
      }
      if (!area.empty()) {
        model.add_constraint(std::move(area), RowSense::Le,
                             platform.device(f).area_budget);
      }
    }
  }

  /// Schedule horizon: serial worst-case execution plus all transfers.
  double horizon() const {
    double h = cost.max_serial_time();
    for (std::size_t e = 0; e < dag.edge_count(); ++e) {
      double worst = 0.0;
      for (std::size_t a = 0; a < m; ++a) {
        for (std::size_t b = 0; b < m; ++b) {
          if (a != b) {
            worst = std::max(worst, cost.transfer_time(EdgeId(e), DeviceId(a),
                                                       DeviceId(b)));
          }
        }
      }
      h += worst;
    }
    return h;
  }

  /// All-CPU warm-start values for the assignment binaries.
  void warm_assignment(std::vector<double>& warm) const {
    const std::size_t cpu = platform.default_device().v;
    for (std::size_t i = 0; i < n; ++i) warm[xvar(i, cpu)] = 1.0;
  }

  Mapping extract_mapping(const std::vector<double>& solution) const {
    Mapping mapping(n, platform.default_device());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < m; ++d) {
        if (solution[xvar(i, d)] > 0.5) {
          mapping[NodeId(i)] = DeviceId(d);
          break;
        }
      }
    }
    return mapping;
  }
};

/// MipParams for one run — the mapper's own limits tightened by the
/// request's deadline/iteration budget, cancellation wired to the solver's
/// per-node interrupt hook — plus which bounds the *request* imposed, so
/// finish() can attribute the termination honestly.
struct MipRunParams {
  MipParams mip;
  bool deadline_from_request = false;
  std::size_t request_node_cap = 0;  ///< 0 = the request caps no nodes
};

MipRunParams mip_params_for_run(const MilpMapperParams& params,
                                const RunControl& control) {
  const MapRequest& request = control.request();
  MipRunParams run;
  run.mip.time_limit_s = params.time_limit_s;
  if (request.deadline_ms > 0.0) {
    const double remaining_s =
        request.deadline_ms / 1e3 - control.elapsed_seconds();
    run.mip.time_limit_s =
        std::min(run.mip.time_limit_s, std::max(remaining_s, 1e-3));
    run.deadline_from_request = true;
  }
  run.mip.max_nodes = params.max_nodes;
  if (request.max_iterations != 0) {
    run.mip.max_nodes = std::min(run.mip.max_nodes, request.max_iterations);
    run.request_node_cap = request.max_iterations;
  }
  run.mip.interrupt = [&control] { return control.cancelled(); };
  return run;
}

MapReport finish(const Evaluator& eval, MilpMapperBase&, const Builder& b,
                 const MipResult& mip, const MipRunParams& run,
                 RunControl& control, MipStatus& status_out,
                 bool& timeout_out, std::size_t& nodes_out) {
  status_out = mip.status;
  timeout_out = mip.timed_out;
  nodes_out = mip.nodes;

  // An interrupted solve is an anytime result: the warm-started incumbent
  // guarantees a valid mapping at any limit. Attribute the stop to the
  // request only for the bounds the request actually imposed; the
  // mapper's *own* time/node limits are its planned work — running them
  // out is convergence (the paper's anytime-cutoff behaviour).
  if (mip.timed_out) {
    if (control.cancelled()) {
      control.stop(TerminationReason::kCancelled);
    } else if (run.deadline_from_request && control.deadline_expired()) {
      control.stop(TerminationReason::kDeadline);
    } else if (run.request_node_cap != 0 &&
               mip.nodes >= run.request_node_cap) {
      control.stop(TerminationReason::kBudgetExhausted);
    }
  }

  MapReport report;
  report.iterations = mip.nodes;
  const std::size_t before = eval.evaluation_count();
  report.mapping = mip.has_solution() ? b.extract_mapping(mip.x)
                                      : eval.default_mapping();
  report.predicted_makespan = eval.evaluate(report.mapping);
  report.evaluations = eval.evaluation_count() - before;
  control.record_incumbent(report.predicted_makespan, mip.nodes);
  control.finalize(report);
  return report;
}

/// Adds start-time variables, big-M precedence rows, the makespan variable
/// and T >= finish rows. Shared by WGDP-Time and ZhouLiu.
///
/// `streaming_aware` applies the FPGA dataflow discount on FPGA-FPGA edges.
/// Returns (start-variable indices, makespan variable, horizon).
struct TimeStructure {
  std::vector<int> start;
  int makespan;
  double horizon;
};

TimeStructure add_time_structure(Builder& b, bool streaming_aware) {
  TimeStructure ts;
  ts.horizon = b.horizon();
  const double bigm = ts.horizon;

  ts.start.resize(b.n);
  for (std::size_t i = 0; i < b.n; ++i) {
    ts.start[i] = b.model.add_continuous(0.0, ts.horizon, 0.0);
  }
  ts.makespan = b.model.add_continuous(0.0, ts.horizon, 1.0);

  // Precedence with device-dependent durations and transfers:
  // s_i >= s_j + dur(j, d) + trans(d, e) - M * (2 - x_jd - x_ie).
  for (std::size_t e = 0; e < b.dag.edge_count(); ++e) {
    const EdgeId edge(e);
    const std::size_t j = b.dag.src(edge).v;
    const std::size_t i = b.dag.dst(edge).v;
    for (std::size_t d = 0; d < b.m; ++d) {
      const Device& dev = b.platform.device(DeviceId(d));
      for (std::size_t de = 0; de < b.m; ++de) {
        double dur = b.cost.exec_time(NodeId(j), DeviceId(d));
        if (streaming_aware && d == de && dev.is_fpga()) {
          // Dataflow streaming: the consumer may start once the producer's
          // pipeline is filled.
          dur *= dev.stream_fill_fraction;
        }
        const double trans =
            b.cost.transfer_time(edge, DeviceId(d), DeviceId(de));
        // s_i - s_j - M x_jd - M x_ie >= dur + trans - 2M
        b.model.add_constraint({{ts.start[i], 1.0},
                                {ts.start[j], -1.0},
                                {b.xvar(j, d), -bigm},
                                {b.xvar(i, de), -bigm}},
                               RowSense::Ge, dur + trans - 2.0 * bigm);
      }
    }
  }

  // Makespan covers every task's finish time:
  // T >= s_i + sum_d exec(i, d) x_id.
  for (std::size_t i = 0; i < b.n; ++i) {
    std::vector<LinTerm> terms{{ts.makespan, 1.0}, {ts.start[i], -1.0}};
    for (std::size_t d = 0; d < b.m; ++d) {
      terms.push_back({b.xvar(i, d), -b.cost.exec_time(NodeId(i),
                                                       DeviceId(d))});
    }
    b.model.add_constraint(std::move(terms), RowSense::Ge, 0.0);
  }
  return ts;
}

/// All-CPU serial schedule start times along a topological order.
std::vector<double> serial_cpu_starts(const Builder& b) {
  const DeviceId cpu = b.platform.default_device();
  const auto topo = topological_order(b.dag);
  std::vector<double> start(b.n, 0.0);
  double clock = 0.0;
  for (const NodeId v : topo) {
    start[v.v] = clock;
    clock += b.cost.exec_time(v, cpu);
  }
  return start;
}

}  // namespace

MapReport WgdpDeviceMapper::map(const Evaluator& eval,
                                const MapRequest& request) {
  RunControl control(request);
  Builder b(eval.cost());
  b.add_assignment();

  // Makespan proxy: T >= load(d) / slots(d) with load(d) = sum_i exec(i, d)
  // x_id — a device with several execution slots drains its queue that much
  // faster.
  const int t = b.model.add_continuous(0.0, kBigUb, 1.0);
  for (std::size_t d = 0; d < b.m; ++d) {
    const double slots = static_cast<double>(
        std::max<std::size_t>(1, b.platform.device(DeviceId(d)).slots));
    std::vector<LinTerm> terms{{t, 1.0}};
    for (std::size_t i = 0; i < b.n; ++i) {
      terms.push_back({b.xvar(i, d),
                       -b.cost.exec_time(NodeId(i), DeviceId(d)) / slots});
    }
    b.model.add_constraint(std::move(terms), RowSense::Ge, 0.0);
  }

  std::vector<double> warm(b.model.var_count(), 0.0);
  b.warm_assignment(warm);
  double cpu_load = 0.0;
  for (std::size_t i = 0; i < b.n; ++i) {
    cpu_load += b.cost.exec_time(NodeId(i), b.platform.default_device());
  }
  warm[t] = cpu_load;

  const MipRunParams run = mip_params_for_run(params_, control);
  const MipResult mip = MipSolver(run.mip).solve(b.model, &warm);
  return finish(eval, *this, b, mip, run, control, last_status_,
                last_timed_out_, last_nodes_);
}

MapReport WgdpTimeMapper::map(const Evaluator& eval,
                              const MapRequest& request) {
  RunControl control(request);
  Builder b(eval.cost());
  b.add_assignment();
  const TimeStructure ts = add_time_structure(b, /*streaming_aware=*/true);

  // Device contention approximation: the makespan is at least each
  // non-FPGA device's total load divided by its slot count (FPGA pipelines
  // co-reside in fabric).
  for (std::size_t d = 0; d < b.m; ++d) {
    if (b.platform.device(DeviceId(d)).is_fpga()) continue;
    const double slots = static_cast<double>(
        std::max<std::size_t>(1, b.platform.device(DeviceId(d)).slots));
    std::vector<LinTerm> terms{{ts.makespan, 1.0}};
    for (std::size_t i = 0; i < b.n; ++i) {
      terms.push_back({b.xvar(i, d),
                       -b.cost.exec_time(NodeId(i), DeviceId(d)) / slots});
    }
    b.model.add_constraint(std::move(terms), RowSense::Ge, 0.0);
  }

  std::vector<double> warm(b.model.var_count(), 0.0);
  b.warm_assignment(warm);
  const auto starts = serial_cpu_starts(b);
  double total = 0.0;
  for (std::size_t i = 0; i < b.n; ++i) {
    warm[ts.start[i]] = starts[i];
    total = std::max(total, starts[i] + b.cost.exec_time(
                                            NodeId(i),
                                            b.platform.default_device()));
  }
  warm[ts.makespan] = total;

  const MipRunParams run = mip_params_for_run(params_, control);
  const MipResult mip = MipSolver(run.mip).solve(b.model, &warm);
  return finish(eval, *this, b, mip, run, control, last_status_,
                last_timed_out_, last_nodes_);
}

MapReport ZhouLiuMapper::map(const Evaluator& eval,
                             const MapRequest& request) {
  RunControl control(request);
  Builder b(eval.cost());
  b.add_assignment();
  const TimeStructure ts = add_time_structure(b, /*streaming_aware=*/false);
  const double bigm = ts.horizon;

  // Explicit total order per device: for every pair of tasks with no
  // precedence path, a binary z decides who goes first when they share a
  // device (the slot semantics of Zhou and Liu).
  const auto topo = topological_order(b.dag);
  std::vector<std::size_t> topo_pos(b.n);
  for (std::size_t i = 0; i < b.n; ++i) topo_pos[topo[i].v] = i;

  std::vector<double> warm_z;  // parallel to created z vars
  std::vector<int> z_vars;
  for (std::size_t i = 0; i < b.n; ++i) {
    const auto reach_i = reachable_set(b.dag, NodeId(i));
    for (std::size_t j = i + 1; j < b.n; ++j) {
      if (reach_i[j] || reachable(b.dag, NodeId(j), NodeId(i))) {
        continue;  // already ordered by precedence
      }
      const int z = b.model.add_binary(0.0);  // z = 1: i before j
      z_vars.push_back(z);
      warm_z.push_back(topo_pos[i] < topo_pos[j] ? 1.0 : 0.0);
      for (std::size_t d = 0; d < b.m; ++d) {
        const double exec_i = b.cost.exec_time(NodeId(i), DeviceId(d));
        const double exec_j = b.cost.exec_time(NodeId(j), DeviceId(d));
        // i before j on device d: s_j >= s_i + exec_i - M(3 - z - xi - xj).
        b.model.add_constraint({{ts.start[j], 1.0},
                                {ts.start[i], -1.0},
                                {z, -bigm},
                                {b.xvar(i, d), -bigm},
                                {b.xvar(j, d), -bigm}},
                               RowSense::Ge, exec_i - 3.0 * bigm);
        // j before i on device d: s_i >= s_j + exec_j - M(2 + z - xi - xj).
        b.model.add_constraint({{ts.start[i], 1.0},
                                {ts.start[j], -1.0},
                                {z, bigm},
                                {b.xvar(i, d), -bigm},
                                {b.xvar(j, d), -bigm}},
                               RowSense::Ge, exec_j - 2.0 * bigm);
      }
    }
  }

  std::vector<double> warm(b.model.var_count(), 0.0);
  b.warm_assignment(warm);
  const auto starts = serial_cpu_starts(b);
  double total = 0.0;
  for (std::size_t i = 0; i < b.n; ++i) {
    warm[ts.start[i]] = starts[i];
    total = std::max(total, starts[i] + b.cost.exec_time(
                                            NodeId(i),
                                            b.platform.default_device()));
  }
  warm[ts.makespan] = total;
  for (std::size_t k = 0; k < z_vars.size(); ++k) warm[z_vars[k]] = warm_z[k];

  const MipRunParams run = mip_params_for_run(params_, control);
  const MipResult mip = MipSolver(run.mip).solve(b.model, &warm);
  return finish(eval, *this, b, mip, run, control, last_status_,
                last_timed_out_, last_nodes_);
}

namespace {

MilpMapperParams milp_params_from_options(const MapperOptions& options) {
  MilpMapperParams params;
  params.time_limit_s = options.get_double("time-limit", params.time_limit_s);
  require(params.time_limit_s > 0.0,
          "mapper option 'time-limit': must be > 0 seconds");
  const std::int64_t max_nodes = options.get_int(
      "max-nodes", static_cast<std::int64_t>(params.max_nodes));
  require(max_nodes > 0, "mapper option 'max-nodes': must be > 0");
  params.max_nodes = static_cast<std::size_t>(max_nodes);
  return params;
}

std::vector<MapperOptionInfo> milp_options() {
  const MilpMapperParams defaults;
  return {
      {"time-limit", format_option_value(defaults.time_limit_s),
       "solver time limit in seconds"},
      {"max-nodes", std::to_string(defaults.max_nodes),
       "branch-and-bound node cap"},
  };
}

}  // namespace

void detail::register_milp_mappers(MapperRegistry& registry) {
  {
    MapperEntry entry;
    entry.name = "wgdp-dev";
    entry.display_name = "WGDP-Dev";
    entry.description =
        "WGDP device-based MILP (Wilhelm et al.): minimizes the maximum "
        "per-device load; fast but blind to transfers and the critical path";
    entry.options = milp_options();
    entry.factory = [](const MapperContext& ctx) {
      return std::make_unique<WgdpDeviceMapper>(
          milp_params_from_options(ctx.options));
    };
    registry.add(std::move(entry));
  }
  {
    MapperEntry entry;
    entry.name = "wgdp-time";
    entry.display_name = "WGDP-Time";
    entry.description =
        "WGDP time-based MILP: big-M precedence constraints with transfer "
        "costs and FPGA streaming discount; load-bound contention model";
    entry.options = milp_options();
    entry.factory = [](const MapperContext& ctx) {
      return std::make_unique<WgdpTimeMapper>(
          milp_params_from_options(ctx.options));
    };
    registry.add(std::move(entry));
  }
  {
    MapperEntry entry;
    entry.name = "zhouliu";
    entry.display_name = "ZhouLiu";
    entry.description =
        "Zhou/Liu MILP: full disjunctive per-device ordering; near-optimal "
        "on small graphs, times out quickly as the model explodes";
    entry.options = milp_options();
    entry.factory = [](const MapperContext& ctx) {
      return std::make_unique<ZhouLiuMapper>(
          milp_params_from_options(ctx.options));
    };
    registry.add(std::move(entry));
  }
}

}  // namespace spmap
