#pragma once
/// \file mapping_service.hpp
/// Asynchronous mapping jobs: the serving facade over the anytime run API.
///
/// A `MappingService` owns a FIFO job queue and a fixed pool of worker
/// threads. One job is one complete mapping problem — a task graph, a
/// platform, a registry mapper spec, and the evaluation protocol — bundled
/// with a `MapRequest` bounding the run. `submit` returns a `JobHandle`
/// for status polling, blocking waits and cooperative cancellation; the
/// worker builds the cost model and evaluators, runs the mapper, and (when
/// `reporting_orders > 0`) re-prices the result with the paper's reporting
/// protocol (min over BFS + random schedules) plus the all-CPU baseline —
/// exactly what the scenario runner always computed inline. The scenario
/// runner is now a client of this layer, and `spmap_cli serve` exposes it
/// directly.
///
/// ## Determinism
///
/// Jobs are executed FIFO by whichever worker frees up first, but nothing
/// a job computes depends on *which* worker runs it or *when*: the
/// construction rng of every job is fixed at submit time — either the
/// caller's explicit `construction_rng`, or a stream derived from the
/// service seed and the job's submission index — and the evaluators are
/// private to the job. Hence a batch of submissions produces bit-identical
/// results for every `workers` count (the serial scenario path included),
/// except wall-clock fields. Deadlines/cancellation break this, as always.
///
/// ## Thread-safety
///
/// `submit`, `wait_all` and every `JobHandle` member are safe to call from
/// any thread. The service must outlive its handles' `wait` calls; the
/// destructor drains the queue (runs every submitted job) and joins the
/// workers — cancel jobs first for a fast teardown.
///
/// ## Lifecycle
///
///   kQueued -> kRunning -> kDone (result().error.empty())
///                       -> kFailed (result().error explains)
///   kQueued -> kCancelled (cancelled before a worker picked it up)
///
/// Cancelling a *running* job triggers its CancelToken: the mapper returns
/// its incumbent and the job completes as kDone with
/// `report.termination == TerminationReason::kCancelled`.
///
/// ## Admission and priorities
///
/// `Options::max_queued` bounds the number of jobs *waiting* for a worker
/// (running jobs do not count). A full queue makes `submit` follow
/// `Options::when_full` — throw spmap::Error (kReject, the serving
/// default) or block until a worker frees a slot (kBlock, the batch
/// default) — while `try_submit` never blocks and returns std::nullopt
/// instead. `MapJob::priority` orders the queue: workers always pick the
/// highest waiting priority, FIFO within one priority, so a saturated
/// service keeps serving its most urgent class first. `stats()` snapshots
/// the admission counters for observability (the daemon's backpressure
/// decisions read it).
///
/// ## Result cache
///
/// With `Options::cache` set, submit consults the memo before queueing.
/// A job is *cacheable* iff its computation is a pure function of its
/// inputs: the construction rng is pinned (`MapJob::construction_rng`
/// set — a derived per-submission stream is unique by construction and
/// would only pollute the memo) and neither the request nor the spec
/// carries a wall-clock deadline. The key covers the exact graph +
/// platform content hashes (sched/problem_hash.hpp), the canonical
/// mapper spec, the request bounds + seed, the evaluation protocol
/// (inner/reporting orders) and the rng fingerprint — everything the
/// determinism contract needs for cached == computed, bit for bit.
///
/// A hit turns the job terminal inside submit: no queue slot (it is
/// admitted even when the queue is full), no worker, `on_terminal` fired
/// from the *submitting* thread before submit returns, `on_start` never
/// fired, and `report.cache == CacheOutcome::kHit`. Misses run normally
/// (reporting kMiss) and, when they finish deterministically (kDone with
/// kConverged/kBudgetExhausted), are inserted. Uncacheable jobs report
/// kNone. Jobs opting in via `MapJob::allow_warm_start` may additionally
/// receive the best cached incumbent of the same *problem* (structural
/// graph + platform) as their request's warm-start seed — those runs
/// report kWarm and are never inserted into the exact memo (a warm seed
/// changes the computation relative to the key).

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "graph/io.hpp"
#include "mappers/run_api.hpp"
#include "model/cost_model.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace spmap {

class ResultCache;

/// Where a job is in its lifecycle (see the header comment).
enum class JobStatus { kQueued, kRunning, kDone, kFailed, kCancelled };

/// Stable lower-case label ("queued", "running", ...).
const char* to_string(JobStatus status);

/// Reporting state shared by every job of one problem: the paper's
/// reporting evaluator (min over BFS + N random schedules), the all-CPU
/// baseline makespan and the cost model, built **once** instead of per
/// job — and built *lazily*: construction only captures the inputs, the
/// first accessor call pays the build (under std::call_once, so the first
/// *job* to need it builds it on its worker and siblings reuse it; a
/// submit thread fanning out hundreds of jobs never serializes on it).
/// Immutable once built; jobs price their results through the
/// thread-safe explicit-context overload, so any number of concurrent
/// workers may share one context (the scenario runner shares one across
/// a repetition's whole mapper line-up).
class ReportingContext {
 public:
  ReportingContext(std::shared_ptr<const TaskGraph> graph,
                   std::shared_ptr<const Platform> platform,
                   std::size_t reporting_orders);

  // The built evaluator points into the built cost model: pinned.
  ReportingContext(const ReportingContext&) = delete;
  ReportingContext& operator=(const ReportingContext&) = delete;

  /// `mapping` priced by the reporting protocol. Thread-safe.
  double evaluate(const Mapping& mapping) const;
  double baseline() const { return built().baseline; }
  /// The protocol's random-order count (cache-key ingredient; cheap, does
  /// not force the lazy build).
  std::size_t random_orders() const { return reporting_orders_; }
  /// The shared cost model (immutable, thread-safe reads): jobs carrying
  /// this context build their inner evaluators on it instead of
  /// constructing a CostModel of their own.
  const CostModel& cost() const { return built().cost; }

 private:
  struct Built {
    CostModel cost;
    Evaluator evaluator;
    double baseline;

    Built(const TaskGraph& graph, const Platform& platform,
          std::size_t reporting_orders);
  };

  const Built& built() const;

  std::shared_ptr<const TaskGraph> graph_;
  std::shared_ptr<const Platform> platform_;
  std::size_t reporting_orders_ = 0;
  mutable std::once_flag built_once_;
  mutable std::optional<Built> built_;
};

struct MapJobResult;

/// One mapping problem. Graph and platform are shared immutable inputs
/// (submit many jobs over one graph without copying it).
struct MapJob {
  /// MapperRegistry spec, e.g. "anneal:iters=2000,seed=7".
  std::string mapper_spec;
  std::shared_ptr<const TaskGraph> graph;
  std::shared_ptr<const Platform> platform;
  /// Random schedule orders of the *inner* evaluator the mapper runs
  /// against (0 = breadth-first only, the mapping-loop default).
  std::size_t inner_orders = 0;
  /// Random schedule orders of the *reporting* evaluator (paper protocol:
  /// min over BFS + N random schedules; 0 = BFS only). Unset skips the
  /// reporting pass entirely: `reported_makespan` then equals the report's
  /// predicted makespan and `baseline_makespan` stays 0. Ignored when
  /// `reporting` is set.
  std::optional<std::size_t> reporting_orders;
  /// Shared precomputed reporting state; set this when many jobs price
  /// against the same graph/platform so the reporting evaluator and the
  /// baseline are built once, not per job. Must match `graph`/`platform`.
  std::shared_ptr<const ReportingContext> reporting;
  /// Opt into warm-start reuse: on an exact-memo miss with a cached
  /// incumbent for the same problem (structural graph + platform), the
  /// incumbent is fed to the run as `MapRequest::warm_start`. Off by
  /// default because a warm seed changes results relative to a cold run
  /// — only drivers that prefer speed over replay-exactness set it.
  bool allow_warm_start = false;
  /// Construction rng for MapperRegistry::create (decomposition forests,
  /// unseeded mapper seeds). Unset: derived from the service seed and the
  /// job's submission index.
  std::optional<Rng> construction_rng;
  /// Queue priority: workers pick the highest waiting priority first,
  /// FIFO within one priority. 0 is the normal class; the daemon maps its
  /// wire classes low/normal/high to 0/1/2.
  int priority = 0;
  /// Fired exactly once when the job turns terminal (kDone / kFailed /
  /// kCancelled), from the worker that finished it — or from the
  /// cancelling thread for a queued-cancel, or from the *submitting*
  /// thread (before submit returns) for a cache hit. Runs outside every
  /// service lock, so it may call any JobHandle or service member, but it
  /// must not block: it delays that worker's next job. The serving daemon
  /// uses it to push completion events to subscribed connections.
  std::function<void(std::uint64_t id, JobStatus status,
                     const MapJobResult& result)>
      on_terminal;
  /// Fired once when a worker picks the job up (kQueued -> kRunning), from
  /// that worker, outside every service lock. Not fired for jobs cancelled
  /// while queued. Same non-blocking contract as `on_terminal`; the daemon
  /// journals the transition so a restart can tell started work apart from
  /// work that never left the queue.
  std::function<void(std::uint64_t id)> on_start;
};

/// What a finished job yields.
struct MapJobResult {
  MapReport report;
  /// `report.mapping` priced by the reporting protocol (== the report's
  /// predicted makespan when `reporting_orders == 0`).
  double reported_makespan = 0.0;
  /// Reporting-evaluator makespan of the all-CPU default mapping (0 when
  /// `reporting_orders == 0`).
  double baseline_makespan = 0.0;
  /// Wall clock of mapper construction + run (the paper's end-to-end
  /// mapper time, matching the scenario runner's timing).
  double wall_seconds = 0.0;
  /// Non-empty iff the job failed (bad spec, mapper exception).
  std::string error;
};

/// What a full queue makes `submit` do (see the header comment).
enum class QueueFullPolicy { kReject, kBlock };

struct MappingServiceOptions {
  /// Worker threads executing jobs (>= 1; 0 is promoted to 1).
  std::size_t workers = 1;
  /// Base seed of the derived per-job construction rng streams.
  std::uint64_t seed = 0x5e9e5eed;
  /// Bound on *waiting* jobs (running jobs excluded); 0 = unbounded.
  std::size_t max_queued = 0;
  /// Applied by `submit` when the queue is full; `try_submit` always
  /// rejects (returns std::nullopt) regardless of this policy.
  QueueFullPolicy when_full = QueueFullPolicy::kReject;
  /// Result cache consulted by submit (see the header comment). May be
  /// shared between services; null disables caching entirely.
  std::shared_ptr<ResultCache> cache;
};

/// Monotonic counter snapshot. Every snapshot is *consistent*:
/// `submitted == queued + running + done + failed + cancelled` holds in
/// each one, because all lifecycle transitions mutate their two counters
/// inside one critical section of the service lock (a job is never in
/// neither column). The internal counters are atomics, so even an
/// off-lock reader could not tear a single field; stats() still takes
/// the lock for the cross-field invariant. Rejected submissions are
/// counted separately and never got a JobHandle.
struct ServiceStats {
  std::size_t submitted = 0;  ///< accepted submissions (all time)
  std::size_t rejected = 0;   ///< bounced by the admission bound
  std::size_t queued = 0;     ///< currently waiting for a worker
  std::size_t running = 0;    ///< currently executing
  std::size_t done = 0;       ///< terminal: completed (incl. cancelled-
                              ///< while-running, which return incumbents,
                              ///< and cache hits, which never queue)
  std::size_t failed = 0;     ///< terminal: threw (bad spec, ...)
  std::size_t cancelled = 0;  ///< terminal: cancelled while still queued
  // Cache counters (all zero when Options::cache is null).
  std::size_t cache_hits = 0;    ///< submissions answered from the memo
  std::size_t cache_misses = 0;  ///< cacheable jobs that had to execute
                                 ///< (warm-started ones included)
  std::size_t cache_warm = 0;    ///< executions seeded with a cached
                                 ///< incumbent (subset of cache_misses)
};

class MappingService {
 public:
  using Options = MappingServiceOptions;

  explicit MappingService(Options options = {});
  /// Drains the queue (every submitted job still runs) and joins.
  ~MappingService();

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  class JobHandle;

  /// Enqueues a job; workers pick the highest waiting priority first,
  /// FIFO within one priority. The `request` bounds the mapper run exactly
  /// as in Mapper::map; its CancelToken is replaced by a per-job child, so
  /// `JobHandle::cancel` stays local to one job while cancelling the
  /// caller's original token still cancels every job submitted with it.
  /// A full bounded queue makes this throw spmap::Error (kReject) or wait
  /// for a slot (kBlock).
  JobHandle submit(MapJob job, MapRequest request = {});

  /// Non-blocking admission: std::nullopt when the bounded queue is full
  /// (counted in `stats().rejected`), a live handle otherwise. Never
  /// blocks, independent of `Options::when_full`.
  std::optional<JobHandle> try_submit(MapJob job, MapRequest request = {});

  /// Blocks until every job submitted so far is terminal.
  void wait_all();

  /// Consistent snapshot of the admission/lifecycle counters.
  ServiceStats stats() const;

  /// Background worker threads executing jobs (the promoted `workers`).
  std::size_t worker_count() const { return workers_.size(); }

 private:
  struct JobState;
  struct CachePlan;

  std::optional<JobHandle> submit_locked(MapJob job, MapRequest request,
                                         bool may_block, bool may_reject);
  void worker_loop();
  JobStatus execute(JobState& state);

  Options options_;
  std::vector<std::thread> workers_;

  /// Lifecycle counters. Each field is atomic (an off-lock load can never
  /// tear), but every mutation happens inside a `mutex_` critical section
  /// that moves a job between exactly two columns — which is what makes
  /// the ServiceStats snapshot invariant hold (see its comment).
  struct Counters {
    std::atomic<std::size_t> submitted{0};
    std::atomic<std::size_t> rejected{0};
    std::atomic<std::size_t> running{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> failed{0};
    std::atomic<std::size_t> cancelled{0};
    std::atomic<std::size_t> cache_hits{0};
    std::atomic<std::size_t> cache_misses{0};
    std::atomic<std::size_t> cache_warm{0};
  };

  mutable Mutex mutex_;
  CondVar work_ready_;   // workers wait for jobs / stop
  CondVar job_done_;     // waiters in wait_all
  CondVar queue_space_;  // blocked submitters (kBlock)
  /// Waiting jobs by priority, highest served first, FIFO within one.
  std::map<int, std::deque<std::shared_ptr<JobState>>, std::greater<int>>
      queues_ SPMAP_GUARDED_BY(mutex_);
  std::size_t queued_count_ SPMAP_GUARDED_BY(mutex_) = 0;  // across queues_
  /// Counter fields are atomics (see the struct comment), but every
  /// *mutation* still happens inside a mutex_ critical section — only the
  /// cross-field snapshot invariant needs the lock, so the struct itself
  /// is not GUARDED_BY.
  Counters counters_;  // ServiceStats::queued = queued_count_
  std::uint64_t next_id_ SPMAP_GUARDED_BY(mutex_) = 0;
  std::size_t unfinished_ SPMAP_GUARDED_BY(mutex_) = 0;  // not yet terminal
  bool stopping_ SPMAP_GUARDED_BY(mutex_) = false;
};

/// Observer + controller of one submitted job. Copyable; all members are
/// thread-safe. A default-constructed handle is empty (status kFailed).
class MappingService::JobHandle {
 public:
  JobHandle() = default;

  /// Submission-ordered id (also the index of the derived rng stream).
  std::uint64_t id() const;
  JobStatus status() const;
  /// True once the job is terminal (done, failed, or cancelled-in-queue).
  bool done() const;
  /// Requests cooperative cancellation: a queued job becomes kCancelled
  /// without running; a running job's CancelToken fires.
  void cancel() const;
  /// Blocks until terminal. The reference stays valid while the handle
  /// (or service) lives — which is why wait() cannot be called on a
  /// temporary handle (`submit(...).wait()` would dangle once the worker
  /// drops its reference). For kCancelled-in-queue jobs the result is
  /// empty with `error` explaining the cancellation.
  const MapJobResult& wait() const&;
  const MapJobResult& wait() const&& = delete;
  /// Timed wait: true once the job is terminal, false if `timeout_ms`
  /// elapsed first — the poll-free replacement for status()-in-a-sleep-
  /// loop callers. An empty handle is trivially terminal (true).
  bool wait_for(double timeout_ms) const;

 private:
  friend class MappingService;
  explicit JobHandle(std::shared_ptr<JobState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<JobState> state_;
};

}  // namespace spmap
