#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace spmap {
namespace {

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, PartitionCoversRangeContiguously) {
  for (const std::size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
      std::size_t expected_begin = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const auto [begin, end] = ThreadPool::partition(n, workers, w);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 9u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1234;
    std::vector<int> hits(n, 0);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end,
                             std::size_t worker) {
      EXPECT_LT(worker, pool.thread_count());
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
    EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(17, [&](std::size_t begin, std::size_t end,
                              std::size_t /*worker*/) {
      total += end - begin;
    });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          if (begin > 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable after a failed region.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end,
                            std::size_t /*worker*/) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPool, TwoThrowingWorkersRethrowFirstCountRest) {
  ThreadPool pool(4);
  // Workers 1..3 each throw an exception naming their lowest index; the
  // caller (worker 0) succeeds. The lowest-indexed thrower must win
  // deterministically and the other two must be counted, not dropped.
  try {
    pool.parallel_for(4, [&](std::size_t, std::size_t, std::size_t worker) {
      if (worker > 0) {
        throw std::runtime_error("worker " + std::to_string(worker));
      }
    });
    FAIL() << "expected a rethrown worker exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 1");
  }
  EXPECT_EQ(pool.last_suppressed_exception_count(), 2u);
  // A subsequent clean region resets the counter and the pool stays usable.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end,
                            std::size_t /*worker*/) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 50u);
  EXPECT_EQ(pool.last_suppressed_exception_count(), 0u);
}

TEST(ThreadPool, CallerExceptionBeatsWorkerException) {
  ThreadPool pool(2);
  // Worker 0 is the caller; its exception has the lowest index and must be
  // the one rethrown even when worker 1 also throws.
  try {
    pool.parallel_for(2, [&](std::size_t, std::size_t, std::size_t worker) {
      throw std::runtime_error("worker " + std::to_string(worker));
    });
    FAIL() << "expected a rethrown exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker 0");
  }
  EXPECT_EQ(pool.last_suppressed_exception_count(), 1u);
}

TEST(ThreadPool, ChunksVisitEveryIndexOnceInWorkerOrder) {
  for (const std::size_t threads : {1u, 2u, 4u, 9u}) {
    for (const std::size_t chunk : {1u, 3u, 8u, 50u, 5000u}) {
      ThreadPool pool(threads);
      const std::size_t n = 1234;
      std::vector<int> hits(n, 0);
      std::vector<std::size_t> owner(n, ~std::size_t{0});
      std::mutex mu;
      pool.parallel_for_chunks(
          n, chunk,
          [&](std::size_t begin, std::size_t end, std::size_t worker) {
            EXPECT_LT(worker, pool.thread_count());
            EXPECT_LE(end, n);
            EXPECT_LE(end - begin, chunk);
            std::lock_guard<std::mutex> lock(mu);
            for (std::size_t i = begin; i < end; ++i) {
              ++hits[i];
              owner[i] = worker;
            }
          });
      EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
                static_cast<int>(n));
      EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
      // Deterministic map: index i belongs to chunk i/chunk, which belongs
      // to worker (i/chunk) % thread_count.
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(owner[i], (i / chunk) % pool.thread_count());
      }
    }
  }
}

TEST(ThreadPool, ChunkZeroPromotedToOne) {
  ThreadPool pool(3);
  const std::size_t n = 17;
  std::vector<int> hits(n, 0);
  std::mutex mu;
  pool.parallel_for_chunks(n, 0, [&](std::size_t begin, std::size_t end,
                                     std::size_t /*worker*/) {
    EXPECT_EQ(end - begin, 1u);
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
}

}  // namespace
}  // namespace spmap
