#pragma once
/// \file milp_mappers.hpp
/// The three mixed-integer linear programming mappers of the paper's
/// evaluation (Section IV-A), built on the spmap MILP solver (the Gurobi
/// substitution, see DESIGN.md):
///
///  * WGDP Device (Wilhelm et al. [5], device-based): assignment binaries
///    only; minimizes the maximum per-device load, ignoring dependencies.
///    Very fast, but blind to transfers and the critical path.
///  * WGDP Time (Wilhelm et al. [5], time-based): assignment binaries plus
///    continuous start times; big-M linearized precedence constraints carry
///    device-pair transfer costs, FPGA-FPGA edges get the dataflow-streaming
///    discount (the only MILP that models streaming). Device contention is
///    approximated by per-device load bounds instead of full disjunctive
///    ordering.
///  * ZhouLiu (Zhou and Liu [2]): the most detailed model — WGDP Time's
///    precedence structure (without streaming awareness) plus explicit
///    pairwise disjunctive ordering binaries that serialize tasks sharing a
///    device, i.e. a total order per processing unit. Near-optimal results,
///    but the model explodes combinatorially and times out beyond small
///    graphs, exactly as reported in the paper. NOTE: the original
///    formulation assigns execution "slots"; the disjunctive-order model
///    used here is the standard equivalent encoding of the same total-order
///    semantics and shows the same qualitative behaviour.
///
/// All three warm-start the solver with the all-CPU schedule, so a valid
/// mapping is returned at any time limit.

#include "mappers/mapper.hpp"
#include "milp/branch_and_bound.hpp"

namespace spmap {

struct MilpMapperParams {
  double time_limit_s = 10.0;
  std::size_t max_nodes = 200000;
};

/// Base class handling assignment-variable bookkeeping shared by the three
/// formulations.
class MilpMapperBase : public Mapper {
 public:
  explicit MilpMapperBase(MilpMapperParams params) : params_(params) {}

  /// Solver outcome of the last map() call.
  MipStatus last_status() const { return last_status_; }
  bool last_timed_out() const { return last_timed_out_; }
  std::size_t last_nodes() const { return last_nodes_; }

 protected:
  MilpMapperParams params_;
  MipStatus last_status_ = MipStatus::NoSolution;
  bool last_timed_out_ = false;
  std::size_t last_nodes_ = 0;
};

class WgdpDeviceMapper final : public MilpMapperBase {
 public:
  using Mapper::map;
  explicit WgdpDeviceMapper(MilpMapperParams params = {})
      : MilpMapperBase(params) {}
  std::string name() const override { return "WGDP-Dev"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;
};

class WgdpTimeMapper final : public MilpMapperBase {
 public:
  using Mapper::map;
  explicit WgdpTimeMapper(MilpMapperParams params = {})
      : MilpMapperBase(params) {}
  std::string name() const override { return "WGDP-Time"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;
};

class ZhouLiuMapper final : public MilpMapperBase {
 public:
  using Mapper::map;
  explicit ZhouLiuMapper(MilpMapperParams params = {})
      : MilpMapperBase(params) {}
  std::string name() const override { return "ZhouLiu"; }
  MapReport map(const Evaluator& eval, const MapRequest& request) override;
};

}  // namespace spmap
