/// The per-connection session FSM (serve/session.hpp) against a scripted
/// SessionHost: handshake paths, submit validation, drain refusals, idle
/// timeout, double-cancel idempotence — no sockets, no daemon.

#include <gtest/gtest.h>

#include <vector>

#include "serve/session.hpp"

namespace spmap {
namespace {

/// Records every host call and answers from a small script.
class FakeHost : public SessionHost {
 public:
  SubmitOutcome submit(std::uint64_t session,
                       const WireSubmit& request) override {
    submits.push_back(request);
    submit_sessions.push_back(session);
    if (!accept_submits) {
      return {.accepted = false,
              .code = WireErrorCode::kOverloaded,
              .message = "queue full for class " + request.priority_class};
    }
    return {.accepted = true, .job = next_job++};
  }

  std::optional<Json> job_status(std::uint64_t job) override {
    if (job >= next_job) return std::nullopt;
    Json body = Json::object();
    body.set("job", Json(job));
    body.set("status", Json("running"));
    return body;
  }

  bool cancel_job(std::uint64_t job) override {
    cancels.push_back(job);
    return job < next_job;  // idempotent for any known job
  }

  bool subscribe(std::uint64_t session, std::uint64_t job) override {
    subscribes.emplace_back(session, job);
    return job < next_job;
  }

  void begin_drain(double grace_ms) override {
    drain_calls.push_back(grace_ms);
    draining_ = true;
  }

  bool draining() const override { return draining_; }

  Json server_info() const override {
    return Json(Json::Object{{"server", Json("fake")}});
  }

  std::string register_session(std::uint64_t session) override {
    registered.push_back(session);
    return issue_tokens ? "tok-" + std::to_string(session) : std::string();
  }

  ResumeOutcome resume_session(std::uint64_t conn, const std::string& token,
                               std::uint64_t last_seq) override {
    resume_calls.emplace_back(token, last_seq);
    if (token != resumable_token) {
      return {.ok = false,
              .code = WireErrorCode::kUnknownSession,
              .message = "unknown session token"};
    }
    ResumeOutcome outcome;
    outcome.ok = true;
    outcome.session = resumed_session_id;
    outcome.token = token;
    outcome.replay = replay_lines;
    (void)conn;
    return outcome;
  }

  bool accept_submits = true;
  std::uint64_t next_job = 1;
  bool issue_tokens = false;
  std::string resumable_token;
  std::uint64_t resumed_session_id = 0;
  std::vector<std::string> replay_lines;
  std::vector<std::uint64_t> registered;
  std::vector<std::pair<std::string, std::uint64_t>> resume_calls;
  std::vector<WireSubmit> submits;
  std::vector<std::uint64_t> submit_sessions;
  std::vector<std::uint64_t> cancels;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> subscribes;
  std::vector<double> drain_calls;
  bool draining_ = false;
};

std::string hello_line() {
  return std::string("{\"op\":\"hello\",\"proto\":\"") + kWireProtocol +
         "\"}";
}

/// Feeds `line` and returns the single parsed response object.
Json answer(Session& session, const std::string& line, double now = 0.0) {
  const auto lines = session.on_frame(line, now);
  EXPECT_EQ(lines.size(), 1u);
  return Json::parse(lines.at(0));
}

std::string error_code(const Json& response) {
  return response.at("error").at("code").as_string();
}

// ---- handshake -------------------------------------------------------------

TEST(SessionHandshake, HelloAdvancesToActive) {
  FakeHost host;
  Session session(1, host);
  EXPECT_EQ(session.state(), SessionState::kHandshake);
  const Json response = answer(session, hello_line());
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("proto").as_string(), kWireProtocol);
  EXPECT_EQ(response.at("server").as_string(), "fake");
  EXPECT_EQ(session.state(), SessionState::kActive);
}

TEST(SessionHandshake, NonHelloFirstFrameCloses) {
  FakeHost host;
  Session session(1, host);
  const Json response = answer(session, "{\"op\":\"status\",\"job\":1}");
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_EQ(error_code(response), "handshake_required");
  EXPECT_TRUE(session.closed());
}

TEST(SessionHandshake, WrongProtocolCloses) {
  FakeHost host;
  Session session(1, host);
  const Json response =
      answer(session, "{\"op\":\"hello\",\"proto\":\"spmap-wire/99\"}");
  EXPECT_EQ(error_code(response), "bad_handshake");
  EXPECT_TRUE(session.closed());
}

TEST(SessionHandshake, GarbageFirstFrameCloses) {
  FakeHost host;
  Session session(1, host);
  const Json response = answer(session, "not json at all");
  EXPECT_EQ(error_code(response), "bad_handshake");
  EXPECT_TRUE(session.closed());
}

TEST(SessionHandshake, HelloDuringServerDrainLandsInDraining) {
  FakeHost host;
  host.draining_ = true;
  Session session(1, host);
  const Json response = answer(session, hello_line());
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(session.state(), SessionState::kDraining);
}

TEST(SessionHandshake, SecondHelloIsABadRequestButSurvives) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const Json response = answer(session, hello_line());
  EXPECT_EQ(error_code(response), "bad_request");
  EXPECT_EQ(session.state(), SessionState::kActive);
}

// ---- resume handshake ------------------------------------------------------

std::string resume_line(const std::string& token, std::uint64_t last_seq) {
  return std::string("{\"op\":\"resume\",\"proto\":\"") + kWireProtocol +
         "\",\"token\":\"" + token +
         "\",\"last_seq\":" + std::to_string(last_seq) + "}";
}

TEST(SessionResume, HelloCarriesSessionAndTokenWhenTheHostIssuesThem) {
  FakeHost host;
  host.issue_tokens = true;
  Session session(5, host);
  const Json response = answer(session, hello_line());
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("session").as_int(), 5);
  EXPECT_EQ(response.at("token").as_string(), "tok-5");
  ASSERT_EQ(host.registered.size(), 1u);
  EXPECT_EQ(host.registered[0], 5u);
}

TEST(SessionResume, HelloOmitsIdentityWhenTheHostDoesNot) {
  FakeHost host;  // issue_tokens = false
  Session session(5, host);
  const Json response = answer(session, hello_line());
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_FALSE(response.contains("session"));
  EXPECT_FALSE(response.contains("token"));
}

TEST(SessionResume, KnownTokenResumesAdoptsIdentityAndReplays) {
  FakeHost host;
  host.resumable_token = "tok-3";
  host.resumed_session_id = 3;
  host.replay_lines = {"{\"event\":\"done\",\"job\":1,\"event_seq\":4}\n",
                       "{\"event\":\"done\",\"job\":2,\"event_seq\":5}\n"};
  Session session(9, host);  // fresh conn id 9, resuming old session 3
  const auto lines = session.on_frame(resume_line("tok-3", 3), 0.0);
  ASSERT_EQ(lines.size(), 3u);  // the ok + both replayed events
  const Json ok = Json::parse(lines[0]);
  EXPECT_TRUE(ok.at("ok").as_bool());
  EXPECT_EQ(ok.at("session").as_int(), 3);
  EXPECT_EQ(ok.at("token").as_string(), "tok-3");
  EXPECT_EQ(ok.at("replayed").as_int(), 2);
  EXPECT_EQ(Json::parse(lines[1]).at("event_seq").as_int(), 4);
  EXPECT_EQ(Json::parse(lines[2]).at("event_seq").as_int(), 5);
  EXPECT_EQ(session.state(), SessionState::kActive);
  EXPECT_EQ(session.id(), 3u);  // the session IS the old session now
  ASSERT_EQ(host.resume_calls.size(), 1u);
  EXPECT_EQ(host.resume_calls[0].first, "tok-3");
  EXPECT_EQ(host.resume_calls[0].second, 3u);
}

TEST(SessionResume, UnknownTokenErrorsButAllowsAFreshHello) {
  FakeHost host;
  host.issue_tokens = true;
  Session session(9, host);
  const Json refused = answer(session, resume_line("tok-dead", 0));
  EXPECT_FALSE(refused.at("ok").as_bool());
  EXPECT_EQ(error_code(refused), "unknown_session");
  EXPECT_FALSE(session.closed());
  EXPECT_EQ(session.state(), SessionState::kHandshake);

  // The same connection can still hello from scratch.
  const Json hello = answer(session, hello_line());
  EXPECT_TRUE(hello.at("ok").as_bool());
  EXPECT_EQ(session.state(), SessionState::kActive);
}

TEST(SessionResume, MalformedResumeCloses) {
  for (const std::string line :
       {std::string("{\"op\":\"resume\",\"proto\":\"") + kWireProtocol +
            "\"}",  // no token/last_seq
        std::string("{\"op\":\"resume\",\"proto\":\"spmap-wire/99\","
                    "\"token\":\"t\",\"last_seq\":0}"),  // wrong proto
        std::string("{\"op\":\"resume\",\"proto\":\"") + kWireProtocol +
            "\",\"token\":7,\"last_seq\":0}"}) {  // token not a string
    FakeHost host;
    Session session(9, host);
    const Json response = answer(session, line);
    EXPECT_EQ(error_code(response), "bad_handshake") << line;
    EXPECT_TRUE(session.closed()) << line;
  }
}

TEST(SessionResume, ResumeAfterHelloIsABadRequest) {
  FakeHost host;
  host.issue_tokens = true;
  Session session(9, host);
  answer(session, hello_line());
  const Json response = answer(session, resume_line("tok-9", 0));
  EXPECT_EQ(error_code(response), "bad_request");
  EXPECT_EQ(session.state(), SessionState::kActive);
}

// ---- framing errors vs app errors ------------------------------------------

TEST(SessionErrors, BadJsonClosesAnActiveSession) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const Json response = answer(session, "{broken");
  EXPECT_EQ(error_code(response), "bad_json");
  EXPECT_TRUE(session.closed());
  // Closed sessions consume frames silently.
  EXPECT_TRUE(session.on_frame(hello_line(), 0.0).empty());
}

TEST(SessionErrors, UnknownOpSurvives) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const Json response = answer(session, "{\"op\":\"frobnicate\"}");
  EXPECT_EQ(error_code(response), "unknown_op");
  EXPECT_EQ(response.at("op").as_string(), "frobnicate");
  EXPECT_EQ(session.state(), SessionState::kActive);
}

TEST(SessionErrors, MissingOpSurvives) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const Json response = answer(session, "{\"job\":1}");
  EXPECT_EQ(error_code(response), "bad_request");
  EXPECT_EQ(session.state(), SessionState::kActive);
}

TEST(SessionErrors, FrameOverflowCloses) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const auto lines = session.on_frame_overflow();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(error_code(Json::parse(lines[0])), "frame_too_long");
  EXPECT_TRUE(session.closed());
}

// ---- submit validation -----------------------------------------------------

std::string submit_line(const std::string& extra = "") {
  return "{\"op\":\"submit\",\"mapper\":\"spff\","
         "\"generate\":{\"type\":\"sp\",\"tasks\":8,\"seed\":1}" +
         extra + "}";
}

TEST(SessionSubmit, ValidSubmitReachesTheHost) {
  FakeHost host;
  Session session(7, host);
  answer(session, hello_line());
  const Json response = answer(
      session, submit_line(",\"class\":\"high\",\"max_evals\":100,"
                           "\"seed\":5,\"subscribe\":true,\"tag\":42"));
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("job").as_int(), 1);
  EXPECT_EQ(response.at("class").as_string(), "high");
  EXPECT_EQ(response.at("tag").as_int(), 42);  // tag echoes back
  ASSERT_EQ(host.submits.size(), 1u);
  const WireSubmit& seen = host.submits[0];
  EXPECT_EQ(host.submit_sessions[0], 7u);
  EXPECT_EQ(seen.mapper_spec, "spff");
  EXPECT_EQ(seen.priority, 2);
  EXPECT_EQ(seen.max_evaluations, 100u);
  ASSERT_TRUE(seen.seed.has_value());
  EXPECT_EQ(*seen.seed, 5u);
  EXPECT_TRUE(seen.subscribe);
  EXPECT_TRUE(seen.generate.has_value());
  EXPECT_FALSE(seen.graph.has_value());
}

struct BadSubmitCase {
  const char* name;
  std::string line;
};

TEST(SessionSubmit, TableDrivenBadRequests) {
  const std::vector<BadSubmitCase> cases = {
      {"no_mapper", "{\"op\":\"submit\",\"generate\":{}}"},
      {"empty_mapper", "{\"op\":\"submit\",\"mapper\":\"\","
                       "\"generate\":{}}"},
      {"graph_and_generate", "{\"op\":\"submit\",\"mapper\":\"spff\","
                             "\"graph\":{},\"generate\":{}}"},
      {"neither_graph_nor_generate",
       "{\"op\":\"submit\",\"mapper\":\"spff\"}"},
      {"bad_class", submit_line(",\"class\":\"urgent\"")},
      {"class_not_string", submit_line(",\"class\":3")},
      {"negative_deadline", submit_line(",\"deadline_ms\":-1")},
      {"negative_seed", submit_line(",\"seed\":-4")},
      {"unknown_key", submit_line(",\"bogus\":1")},
      {"graph_not_object", "{\"op\":\"submit\",\"mapper\":\"spff\","
                           "\"graph\":\"x\"}"},
      {"subscribe_not_bool", submit_line(",\"subscribe\":1")},
  };
  for (const BadSubmitCase& c : cases) {
    FakeHost host;
    Session session(1, host);
    answer(session, hello_line());
    const Json response = answer(session, c.line);
    EXPECT_EQ(error_code(response), "bad_request") << c.name;
    EXPECT_EQ(session.state(), SessionState::kActive) << c.name;
    EXPECT_TRUE(host.submits.empty()) << c.name;
  }
}

TEST(SessionSubmit, HostRejectionIsForwardedVerbatim) {
  FakeHost host;
  host.accept_submits = false;
  Session session(1, host);
  answer(session, hello_line());
  const Json response = answer(session, submit_line(",\"tag\":9"));
  EXPECT_EQ(error_code(response), "overloaded");
  EXPECT_EQ(response.at("tag").as_int(), 9);
  EXPECT_EQ(session.state(), SessionState::kActive);
}

// ---- job verbs -------------------------------------------------------------

TEST(SessionJobs, StatusCancelSubscribeRoundTrip) {
  FakeHost host;
  Session session(3, host);
  answer(session, hello_line());
  answer(session, submit_line());

  Json status = answer(session, "{\"op\":\"status\",\"job\":1}");
  EXPECT_TRUE(status.at("ok").as_bool());
  EXPECT_EQ(status.at("status").as_string(), "running");

  Json subscribed = answer(session, "{\"op\":\"subscribe\",\"job\":1}");
  EXPECT_TRUE(subscribed.at("ok").as_bool());
  ASSERT_EQ(host.subscribes.size(), 1u);
  EXPECT_EQ(host.subscribes[0], (std::pair<std::uint64_t, std::uint64_t>{
                                    3u, 1u}));

  // Double-cancel: both succeed (idempotent), host sees both.
  Json first = answer(session, "{\"op\":\"cancel\",\"job\":1}");
  Json second = answer(session, "{\"op\":\"cancel\",\"job\":1}");
  EXPECT_TRUE(first.at("ok").as_bool());
  EXPECT_TRUE(second.at("ok").as_bool());
  EXPECT_EQ(host.cancels.size(), 2u);
}

TEST(SessionJobs, UnknownJobIdsAnswerUnknownJob) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  for (const char* op : {"status", "cancel", "subscribe"}) {
    const Json response = answer(
        session, std::string("{\"op\":\"") + op + "\",\"job\":999}");
    EXPECT_EQ(error_code(response), "unknown_job") << op;
    EXPECT_EQ(response.at("job").as_int(), 999) << op;
    EXPECT_EQ(session.state(), SessionState::kActive) << op;
  }
}

TEST(SessionJobs, MissingJobFieldIsABadRequest) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const Json response = answer(session, "{\"op\":\"cancel\"}");
  EXPECT_EQ(error_code(response), "bad_request");
}

// ---- drain -----------------------------------------------------------------

TEST(SessionDrain, ServerDrainMovesActiveToDraining) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const auto lines = session.on_server_drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(Json::parse(lines[0]).at("event").as_string(), "draining");
  EXPECT_EQ(session.state(), SessionState::kDraining);
}

TEST(SessionDrain, ServerDrainClosesAHandshakingSession) {
  FakeHost host;
  Session session(1, host);
  const auto lines = session.on_server_drain();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(Json::parse(lines[0]).at("event").as_string(), "closing");
  EXPECT_TRUE(session.closed());
}

TEST(SessionDrain, DrainingSessionRefusesSubmitButServesStatus) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  answer(session, submit_line());
  session.on_server_drain();
  host.draining_ = true;

  const Json refused = answer(session, submit_line());
  EXPECT_EQ(error_code(refused), "draining");
  EXPECT_EQ(host.submits.size(), 1u);  // nothing new reached the host

  const Json status = answer(session, "{\"op\":\"status\",\"job\":1}");
  EXPECT_TRUE(status.at("ok").as_bool());
  const Json cancel = answer(session, "{\"op\":\"cancel\",\"job\":1}");
  EXPECT_TRUE(cancel.at("ok").as_bool());
}

TEST(SessionDrain, DrainVerbReachesTheHost) {
  FakeHost host;
  Session session(1, host);
  answer(session, hello_line());
  const Json response =
      answer(session, "{\"op\":\"drain\",\"grace_ms\":250}");
  EXPECT_TRUE(response.at("ok").as_bool());
  ASSERT_EQ(host.drain_calls.size(), 1u);
  EXPECT_DOUBLE_EQ(host.drain_calls[0], 250.0);

  // Once the host reports draining, new submits on this session are
  // refused even before on_server_drain arrives.
  const Json refused = answer(session, submit_line());
  EXPECT_EQ(error_code(refused), "draining");
}

// ---- idle timeout ----------------------------------------------------------

TEST(SessionIdle, TimesOutAfterInactivity) {
  FakeHost host;
  Session session(1, host, {.idle_timeout_s = 10.0});
  answer(session, hello_line(), 100.0);
  EXPECT_TRUE(session.on_idle_check(105.0).empty());  // still fresh
  answer(session, "{\"op\":\"status\",\"job\":999}", 109.0);  // activity
  EXPECT_TRUE(session.on_idle_check(115.0).empty());  // reset by frame
  const auto lines = session.on_idle_check(119.5);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(error_code(Json::parse(lines[0])), "idle_timeout");
  EXPECT_TRUE(session.closed());
}

TEST(SessionIdle, ZeroTimeoutNeverFires) {
  FakeHost host;
  Session session(1, host);  // default idle_timeout_s = 0
  answer(session, hello_line(), 0.0);
  EXPECT_TRUE(session.on_idle_check(1e9).empty());
  EXPECT_EQ(session.state(), SessionState::kActive);
}

}  // namespace
}  // namespace spmap
