#include "serve/result_cache.hpp"

#include <algorithm>
#include <utility>

namespace spmap {

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {
  const std::size_t shard_count = std::max<std::size_t>(1, options_.shards);
  shards_ = std::vector<Shard>(shard_count);
  // Equal per-shard slices, rounded up so small global bounds stay usable
  // (a 1-entry cache with 8 shards still admits one entry per shard; the
  // LRU/byte tests pin shards=1 for exact global bounds).
  if (options_.max_entries != 0) {
    shard_entry_budget_ =
        std::max<std::size_t>(1, (options_.max_entries + shard_count - 1) /
                                     shard_count);
  }
  if (options_.max_bytes != 0) {
    shard_byte_budget_ = std::max<std::size_t>(
        1, (options_.max_bytes + shard_count - 1) / shard_count);
  }
}

std::size_t ResultCache::approx_bytes(const MapJobResult& result) {
  return sizeof(ExactEntry) +
         result.report.mapping.device.size() * sizeof(DeviceId) +
         result.report.trajectory.size() * sizeof(IncumbentRecord) +
         result.error.size();
}

std::optional<MapJobResult> ResultCache::lookup(const Digest& key) {
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void ResultCache::evict_to_fit_locked(Shard& shard,
                                      std::size_t incoming_bytes) {
  while (!shard.lru.empty() &&
         ((shard_entry_budget_ != 0 &&
           shard.lru.size() + 1 > shard_entry_budget_) ||
          (shard_byte_budget_ != 0 &&
           shard.bytes + incoming_bytes > shard_byte_budget_))) {
    const ExactEntry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::insert(const Digest& key, const MapJobResult& result) {
  const std::size_t bytes = approx_bytes(result);
  Shard& shard = shard_for(key);
  MutexLock lock(shard.mutex);
  if (shard_byte_budget_ != 0 && bytes > shard_byte_budget_) return;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (identical by the determinism contract, so only
    // recency and the byte estimate can change).
    shard.bytes -= it->second->bytes;
    it->second->result = result;
    it->second->bytes = bytes;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  evict_to_fit_locked(shard, bytes);
  shard.lru.push_front(ExactEntry{key, result, bytes});
  shard.index.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  ++shard.inserts;
}

std::optional<ResultCache::WarmEntry> ResultCache::lookup_warm(
    const Digest& problem_key) {
  Shard& shard = shard_for(problem_key);
  MutexLock lock(shard.mutex);
  auto it = shard.warm_index.find(problem_key);
  if (it == shard.warm_index.end()) {
    ++shard.warm_misses;
    return std::nullopt;
  }
  ++shard.warm_hits;
  shard.warm_lru.splice(shard.warm_lru.begin(), shard.warm_lru, it->second);
  return it->second->entry;
}

void ResultCache::offer_warm(const Digest& problem_key, WarmEntry entry) {
  Shard& shard = shard_for(problem_key);
  MutexLock lock(shard.mutex);
  auto it = shard.warm_index.find(problem_key);
  if (it != shard.warm_index.end()) {
    // Keep the best incumbent; first writer wins ties so the stored seed
    // is stable under re-offers.
    if (entry.predicted_makespan < it->second->entry.predicted_makespan) {
      it->second->entry = std::move(entry);
    }
    shard.warm_lru.splice(shard.warm_lru.begin(), shard.warm_lru, it->second);
    return;
  }
  if (shard_entry_budget_ != 0 &&
      shard.warm_lru.size() + 1 > shard_entry_budget_) {
    shard.warm_index.erase(shard.warm_lru.back().key);
    shard.warm_lru.pop_back();
  }
  shard.warm_lru.push_front(WarmSlot{problem_key, std::move(entry)});
  shard.warm_index.emplace(problem_key, shard.warm_lru.begin());
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats out;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.inserts += shard.inserts;
    out.evictions += shard.evictions;
    out.warm_hits += shard.warm_hits;
    out.warm_misses += shard.warm_misses;
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

}  // namespace spmap
