#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace spmap {

Json Schedule::to_json(const Dag& dag, const Platform& platform) const {
  Json doc = Json::object();
  doc.set("makespan", makespan);
  Json arr = Json::array();
  for (const ScheduledTask& t : tasks) {
    Json item = Json::object();
    item.set("task", static_cast<std::int64_t>(t.task.v));
    item.set("label", dag.label(t.task));
    item.set("device", platform.device(t.device).name);
    item.set("start", t.start);
    item.set("finish", t.finish);
    arr.push_back(std::move(item));
  }
  doc.set("tasks", std::move(arr));
  return doc;
}

std::string Schedule::to_gantt(const Dag& dag, const Platform& platform,
                               std::size_t width) const {
  std::ostringstream os;
  if (makespan <= 0.0 || tasks.empty()) return "(empty schedule)\n";
  const double scale = static_cast<double>(width) / makespan;
  for (const ScheduledTask& t : tasks) {
    const auto from = static_cast<std::size_t>(t.start * scale);
    auto to = static_cast<std::size_t>(t.finish * scale);
    to = std::min(std::max(to, from + 1), width);
    std::string bar(width, '.');
    for (std::size_t c = from; c < to; ++c) bar[c] = '#';
    std::string label = dag.label(t.task).empty()
                            ? "task" + std::to_string(t.task.v)
                            : dag.label(t.task);
    label.resize(14, ' ');
    std::string dev = platform.device(t.device).name.substr(0, 10);
    dev.resize(10, ' ');
    os << label << ' ' << dev << ' ' << bar << '\n';
  }
  return os.str();
}

void Schedule::validate(const Dag& dag, const Platform& platform,
                        const Mapping& mapping) const {
  require(tasks.size() == dag.node_count(),
          "Schedule: task count mismatch");
  std::vector<double> start(dag.node_count());
  std::vector<double> finish(dag.node_count());
  std::vector<bool> seen(dag.node_count(), false);
  for (const ScheduledTask& t : tasks) {
    require(t.task.v < dag.node_count(), "Schedule: bad task id");
    require(!seen[t.task.v], "Schedule: duplicate task");
    seen[t.task.v] = true;
    require(t.finish >= t.start, "Schedule: negative duration");
    require(t.finish <= makespan + 1e-9, "Schedule: exceeds makespan");
    start[t.task.v] = t.start;
    finish[t.task.v] = t.finish;
  }
  // Precedence: a consumer may start before its producer *finishes* only
  // under FPGA streaming, but never before it starts.
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const EdgeId id(e);
    const NodeId u = dag.src(id);
    const NodeId v = dag.dst(id);
    const bool streamed = mapping[u] == mapping[v] &&
                          platform.device(mapping[u]).is_fpga();
    if (streamed) {
      require(start[v.v] >= start[u.v] - 1e-9,
              "Schedule: streamed consumer starts before producer");
    } else {
      require(start[v.v] >= finish[u.v] - 1e-9,
              "Schedule: consumer starts before producer finishes");
    }
  }
  // Device capacity: at no instant may more non-streamed tasks overlap on a
  // device than it has slots. Events: +1 at start, -1 at finish.
  for (std::size_t d = 0; d < platform.device_count(); ++d) {
    const Device& dev = platform.device(DeviceId(d));
    if (dev.is_fpga()) continue;  // streamed stages co-reside
    std::vector<std::pair<double, int>> events;
    for (const ScheduledTask& t : tasks) {
      if (mapping[t.task] != DeviceId(d)) continue;
      if (t.finish - t.start <= 1e-15) continue;
      events.emplace_back(t.start, +1);
      events.emplace_back(t.finish, -1);
    }
    std::sort(events.begin(), events.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return a.second < b.second;  // process finishes first
              });
    int active = 0;
    for (const auto& [time, delta] : events) {
      active += delta;
      require(active <= static_cast<int>(std::max<std::size_t>(1, dev.slots)),
              "Schedule: device slot capacity exceeded");
    }
  }
}

Schedule extract_schedule(const Evaluator& eval, const Mapping& mapping) {
  require(eval.cost().area_feasible(mapping),
          "extract_schedule: mapping is area-infeasible");
  // Find the best prepared order, then re-simulate it so the evaluator's
  // start/finish buffers hold exactly that schedule.
  const std::vector<NodeId>* best_order = nullptr;
  double best = kInfeasible;
  for (const auto& order : eval.orders()) {
    const double ms = eval.evaluate_order(mapping, order);
    if (ms < best) {
      best = ms;
      best_order = &order;
    }
  }
  require(best_order != nullptr, "extract_schedule: no schedule orders");
  eval.evaluate_order(mapping, *best_order);

  Schedule schedule;
  schedule.makespan = best;
  const auto& start = eval.last_start_times();
  const auto& finish = eval.last_finish_times();
  for (std::size_t i = 0; i < start.size(); ++i) {
    schedule.tasks.push_back(
        ScheduledTask{NodeId(i), mapping[NodeId(i)], start[i], finish[i]});
  }
  std::sort(schedule.tasks.begin(), schedule.tasks.end(),
            [](const ScheduledTask& a, const ScheduledTask& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.task < b.task;
            });
  return schedule;
}

}  // namespace spmap
