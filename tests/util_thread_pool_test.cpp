#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace spmap {
namespace {

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, PartitionCoversRangeContiguously) {
  for (const std::size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
      std::size_t expected_begin = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        const auto [begin, end] = ThreadPool::partition(n, workers, w);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 9u}) {
    ThreadPool pool(threads);
    const std::size_t n = 1234;
    std::vector<int> hits(n, 0);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end,
                             std::size_t worker) {
      EXPECT_LT(worker, pool.thread_count());
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(n));
    EXPECT_EQ(*std::min_element(hits.begin(), hits.end()), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(17, [&](std::size_t begin, std::size_t end,
                              std::size_t /*worker*/) {
      total += end - begin;
    });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t begin, std::size_t, std::size_t) {
                          if (begin > 0) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable after a failed region.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(50, [&](std::size_t begin, std::size_t end,
                            std::size_t /*worker*/) {
    count += end - begin;
  });
  EXPECT_EQ(count.load(), 50u);
}

}  // namespace
}  // namespace spmap
