#pragma once
/// \file registry.hpp
/// Uniform, name-based construction of every mapping algorithm in spmap.
///
/// The paper's central claim is that many mapping algorithms become
/// directly comparable once they all consume the same model-based
/// evaluator. The registry is the construction-side counterpart of that
/// principle: every mapper registers itself under a canonical name with a
/// factory taking typed `MapperOptions` (parsed from "key=value,key=value"
/// strings, e.g. "nsga:generations=50,pop=100") plus metadata — a
/// description, whether it needs a series-parallel decomposition of the
/// input graph, and the paper's default parameters. Drivers (CLI, bench
/// harness, examples) pick algorithms by name instead of hard-coding
/// constructor calls, so adding a mapper is a one-file change.
///
/// Registration lives next to each mapper implementation (see the
/// `register_*` functions declared in builtin_registrations.hpp, defined in
/// the respective mapper .cpp); the registry singleton invokes them on
/// first use, which keeps registration robust under static linking.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/dag.hpp"
#include "mappers/mapper.hpp"
#include "util/rng.hpp"

namespace spmap {

/// Typed key=value options for mapper construction.
///
/// Parsed from a comma-separated "key=value" list. Accessors convert on
/// demand and throw spmap::Error with the offending key and value on
/// malformed input, so typos in experiment sweeps fail loudly.
class MapperOptions {
 public:
  MapperOptions() = default;

  /// Parses "key=value,key=value". An empty string yields no options.
  /// Throws spmap::Error on missing '=', empty keys, or duplicate keys.
  static MapperOptions parse(const std::string& spec);

  bool has(const std::string& key) const;
  bool empty() const { return values_.empty(); }

  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

  /// Canonical spec: keys sorted, "k=v,k=v". parse(to_string()) round-trips.
  std::string to_string() const;

 private:
  std::map<std::string, std::string> values_;
};

/// One option a mapper accepts — used for validation and `list-mappers`.
struct MapperOptionInfo {
  std::string key;
  std::string default_value;  ///< the paper's default, as a spec literal
  std::string description;
};

/// Everything a factory may consult while building a mapper. The dag and
/// rng matter only to mappers that precompute a decomposition of the graph
/// (`MapperEntry::needs_sp_decomposition`).
struct MapperContext {
  const Dag& dag;
  Rng& rng;
  const MapperOptions& options;
};

/// One registered algorithm: canonical name, metadata, and factory.
struct MapperEntry {
  /// Canonical CLI name, e.g. "spff". Lower-case, stable across releases.
  std::string name;
  /// Display name used in experiment tables, e.g. "SPFirstFit". Matches
  /// Mapper::name() of the constructed object with default options.
  std::string display_name;
  std::string description;
  /// True if construction consumes an SP decomposition of the input graph
  /// (and hence the dag and rng of the MapperContext).
  bool needs_sp_decomposition = false;
  /// Accepted options with the paper's defaults. Keys not listed here are
  /// rejected at construction time.
  std::vector<MapperOptionInfo> options;
  std::function<std::unique_ptr<Mapper>(const MapperContext&)> factory;
  /// Optional option-*value* validator (ranges, cross-references such as a
  /// nested mapper spec). Runs in create() before the factory and at
  /// scenario parse time, so a bad value in a committed experiment file
  /// fails eagerly with a diagnostic naming the accepted values instead of
  /// mid-sweep. Must not construct the mapper.
  std::function<void(const MapperOptions&)> validate_values;

  bool supports_option(const std::string& key) const;
  /// Throws spmap::Error if `options` contains a key this mapper does not
  /// accept (listing what is accepted), or — when the entry installs a
  /// `validate_values` hook — if an accepted key carries a bad value. The
  /// shared run options (is_shared_run_option) are accepted by every
  /// mapper and validated here too.
  void validate_options(const MapperOptions& options) const;
  /// "k=v,k=v" over all options with non-empty defaults ("-" if none).
  std::string default_spec() const;
};

/// Shortest round-trippable spec literal for a numeric default ("10",
/// "0.9"). Registration code uses it to derive MapperOptionInfo defaults
/// from the parameter structs, so metadata cannot drift from behavior.
std::string format_option_value(double value);

/// Parses the shared `threads=` option (worker threads for batch/frontier
/// evaluation; results must be thread-count invariant). Throws
/// spmap::Error unless >= 1. Default: 1 (serial).
std::size_t threads_option(const MapperOptions& options);

/// Parses the shared `seed=` option of the stochastic mappers: the given
/// value when present (negative values throw spmap::Error with a
/// diagnostic), else a draw from the construction rng — so unseeded runs
/// vary per construction while `seed=` pins them exactly.
std::uint64_t seed_option(const MapperOptions& options, Rng& construction_rng);

/// True for the run options every mapper accepts (`deadline_ms=`,
/// `max_evals=`, `max_iters=`); they are baked into the constructed
/// mapper's default MapRequest instead of reaching the factory.
bool is_shared_run_option(const std::string& key);

/// Parses the shared run options into a MapRequest (fields not mentioned
/// keep their defaults). Throws spmap::Error on negative values.
MapRequest run_request_from_options(const MapperOptions& options);

/// Global name -> factory table of every mapping algorithm.
class MapperRegistry {
 public:
  /// The process-wide registry, with all built-in mappers registered.
  static MapperRegistry& instance();

  /// Registers an algorithm. Throws spmap::Error on empty/duplicate names
  /// or a missing factory.
  void add(MapperEntry entry);

  bool contains(const std::string& name) const;
  /// Entry lookup; unknown names throw spmap::Error listing what exists,
  /// with a nearest-name "did you mean 'heft'?" suggestion when a
  /// registered name is close by edit distance.
  const MapperEntry& at(const std::string& name) const;
  /// Canonical names in registration order.
  std::vector<std::string> names() const;
  std::size_t size() const { return entries_.size(); }

  /// Builds a mapper from "name" or "name:key=value,key=value".
  /// Unknown names and option keys throw spmap::Error with diagnostics.
  std::unique_ptr<Mapper> create(const std::string& spec, const Dag& dag,
                                 Rng& rng) const;

  /// Splits "name[:options]" into (name, options-string).
  static std::pair<std::string, std::string> split_spec(
      const std::string& spec);

  /// Canonical form of a spec: the resolved name plus its options
  /// re-serialized in sorted key order ("anneal:iters=500,seed=7").
  /// Validates exactly like create() (unknown names/keys/values throw)
  /// without constructing the mapper. Two specs with equal canonical form
  /// construct behaviorally identical mappers given equal construction
  /// rng state — the identity the result cache keys on.
  std::string canonical_spec(const std::string& spec) const;

 private:
  MapperRegistry() = default;

  std::vector<MapperEntry> entries_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace spmap
