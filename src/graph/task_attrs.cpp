#include "graph/task_attrs.hpp"

namespace spmap {

void TaskAttrs::resize(std::size_t n) {
  complexity.resize(n, 0.0);
  parallelizability.resize(n, 1.0);
  streamability.resize(n, 0.0);
  area.resize(n, 0.0);
}

void TaskAttrs::validate(const Dag& dag) const {
  require(size() == dag.node_count(), "TaskAttrs: size mismatch with graph");
  require(parallelizability.size() == size() &&
              streamability.size() == size() && area.size() == size(),
          "TaskAttrs: inconsistent array sizes");
  for (std::size_t i = 0; i < size(); ++i) {
    require(complexity[i] >= 0.0, "TaskAttrs: negative complexity");
    require(parallelizability[i] >= 0.0 && parallelizability[i] <= 1.0,
            "TaskAttrs: parallelizability outside [0, 1]");
    require(streamability[i] >= 0.0, "TaskAttrs: negative streamability");
    require(area[i] >= 0.0, "TaskAttrs: negative area");
  }
}

TaskAttrs random_task_attrs(const Dag& dag, Rng& rng,
                            const AttrParams& params) {
  TaskAttrs attrs;
  const std::size_t n = dag.node_count();
  attrs.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    attrs.complexity[i] =
        rng.lognormal(params.complexity_mu, params.complexity_sigma);
    attrs.streamability[i] =
        rng.lognormal(params.streamability_mu, params.streamability_sigma);
    attrs.parallelizability[i] =
        rng.chance(params.perfect_parallel_probability) ? 1.0 : rng.uniform();
    attrs.area[i] = params.area_per_complexity * attrs.complexity[i];
  }
  return attrs;
}

}  // namespace spmap
