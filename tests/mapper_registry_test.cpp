/// MapperRegistry coverage: every paper mapper resolvable by its CLI name,
/// clear errors on unknown names/options, key=value parsing round-trips,
/// and registry-built mappers matching directly constructed ones.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/decomposition.hpp"
#include "mappers/heft.hpp"
#include "mappers/nsga2.hpp"
#include "mappers/peft.hpp"
#include "mappers/registry.hpp"
#include "model/cost_model.hpp"
#include "sched/evaluator.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace spmap {
namespace {

// Names the paper's evaluation (and the CLI) exposes.
const char* const kPaperMappers[] = {"cpu",  "heft",     "laheft",
                                     "peft", "sn",       "snff",
                                     "sp",   "spff",     "nsga",
                                     "wgdp-dev", "wgdp-time", "zhouliu"};

TEST(MapperRegistry, AllPaperMappersResolvable) {
  const MapperRegistry& registry = MapperRegistry::instance();
  Rng rng(1);
  const Dag dag = generate_sp_dag(12, rng);
  for (const char* name : kPaperMappers) {
    ASSERT_TRUE(registry.contains(name)) << name;
    const MapperEntry& entry = registry.at(name);
    EXPECT_FALSE(entry.description.empty()) << name;
    EXPECT_FALSE(entry.display_name.empty()) << name;
    const auto mapper = registry.create(name, dag, rng);
    ASSERT_NE(mapper, nullptr) << name;
    EXPECT_EQ(mapper->name(), entry.display_name) << name;
  }
  EXPECT_GE(registry.size(), 10u);
}

TEST(MapperRegistry, NeedsSpDecompositionMetadata) {
  const MapperRegistry& registry = MapperRegistry::instance();
  EXPECT_TRUE(registry.at("sp").needs_sp_decomposition);
  EXPECT_TRUE(registry.at("spff").needs_sp_decomposition);
  EXPECT_FALSE(registry.at("sn").needs_sp_decomposition);
  EXPECT_FALSE(registry.at("heft").needs_sp_decomposition);
}

TEST(MapperRegistry, UnknownNameThrowsWithKnownNames) {
  Rng rng(1);
  const Dag dag = testing::chain_dag(3);
  try {
    MapperRegistry::instance().create("definitely-not-a-mapper", dag, rng);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely-not-a-mapper"), std::string::npos);
    EXPECT_NE(what.find("spff"), std::string::npos)
        << "error should list known mappers: " << what;
  }
}

TEST(MapperRegistry, UnknownNameSuggestsNearest) {
  Rng rng(1);
  const Dag dag = testing::chain_dag(3);
  const auto expect_suggestion = [&](const char* typo, const char* meant) {
    try {
      MapperRegistry::instance().create(typo, dag, rng);
      FAIL() << "expected spmap::Error for '" << typo << "'";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(std::string("did you mean '") + meant + "'?"),
                std::string::npos)
          << typo << " -> " << what;
    }
  };
  expect_suggestion("hft", "heft");
  expect_suggestion("nsga2", "nsga");
  expect_suggestion("anealing", "anneal");
  expect_suggestion("spf", "sp");
  // Nothing plausibly close: no suggestion, just the known-names list.
  try {
    MapperRegistry::instance().create("quicksort", dag, rng);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(MapperRegistry, SeedOptionSharedHelper) {
  // seed= pins the value; unset draws from the construction rng; negative
  // values are rejected with a diagnostic naming the option.
  MapperOptions pinned = MapperOptions::parse("seed=42");
  Rng rng(7);
  EXPECT_EQ(seed_option(pinned, rng), 42u);

  Rng a(7);
  Rng b(7);
  const MapperOptions empty;
  EXPECT_EQ(seed_option(empty, a), seed_option(empty, b));

  MapperOptions negative = MapperOptions::parse("seed=-3");
  try {
    seed_option(negative, rng);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("seed"), std::string::npos) << what;
    EXPECT_NE(what.find(">= 0"), std::string::npos) << what;
  }
}

TEST(MapperRegistry, NegativeSeedRejectedByStochasticMappers) {
  Rng rng(1);
  const Dag dag = testing::chain_dag(3);
  for (const char* spec :
       {"nsga:seed=-1", "hillclimb:seed=-1", "anneal:seed=-1",
        "tabu:seed=-1"}) {
    EXPECT_THROW(MapperRegistry::instance().create(spec, dag, rng), Error)
        << spec;
  }
  // ... and accepted when non-negative.
  EXPECT_NO_THROW(
      MapperRegistry::instance().create("anneal:seed=0,iters=1", dag, rng));
}

TEST(MapperRegistry, UnknownOptionKeyThrows) {
  Rng rng(1);
  const Dag dag = testing::chain_dag(3);
  EXPECT_THROW(
      MapperRegistry::instance().create("heft:generations=5", dag, rng),
      Error);
  try {
    MapperRegistry::instance().create("nsga:wrong-key=1", dag, rng);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("wrong-key"), std::string::npos);
    EXPECT_NE(what.find("generations"), std::string::npos)
        << "error should list accepted keys: " << what;
  }
}

TEST(MapperOptions, ParseAndTypedAccess) {
  const auto options =
      MapperOptions::parse("generations=50,pop=100,crossover=0.75,elitist=yes");
  EXPECT_EQ(options.get_int("generations", 0), 50);
  EXPECT_EQ(options.get_int("pop", 0), 100);
  EXPECT_DOUBLE_EQ(options.get_double("crossover", 0.0), 0.75);
  EXPECT_TRUE(options.get_bool("elitist", false));
  EXPECT_FALSE(options.has("missing"));
  EXPECT_EQ(options.get_int("missing", 7), 7);
}

TEST(MapperOptions, RoundTripsThroughToString) {
  const auto options = MapperOptions::parse("b=2,a=1,c=x");
  const std::string canonical = options.to_string();
  EXPECT_EQ(canonical, "a=1,b=2,c=x");
  EXPECT_EQ(MapperOptions::parse(canonical).values(), options.values());
  EXPECT_EQ(MapperOptions::parse("").to_string(), "");
}

TEST(MapperOptions, BadValueDiagnostics) {
  const auto options = MapperOptions::parse("generations=abc,rate=1.2.3,f=2");
  try {
    options.get_int("generations", 0);
    FAIL() << "expected spmap::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("generations"), std::string::npos);
    EXPECT_NE(what.find("abc"), std::string::npos);
  }
  EXPECT_THROW(options.get_double("rate", 0.0), Error);
  EXPECT_THROW(options.get_bool("f", false), Error);
}

TEST(MapperOptions, MalformedSpecsThrow) {
  EXPECT_THROW(MapperOptions::parse("novalue"), Error);
  EXPECT_THROW(MapperOptions::parse("=5"), Error);
  EXPECT_THROW(MapperOptions::parse("a=1,a=2"), Error);
}

TEST(MapperRegistry, SplitSpec) {
  EXPECT_EQ(MapperRegistry::split_spec("spff").first, "spff");
  EXPECT_EQ(MapperRegistry::split_spec("spff").second, "");
  const auto [name, opts] =
      MapperRegistry::split_spec("nsga:generations=50,pop=100");
  EXPECT_EQ(name, "nsga");
  EXPECT_EQ(opts, "generations=50,pop=100");
}

TEST(MapperRegistry, OptionsReachTheMapper) {
  Rng rng(3);
  const Dag dag = generate_sp_dag(10, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = testing::cpu_fpga_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  // A 2-generation GA must consume far fewer evaluations than a
  // 20-generation one — proof the option string reaches Nsga2Params.
  Rng ra(7), rb(7);
  auto short_ga = MapperRegistry::instance().create(
      "nsga:generations=2,seed=11", dag, ra);
  auto long_ga = MapperRegistry::instance().create(
      "nsga:generations=20,seed=11", dag, rb);
  const MapperResult short_result = short_ga->map(eval);
  const MapperResult long_result = long_ga->map(eval);
  EXPECT_EQ(short_result.iterations, 2u);
  EXPECT_EQ(long_result.iterations, 20u);
  EXPECT_LT(short_result.evaluations, long_result.evaluations);
}

/// Registry-built mappers must behave exactly like directly constructed
/// ones on a small SP graph: same mapping, same predicted makespan.
TEST(MapperRegistry, MatchesDirectConstruction) {
  Rng rng(5);
  const Dag dag = generate_sp_dag(14, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = testing::cpu_fpga_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost);

  const auto expect_same = [&](const char* spec, Mapper& direct,
                               Rng direct_rng, Rng registry_rng) {
    auto from_registry =
        MapperRegistry::instance().create(spec, dag, registry_rng);
    (void)direct_rng;
    const MapperResult a = direct.map(eval);
    const MapperResult b = from_registry->map(eval);
    EXPECT_EQ(a.mapping.device, b.mapping.device) << spec;
    EXPECT_DOUBLE_EQ(a.predicted_makespan, b.predicted_makespan) << spec;
    EXPECT_EQ(direct.name(), from_registry->name()) << spec;
  };

  HeftMapper heft;
  expect_same("heft", heft, Rng(9), Rng(9));

  PeftMapper peft;
  expect_same("peft", peft, Rng(9), Rng(9));

  auto snff = make_single_node_mapper(dag, /*first_fit=*/true);
  expect_same("snff", *snff, Rng(9), Rng(9));

  // The SP mapper draws from the rng while decomposing, so direct and
  // registry construction must start from identical rng state.
  Rng direct_rng(13);
  auto spff = make_series_parallel_mapper(dag, direct_rng, /*first_fit=*/true);
  expect_same("spff", *spff, Rng(13), Rng(13));

  Nsga2Params ga;
  ga.generations = 5;
  ga.seed = 77;
  Nsga2Mapper nsga(ga);
  expect_same("nsga:generations=5,seed=77", nsga, Rng(9), Rng(9));
}

TEST(MapperRegistry, DuplicateRegistrationThrows) {
  MapperEntry entry;
  entry.name = "spff";  // collides with the builtin
  entry.display_name = "Dup";
  entry.factory = [](const MapperContext&) -> std::unique_ptr<Mapper> {
    return nullptr;
  };
  EXPECT_THROW(MapperRegistry::instance().add(std::move(entry)), Error);
}

}  // namespace
}  // namespace spmap
