#include "mappers/cpu_only.hpp"

#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"

namespace spmap {

MapReport CpuOnlyMapper::map(const Evaluator& eval,
                             const MapRequest& request) {
  // The default mapping IS the incumbent, so there is nothing a budget or
  // cancellation could truncate: the run always converges.
  RunControl control(request);
  MapReport report;
  report.mapping = eval.default_mapping();
  const std::size_t before = eval.evaluation_count();
  report.predicted_makespan = eval.evaluate(report.mapping);
  report.evaluations = eval.evaluation_count() - before;
  control.record_incumbent(report.predicted_makespan, 0);
  control.finalize(report);
  return report;
}

void detail::register_cpu_only_mapper(MapperRegistry& registry) {
  MapperEntry entry;
  entry.name = "cpu";
  entry.display_name = "CpuOnly";
  entry.description =
      "All-CPU baseline: every task on the default device (the reference "
      "point of the paper's relative-improvement metric)";
  entry.factory = [](const MapperContext&) {
    return std::make_unique<CpuOnlyMapper>();
  };
  registry.add(std::move(entry));
}

}  // namespace spmap
