#include "graph/dag.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace spmap {
namespace {

Dag diamond() {
  // 0 -> {1, 2} -> 3
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(0), NodeId(2));
  d.add_edge(NodeId(1), NodeId(3));
  d.add_edge(NodeId(2), NodeId(3));
  return d;
}

TEST(Dag, BasicConstruction) {
  Dag d;
  const NodeId a = d.add_node("a");
  const NodeId b = d.add_node("b");
  const EdgeId e = d.add_edge(a, b, 50.0);
  EXPECT_EQ(d.node_count(), 2u);
  EXPECT_EQ(d.edge_count(), 1u);
  EXPECT_EQ(d.src(e), a);
  EXPECT_EQ(d.dst(e), b);
  EXPECT_DOUBLE_EQ(d.data_mb(e), 50.0);
  EXPECT_EQ(d.label(a), "a");
  EXPECT_TRUE(d.has_edge(a, b));
  EXPECT_FALSE(d.has_edge(b, a));
}

TEST(Dag, DefaultEdgePayloadIs100Mb) {
  Dag d(2);
  const EdgeId e = d.add_edge(NodeId(0), NodeId(1));
  EXPECT_DOUBLE_EQ(d.data_mb(e), 100.0);
}

TEST(Dag, Degrees) {
  const Dag d = diamond();
  EXPECT_EQ(d.out_degree(NodeId(0)), 2u);
  EXPECT_EQ(d.in_degree(NodeId(3)), 2u);
  EXPECT_EQ(d.in_degree(NodeId(0)), 0u);
  EXPECT_EQ(d.out_degree(NodeId(3)), 0u);
}

TEST(Dag, SourcesAndSinks) {
  const Dag d = diamond();
  EXPECT_EQ(d.sources(), std::vector<NodeId>{NodeId(0)});
  EXPECT_EQ(d.sinks(), std::vector<NodeId>{NodeId(3)});
}

TEST(Dag, DataVolumes) {
  Dag d(3);
  d.add_edge(NodeId(0), NodeId(2), 10.0);
  d.add_edge(NodeId(1), NodeId(2), 30.0);
  EXPECT_DOUBLE_EQ(d.in_data_mb(NodeId(2)), 40.0);
  EXPECT_DOUBLE_EQ(d.out_data_mb(NodeId(0)), 10.0);
}

TEST(Dag, SelfLoopRejected) {
  Dag d(1);
  EXPECT_THROW(d.add_edge(NodeId(0), NodeId(0)), Error);
}

TEST(Dag, OutOfRangeIdsRejected) {
  Dag d(1);
  EXPECT_THROW(d.add_edge(NodeId(0), NodeId(5)), Error);
  EXPECT_THROW(d.in_edges(NodeId(9)), Error);
}

TEST(Dag, ValidateDetectsCycle) {
  Dag d(3);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(2), NodeId(0));
  EXPECT_THROW(d.validate(), Error);
}

TEST(Dag, ValidateAcceptsDag) {
  EXPECT_NO_THROW(diamond().validate());
}

TEST(GraphAlgorithms, TopologicalOrderRespectsEdges) {
  const Dag d = diamond();
  const auto order = topological_order(d);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i].v] = i;
  for (std::size_t e = 0; e < d.edge_count(); ++e) {
    EXPECT_LT(pos[d.src(EdgeId(e)).v], pos[d.dst(EdgeId(e)).v]);
  }
}

TEST(GraphAlgorithms, TopologicalOrderDeterministic) {
  const Dag d = diamond();
  EXPECT_EQ(topological_order(d), topological_order(d));
}

TEST(GraphAlgorithms, BfsOrderGroupsByLevel) {
  const Dag d = diamond();
  const auto order = bfs_order(d);
  EXPECT_EQ(order[0], NodeId(0));
  EXPECT_EQ(order[3], NodeId(3));
}

TEST(GraphAlgorithms, NodeLevels) {
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(0), NodeId(3));
  d.add_edge(NodeId(3), NodeId(2));  // both paths length 2
  const auto levels = node_levels(d);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 2u);
}

TEST(GraphAlgorithms, Reachability) {
  const Dag d = diamond();
  EXPECT_TRUE(reachable(d, NodeId(0), NodeId(3)));
  EXPECT_FALSE(reachable(d, NodeId(1), NodeId(2)));
  EXPECT_TRUE(reachable(d, NodeId(2), NodeId(2)));
}

TEST(GraphAlgorithms, WeaklyConnectedComponents) {
  Dag d(5);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(2), NodeId(3));
  EXPECT_EQ(weakly_connected_components(d), 3u);
}

TEST(GraphAlgorithms, RemoveDuplicateEdgesKeepsMaxPayload) {
  Dag d(2);
  d.add_edge(NodeId(0), NodeId(1), 10.0);
  d.add_edge(NodeId(0), NodeId(1), 70.0);
  const Dag simple = remove_duplicate_edges(d);
  EXPECT_EQ(simple.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(simple.data_mb(EdgeId(0)), 70.0);
}

TEST(GraphAlgorithms, TransitiveReductionRemovesShortcut) {
  Dag d(3);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(0), NodeId(2));  // redundant shortcut
  const Dag reduced = transitive_reduction(d);
  EXPECT_EQ(reduced.edge_count(), 2u);
  EXPECT_TRUE(reduced.has_edge(NodeId(0), NodeId(1)));
  EXPECT_TRUE(reduced.has_edge(NodeId(1), NodeId(2)));
  EXPECT_FALSE(reduced.has_edge(NodeId(0), NodeId(2)));
}

TEST(GraphAlgorithms, TransitiveReductionPreservesDiamond) {
  const Dag reduced = transitive_reduction(diamond());
  EXPECT_EQ(reduced.edge_count(), 4u);
}

TEST(GraphAlgorithms, NormalizeAlreadyNormal) {
  const auto norm = normalize_source_sink(diamond());
  EXPECT_FALSE(norm.added_source);
  EXPECT_FALSE(norm.added_sink);
  EXPECT_EQ(norm.source, NodeId(0));
  EXPECT_EQ(norm.sink, NodeId(3));
  EXPECT_EQ(norm.dag.node_count(), 4u);
}

TEST(GraphAlgorithms, NormalizeAddsVirtualNodes) {
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(2));
  d.add_edge(NodeId(1), NodeId(3));
  const auto norm = normalize_source_sink(d);
  EXPECT_TRUE(norm.added_source);
  EXPECT_TRUE(norm.added_sink);
  EXPECT_EQ(norm.dag.node_count(), 6u);
  EXPECT_EQ(norm.dag.sources().size(), 1u);
  EXPECT_EQ(norm.dag.sinks().size(), 1u);
  // Virtual edges carry no payload.
  for (EdgeId e : norm.dag.out_edges(norm.source)) {
    EXPECT_DOUBLE_EQ(norm.dag.data_mb(e), 0.0);
  }
}

TEST(GraphAlgorithms, LongestPath) {
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(2), NodeId(3));
  EXPECT_EQ(longest_path_edges(d), 3u);
  EXPECT_EQ(longest_path_edges(diamond()), 2u);
}

}  // namespace
}  // namespace spmap
