#include "util/rng.hpp"

#include <cmath>

namespace spmap {

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller: two uniforms -> two independent standard normals.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();  // guard log(0)
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

}  // namespace spmap
