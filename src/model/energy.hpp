#pragma once
/// \file energy.hpp
/// Energy extension of the cost model (paper Section II-A: "the basic
/// algorithmic ideas presented in this work can easily be transferred to
/// multi-objective optimization").
///
/// Energy of an executed mapping:
///   E = sum_devices idle_watts * makespan                (static)
///     + sum_tasks  (active - idle)_watts(dev) * exec     (dynamic compute)
///     + sum_cross_device_edges transfer_watts(src) * transfer_time
///                                                        (dynamic I/O)
///
/// The static term charges every powered-on device for the whole run, which
/// is what makes makespan and energy genuinely conflicting objectives:
/// offloading to a fast but power-hungry GPU shortens the run yet can cost
/// more energy than the quiet FPGA.

#include "model/cost_model.hpp"
#include "model/mapping.hpp"

namespace spmap {

/// Energy in joules for running `mapping` with the given makespan.
/// The makespan must come from the same cost model's evaluation.
double mapping_energy_joules(const CostModel& cost, const Mapping& mapping,
                             double makespan);

}  // namespace spmap
