#pragma once
/// \file stats.hpp
/// Small statistics toolkit used by the experiment harness: Welford online
/// accumulation plus order statistics over stored samples.

#include <cstddef>
#include <vector>

namespace spmap {

/// Numerically stable (Welford) online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with order statistics; stores all values.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Linear-interpolated quantile, q in [0, 1]. Requires non-empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazily maintained sort cache
  void ensure_sorted() const;
};

/// Average positive relative improvement, the paper's headline metric
/// (Section IV-A): mean over pairs of max(0, (base - value) / base).
/// Pairs where base <= 0 contribute zero.
double average_positive_relative_improvement(
    const std::vector<double>& baselines, const std::vector<double>& values);

}  // namespace spmap
