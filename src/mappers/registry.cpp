#include "mappers/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "mappers/builtin_registrations.hpp"
#include "util/error.hpp"

namespace spmap {

namespace {

std::string join(const std::vector<std::string>& items, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

/// Levenshtein distance, used for the unknown-name suggestion.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

/// The closest registered name, or "" when nothing is plausibly meant
/// (distance must stay within half the typed name, minimum 2).
std::string nearest_name(const std::string& name,
                         const std::vector<std::string>& names) {
  std::string best;
  std::size_t best_distance = ~std::size_t{0};
  for (const std::string& candidate : names) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best_distance <= std::max<std::size_t>(2, name.size() / 2)
             ? best
             : std::string();
}

}  // namespace

// ---- MapperOptions ----

MapperOptions MapperOptions::parse(const std::string& spec) {
  MapperOptions options;
  if (spec.empty()) return options;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t eq = item.find('=');
    require(eq != std::string::npos,
            "mapper options: expected key=value, got '" + item + "' in '" +
                spec + "'");
    const std::string key = item.substr(0, eq);
    require(!key.empty(),
            "mapper options: empty key in '" + spec + "'");
    const bool inserted =
        options.values_.emplace(key, item.substr(eq + 1)).second;
    require(inserted, "mapper options: duplicate key '" + key + "' in '" +
                          spec + "'");
  }
  return options;
}

bool MapperOptions::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string MapperOptions::get(const std::string& key,
                               const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t MapperOptions::get_int(const std::string& key,
                                    std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  require(end != text && *end == '\0',
          "mapper option '" + key + "': expected an integer, got '" +
              it->second + "'");
  return static_cast<std::int64_t>(value);
}

double MapperOptions::get_double(const std::string& key,
                                 double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const char* text = it->second.c_str();
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  require(end != text && *end == '\0',
          "mapper option '" + key + "': expected a number, got '" +
              it->second + "'");
  return value;
}

bool MapperOptions::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw Error("mapper option '" + key + "': expected a boolean, got '" + v +
              "'");
}

std::string MapperOptions::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out += ',';
    out += key + '=' + value;
  }
  return out;
}

std::string format_option_value(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

std::size_t threads_option(const MapperOptions& options) {
  const std::int64_t value = options.get_int("threads", 1);
  require(value >= 1, "mapper option 'threads': must be >= 1");
  return static_cast<std::size_t>(value);
}

std::uint64_t seed_option(const MapperOptions& options,
                          Rng& construction_rng) {
  if (!options.has("seed")) return construction_rng();
  const std::int64_t value = options.get_int("seed", 0);
  require(value >= 0, "mapper option 'seed': must be >= 0, got '" +
                          options.get("seed", "") + "'");
  return static_cast<std::uint64_t>(value);
}

bool is_shared_run_option(const std::string& key) {
  return key == "deadline_ms" || key == "max_evals" || key == "max_iters";
}

MapRequest run_request_from_options(const MapperOptions& options) {
  MapRequest request;
  request.deadline_ms = options.get_double("deadline_ms", 0.0);
  require(request.deadline_ms >= 0.0,
          "mapper option 'deadline_ms': must be >= 0 (0 = no deadline)");
  const std::int64_t max_evals = options.get_int("max_evals", 0);
  require(max_evals >= 0,
          "mapper option 'max_evals': must be >= 0 (0 = unlimited)");
  request.max_evaluations = static_cast<std::size_t>(max_evals);
  const std::int64_t max_iters = options.get_int("max_iters", 0);
  require(max_iters >= 0,
          "mapper option 'max_iters': must be >= 0 (0 = unlimited)");
  request.max_iterations = static_cast<std::size_t>(max_iters);
  return request;
}

// ---- MapperEntry ----

bool MapperEntry::supports_option(const std::string& key) const {
  for (const MapperOptionInfo& info : options) {
    if (info.key == key) return true;
  }
  return false;
}

void MapperEntry::validate_options(const MapperOptions& opts) const {
  for (const auto& [key, value] : opts.values()) {
    (void)value;
    if (is_shared_run_option(key) || supports_option(key)) continue;
    std::vector<std::string> accepted;
    for (const MapperOptionInfo& info : options) accepted.push_back(info.key);
    throw Error("mapper '" + name + "' does not accept option '" + key +
                "'" +
                (accepted.empty()
                     ? " (it takes no mapper-specific options; the shared "
                       "run options deadline_ms=, max_evals=, max_iters= "
                       "always apply)"
                     : " (accepted: " + join(accepted, ", ") +
                           ", plus the shared run options deadline_ms=, "
                           "max_evals=, max_iters=)"));
  }
  run_request_from_options(opts);  // validates the shared run options
  if (validate_values) validate_values(opts);
}

std::string MapperEntry::default_spec() const {
  std::string out;
  for (const MapperOptionInfo& info : options) {
    if (info.default_value.empty()) continue;
    if (!out.empty()) out += ',';
    out += info.key + '=' + info.default_value;
  }
  return out.empty() ? "-" : out;
}

// ---- MapperRegistry ----

MapperRegistry& MapperRegistry::instance() {
  static MapperRegistry* registry = [] {
    auto* r = new MapperRegistry();
    detail::register_cpu_only_mapper(*r);
    detail::register_heft_mapper(*r);
    detail::register_lookahead_heft_mapper(*r);
    detail::register_peft_mapper(*r);
    detail::register_decomposition_mappers(*r);
    detail::register_nsga2_mapper(*r);
    detail::register_milp_mappers(*r);
    detail::register_local_search_mappers(*r);
    return r;
  }();
  return *registry;
}

void MapperRegistry::add(MapperEntry entry) {
  require(!entry.name.empty(), "MapperRegistry: empty mapper name");
  require(static_cast<bool>(entry.factory),
          "MapperRegistry: mapper '" + entry.name + "' has no factory");
  require(index_.count(entry.name) == 0,
          "MapperRegistry: duplicate mapper name '" + entry.name + "'");
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
}

bool MapperRegistry::contains(const std::string& name) const {
  return index_.count(name) != 0;
}

const MapperEntry& MapperRegistry::at(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    const std::string suggestion = nearest_name(name, names());
    throw Error("unknown mapper: '" + name + "'" +
                (suggestion.empty()
                     ? ""
                     : " — did you mean '" + suggestion + "'?") +
                " (known mappers: " + join(names(), ", ") + ")");
  }
  return entries_[it->second];
}

std::vector<std::string> MapperRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const MapperEntry& entry : entries_) out.push_back(entry.name);
  return out;
}

std::pair<std::string, std::string> MapperRegistry::split_spec(
    const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

std::string MapperRegistry::canonical_spec(const std::string& spec) const {
  const auto [name, option_spec] = split_spec(spec);
  const MapperEntry& entry = at(name);
  const MapperOptions options = MapperOptions::parse(option_spec);
  entry.validate_options(options);
  if (options.empty()) return entry.name;
  return entry.name + ":" + options.to_string();
}

std::unique_ptr<Mapper> MapperRegistry::create(const std::string& spec,
                                               const Dag& dag,
                                               Rng& rng) const {
  const auto [name, option_spec] = split_spec(spec);
  const MapperEntry& entry = at(name);
  const MapperOptions options = MapperOptions::parse(option_spec);
  entry.validate_options(options);
  const MapperContext context{dag, rng, options};
  std::unique_ptr<Mapper> mapper = entry.factory(context);
  require(mapper != nullptr,
          "MapperRegistry: factory of '" + name + "' returned null");
  // Bake the shared run options into the default request, so request-free
  // drivers (bench harness, examples) honor `heft:deadline_ms=50` too.
  mapper->set_default_request(run_request_from_options(options));
  return mapper;
}

}  // namespace spmap
