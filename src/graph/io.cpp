#include "graph/io.hpp"

#include <sstream>

#include "util/json.hpp"

namespace spmap {

std::string to_dot(const Dag& dag) {
  std::ostringstream os;
  os << "digraph spmap {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    const NodeId n(i);
    os << "  n" << i;
    if (!dag.label(n).empty()) {
      os << " [label=\"" << dag.label(n) << "\"]";
    }
    os << ";\n";
  }
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const EdgeId id(e);
    os << "  n" << dag.src(id).v << " -> n" << dag.dst(id).v << " [label=\""
       << dag.data_mb(id) << " MB\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_json(const Dag& dag, const TaskAttrs& attrs) {
  attrs.validate(dag);
  Json nodes = Json::array();
  for (std::size_t i = 0; i < dag.node_count(); ++i) {
    Json node = Json::object();
    node.set("label", dag.label(NodeId(i)));
    node.set("complexity", attrs.complexity[i]);
    node.set("parallelizability", attrs.parallelizability[i]);
    node.set("streamability", attrs.streamability[i]);
    node.set("area", attrs.area[i]);
    nodes.push_back(std::move(node));
  }
  Json edges = Json::array();
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const EdgeId id(e);
    Json edge = Json::object();
    edge.set("src", static_cast<std::int64_t>(dag.src(id).v));
    edge.set("dst", static_cast<std::int64_t>(dag.dst(id).v));
    edge.set("data_mb", dag.data_mb(id));
    edges.push_back(std::move(edge));
  }
  Json doc = Json::object();
  doc.set("nodes", std::move(nodes));
  doc.set("edges", std::move(edges));
  return doc.dump(2);
}

TaskGraph task_graph_from_json(const std::string& text) {
  const Json doc = Json::parse(text);
  TaskGraph tg;
  const auto& nodes = doc.at("nodes").as_array();
  tg.attrs.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const Json& node = nodes[i];
    tg.dag.add_node(node.contains("label") ? node.at("label").as_string()
                                           : std::string{});
    tg.attrs.complexity[i] = node.at("complexity").as_double();
    tg.attrs.parallelizability[i] = node.at("parallelizability").as_double();
    tg.attrs.streamability[i] = node.at("streamability").as_double();
    tg.attrs.area[i] = node.at("area").as_double();
  }
  for (const Json& edge : doc.at("edges").as_array()) {
    const auto s = edge.at("src").as_int();
    const auto d = edge.at("dst").as_int();
    require(s >= 0 && d >= 0 &&
                static_cast<std::size_t>(s) < tg.dag.node_count() &&
                static_cast<std::size_t>(d) < tg.dag.node_count(),
            "task_graph_from_json: edge endpoint out of range");
    tg.dag.add_edge(NodeId(static_cast<std::uint32_t>(s)),
                    NodeId(static_cast<std::uint32_t>(d)),
                    edge.at("data_mb").as_double());
  }
  tg.dag.validate();
  tg.attrs.validate(tg.dag);
  return tg;
}

}  // namespace spmap
