#include "sp/recognizer.hpp"

#include <map>
#include <vector>

namespace spmap {

bool is_series_parallel(const Dag& dag) {
  const std::size_t n = dag.node_count();
  if (n == 0) return false;
  if (n == 1) return dag.edge_count() == 0;
  const auto sources = dag.sources();
  const auto sinks = dag.sinks();
  require(sources.size() == 1 && sinks.size() == 1,
          "is_series_parallel: graph must have unique source and sink");
  const NodeId s = sources.front();
  const NodeId t = sinks.front();

  // Multigraph adjacency with edge multiplicities.
  std::vector<std::map<std::uint32_t, std::size_t>> out(n);
  std::vector<std::map<std::uint32_t, std::size_t>> in(n);
  for (std::size_t e = 0; e < dag.edge_count(); ++e) {
    const auto u = dag.src(EdgeId(e)).v;
    const auto v = dag.dst(EdgeId(e)).v;
    ++out[u][v];
    ++in[v][u];
  }

  auto distinct_in = [&](std::uint32_t v) { return in[v].size(); };
  auto distinct_out = [&](std::uint32_t v) { return out[v].size(); };
  auto total_in = [&](std::uint32_t v) {
    std::size_t sum = 0;
    for (const auto& [u, c] : in[v]) sum += c;
    return sum;
  };
  auto total_out = [&](std::uint32_t v) {
    std::size_t sum = 0;
    for (const auto& [w, c] : out[v]) sum += c;
    return sum;
  };

  // Worklist of candidate interior nodes for series reduction. Parallel
  // reduction (duplicate-edge merging) happens implicitly: multiplicities
  // collapse to "one distinct edge" whenever we test degrees, and series
  // contraction merges multiplicities additively.
  std::vector<std::uint32_t> work;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (v != s.v && v != t.v) work.push_back(v);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::uint32_t> next;
    for (const std::uint32_t v : work) {
      if (in[v].empty() && out[v].empty()) continue;  // already contracted
      // A series reduction of v needs exactly one distinct predecessor and
      // one distinct successor, each via exactly one (post-parallel-
      // reduction) edge.
      if (distinct_in(v) == 1 && distinct_out(v) == 1) {
        const std::uint32_t u = in[v].begin()->first;
        const std::uint32_t w = out[v].begin()->first;
        // Contract u -> v -> w into u -> w (parallel reduction may later
        // merge it with an existing u -> w edge).
        in[v].clear();
        out[v].clear();
        out[u].erase(v);
        in[w].erase(v);
        ++out[u][w];
        ++in[w][u];
        changed = true;
        next.push_back(u);
        next.push_back(w);
      } else {
        next.push_back(v);
      }
    }
    work = std::move(next);
    // Drop source/sink from the worklist; they are never contracted.
    std::erase_if(work, [&](std::uint32_t v) { return v == s.v || v == t.v; });
  }

  // Series-parallel iff everything contracted into (possibly many parallel
  // copies of) the single edge s -> t.
  for (std::uint32_t v = 0; v < n; ++v) {
    if (v == s.v || v == t.v) continue;
    if (!in[v].empty() || !out[v].empty()) return false;
  }
  return distinct_out(s.v) <= 1 && distinct_in(t.v) <= 1 &&
         total_out(s.v) >= 1 && total_in(t.v) >= 1 &&
         out[s.v].begin()->first == t.v;
}

}  // namespace spmap
