#include "serve/session.hpp"

#include <utility>

#include "util/error.hpp"

namespace spmap {

const char* to_string(SessionState state) {
  switch (state) {
    case SessionState::kHandshake: return "handshake";
    case SessionState::kActive: return "active";
    case SessionState::kDraining: return "draining";
    case SessionState::kClosed: return "closed";
  }
  return "unknown";
}

namespace {

/// Field extraction helpers: schema violations throw spmap::Error with a
/// message the session turns into a `bad_request` response.
const Json& object_field(const Json& body, const char* key) {
  const Json& v = body.at(key);
  require(v.is_object(), std::string("\"") + key + "\" must be an object");
  return v;
}

double number_field(const Json& body, const char* key, double fallback) {
  if (!body.contains(key)) return fallback;
  const Json& v = body.at(key);
  require(v.is_number(), std::string("\"") + key + "\" must be a number");
  return v.as_double();
}

std::size_t count_field(const Json& body, const char* key,
                        std::size_t fallback) {
  if (!body.contains(key)) return fallback;
  const Json& v = body.at(key);
  require(v.is_number() && v.as_double() >= 0.0,
          std::string("\"") + key + "\" must be a non-negative number");
  return static_cast<std::size_t>(v.as_int());
}

std::optional<std::uint64_t> seed_field(const Json& body, const char* key) {
  if (!body.contains(key)) return std::nullopt;
  const Json& v = body.at(key);
  require(v.is_number() && v.as_double() >= 0.0,
          std::string("\"") + key + "\" must be a non-negative number");
  return static_cast<std::uint64_t>(v.as_int());
}

bool bool_field(const Json& body, const char* key, bool fallback) {
  if (!body.contains(key)) return fallback;
  const Json& v = body.at(key);
  require(v.is_bool(), std::string("\"") + key + "\" must be a boolean");
  return v.as_bool();
}

std::uint64_t job_field(const Json& body) {
  require(body.contains("job") && body.at("job").is_number() &&
              body.at("job").as_double() >= 0.0,
          "\"job\" must be a non-negative number");
  return static_cast<std::uint64_t>(body.at("job").as_int());
}

int priority_of_class(const std::string& cls) {
  if (cls == "low") return 0;
  if (cls == "normal") return 1;
  if (cls == "high") return 2;
  throw Error("\"class\" must be \"low\", \"normal\" or \"high\", got \"" +
              cls + "\"");
}

}  // namespace

Json to_json(const WireSubmit& request) {
  Json body = Json::object();
  body.set("mapper", Json(request.mapper_spec));
  body.set("class", Json(request.priority_class));
  if (request.graph.has_value()) body.set("graph", *request.graph);
  if (request.generate.has_value()) body.set("generate", *request.generate);
  if (request.platform.has_value()) body.set("platform", *request.platform);
  if (request.deadline_ms > 0.0) {
    body.set("deadline_ms", Json(request.deadline_ms));
  }
  if (request.max_evaluations > 0) {
    body.set("max_evals", Json(static_cast<std::uint64_t>(
                              request.max_evaluations)));
  }
  if (request.max_iterations > 0) {
    body.set("max_iters", Json(static_cast<std::uint64_t>(
                              request.max_iterations)));
  }
  if (request.seed.has_value()) body.set("seed", Json(*request.seed));
  if (request.construction_seed.has_value()) {
    body.set("construction_seed", Json(*request.construction_seed));
  }
  if (request.reporting_orders > 0) {
    body.set("reporting_orders", Json(static_cast<std::uint64_t>(
                                     request.reporting_orders)));
  }
  if (request.subscribe) body.set("subscribe", Json(true));
  if (request.want_mapping) body.set("return_mapping", Json(true));
  if (request.warm) body.set("warm", Json(true));
  return body;
}

WireSubmit wire_submit_from_json(const Json& body) {
  WireSubmit request;
  body.require_keys(
      "submit",
      {"op", "tag", "mapper", "class", "graph", "generate", "platform",
       "deadline_ms", "max_evals", "max_iters", "seed", "construction_seed",
       "reporting_orders", "subscribe", "return_mapping", "warm"});
  require(body.contains("mapper") && body.at("mapper").is_string() &&
              !body.at("mapper").as_string().empty(),
          "\"mapper\" must be a non-empty registry spec string");
  request.mapper_spec = body.at("mapper").as_string();
  if (body.contains("class")) {
    require(body.at("class").is_string(), "\"class\" must be a string");
    request.priority_class = body.at("class").as_string();
  }
  request.priority = priority_of_class(request.priority_class);
  const bool has_graph = body.contains("graph");
  const bool has_generate = body.contains("generate");
  require(has_graph != has_generate,
          "exactly one of \"graph\" (inline document) or \"generate\" "
          "(server-side generation spec) is required");
  if (has_graph) request.graph = object_field(body, "graph");
  if (has_generate) request.generate = object_field(body, "generate");
  if (body.contains("platform")) {
    request.platform = object_field(body, "platform");
  }
  request.deadline_ms = number_field(body, "deadline_ms", 0.0);
  require(request.deadline_ms >= 0.0, "\"deadline_ms\" must be >= 0");
  request.max_evaluations = count_field(body, "max_evals", 0);
  request.max_iterations = count_field(body, "max_iters", 0);
  request.seed = seed_field(body, "seed");
  request.construction_seed = seed_field(body, "construction_seed");
  request.reporting_orders = count_field(body, "reporting_orders", 0);
  request.subscribe = bool_field(body, "subscribe", false);
  request.want_mapping = bool_field(body, "return_mapping", false);
  request.warm = bool_field(body, "warm", false);
  return request;
}

Session::Session(std::uint64_t id, SessionHost& host, SessionConfig config)
    : id_(id), host_(&host), config_(config) {}

std::vector<std::string> Session::on_frame(const std::string& line,
                                           double now) {
  last_activity_ = now;
  if (state_ == SessionState::kClosed) return {};

  Frame frame;
  std::string message;
  if (const auto code = parse_frame(line, frame, message)) {
    if (state_ == SessionState::kHandshake) {
      state_ = SessionState::kClosed;
      return {error_line(WireErrorCode::kBadHandshake, message)};
    }
    // The byte stream itself is broken: answer and close. A well-formed
    // object merely missing "op" is an app-level mistake: answer, stay.
    if (*code == WireErrorCode::kBadRequest) {
      return {error_line(*code, message)};
    }
    state_ = SessionState::kClosed;
    return {error_line(*code, message)};
  }

  if (state_ == SessionState::kHandshake) return handle_hello(frame);

  if (frame.op == "hello" || frame.op == "resume") {
    return {error_line(WireErrorCode::kBadRequest, "handshake already done",
                       Json(Json::Object{{"op", Json(frame.op)}}))};
  }
  if (frame.op == "submit") return handle_submit(frame);
  if (frame.op == "status") return handle_status(frame);
  if (frame.op == "stats") return handle_stats(frame);
  if (frame.op == "cancel") return handle_cancel(frame);
  if (frame.op == "subscribe") return handle_subscribe(frame);
  if (frame.op == "drain") return handle_drain(frame);
  return {error_line(
      WireErrorCode::kUnknownOp,
      "unknown op \"" + frame.op +
          "\" (want submit|status|stats|cancel|subscribe|drain)",
      Json(Json::Object{{"op", Json(frame.op)}}))};
}

std::vector<std::string> Session::on_frame_overflow() {
  if (state_ == SessionState::kClosed) return {};
  state_ = SessionState::kClosed;
  return {error_line(WireErrorCode::kFrameTooLong,
                     "frame exceeds the line limit")};
}

std::vector<std::string> Session::on_idle_check(double now) {
  if (state_ == SessionState::kClosed || config_.idle_timeout_s <= 0.0 ||
      now - last_activity_ < config_.idle_timeout_s) {
    return {};
  }
  state_ = SessionState::kClosed;
  return {error_line(WireErrorCode::kIdleTimeout,
                     "closing after inactivity")};
}

std::vector<std::string> Session::on_server_drain() {
  if (state_ == SessionState::kClosed) return {};
  if (state_ == SessionState::kHandshake) {
    // Nothing in flight to watch: just close.
    state_ = SessionState::kClosed;
    return {event_line("closing", Json(Json::Object{
                                      {"reason", Json("draining")}}))};
  }
  state_ = SessionState::kDraining;
  return {event_line("draining", Json::object())};
}

std::vector<std::string> Session::handle_hello(const Frame& frame) {
  if (frame.op == "resume") return handle_resume(frame);
  if (frame.op != "hello") {
    state_ = SessionState::kClosed;
    return {error_line(WireErrorCode::kHandshakeRequired,
                       "first frame must be {\"op\":\"hello\",\"proto\":\"" +
                           std::string(kWireProtocol) + "\"} (or resume)")};
  }
  if (!frame.body.contains("proto") || !frame.body.at("proto").is_string() ||
      frame.body.at("proto").as_string() != kWireProtocol) {
    state_ = SessionState::kClosed;
    return {error_line(WireErrorCode::kBadHandshake,
                       std::string("server speaks ") + kWireProtocol)};
  }
  state_ = host_->draining() ? SessionState::kDraining
                             : SessionState::kActive;
  Json body = Json::object();
  body.set("op", Json("hello"));
  body.set("proto", Json(kWireProtocol));
  const std::string token = host_->register_session(id_);
  if (!token.empty()) {
    body.set("session", Json(id_));
    body.set("token", Json(token));
  }
  Json info = host_->server_info();
  for (auto& [key, value] : info.as_object()) {
    body.set(key, std::move(value));
  }
  return {ok_line(std::move(body))};
}

std::vector<std::string> Session::handle_resume(const Frame& frame) {
  std::string token;
  std::uint64_t last_seq = 0;
  try {
    frame.body.require_keys("resume", {"op", "proto", "token", "last_seq"});
    require(frame.body.contains("proto") &&
                frame.body.at("proto").is_string() &&
                frame.body.at("proto").as_string() == kWireProtocol,
            std::string("server speaks ") + kWireProtocol);
    require(frame.body.contains("token") &&
                frame.body.at("token").is_string() &&
                !frame.body.at("token").as_string().empty(),
            "\"token\" must be the non-empty token hello issued");
    token = frame.body.at("token").as_string();
    last_seq = static_cast<std::uint64_t>(
        count_field(frame.body, "last_seq", 0));
  } catch (const Error& ex) {
    state_ = SessionState::kClosed;
    return {error_line(WireErrorCode::kBadHandshake, ex.what())};
  }
  ResumeOutcome outcome = host_->resume_session(id_, token, last_seq);
  if (!outcome.ok) {
    // Stay in kHandshake: the client falls back to a fresh hello on the
    // same connection (the daemon it reconnected to may have restarted
    // and legitimately not know the token).
    return {error_line(outcome.code, outcome.message,
                       Json(Json::Object{{"op", Json("resume")}}))};
  }
  // Adopt the old session's identity: the host re-pointed its job table
  // and subscriptions at this connection under the resumed id.
  id_ = outcome.session;
  state_ = host_->draining() ? SessionState::kDraining
                             : SessionState::kActive;
  Json body = Json::object();
  body.set("op", Json("resume"));
  body.set("proto", Json(kWireProtocol));
  body.set("session", Json(outcome.session));
  body.set("token", Json(outcome.token));
  body.set("replayed", Json(static_cast<std::uint64_t>(
                           outcome.replay.size())));
  std::vector<std::string> lines;
  lines.reserve(1 + outcome.replay.size());
  lines.push_back(ok_line(std::move(body)));
  for (std::string& line : outcome.replay) {
    lines.push_back(std::move(line));
  }
  return lines;
}

std::vector<std::string> Session::handle_submit(const Frame& frame) {
  Json echo = Json::object();
  echo.set("op", Json("submit"));
  if (frame.body.contains("tag")) echo.set("tag", frame.body.at("tag"));

  if (state_ == SessionState::kDraining || host_->draining()) {
    return {error_line(WireErrorCode::kDraining,
                       "server is draining; no new jobs accepted",
                       std::move(echo))};
  }

  WireSubmit request;
  try {
    request = wire_submit_from_json(frame.body);
  } catch (const Error& ex) {
    return {error_line(WireErrorCode::kBadRequest, ex.what(),
                       std::move(echo))};
  }

  const SubmitOutcome outcome = host_->submit(id_, request);
  if (!outcome.accepted) {
    return {error_line(outcome.code, outcome.message, std::move(echo))};
  }
  echo.set("job", Json(outcome.job));
  echo.set("class", Json(request.priority_class));
  return {ok_line(std::move(echo))};
}

std::vector<std::string> Session::handle_status(const Frame& frame) {
  std::uint64_t job = 0;
  try {
    frame.body.require_keys("status", {"op", "job"});
    job = job_field(frame.body);
  } catch (const Error& ex) {
    return {error_line(WireErrorCode::kBadRequest, ex.what(),
                       Json(Json::Object{{"op", Json("status")}}))};
  }
  std::optional<Json> status = host_->job_status(job);
  if (!status.has_value()) {
    return {error_line(WireErrorCode::kUnknownJob,
                       "no job " + std::to_string(job),
                       Json(Json::Object{{"op", Json("status")},
                                         {"job", Json(job)}}))};
  }
  status->set("op", Json("status"));
  return {ok_line(*std::move(status))};
}

std::vector<std::string> Session::handle_stats(const Frame& frame) {
  try {
    frame.body.require_keys("stats", {"op"});
  } catch (const Error& ex) {
    return {error_line(WireErrorCode::kBadRequest, ex.what(),
                       Json(Json::Object{{"op", Json("stats")}}))};
  }
  Json body = host_->stats_body();
  body.set("op", Json("stats"));
  return {ok_line(std::move(body))};
}

std::vector<std::string> Session::handle_cancel(const Frame& frame) {
  std::uint64_t job = 0;
  try {
    frame.body.require_keys("cancel", {"op", "job"});
    job = job_field(frame.body);
  } catch (const Error& ex) {
    return {error_line(WireErrorCode::kBadRequest, ex.what(),
                       Json(Json::Object{{"op", Json("cancel")}}))};
  }
  // Idempotent: cancelling a finished (or already-cancelled) job is a
  // success — the double-cancel a retrying client naturally produces.
  if (!host_->cancel_job(job)) {
    return {error_line(WireErrorCode::kUnknownJob,
                       "no job " + std::to_string(job),
                       Json(Json::Object{{"op", Json("cancel")},
                                         {"job", Json(job)}}))};
  }
  return {ok_line(Json(Json::Object{{"op", Json("cancel")},
                                    {"job", Json(job)}}))};
}

std::vector<std::string> Session::handle_subscribe(const Frame& frame) {
  std::uint64_t job = 0;
  try {
    frame.body.require_keys("subscribe", {"op", "job"});
    job = job_field(frame.body);
  } catch (const Error& ex) {
    return {error_line(WireErrorCode::kBadRequest, ex.what(),
                       Json(Json::Object{{"op", Json("subscribe")}}))};
  }
  if (!host_->subscribe(id_, job)) {
    return {error_line(WireErrorCode::kUnknownJob,
                       "no job " + std::to_string(job),
                       Json(Json::Object{{"op", Json("subscribe")},
                                         {"job", Json(job)}}))};
  }
  return {ok_line(Json(Json::Object{{"op", Json("subscribe")},
                                    {"job", Json(job)}}))};
}

std::vector<std::string> Session::handle_drain(const Frame& frame) {
  double grace_ms = -1.0;
  try {
    frame.body.require_keys("drain", {"op", "grace_ms"});
    grace_ms = number_field(frame.body, "grace_ms", -1.0);
  } catch (const Error& ex) {
    return {error_line(WireErrorCode::kBadRequest, ex.what(),
                       Json(Json::Object{{"op", Json("drain")}}))};
  }
  host_->begin_drain(grace_ms);
  // The host's drain notification (on_server_drain) reaches this session
  // too; the direct answer just acknowledges the verb.
  return {ok_line(Json(Json::Object{{"op", Json("drain")}}))};
}

}  // namespace spmap
