/// Integration tests of the serving daemon (serve/daemon.hpp): a real
/// Daemon on a unix socket (plus one TCP ephemeral-port case), driven by
/// WireClient over the actual protocol — submit/subscribe/done round
/// trips, overload rejection shape, cancel idempotence, graceful drain.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "util/error.hpp"

namespace spmap {
namespace {

/// A bound daemon with run() on its own thread; drains on destruction.
class DaemonFixture {
 public:
  explicit DaemonFixture(DaemonOptions options) {
    if (options.endpoint.path.empty() && options.endpoint.host.empty()) {
      options.endpoint = Endpoint::parse(unique_socket_path());
    }
    daemon = std::make_unique<Daemon>(std::move(options));
    daemon->bind();
    io = std::thread([this] { exit_code = daemon->run(); });
  }

  ~DaemonFixture() {
    if (io.joinable()) {
      daemon->request_drain(0.0);
      io.join();
    }
  }

  int join() {
    io.join();
    return exit_code;
  }

  static std::string unique_socket_path() {
    static int counter = 0;
    return "unix:/tmp/spmap_daemon_test_" + std::to_string(::getpid()) +
           "_" + std::to_string(++counter) + ".sock";
  }

  std::unique_ptr<Daemon> daemon;
  std::thread io;
  int exit_code = -1;
};

Json submit_frame(std::size_t tasks = 12, std::uint64_t seed = 1) {
  Json generate = Json::object();
  generate.set("type", Json("sp"));
  generate.set("tasks", Json(tasks));
  generate.set("seed", Json(seed));
  Json frame = Json::object();
  frame.set("op", Json("submit"));
  frame.set("mapper", Json("spff"));
  frame.set("generate", std::move(generate));
  return frame;
}

TEST(ServeDaemon, SubmitSubscribeDoneRoundTrip) {
  DaemonFixture fixture({.workers = 2});
  WireClient client(fixture.daemon->endpoint());
  EXPECT_EQ(client.hello_info().at("proto").as_string(), kWireProtocol);

  Json frame = submit_frame();
  frame.set("subscribe", Json(true));
  frame.set("return_mapping", Json(true));
  frame.set("tag", Json(std::size_t{7}));
  client.send(frame);

  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value());
  ASSERT_TRUE(accepted->at("ok").as_bool()) << accepted->dump();
  EXPECT_EQ(accepted->at("tag").as_int(), 7);
  const auto job = static_cast<std::uint64_t>(accepted->at("job").as_int());

  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(done->at("job").as_int()), job);
  EXPECT_EQ(done->at("state").as_string(), "done");
  EXPECT_GT(done->at("makespan").as_double(), 0.0);
  EXPECT_TRUE(done->at("mapping").is_array());

  // status after the terminal event reports the same result.
  client.send(Json(Json::Object{{"op", Json("status")}, {"job", Json(job)}}));
  const auto status = client.recv(10000.0);
  ASSERT_TRUE(status.has_value());
  ASSERT_TRUE(status->at("ok").as_bool());
  EXPECT_EQ(status->at("state").as_string(), "done");
  EXPECT_DOUBLE_EQ(status->at("makespan").as_double(),
                   done->at("makespan").as_double());
}

TEST(ServeDaemon, SubscribeAfterTerminalReplaysDone) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  client.send(submit_frame());
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());
  const auto job = static_cast<std::uint64_t>(accepted->at("job").as_int());

  // Poll status until terminal, then subscribe: the done event must be
  // replayed instead of never arriving.
  for (int i = 0; i < 600; ++i) {
    client.send(
        Json(Json::Object{{"op", Json("status")}, {"job", Json(job)}}));
    const auto status = client.recv(10000.0);
    ASSERT_TRUE(status.has_value() && status->at("ok").as_bool());
    if (status->at("state").as_string() == "done") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  client.send(
      Json(Json::Object{{"op", Json("subscribe")}, {"job", Json(job)}}));
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value() && ok->at("ok").as_bool());
  const auto done = client.recv_event("done", 10000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(done->at("job").as_int()), job);
}

TEST(ServeDaemon, OverloadRejectionIsStructuredAndSurvivable) {
  // workers=1 + max_queued=1: one running, one queued, the rest refused.
  DaemonFixture fixture({.workers = 1, .max_queued = 1});
  WireClient client(fixture.daemon->endpoint());

  // An effectively endless anneal occupies the only worker; a second one
  // fills the queue slot.
  Json slow = submit_frame(24);
  slow.set("mapper", Json("anneal:iters=500000000"));
  slow.set("deadline_ms", Json(60000.0));
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 2; ++i) {
    client.send(slow);
    const auto ok = client.recv(10000.0);
    ASSERT_TRUE(ok.has_value() && ok->at("ok").as_bool()) << ok->dump();
    jobs.push_back(static_cast<std::uint64_t>(ok->at("job").as_int()));
  }

  // Low-priority traffic is shed first (graduated thresholds): rejected
  // with the structured overloaded error, connection intact.
  Json low = submit_frame();
  low.set("class", Json("low"));
  low.set("tag", Json("shed-me"));
  client.send(low);
  const auto rejected = client.recv(10000.0);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->at("ok").as_bool());
  EXPECT_EQ(rejected->at("error").at("code").as_string(), "overloaded");
  EXPECT_FALSE(rejected->at("error").at("message").as_string().empty());
  EXPECT_EQ(rejected->at("tag").as_string(), "shed-me");

  // Admission shed the request before the service saw it: only the two
  // accepted jobs were ever submitted.
  EXPECT_EQ(fixture.daemon->service_stats().submitted, 2u);

  // The connection survived: cancel both heavy jobs, twice (idempotent).
  for (const std::uint64_t job : jobs) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      client.send(
          Json(Json::Object{{"op", Json("cancel")}, {"job", Json(job)}}));
      const auto ok = client.recv(10000.0);
      ASSERT_TRUE(ok.has_value());
      EXPECT_TRUE(ok->at("ok").as_bool()) << ok->dump();
    }
  }
}

TEST(ServeDaemon, UnknownMapperIsRejectedEagerly) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  Json frame = submit_frame();
  frame.set("mapper", Json("definitely-not-a-mapper"));
  client.send(frame);
  const auto response = client.recv(10000.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool());
  EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
}

TEST(ServeDaemon, MalformedJsonClosesTheConnection) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  client.send_raw("{this is not json}\n");
  const auto error = client.recv(10000.0);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->at("error").at("code").as_string(), "bad_json");
  // The daemon closes after flushing: the next read hits EOF.
  EXPECT_THROW(
      {
        while (true) {
          if (!client.recv(10000.0).has_value()) break;
        }
      },
      Error);

  // A fresh connection still works.
  WireClient again(fixture.daemon->endpoint());
  again.send(submit_frame());
  const auto ok = again.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool());
}

TEST(ServeDaemon, DrainVerbFinishesInFlightAndExitsZero) {
  DaemonFixture fixture({.workers = 2});
  WireClient client(fixture.daemon->endpoint());
  Json frame = submit_frame();
  frame.set("subscribe", Json(true));
  client.send(frame);
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());

  client.send(Json(
      Json::Object{{"op", Json("drain")}, {"grace_ms", Json(30000.0)}}));
  // In some order: the drain ok, a draining event, the job's done event,
  // and a final closing event.
  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->at("state").as_string(), "done");
  const auto closing = client.recv_event("closing", 10000.0);
  EXPECT_TRUE(closing.has_value());

  EXPECT_EQ(fixture.join(), 0);
}

TEST(ServeDaemon, DrainCancelsPastGraceStillExitsZero) {
  DaemonFixture fixture({.workers = 1, .grace_ms = 100.0});
  WireClient client(fixture.daemon->endpoint());
  Json slow = submit_frame(24);
  slow.set("mapper", Json("anneal:iters=500000000"));
  slow.set("deadline_ms", Json(60000.0));
  slow.set("subscribe", Json(true));
  client.send(slow);
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());

  fixture.daemon->request_drain();  // 100ms grace, then cancellation
  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  // Cooperative cancellation of a running job: it returns its incumbent
  // (state "done") with the cancelled termination reason.
  EXPECT_EQ(done->at("state").as_string(), "done");
  EXPECT_EQ(done->at("termination").as_string(), "cancelled");
  // Cooperative cancellation within the hard deadline: a clean exit.
  EXPECT_EQ(fixture.join(), 0);
}

TEST(ServeDaemon, TcpEphemeralPortServes) {
  DaemonFixture fixture({.endpoint = Endpoint::parse("tcp:127.0.0.1:0"),
                         .workers = 1});
  EXPECT_NE(fixture.daemon->endpoint().port, 0);
  WireClient client(fixture.daemon->endpoint());
  client.send(submit_frame());
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool());
}

TEST(ServeDaemon, BindRefusesATakenUnixEndpoint) {
  DaemonFixture fixture({.workers = 1});
  Daemon second({.endpoint = fixture.daemon->endpoint()});
  EXPECT_THROW(second.bind(), Error);
}

}  // namespace
}  // namespace spmap
