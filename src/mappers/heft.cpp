#include "mappers/heft.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"
#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"
#include "sched/timeline.hpp"

namespace spmap {

std::vector<double> heft_upward_ranks(const CostModel& cost) {
  const Dag& dag = cost.dag();
  std::vector<double> rank(dag.node_count(), 0.0);
  const auto topo = topological_order(dag);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    double succ_term = 0.0;
    for (const EdgeId e : dag.out_edges(v)) {
      const NodeId w = dag.dst(e);
      succ_term = std::max(succ_term,
                           cost.mean_transfer_time(e) + rank[w.v]);
    }
    rank[v.v] = cost.mean_exec_time(v) + succ_term;
  }
  return rank;
}

MapReport HeftMapper::map(const Evaluator& eval, const MapRequest& request) {
  RunControl control(request);
  const CostModel& cost = eval.cost();
  const Dag& dag = cost.dag();
  const Platform& platform = cost.platform();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();

  // Priority phase: schedule in decreasing upward rank. Ties (possible with
  // zero-cost virtual tasks) break by topological position so precedence is
  // always respected.
  const auto rank = heft_upward_ranks(cost);
  const auto topo = topological_order(dag);
  std::vector<std::size_t> topo_pos(n);
  for (std::size_t i = 0; i < n; ++i) topo_pos[topo[i].v] = i;
  std::vector<NodeId> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = NodeId(i);
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (rank[a.v] != rank[b.v]) return rank[a.v] > rank[b.v];
    return topo_pos[a.v] < topo_pos[b.v];
  });

  // Scheduling phase: insertion-based earliest finish time, one timeline
  // per execution slot of each device.
  std::vector<std::size_t> slot_offset(m + 1, 0);
  for (std::size_t d = 0; d < m; ++d) {
    slot_offset[d + 1] =
        slot_offset[d] +
        std::max<std::size_t>(1, platform.device(DeviceId(d)).slots);
  }
  std::vector<DeviceTimeline> timelines(slot_offset.back());
  std::vector<double> finish(n, 0.0);
  Mapping mapping(n, platform.default_device());
  std::vector<double> fpga_area_used(m, 0.0);

  // One-shot list scheduler: one "iteration" places one task. A truncated
  // run leaves the remaining tasks on the default device — still a valid
  // mapping, as the run API requires.
  std::size_t placed = 0;
  for (const NodeId v : order) {
    if (control.should_stop(placed, 0)) break;
    DeviceId best_dev = platform.default_device();
    double best_eft = kInfeasible;
    double best_start = 0.0;
    std::size_t best_slot = 0;
    for (std::size_t d = 0; d < m; ++d) {
      const DeviceId dev(d);
      const Device& device = platform.device(dev);
      if (device.is_fpga() && fpga_area_used[d] + cost.area(v) >
                                  device.area_budget) {
        continue;  // no room left in fabric
      }
      double est = 0.0;
      for (const EdgeId e : dag.in_edges(v)) {
        const NodeId u = dag.src(e);
        est = std::max(est,
                       finish[u.v] + cost.transfer_time(e, mapping[u], dev));
      }
      const double exec = cost.exec_time(v, dev);
      for (std::size_t s = slot_offset[d]; s < slot_offset[d + 1]; ++s) {
        const double start = timelines[s].earliest_start(est, exec);
        const double eft = start + exec;
        if (eft < best_eft) {
          best_eft = eft;
          best_dev = dev;
          best_start = start;
          best_slot = s;
        }
      }
    }
    mapping[v] = best_dev;
    finish[v.v] = best_eft;
    timelines[best_slot].reserve(best_start, best_eft - best_start);
    if (platform.device(best_dev).is_fpga()) {
      fpga_area_used[best_dev.v] += cost.area(v);
    }
    ++placed;
  }

  MapReport report;
  const std::size_t before = eval.evaluation_count();
  report.predicted_makespan = eval.evaluate(mapping);
  report.evaluations = eval.evaluation_count() - before;
  report.mapping = std::move(mapping);
  report.iterations = placed;
  control.record_incumbent(report.predicted_makespan, placed);
  control.finalize(report);
  return report;
}

void detail::register_heft_mapper(MapperRegistry& registry) {
  MapperEntry entry;
  entry.name = "heft";
  entry.display_name = "HEFT";
  entry.description =
      "Heterogeneous Earliest Finish Time list scheduler (Topcuoglu et "
      "al.): upward-rank priority, insertion-based EFT device selection";
  entry.factory = [](const MapperContext&) {
    return std::make_unique<HeftMapper>();
  };
  registry.add(std::move(entry));
}

}  // namespace spmap
