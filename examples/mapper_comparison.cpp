/// Side-by-side comparison of every mapping algorithm in spmap on one
/// random series-parallel task graph (the paper's Section IV-B setting).
///
///   ./example_mapper_comparison [--tasks N] [--seed S] [--milp-limit SEC]
///                               [--generations N]
///
/// The algorithms are not hard-coded: the example walks the MapperRegistry,
/// so any newly registered mapper shows up here automatically. Prints
/// mapping quality (relative improvement over all-CPU), execution time of
/// the mapper itself, and how many model evaluations it consumed.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "mappers/registry.hpp"
#include "model/platform.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace spmap;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"tasks", "seed", "milp-limit", "generations"});
  const auto n = static_cast<std::size_t>(flags.get_int("tasks", 20));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));
  const double milp_limit = flags.get_double("milp-limit", 5.0);
  const auto generations = flags.get_int("generations", 100);

  Rng rng(seed);
  const Dag dag = generate_sp_dag(n, rng);
  const TaskAttrs attrs = random_task_attrs(dag, rng);
  const Platform platform = reference_platform();
  const CostModel cost(dag, attrs, platform);
  const Evaluator eval(cost, {.random_orders = 100});
  const double baseline = eval.default_mapping_makespan();

  std::printf("random series-parallel graph: %zu tasks, %zu edges\n",
              dag.node_count(), dag.edge_count());
  std::printf("all-CPU baseline makespan: %.2f ms\n\n", baseline * 1e3);

  // Walk the registry; tune the expensive algorithms down to example scale
  // through their declared options (the registry rejects unknown keys).
  const MapperRegistry& registry = MapperRegistry::instance();
  std::vector<std::unique_ptr<Mapper>> mappers;
  for (const std::string& name : registry.names()) {
    const MapperEntry& entry = registry.at(name);
    std::string spec = name;
    if (entry.supports_option("time-limit")) {
      char opts[48];
      std::snprintf(opts, sizeof(opts), ":time-limit=%g", milp_limit);
      spec += opts;
    } else if (entry.supports_option("generations")) {
      spec += ":generations=" + std::to_string(generations);
    }
    mappers.push_back(registry.create(spec, dag, rng));
  }

  Table table({"mapper", "improvement", "mapper time", "evaluations"});
  for (const auto& mapper : mappers) {
    WallTimer timer;
    const MapperResult r = mapper->map(eval);
    const double elapsed = timer.seconds();
    const double imp =
        std::max(0.0, (baseline - r.predicted_makespan) / baseline);
    table.add_row({mapper->name(), format_double(100.0 * imp, 1) + " %",
                   format_duration(elapsed), std::to_string(r.evaluations)});
  }
  std::puts(table.to_string().c_str());
  return 0;
}
