#include "sp/decomposition_forest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sp/recognizer.hpp"
#include "sp/subgraph_set.hpp"

namespace spmap {
namespace {

/// The series-parallel example of the paper's Fig. 1:
/// edges 0-1, 1-2, 2-3, 1-3, 3-5, 0-4, 4-5.
Dag fig1_graph() {
  Dag d(6);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(2), NodeId(3));
  d.add_edge(NodeId(1), NodeId(3));
  d.add_edge(NodeId(3), NodeId(5));
  d.add_edge(NodeId(0), NodeId(4));
  d.add_edge(NodeId(4), NodeId(5));
  return d;
}

/// The non-series-parallel example of Fig. 2: Fig. 1 plus edge 1-4.
Dag fig2_graph() {
  Dag d = fig1_graph();
  d.add_edge(NodeId(1), NodeId(4));
  return d;
}

/// Classic minimal non-SP graph (Wheatstone bridge / "N" graph).
Dag bridge_graph() {
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(0), NodeId(2));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(1), NodeId(3));
  d.add_edge(NodeId(2), NodeId(3));
  return d;
}

// ---- Recognizer ----

TEST(Recognizer, SingleEdgeIsSp) {
  Dag d(2);
  d.add_edge(NodeId(0), NodeId(1));
  EXPECT_TRUE(is_series_parallel(d));
}

TEST(Recognizer, ChainIsSp) {
  Dag d(5);
  for (std::uint32_t i = 0; i + 1 < 5; ++i) {
    d.add_edge(NodeId(i), NodeId(i + 1));
  }
  EXPECT_TRUE(is_series_parallel(d));
}

TEST(Recognizer, DiamondIsSp) {
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(1));
  d.add_edge(NodeId(0), NodeId(2));
  d.add_edge(NodeId(1), NodeId(3));
  d.add_edge(NodeId(2), NodeId(3));
  EXPECT_TRUE(is_series_parallel(d));
}

TEST(Recognizer, Fig1IsSp) { EXPECT_TRUE(is_series_parallel(fig1_graph())); }

TEST(Recognizer, Fig2IsNotSp) {
  EXPECT_FALSE(is_series_parallel(fig2_graph()));
}

TEST(Recognizer, BridgeIsNotSp) {
  EXPECT_FALSE(is_series_parallel(bridge_graph()));
}

TEST(Recognizer, SingleNodeIsSp) {
  Dag d(1);
  EXPECT_TRUE(is_series_parallel(d));
}

TEST(Recognizer, GeneratedSpGraphsAreSp) {
  Rng rng(42);
  for (std::size_t n : {2u, 5u, 10u, 50u, 200u}) {
    for (int rep = 0; rep < 5; ++rep) {
      const Dag d = generate_sp_dag(n, rng);
      EXPECT_TRUE(is_series_parallel(d)) << "n=" << n << " rep=" << rep;
    }
  }
}

// ---- Algorithm 1 on series-parallel inputs ----

TEST(DecompositionForest, Fig1SingleTreeNoCuts) {
  Rng rng(1);
  const auto result = grow_decomposition_forest(fig1_graph(), rng);
  EXPECT_EQ(result.cuts, 0u);
  EXPECT_EQ(result.orphan_edges, 0u);
  ASSERT_EQ(result.forest.roots().size(), 1u);
  result.forest.validate(fig1_graph());
  EXPECT_EQ(result.forest.total_real_leaves(), fig1_graph().edge_count());
}

TEST(DecompositionForest, Fig1TreeStructure) {
  Rng rng(1);
  const auto result =
      grow_decomposition_forest(fig1_graph(), rng, CutPolicy::FirstActive);
  const auto root = result.forest.roots().front();
  // Core tree: virtual wrapper around the parallel 0-5 operation of Fig. 1.
  EXPECT_EQ(result.forest.to_string(root),
            "S(eps-0, P(S(0-1, P(S(1-2, 2-3), 1-3), 3-5), S(0-4, 4-5)), "
            "5-eps)");
}

TEST(DecompositionForest, GeneratedSpGraphsDecomposeWithoutCuts) {
  Rng rng(7);
  for (std::size_t n : {2u, 3u, 8u, 40u, 150u}) {
    for (int rep = 0; rep < 5; ++rep) {
      const Dag d = generate_sp_dag(n, rng);
      const auto result = grow_decomposition_forest(d, rng);
      EXPECT_EQ(result.cuts, 0u) << "n=" << n;
      EXPECT_EQ(result.orphan_edges, 0u);
      EXPECT_EQ(result.forest.roots().size(), 1u);
      result.forest.validate(d);
      EXPECT_EQ(result.forest.total_real_leaves(), d.edge_count());
      // The core tree spans every node.
      const auto spanned =
          result.forest.spanned_nodes(result.forest.roots().front());
      EXPECT_EQ(spanned.size(), d.node_count());
    }
  }
}

// ---- Algorithm 1 on general DAGs ----

TEST(DecompositionForest, Fig2CutsOnce) {
  Rng rng(1);
  const auto result =
      grow_decomposition_forest(fig2_graph(), rng, CutPolicy::FirstActive);
  EXPECT_EQ(result.cuts, 1u);
  EXPECT_EQ(result.orphan_edges, 0u);
  ASSERT_EQ(result.forest.roots().size(), 2u);
  result.forest.validate(fig2_graph());
  // Cut trees come first, the core tree is last.
  const auto cut = result.forest.roots()[0];
  const auto core = result.forest.roots()[1];
  // The cut branch is 1-5 (paper Fig. 2, right side).
  EXPECT_EQ(result.forest.start(cut), NodeId(1));
  EXPECT_EQ(result.forest.end(cut), NodeId(5));
  EXPECT_EQ(result.forest.to_string(cut),
            "S(P(S(1-2, 2-3), 1-3), 3-5)");
  EXPECT_EQ(result.forest.to_string(core),
            "S(eps-0, P(S(0-1, 1-4), 0-4), 4-5, 5-eps)");
}

TEST(DecompositionForest, EveryEdgeCoveredExactlyOnce) {
  Rng rng(11);
  for (int rep = 0; rep < 10; ++rep) {
    const Dag base = generate_sp_dag(40, rng);
    const Dag aug = add_random_edges(base, 30, rng);
    const auto norm = normalize_source_sink(aug);
    const auto result = grow_decomposition_forest(norm.dag, rng);
    result.forest.validate(norm.dag);
    // Collect all real leaf edges across roots; each edge exactly once.
    std::set<std::uint32_t> seen;
    std::size_t total = 0;
    for (const auto root : result.forest.roots()) {
      for (EdgeId e : result.forest.edges(root)) {
        seen.insert(e.v);
        ++total;
      }
    }
    EXPECT_EQ(total, norm.dag.edge_count());
    EXPECT_EQ(seen.size(), norm.dag.edge_count());
  }
}

TEST(DecompositionForest, CutsAgreeWithRecognizer) {
  // cuts == 0  <=>  the (normalized) graph is series-parallel.
  Rng rng(13);
  for (int rep = 0; rep < 30; ++rep) {
    const Dag base = generate_sp_dag(25, rng);
    const std::size_t extra = rng.below(8);  // 0..7 extra edges
    const Dag aug = add_random_edges(base, extra, rng);
    const auto norm = normalize_source_sink(aug);
    const bool sp = is_series_parallel(norm.dag);
    const auto result = grow_decomposition_forest(norm.dag, rng);
    if (sp) {
      EXPECT_EQ(result.cuts, 0u) << "SP graph must decompose without cuts";
    } else {
      EXPECT_GT(result.cuts, 0u) << "non-SP graph must cut at least once";
    }
  }
}

TEST(DecompositionForest, AllCutPoliciesCoverAllEdges) {
  Rng rng(17);
  const Dag base = generate_sp_dag(30, rng);
  const Dag aug = add_random_edges(base, 20, rng);
  const auto norm = normalize_source_sink(aug);
  for (CutPolicy policy :
       {CutPolicy::Random, CutPolicy::SmallestSubtree,
        CutPolicy::LargestSubtree, CutPolicy::FirstActive}) {
    Rng local(3);
    const auto result = grow_decomposition_forest(norm.dag, local, policy);
    result.forest.validate(norm.dag);
    std::size_t total = 0;
    for (const auto root : result.forest.roots()) {
      total += result.forest.edges(root).size();
    }
    EXPECT_EQ(total, norm.dag.edge_count());
  }
}

TEST(DecompositionForest, SingleNodeGraph) {
  Dag d(1);
  Rng rng(1);
  const auto result = grow_decomposition_forest(d, rng);
  EXPECT_EQ(result.cuts, 0u);
  ASSERT_EQ(result.forest.roots().size(), 1u);
}

TEST(DecompositionForest, RequiresUniqueSourceAndSink) {
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(2));
  d.add_edge(NodeId(1), NodeId(2));
  d.add_edge(NodeId(2), NodeId(3));
  Rng rng(1);
  EXPECT_THROW(grow_decomposition_forest(d, rng), Error);
}

TEST(DecompositionForest, DeterministicWithFixedSeed) {
  Rng g1(5);
  Rng g2(5);
  const Dag base = generate_sp_dag(30, g1);
  Rng g3(5);
  const Dag base2 = generate_sp_dag(30, g3);
  const Dag aug1 = add_random_edges(base, 15, g1);
  // Rebuild identically.
  Rng g4(5);
  generate_sp_dag(30, g4);  // advance to same state (returns `base` again)
  const Dag aug2 = add_random_edges(base2, 15, g4);

  Rng r1(9);
  Rng r2(9);
  const auto n1 = normalize_source_sink(aug1);
  const auto n2 = normalize_source_sink(aug2);
  const auto d1 = grow_decomposition_forest(n1.dag, r1);
  const auto d2 = grow_decomposition_forest(n2.dag, r2);
  ASSERT_EQ(d1.forest.roots().size(), d2.forest.roots().size());
  for (std::size_t i = 0; i < d1.forest.roots().size(); ++i) {
    EXPECT_EQ(d1.forest.to_string(d1.forest.roots()[i]),
              d2.forest.to_string(d2.forest.roots()[i]));
  }
}

// ---- Subgraph sets ----

TEST(SubgraphSet, SingleNodeSet) {
  const auto set = single_node_subgraphs(4);
  ASSERT_EQ(set.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(set.subgraphs[i], std::vector<NodeId>{NodeId(i)});
  }
}

TEST(SubgraphSet, Fig1MatchesPaperExample) {
  // Paper Section III-C: S = {{0},{1},{2},{3},{4},{5},{1,2,3},{0,...,5}}.
  Rng rng(1);
  const auto set = series_parallel_subgraphs(fig1_graph(), rng);
  std::set<std::vector<NodeId>> got(set.subgraphs.begin(),
                                    set.subgraphs.end());
  std::set<std::vector<NodeId>> want;
  for (std::uint32_t i = 0; i < 6; ++i) want.insert({NodeId(i)});
  want.insert({NodeId(1), NodeId(2), NodeId(3)});
  want.insert({NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4),
               NodeId(5)});
  EXPECT_EQ(got, want);
}

TEST(SubgraphSet, AlwaysContainsAllSingletons) {
  Rng rng(3);
  const Dag base = generate_sp_dag(30, rng);
  const Dag aug = add_random_edges(base, 10, rng);
  const auto set = series_parallel_subgraphs(aug, rng);
  std::set<std::vector<NodeId>> got(set.subgraphs.begin(),
                                    set.subgraphs.end());
  for (std::uint32_t i = 0; i < aug.node_count(); ++i) {
    EXPECT_TRUE(got.count({NodeId(i)})) << "missing singleton " << i;
  }
}

TEST(SubgraphSet, NeverContainsVirtualNodes) {
  // Graph with two sources and two sinks; normalization adds virtual nodes
  // which must not leak into subgraphs.
  Dag d(4);
  d.add_edge(NodeId(0), NodeId(2));
  d.add_edge(NodeId(1), NodeId(3));
  d.add_edge(NodeId(0), NodeId(3));
  Rng rng(5);
  const auto set = series_parallel_subgraphs(d, rng);
  for (const auto& sg : set.subgraphs) {
    for (NodeId n : sg) {
      EXPECT_LT(n.v, d.node_count());
    }
  }
}

TEST(SubgraphSet, LinearSizeOnSpGraphs) {
  Rng rng(7);
  for (std::size_t n : {20u, 60u, 120u}) {
    const Dag d = generate_sp_dag(n, rng);
    const auto set = series_parallel_subgraphs(d, rng);
    // Singletons (n) plus at most ~2 operations per node.
    EXPECT_GE(set.size(), n);
    EXPECT_LE(set.size(), 3 * n);
  }
}

TEST(SubgraphSet, SubgraphsAreSortedAndUnique) {
  Rng rng(9);
  const Dag base = generate_sp_dag(40, rng);
  const Dag aug = add_random_edges(base, 20, rng);
  const auto set = series_parallel_subgraphs(aug, rng);
  std::set<std::vector<NodeId>> dedup(set.subgraphs.begin(),
                                      set.subgraphs.end());
  EXPECT_EQ(dedup.size(), set.size());
  for (const auto& sg : set.subgraphs) {
    EXPECT_TRUE(std::is_sorted(sg.begin(), sg.end()));
  }
}

TEST(SubgraphSet, ManyAddedEdgesConvergeTowardSingletons) {
  // Paper Section IV-C: with many conflicting edges the SP decomposition
  // converges towards the single-node decomposition.
  Rng rng(21);
  const Dag base = generate_sp_dag(40, rng);
  const auto sparse = series_parallel_subgraphs(base, rng);
  const Dag dense = add_random_edges(base, 200, rng);
  const auto dense_set = series_parallel_subgraphs(dense, rng);

  // Decomposition trees "converge towards single edges": multi-node
  // subgraphs shrink on average (the count may grow as trees fragment).
  auto mean_non_singleton_size = [](const SubgraphSet& s) {
    std::size_t count = 0;
    std::size_t total = 0;
    for (const auto& sg : s.subgraphs) {
      if (sg.size() > 1) {
        ++count;
        total += sg.size();
      }
    }
    return count ? static_cast<double>(total) / static_cast<double>(count)
                 : 0.0;
  };
  EXPECT_LT(mean_non_singleton_size(dense_set),
            mean_non_singleton_size(sparse));
}

}  // namespace
}  // namespace spmap
