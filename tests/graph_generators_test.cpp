#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/task_attrs.hpp"

namespace spmap {
namespace {

TEST(SpGenerator, ExactNodeCount) {
  Rng rng(1);
  for (std::size_t n : {2u, 3u, 5u, 20u, 100u}) {
    const Dag d = generate_sp_dag(n, rng);
    EXPECT_EQ(d.node_count(), n);
  }
}

TEST(SpGenerator, SingleSourceAndSink) {
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Dag d = generate_sp_dag(30, rng);
    EXPECT_EQ(d.sources().size(), 1u);
    EXPECT_EQ(d.sinks().size(), 1u);
  }
}

TEST(SpGenerator, NoDuplicateEdges) {
  Rng rng(3);
  const Dag d = generate_sp_dag(60, rng);
  for (std::size_t i = 0; i < d.node_count(); ++i) {
    const auto& outs = d.out_edges(NodeId(i));
    for (std::size_t a = 0; a < outs.size(); ++a) {
      for (std::size_t b = a + 1; b < outs.size(); ++b) {
        EXPECT_NE(d.dst(outs[a]), d.dst(outs[b]));
      }
    }
  }
}

TEST(SpGenerator, LinearEdgeComplexity) {
  // Series-parallel graphs are planar: |E| <= 2|V| - 3 after dedup.
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    const Dag d = generate_sp_dag(100, rng);
    EXPECT_LE(d.edge_count(), 2 * d.node_count());
  }
}

TEST(SpGenerator, Deterministic) {
  Rng a(7);
  Rng b(7);
  const Dag d1 = generate_sp_dag(40, a);
  const Dag d2 = generate_sp_dag(40, b);
  ASSERT_EQ(d1.edge_count(), d2.edge_count());
  for (std::size_t e = 0; e < d1.edge_count(); ++e) {
    EXPECT_EQ(d1.src(EdgeId(e)), d2.src(EdgeId(e)));
    EXPECT_EQ(d1.dst(EdgeId(e)), d2.dst(EdgeId(e)));
  }
}

TEST(SpGenerator, MinimumSize) {
  Rng rng(5);
  const Dag d = generate_sp_dag(2, rng);
  EXPECT_EQ(d.node_count(), 2u);
  EXPECT_EQ(d.edge_count(), 1u);
  EXPECT_THROW(generate_sp_dag(1, rng), Error);
}

TEST(AlmostSp, AddsRequestedEdges) {
  Rng rng(11);
  const Dag base = generate_sp_dag(50, rng);
  const Dag aug = add_random_edges(base, 25, rng);
  EXPECT_EQ(aug.node_count(), base.node_count());
  EXPECT_EQ(aug.edge_count(), base.edge_count() + 25);
}

TEST(AlmostSp, StaysAcyclic) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) {
    const Dag base = generate_sp_dag(40, rng);
    const Dag aug = add_random_edges(base, 60, rng);
    EXPECT_NO_THROW(aug.validate());
  }
}

TEST(AlmostSp, NoDuplicatesIntroduced) {
  Rng rng(13);
  const Dag base = generate_sp_dag(30, rng);
  const Dag aug = add_random_edges(base, 40, rng);
  for (std::size_t i = 0; i < aug.node_count(); ++i) {
    const auto& outs = aug.out_edges(NodeId(i));
    for (std::size_t a = 0; a < outs.size(); ++a) {
      for (std::size_t b = a + 1; b < outs.size(); ++b) {
        EXPECT_NE(aug.dst(outs[a]), aug.dst(outs[b]));
      }
    }
  }
}

TEST(AlmostSp, SaturatedGraphGetsFewer) {
  // On a tiny graph there are not enough free pairs for many new edges;
  // the generator must terminate anyway.
  Rng rng(14);
  const Dag base = generate_sp_dag(4, rng);
  const Dag aug = add_random_edges(base, 1000, rng);
  EXPECT_NO_THROW(aug.validate());
  EXPECT_LE(aug.edge_count(), 4u * 3u / 2u);
}

TEST(LayeredGenerator, EveryNodeConnected) {
  Rng rng(21);
  LayeredGenParams params;
  params.layers = 6;
  params.max_width = 5;
  const Dag d = generate_layered_dag(rng, params);
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(weakly_connected_components(d), 1u)
      << "layered generator should produce one weak component";
}

TEST(TaskAttrs, RandomAugmentationRanges) {
  Rng rng(31);
  const Dag d = generate_sp_dag(200, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  EXPECT_NO_THROW(attrs.validate(d));
  int perfect = 0;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_GT(attrs.complexity[i], 0.0);
    EXPECT_GT(attrs.streamability[i], 0.0);
    if (attrs.parallelizability[i] == 1.0) ++perfect;
    EXPECT_DOUBLE_EQ(attrs.area[i], attrs.complexity[i]);
  }
  // Roughly half the tasks should be perfectly parallelizable.
  EXPECT_GT(perfect, 60);
  EXPECT_LT(perfect, 140);
}

TEST(TaskAttrs, ValidationCatchesMismatch) {
  Rng rng(32);
  const Dag d = generate_sp_dag(10, rng);
  TaskAttrs attrs = random_task_attrs(d, rng);
  attrs.complexity.pop_back();
  EXPECT_THROW(attrs.validate(d), Error);
}

TEST(TaskAttrs, ValidationCatchesBadParallelizability) {
  Rng rng(33);
  const Dag d = generate_sp_dag(5, rng);
  TaskAttrs attrs = random_task_attrs(d, rng);
  attrs.parallelizability[0] = 1.5;
  EXPECT_THROW(attrs.validate(d), Error);
}

}  // namespace
}  // namespace spmap
