#include "sp/subgraph_set.hpp"

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"

namespace spmap {

SubgraphSet single_node_subgraphs(std::size_t node_count) {
  SubgraphSet set;
  set.subgraphs.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    set.subgraphs.push_back({NodeId(i)});
  }
  return set;
}

namespace {

void collect_operation_subgraphs(const SpForest& forest, SpForest::Index ix,
                                 std::size_t real_node_count,
                                 std::set<std::vector<NodeId>>& unique) {
  const auto& node = forest.node(ix);
  if (node.kind == SpKind::Leaf) return;

  std::vector<NodeId> nodes = forest.spanned_nodes(ix);
  if (node.kind == SpKind::Series) {
    // Series operations exclude their endpoints: those may have edges to
    // siblings outside the operation (Section III-C).
    std::erase_if(nodes, [&](NodeId n) { return n == node.u || n == node.v; });
  }
  // Virtual normalization nodes are not mappable tasks.
  std::erase_if(nodes,
                [&](NodeId n) { return n.v >= real_node_count; });
  if (!nodes.empty()) unique.insert(nodes);

  for (SpForest::Index c : node.children) {
    collect_operation_subgraphs(forest, c, real_node_count, unique);
  }
}

}  // namespace

SubgraphSet subgraphs_from_forest(const SpForest& forest,
                                  std::size_t real_node_count) {
  std::set<std::vector<NodeId>> unique;
  for (std::size_t i = 0; i < real_node_count; ++i) {
    unique.insert({NodeId(i)});
  }
  for (SpForest::Index root : forest.roots()) {
    collect_operation_subgraphs(forest, root, real_node_count, unique);
  }
  SubgraphSet set;
  set.subgraphs.assign(unique.begin(), unique.end());
  return set;
}

SubgraphSet series_parallel_subgraphs(const Dag& dag, Rng& rng,
                                      CutPolicy policy) {
  const std::size_t real_nodes = dag.node_count();
  const Normalized norm = normalize_source_sink(dag);
  const DecompositionResult result =
      grow_decomposition_forest(norm.dag, rng, policy);
  return subgraphs_from_forest(result.forest, real_nodes);
}

}  // namespace spmap
