#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/decomposition.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::cpu_fpga_platform;
using testing::serial_streamable_attrs;

TEST(Schedule, ExtractChainAllCpu) {
  const Dag d = chain_dag(3);
  const auto attrs = serial_streamable_attrs(3);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Mapping m(3, DeviceId(0u));
  const Schedule s = extract_schedule(eval, m);
  ASSERT_EQ(s.tasks.size(), 3u);
  EXPECT_NEAR(s.makespan, 3.0, 1e-12);
  // Serial chain: tasks back to back.
  EXPECT_DOUBLE_EQ(s.tasks[0].start, 0.0);
  EXPECT_DOUBLE_EQ(s.tasks[1].start, 1.0);
  EXPECT_DOUBLE_EQ(s.tasks[2].start, 2.0);
  EXPECT_NO_THROW(s.validate(d, p, m));
}

TEST(Schedule, MakespanMatchesEvaluator) {
  Rng rng(3);
  const Dag d = generate_sp_dag(40, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost, {.random_orders = 20});
  auto mapper = make_series_parallel_mapper(d, rng, true);
  const MapperResult r = mapper->map(eval);
  const Schedule s = extract_schedule(eval, r.mapping);
  EXPECT_NEAR(s.makespan, eval.evaluate(r.mapping), 1e-12);
  EXPECT_NO_THROW(s.validate(d, p, r.mapping));
}

TEST(Schedule, ValidatePassesForManyRandomMappings) {
  Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const Dag base = generate_sp_dag(30, rng);
    const Dag d = add_random_edges(base, 10, rng);
    const TaskAttrs attrs = random_task_attrs(d, rng);
    const Platform p = reference_platform();
    const CostModel cost(d, attrs, p);
    const Evaluator eval(cost, {.random_orders = 5});
    Mapping m(d.node_count(), DeviceId(0u));
    for (auto& dev : m.device) dev = DeviceId(rng.below(3));
    if (!cost.area_feasible(m)) {
      for (auto& dev : m.device) {
        if (dev == DeviceId(2u)) dev = DeviceId(0u);
      }
    }
    const Schedule s = extract_schedule(eval, m);
    EXPECT_NO_THROW(s.validate(d, p, m)) << "rep " << rep;
  }
}

TEST(Schedule, StreamedStagesMayOverlap) {
  const Dag d = chain_dag(4);
  const auto attrs = serial_streamable_attrs(4);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Mapping m(4, DeviceId(1u));  // all on FPGA
  const Schedule s = extract_schedule(eval, m);
  // Pipeline: downstream stages start before upstream ones finish.
  EXPECT_LT(s.tasks[1].start, s.tasks[0].finish);
  EXPECT_NO_THROW(s.validate(d, p, m));
}

TEST(Schedule, InfeasibleMappingRejected) {
  const Dag d = chain_dag(3);
  TaskAttrs attrs = serial_streamable_attrs(3);
  attrs.area = {60.0, 60.0, 60.0};
  const Platform p = cpu_fpga_platform(1.0, /*fpga_area_budget=*/100.0);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Mapping m(3, DeviceId(1u));
  EXPECT_THROW(extract_schedule(eval, m), Error);
}

TEST(Schedule, JsonRendering) {
  Dag d(2);
  d.set_label(NodeId(0), "produce");
  d.set_label(NodeId(1), "consume");
  d.add_edge(NodeId(0), NodeId(1), 100.0);
  const auto attrs = serial_streamable_attrs(2);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Schedule s = extract_schedule(eval, Mapping(2, DeviceId(0u)));
  const Json doc = s.to_json(d, p);
  EXPECT_DOUBLE_EQ(doc.at("makespan").as_double(), s.makespan);
  const auto& tasks = doc.at("tasks").as_array();
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].at("label").as_string(), "produce");
  EXPECT_EQ(tasks[0].at("device").as_string(), "cpu");
}

TEST(Schedule, GanttRendering) {
  const Dag d = chain_dag(3);
  const auto attrs = serial_streamable_attrs(3);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Schedule s = extract_schedule(eval, Mapping(3, DeviceId(0u)));
  const std::string gantt = s.to_gantt(d, p, 30);
  // Three rows, each with bars.
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'), 3);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

TEST(Schedule, ValidateCatchesCorruption) {
  const Dag d = chain_dag(3);
  const auto attrs = serial_streamable_attrs(3);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  const Mapping m(3, DeviceId(0u));
  Schedule s = extract_schedule(eval, m);
  s.tasks[2].start = 0.0;  // consumer now starts before producer finishes
  EXPECT_THROW(s.validate(d, p, m), Error);
}

}  // namespace
}  // namespace spmap
