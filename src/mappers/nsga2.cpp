#include "mappers/nsga2.hpp"

#include <algorithm>
#include <memory>

#include "graph/algorithms.hpp"
#include "mappers/builtin_registrations.hpp"
#include "mappers/registry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spmap {

namespace {

/// An individual: genome (device per topological gene position) + fitness.
struct Individual {
  std::vector<DeviceId> genes;
  double fitness = kInfeasible;
};

}  // namespace

MapReport Nsga2Mapper::map(const Evaluator& eval, const MapRequest& request) {
  RunControl control(request);
  const CostModel& cost = eval.cost();
  const Dag& dag = cost.dag();
  const Platform& platform = cost.platform();
  const std::size_t n = dag.node_count();
  const std::size_t m = platform.device_count();
  const std::size_t evals_before = eval.evaluation_count();

  Rng rng(request.seed.value_or(params_.seed));
  const double mutation_rate =
      params_.mutation_rate > 0.0 ? params_.mutation_rate
                                  : 1.0 / static_cast<double>(std::max<
                                        std::size_t>(n, 1));

  // Genome positions follow a breadth-first topological order so that
  // single-point crossover cuts the graph into a "front" and a "back" part
  // (the paper's "topologically sorted genome").
  const std::vector<NodeId> gene_node = bfs_order(dag);

  // Repair: move the largest-area FPGA tasks back to the default device
  // until every FPGA fits its budget.
  auto repair = [&](std::vector<DeviceId>& genes) {
    for (const DeviceId f : platform.fpga_devices()) {
      const double budget = platform.device(f).area_budget;
      for (;;) {
        double used = 0.0;
        std::size_t worst = n;
        double worst_area = -1.0;
        for (std::size_t g = 0; g < n; ++g) {
          if (genes[g] != f) continue;
          const double a = cost.area(gene_node[g]);
          used += a;
          if (a > worst_area) {
            worst_area = a;
            worst = g;
          }
        }
        if (used <= budget || worst == n) break;
        genes[worst] = platform.default_device();
      }
    }
  };

  auto to_mapping = [&](const std::vector<DeviceId>& genes) {
    Mapping mp(n, platform.default_device());
    for (std::size_t g = 0; g < n; ++g) mp[gene_node[g]] = genes[g];
    return mp;
  };

  // Fitness of a whole cohort at once through the parallel batch API.
  // Evaluation consumes no rng state, so batching a cohort leaves the GA's
  // random stream — and hence its trajectory — identical to evaluating
  // each individual on the spot; the batch itself is bit-identical for
  // every thread count.
  const PoolLease lease(request, params_.threads);
  auto evaluate_cohort = [&](std::vector<Individual>& cohort) {
    std::vector<Mapping> mappings;
    mappings.reserve(cohort.size());
    for (const Individual& ind : cohort) {
      mappings.push_back(to_mapping(ind.genes));
    }
    const std::vector<double> fitness =
        eval.evaluate_batch(mappings, lease.get());
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      cohort[i].fitness = fitness[i];
    }
  };

  // Initial population: the all-default individual plus random genomes.
  std::vector<Individual> population(params_.population);
  for (std::size_t p = 0; p < population.size(); ++p) {
    auto& ind = population[p];
    ind.genes.resize(n);
    for (std::size_t g = 0; g < n; ++g) {
      ind.genes[g] = p == 0 ? platform.default_device()
                            : DeviceId(rng.below(m));
    }
    repair(ind.genes);
  }
  evaluate_cohort(population);

  // Incumbent tracking: the best fitness seen, recorded whenever it
  // improves so the trajectory explains the GA's anytime behaviour.
  double incumbent = kInfeasible;
  auto track_incumbent = [&](std::size_t generation) {
    double best = kInfeasible;
    for (const Individual& ind : population) {
      best = std::min(best, ind.fitness);
    }
    if (best < incumbent) {
      incumbent = best;
      control.record_incumbent(best, generation);
    }
  };
  track_incumbent(0);

  auto tournament = [&]() -> const Individual& {
    const Individual* best = &population[rng.below(population.size())];
    for (std::size_t t = 1; t < params_.tournament; ++t) {
      const Individual& challenger = population[rng.below(population.size())];
      if (challenger.fitness < best->fitness) best = &challenger;
    }
    return *best;
  };

  // Honest anytime loop: deadline/cancellation and the request budget are
  // checked between generations (one generation consumes `population`
  // evaluations), and the elitist population always holds the incumbent.
  std::vector<Individual> offspring;
  std::size_t generations_run = 0;
  for (std::size_t gen = 0; gen < params_.generations; ++gen) {
    if (control.should_stop(gen, eval.evaluation_count() - evals_before)) {
      break;
    }
    offspring.clear();
    while (offspring.size() < params_.population) {
      const Individual& pa = tournament();
      const Individual& pb = tournament();
      Individual child;
      child.genes = pa.genes;
      if (rng.chance(params_.crossover_rate) && n > 1) {
        // Single-point crossover on the topological genome.
        const std::size_t cut = 1 + rng.below(n - 1);
        for (std::size_t g = cut; g < n; ++g) child.genes[g] = pb.genes[g];
      }
      for (std::size_t g = 0; g < n; ++g) {
        if (rng.chance(mutation_rate)) child.genes[g] = DeviceId(rng.below(m));
      }
      repair(child.genes);
      offspring.push_back(std::move(child));
    }
    evaluate_cohort(offspring);
    // Elitist (mu + lambda) survival: best `population` of parents +
    // offspring (single-objective NSGA-II truncation).
    for (auto& child : offspring) population.push_back(std::move(child));
    std::stable_sort(population.begin(), population.end(),
                     [](const Individual& a, const Individual& b) {
                       return a.fitness < b.fitness;
                     });
    population.resize(params_.population);
    ++generations_run;
    track_incumbent(generations_run);
  }

  // Scan instead of relying on sort order: a zero-generation run (budget
  // already exhausted) leaves the initial population unsorted.
  const Individual* best = &population.front();
  for (const Individual& ind : population) {
    if (ind.fitness < best->fitness) best = &ind;
  }
  MapReport report;
  report.mapping = to_mapping(best->genes);
  report.predicted_makespan = best->fitness;
  report.iterations = generations_run;
  report.evaluations = eval.evaluation_count() - evals_before;
  control.finalize(report);
  return report;
}

void detail::register_nsga2_mapper(MapperRegistry& registry) {
  MapperEntry entry;
  entry.name = "nsga";
  entry.display_name = "NSGAII";
  entry.description =
      "Single-objective NSGA-II genetic algorithm (Section IV-A): "
      "topological genome, elitist (mu+lambda) truncation selection";
  const Nsga2Params defaults;
  entry.options = {
      {"generations", std::to_string(defaults.generations),
       "number of generations"},
      {"pop", std::to_string(defaults.population), "population size"},
      {"crossover", format_option_value(defaults.crossover_rate),
       "single-point crossover rate"},
      {"mutation", format_option_value(defaults.mutation_rate),
       "per-gene mutation rate; 0 derives the paper's 1/n"},
      {"tournament", std::to_string(defaults.tournament),
       "parent-selection tournament size"},
      {"seed", "", "GA seed; unset draws from the construction rng"},
      {"threads", std::to_string(defaults.threads),
       "fitness-evaluation worker threads (results thread-count invariant)"},
  };
  entry.factory = [](const MapperContext& ctx) {
    Nsga2Params params;
    const std::int64_t generations =
        ctx.options.get_int("generations",
                            static_cast<std::int64_t>(params.generations));
    require(generations > 0, "mapper option 'generations': must be > 0");
    params.generations = static_cast<std::size_t>(generations);
    const std::int64_t pop = ctx.options.get_int(
        "pop", static_cast<std::int64_t>(params.population));
    require(pop >= 2, "mapper option 'pop': must be >= 2");
    params.population = static_cast<std::size_t>(pop);
    params.crossover_rate =
        ctx.options.get_double("crossover", params.crossover_rate);
    require(params.crossover_rate >= 0.0 && params.crossover_rate <= 1.0,
            "mapper option 'crossover': must be in [0, 1]");
    params.mutation_rate =
        ctx.options.get_double("mutation", params.mutation_rate);
    require(params.mutation_rate >= 0.0 && params.mutation_rate <= 1.0,
            "mapper option 'mutation': must be in [0, 1] (0 derives 1/n)");
    const std::int64_t tournament = ctx.options.get_int(
        "tournament", static_cast<std::int64_t>(params.tournament));
    require(tournament >= 1, "mapper option 'tournament': must be >= 1");
    params.tournament = static_cast<std::size_t>(tournament);
    params.seed = seed_option(ctx.options, ctx.rng);
    params.threads = threads_option(ctx.options);
    return std::make_unique<Nsga2Mapper>(params);
  };
  registry.add(std::move(entry));
}

}  // namespace spmap
