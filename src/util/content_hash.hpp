#pragma once
/// \file content_hash.hpp
/// Streaming 128-bit content hashing for canonical cache keys.
///
/// The result cache (src/serve/result_cache.hpp) keys memoized MapReports
/// on the *content* of a mapping problem, so equality of keys must mean
/// equality of inputs regardless of how those inputs were spelled: JSON
/// key order, `%.17g` float round-trips and object construction details
/// must not perturb the digest. This header provides the two building
/// blocks:
///
///  * `ContentHasher` — an order-sensitive streaming hasher producing a
///    128-bit `Digest`. Every absorbed value is domain-separated by a type
///    tag, so `u64(1), u64(2)` and `str("\x01\x02")` cannot collide by
///    concatenation. Doubles are absorbed by IEEE-754 bit pattern, which
///    is exactly the identity the JSON layer round-trips (`%.17g` prints
///    and reparses to the same bits, including the sign of -0.0).
///  * `hash_json` — the canonical digest of a Json document: object keys
///    are hashed in sorted order (the serialization's key order is
///    cosmetic), arrays in element order (element order is data).
///
/// The 128-bit digest is treated as an identity: the cache equates keys by
/// digest without holding the hashed inputs. The mixer is a strengthened
/// splitmix64 over two lanes — not cryptographic, but a 2^-128 accidental
/// collision is far below any realistic workload, and an adversarial
/// client could at worst poison *its own* results. Domain-specific
/// canonicalization (task graphs, platforms, mapper specs) lives in
/// src/sched/problem_hash.hpp.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace spmap {

class Json;

/// A 128-bit content digest. Value-comparable and ordered (for sorted
/// signature multisets in the structural graph hash).
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Digest&) const = default;
  auto operator<=>(const Digest&) const = default;

  /// 32 lower-case hex characters (hi then lo), for logs and tests.
  std::string hex() const;
};

/// Order-sensitive streaming hasher; absorb values, then take `digest()`.
/// Reusable only by constructing a fresh instance.
class ContentHasher {
 public:
  ContentHasher();
  /// Domain-separated construction: two hashers seeded with different
  /// domain strings never produce equal digests for equal input streams.
  explicit ContentHasher(std::string_view domain);

  ContentHasher& u64(std::uint64_t v);
  ContentHasher& i64(std::int64_t v);
  ContentHasher& boolean(bool v);
  /// Absorbs the IEEE-754 bit pattern (NaN payloads and -0.0 included).
  ContentHasher& f64(double v);
  /// Length-prefixed, so "ab","c" and "a","bc" differ.
  ContentHasher& str(std::string_view s);
  /// Absorbs another digest (e.g. a sub-structure's hash).
  ContentHasher& digest(const Digest& d);

  Digest digest() const;

 private:
  void absorb(std::uint64_t tag, std::uint64_t v);

  std::uint64_t h1_;
  std::uint64_t h2_;
  std::uint64_t count_ = 0;
};

/// Canonical digest of a JSON document: object keys sorted, array order
/// kept, numbers by double bit pattern, full type domain separation.
/// Two documents with equal data model hash equal even if serialized with
/// different key orders or whitespace.
Digest hash_json(const Json& value);

}  // namespace spmap
