#include "model/device.hpp"

#include <algorithm>

namespace spmap {

const char* device_kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::Cpu: return "CPU";
    case DeviceKind::Gpu: return "GPU";
    case DeviceKind::Fpga: return "FPGA";
  }
  return "?";
}

double amdahl_speedup(double p, double n) {
  p = std::clamp(p, 0.0, 1.0);
  n = std::max(n, 1.0);
  return 1.0 / ((1.0 - p) + p / n);
}

}  // namespace spmap
