#include "mappers/lookahead_heft.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mappers/heft.hpp"
#include "test_support.hpp"

namespace spmap {
namespace {

using testing::chain_dag;
using testing::cpu_fpga_platform;
using testing::serial_streamable_attrs;

TEST(LookaheadHeft, ProducesValidMapping) {
  Rng rng(3);
  const Dag d = generate_sp_dag(40, rng);
  const TaskAttrs attrs = random_task_attrs(d, rng);
  const Platform p = reference_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  LookaheadHeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_NO_THROW(r.mapping.validate(d.node_count(), p.device_count()));
  EXPECT_TRUE(cost.area_feasible(r.mapping));
  EXPECT_LT(r.predicted_makespan, kInfeasible);
}

TEST(LookaheadHeft, MatchesHeftOnChain) {
  // On a pure chain every child placement is forced; lookahead cannot
  // disagree much with plain HEFT.
  const Dag d = chain_dag(6);
  const auto attrs = serial_streamable_attrs(6);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  HeftMapper heft;
  LookaheadHeftMapper laheft;
  const double h = heft.map(eval).predicted_makespan;
  const double l = laheft.map(eval).predicted_makespan;
  EXPECT_NEAR(h, l, 0.5 * h);
}

TEST(LookaheadHeft, LookaheadAvoidsGreedyTrap) {
  // Fork where the greedy EFT choice for the hub task (FPGA: locally
  // fastest) starves its children of cheap inputs. One level of lookahead
  // sees the children's EFTs and behaves no worse than HEFT.
  Rng rng(5);
  int better = 0;
  int total = 0;
  for (int rep = 0; rep < 10; ++rep) {
    const Dag d = generate_sp_dag(30, rng);
    const TaskAttrs attrs = random_task_attrs(d, rng);
    const Platform p = reference_platform();
    const CostModel cost(d, attrs, p);
    const Evaluator eval(cost);
    HeftMapper heft;
    LookaheadHeftMapper laheft;
    const double h = heft.map(eval).predicted_makespan;
    const double l = laheft.map(eval).predicted_makespan;
    if (l <= h + 1e-12) ++better;
    ++total;
  }
  // Lookahead should match or beat HEFT on a clear majority of instances.
  EXPECT_GE(better * 2, total);
}

TEST(LookaheadHeft, RespectsAreaBudget) {
  const Dag d = chain_dag(8);
  const auto attrs = serial_streamable_attrs(8);
  const Platform p = cpu_fpga_platform(1.0, /*fpga_area_budget=*/25.0);
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  LookaheadHeftMapper mapper;
  const MapperResult r = mapper.map(eval);
  EXPECT_TRUE(cost.area_feasible(r.mapping));
}

TEST(LookaheadHeft, HandlesWideFanOut) {
  Dag d(12);
  for (std::uint32_t i = 1; i <= 10; ++i) {
    d.add_edge(NodeId(0), NodeId(i), 50.0);
    d.add_edge(NodeId(i), NodeId(11), 50.0);
  }
  const auto attrs = serial_streamable_attrs(12);
  const Platform p = cpu_fpga_platform();
  const CostModel cost(d, attrs, p);
  const Evaluator eval(cost);
  LookaheadHeftMapper mapper;
  EXPECT_NO_THROW(mapper.map(eval));
}

}  // namespace
}  // namespace spmap
