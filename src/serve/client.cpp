#include "serve/client.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace spmap {

WireClient::WireClient(const Endpoint& endpoint, double connect_timeout_ms,
                       std::size_t max_frame_bytes)
    : socket_(connect_endpoint(endpoint, connect_timeout_ms)),
      reader_(max_frame_bytes) {
  Json hello = Json::object();
  hello.set("op", Json("hello"));
  hello.set("proto", Json(kWireProtocol));
  send(hello);
  std::optional<Json> answer = recv(connect_timeout_ms);
  require(answer.has_value(), "WireClient: handshake timed out");
  require(answer->contains("ok") && answer->at("ok").is_bool() &&
              answer->at("ok").as_bool(),
          "WireClient: handshake refused: " + answer->dump());
  hello_info_ = *std::move(answer);
}

void WireClient::send(const Json& frame) { send_raw(frame.dump() + "\n"); }

void WireClient::send_raw(const std::string& line) {
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        send_some(socket_.fd(), line.data() + sent, line.size() - sent);
    if (n < 0) throw Error("WireClient: connection lost while sending");
    if (n == 0) {
      // Blocking socket: EAGAIN should not happen, but poll to be safe.
      pollfd pfd{socket_.fd(), POLLOUT, 0};
      ::poll(&pfd, 1, 100);
      continue;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<Json> WireClient::recv(double timeout_ms) {
  const WallTimer timer;
  char buffer[4096];
  for (;;) {
    if (pending_next_ < pending_.size()) {
      const std::string line = std::move(pending_[pending_next_++]);
      if (pending_next_ == pending_.size()) {
        pending_.clear();
        pending_next_ = 0;
      }
      Json frame = Json::parse(line);
      require(frame.is_object(), "WireClient: non-object frame: " + line);
      return frame;
    }
    int wait_ms = -1;
    if (timeout_ms > 0.0) {
      const double left = timeout_ms - timer.millis();
      if (left <= 0.0) return std::nullopt;
      wait_ms = static_cast<int>(left) + 1;
    }
    pollfd pfd{socket_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc < 0 && errno != EINTR) {
      throw Error(std::string("WireClient: poll failed: ") +
                  std::strerror(errno));
    }
    if (rc <= 0) continue;  // timeout re-checked at the top
    const ssize_t n = recv_some(socket_.fd(), buffer, sizeof(buffer));
    if (n < 0) throw Error("WireClient: connection closed by the server");
    if (n == 0) continue;
    require(reader_.feed(buffer, static_cast<std::size_t>(n), pending_),
            "WireClient: oversized frame from the server");
  }
}

std::optional<Json> WireClient::recv_event(const std::string& event,
                                           double timeout_ms) {
  const WallTimer timer;
  for (;;) {
    double left = -1.0;
    if (timeout_ms > 0.0) {
      left = timeout_ms - timer.millis();
      if (left <= 0.0) return std::nullopt;
    }
    std::optional<Json> frame = recv(left);
    if (!frame.has_value()) return std::nullopt;
    if (frame->contains("event") && frame->at("event").is_string() &&
        frame->at("event").as_string() == event) {
      return frame;
    }
  }
}

}  // namespace spmap
