#include "sched/problem_hash.hpp"

#include <algorithm>
#include <numeric>

#include "graph/algorithms.hpp"

namespace spmap {

namespace {

ContentHasher node_attrs_hasher(const TaskAttrs& attrs, std::size_t v) {
  ContentHasher h("spmap-task/1");
  h.f64(attrs.complexity[v])
      .f64(attrs.parallelizability[v])
      .f64(attrs.streamability[v])
      .f64(attrs.area[v]);
  return h;
}

}  // namespace

Digest task_graph_hash(const TaskGraph& graph) {
  const Dag& dag = graph.dag;
  ContentHasher h("spmap-task-graph-exact/1");
  h.u64(dag.node_count()).u64(dag.edge_count());
  for (std::size_t v = 0; v < dag.node_count(); ++v) {
    h.digest(node_attrs_hasher(graph.attrs, v).digest());
    // In-edges in adjacency order: (source id, payload). Together with
    // the per-node iteration this covers every edge exactly once, in the
    // order the evaluator's flat walk sees it.
    const NodeId node{static_cast<std::uint32_t>(v)};
    h.u64(dag.in_degree(node));
    for (EdgeId e : dag.in_edges(node)) {
      h.u64(dag.src(e).v).f64(dag.data_mb(e));
    }
  }
  return h.digest();
}

GraphStructure structural_task_graph_hash(const TaskGraph& graph) {
  const Dag& dag = graph.dag;
  const std::size_t n = dag.node_count();

  // Per-node base signature: model attrs only (no ids, no labels).
  std::vector<Digest> base(n);
  for (std::size_t v = 0; v < n; ++v) {
    base[v] = node_attrs_hasher(graph.attrs, v).digest();
  }

  // Downward pass (topological order): each node's signature is a pure
  // function of its attrs and the *multiset* of (ancestor signature,
  // payload) pairs over its in-edges — well-defined independent of node
  // ids, hence invariant under relabeling.
  const std::vector<NodeId> topo = topological_order(dag);
  std::vector<Digest> down(n);
  std::vector<Digest> scratch;
  auto neighbor_fold = [&scratch](const Digest& self, const char* domain) {
    std::sort(scratch.begin(), scratch.end());
    ContentHasher h(domain);
    h.digest(self).u64(scratch.size());
    for (const Digest& d : scratch) h.digest(d);
    return h.digest();
  };
  for (NodeId v : topo) {
    scratch.clear();
    for (EdgeId e : dag.in_edges(v)) {
      ContentHasher edge("spmap-edge/1");
      edge.digest(down[dag.src(e).v]).f64(dag.data_mb(e));
      scratch.push_back(edge.digest());
    }
    down[v.v] = neighbor_fold(base[v.v], "spmap-down/1");
  }

  // Upward pass (reverse topological order) over out-edges, so the final
  // signature sees both the ancestor and the descendant structure.
  std::vector<Digest> up(n);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId v = *it;
    scratch.clear();
    for (EdgeId e : dag.out_edges(v)) {
      ContentHasher edge("spmap-edge/1");
      edge.digest(up[dag.dst(e).v]).f64(dag.data_mb(e));
      scratch.push_back(edge.digest());
    }
    up[v.v] = neighbor_fold(base[v.v], "spmap-up/1");
  }

  std::vector<Digest> sig(n);
  for (std::size_t v = 0; v < n; ++v) {
    ContentHasher h("spmap-node-sig/1");
    h.digest(down[v]).digest(up[v]);
    sig[v] = h.digest();
  }

  GraphStructure out;
  // Canonical ranks: nodes sorted by signature, ties (structural twins)
  // broken by id — deterministic, but only id-invariant when unambiguous.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&sig](std::uint32_t a, std::uint32_t b) {
              if (sig[a] != sig[b]) return sig[a] < sig[b];
              return a < b;
            });
  out.canonical_rank.resize(n);
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    out.canonical_rank[order[rank]] = rank;
    if (rank > 0 && sig[order[rank]] == sig[order[rank - 1]]) {
      out.ambiguous = true;
    }
  }

  ContentHasher h("spmap-task-graph-structural/1");
  h.u64(n).u64(dag.edge_count());
  for (std::uint32_t v : order) h.digest(sig[v]);
  out.digest = h.digest();
  return out;
}

Digest platform_hash(const Platform& platform) {
  ContentHasher h("spmap-platform/1");
  const std::size_t n = platform.device_count();
  h.u64(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Device& d = platform.device(DeviceId{static_cast<std::uint32_t>(i)});
    h.u64(static_cast<std::uint64_t>(d.kind))
        .f64(d.lanes)
        .f64(d.lane_gops)
        .u64(d.slots)
        .f64(d.area_budget)
        .f64(d.stream_gops_per_streamability)
        .f64(d.stream_fill_fraction)
        .f64(d.idle_watts)
        .f64(d.active_watts)
        .f64(d.transfer_watts);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const DeviceId from{static_cast<std::uint32_t>(i)};
      const DeviceId to{static_cast<std::uint32_t>(j)};
      h.f64(platform.bandwidth_gbps(from, to)).f64(platform.latency_s(from, to));
    }
  }
  return h.digest();
}

}  // namespace spmap
