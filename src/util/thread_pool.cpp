#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

#include "util/mutex.hpp"

namespace spmap {

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(std::max<std::size_t>(1, threads)),
      errors_(thread_count_) {
  threads_.reserve(thread_count_ - 1);
  for (std::size_t w = 1; w < thread_count_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::partition(std::size_t n,
                                                          std::size_t workers,
                                                          std::size_t w) {
  // First (n % workers) blocks get one extra item; blocks stay contiguous.
  const std::size_t base = n / workers;
  const std::size_t extra = n % workers;
  const std::size_t begin = w * base + std::min(w, extra);
  const std::size_t end = begin + base + (w < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  run_job(n, 0, fn);
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  run_job(n, std::max<std::size_t>(1, chunk), fn);
}

void ThreadPool::run_share(
    std::size_t n, std::size_t chunk, std::size_t worker,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  try {
    if (chunk == 0) {
      const auto [begin, end] = partition(n, thread_count_, worker);
      if (begin < end) fn(begin, end, worker);
    } else {
      // Chunk c covers [c*chunk, (c+1)*chunk) and belongs to worker
      // c % thread_count_; each worker walks its chunks in increasing order.
      for (std::size_t b = worker * chunk; b < n;
           b += thread_count_ * chunk) {
        fn(b, std::min(n, b + chunk), worker);
      }
    }
  } catch (...) {
    errors_[worker] = std::current_exception();
  }
}

void ThreadPool::run_job(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  suppressed_count_.store(0, std::memory_order_release);
  if (thread_count_ == 1 || n <= 1) {
    // Inline path: a single worker's exception propagates directly.
    if (n == 0) return;
    if (chunk == 0) {
      fn(0, n, 0);
    } else {
      for (std::size_t b = 0; b < n; b += chunk) {
        fn(b, std::min(n, b + chunk), 0);
      }
    }
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    job_n_ = n;
    job_chunk_ = chunk;
    errors_.assign(thread_count_, nullptr);
    pending_ = thread_count_ - 1;
    ++job_epoch_;
  }
  work_ready_.notify_all();

  // The caller is worker 0.
  run_share(n, chunk, 0, fn);

  MutexLock lock(mutex_);
  while (pending_ != 0) work_done_.wait(lock);
  job_ = nullptr;

  // Rethrow the lowest-indexed worker's exception (a deterministic pick);
  // count the rest so they are not dropped silently.
  std::exception_ptr first;
  std::size_t thrown = 0;
  for (std::size_t w = 0; w < thread_count_; ++w) {
    if (!errors_[w]) continue;
    if (!first) first = errors_[w];
    ++thrown;
    errors_[w] = nullptr;
  }
  if (!first) return;
  const std::size_t suppressed = thrown - 1;
  suppressed_count_.store(suppressed, std::memory_order_release);
  lock.unlock();
  if (suppressed > 0) {
    std::fprintf(stderr,
                 "spmap: ThreadPool: %zu worker exception(s) suppressed "
                 "(rethrowing the first)\n",
                 suppressed);
  }
  std::rethrow_exception(first);
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* job;
    std::size_t n;
    std::size_t chunk;
    {
      MutexLock lock(mutex_);
      while (!stop_ && job_epoch_ == seen_epoch) work_ready_.wait(lock);
      if (stop_) return;
      seen_epoch = job_epoch_;
      job = job_;
      n = job_n_;
      chunk = job_chunk_;
    }
    run_share(n, chunk, worker, *job);
    {
      MutexLock lock(mutex_);
      if (--pending_ == 0) work_done_.notify_one();
    }
  }
}

}  // namespace spmap
