#pragma once
/// \file device.hpp
/// Processing-unit model (paper Section IV-A; model of Wilhelm et al. [5]).
///
/// A device executes one task at a time (except for FPGA dataflow streaming,
/// see cost_model.hpp). Task speed depends on the device kind:
///  * CPU/GPU: `lane_gops * amdahl(parallelizability, lanes)` — Amdahl's law
///    limits the usable lanes, which is why GPUs only pay off for highly
///    parallelizable tasks;
///  * FPGA: `stream_gops_per_streamability * streamability` — throughput is
///    set by how well the task maps to a dataflow pipeline, independent of
///    thread-level parallelizability. FPGA capacity is limited by an area
///    budget.

#include <string>

namespace spmap {

enum class DeviceKind { Cpu, Gpu, Fpga };

/// Human-readable device kind name ("CPU", "GPU", "FPGA").
const char* device_kind_name(DeviceKind kind);

struct Device {
  std::string name;
  DeviceKind kind = DeviceKind::Cpu;

  /// Parallel processing lanes (cores / shader processors). Ignored for
  /// FPGAs.
  double lanes = 1.0;
  /// Throughput of one lane in G point-operations per second. Ignored for
  /// FPGAs.
  double lane_gops = 1.0;
  /// Concurrent execution contexts. A device runs up to `slots` tasks at
  /// once; each running task sees `lanes / slots` lanes in its Amdahl
  /// speedup. Multicore CPUs get several contexts (independent tasks
  /// overlap there even in the all-CPU baseline); GPUs and FPGAs keep one.
  std::size_t slots = 1;

  /// Lanes available to one task (lanes divided over the slots).
  double lanes_per_slot() const {
    return lanes / static_cast<double>(slots == 0 ? 1 : slots);
  }

  /// FPGA only: total reconfigurable-area budget (task area units).
  double area_budget = 0.0;
  /// FPGA only: throughput in Gops per unit of task streamability.
  double stream_gops_per_streamability = 0.0;
  /// FPGA only: pipeline fill overhead of dataflow streaming, as a fraction
  /// of the producing stage's execution time. A streamed consumer can start
  /// this long after its producer *starts* (instead of waiting for it to
  /// finish).
  double stream_fill_fraction = 0.1;

  /// Power draw while idle (W). Used by the energy extension
  /// (model/energy.hpp) for multi-objective mapping.
  double idle_watts = 0.0;
  /// Power draw while executing a task (W).
  double active_watts = 0.0;
  /// Additional power draw of the device's link while transferring (W).
  double transfer_watts = 0.0;

  bool is_fpga() const { return kind == DeviceKind::Fpga; }
};

/// Amdahl's law: speedup of a task with parallelizable fraction `p` on `n`
/// lanes, relative to one lane. p is clamped to [0, 1], n to [1, inf).
double amdahl_speedup(double p, double n);

}  // namespace spmap
