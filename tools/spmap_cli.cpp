/// spmap_cli — command-line driver for the spmap library.
///
/// Subcommands:
///   generate      Create a task graph (random SP / almost-SP / workflow)
///                 and write it as JSON.
///   decompose     Print the series-parallel decomposition forest of a
///                 graph.
///   map           Run a mapping algorithm and print mapping + makespan
///                 (+ optional Gantt chart / schedule JSON). Takes the
///                 anytime run API bounds: --deadline-ms, --max-evals,
///                 --max-iters, --cancel-after-ms.
///   evaluate      Evaluate an explicit mapping.
///   sweep         Run a declarative scenario file (platform + workload +
///                 mapper line-up; see docs/FORMATS.md) and write a
///                 machine-readable results file.
///   serve         Run a scenario through the async MappingService job
///                 layer: --jobs N workers, per-job lifecycle lines on
///                 stderr, same results document as sweep (bit-identical
///                 to the serial runner).
///   daemon        Serve mapping jobs over a socket: listens on
///                 unix:PATH or tcp:HOST:PORT speaking spmap-wire/1
///                 (newline-delimited JSON; see docs/SERVING.md), with
///                 priority admission, streaming incumbent events and a
///                 graceful SIGTERM drain.
///   list-mappers  Print the MapperRegistry: every algorithm with its
///                 description and default (paper) parameters
///                 (--markdown emits the docs/README table).
///
/// Mapping algorithms are resolved by name through the MapperRegistry;
/// options ride along after a colon, e.g. `--mapper nsga:generations=50`.
///
/// Examples:
///   spmap_cli generate --type sp --tasks 40 --seed 7 --out g.json
///   spmap_cli generate --type workflow --family montage --width 16 --out m.json
///   spmap_cli decompose --in g.json
///   spmap_cli map --in g.json --mapper spff --gantt
///   spmap_cli map --in g.json --mapper nsga:generations=50,pop=100
///   spmap_cli evaluate --in g.json --mapping 0,0,1,2,0,...
///   spmap_cli sweep --scenario scenarios/examples/fig4_small.json --out r.json
///   spmap_cli serve --scenario scenarios/examples/fig4_small.json --jobs 4
///   spmap_cli map --in g.json --mapper anneal:iters=1000000 --deadline-ms 50
///   spmap_cli daemon --listen unix:/tmp/spmap.sock --workers 4
///   spmap_cli list-mappers
///
/// Exit codes (tools/exit_codes.hpp, enforced by cli_contract_test):
/// 0 success, 1 runtime failure (diagnostics on stderr), 2 usage.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "bench/scenario.hpp"
#include "bench/scenario_runner.hpp"
#include "exit_codes.hpp"
#include "serve/daemon.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mappers/registry.hpp"
#include "sched/schedule.hpp"
#include "sp/decomposition_forest.hpp"
#include "sp/subgraph_set.hpp"
#include "util/failpoint.hpp"
#include "util/flags.hpp"
#include "util/fs.hpp"
#include "util/table.hpp"
#include "workflows/wfcommons.hpp"
#include "workflows/workflows.hpp"

using namespace spmap;
using spmap::cli::kExitFailure;
using spmap::cli::kExitOk;
using spmap::cli::kExitUsage;

namespace {

/// Fires a CancelToken after a delay unless destroyed first. The
/// destructor wakes and joins the timer thread immediately, so the CLI
/// neither lingers for the full delay after a fast run nor terminates on
/// exception unwind with a joinable thread.
class DelayedCancel {
 public:
  DelayedCancel(CancelToken token, double after_ms)
      : thread_([this, token, after_ms] {
          std::unique_lock<std::mutex> lock(mutex_);
          const bool dismissed = dismissed_cv_.wait_for(
              lock, std::chrono::duration<double, std::milli>(after_ms),
              [this] { return dismissed_; });
          if (!dismissed) token.request_cancel();
        }) {}

  ~DelayedCancel() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      dismissed_ = true;
    }
    dismissed_cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable dismissed_cv_;
  bool dismissed_ = false;
  std::thread thread_;
};

int usage() {
  std::fprintf(stderr,
               "usage: spmap_cli "
               "<generate|import|decompose|map|evaluate|sweep|serve|daemon|"
               "list-mappers> [flags]\n"
               "  import       --wf FILE [--seed S] [--out FILE]   "
               "(WfCommons wfformat -> spmap JSON)\n"
               "  generate     --type sp|almost-sp|workflow --tasks N "
               "[--extra-edges K] [--family NAME --width W] [--seed S] "
               "[--out FILE]\n"
               "  decompose    --in FILE [--seed S] [--dot]\n"
               "  map          --in FILE --mapper NAME[:key=value,...] "
               "[--seed S] [--gantt] [--schedule-json] [--random-orders N] "
               "[--deadline-ms MS] [--max-evals N] [--max-iters N] "
               "[--cancel-after-ms MS]\n"
               "  evaluate     --in FILE --mapping 0,1,2,... "
               "[--random-orders N]\n"
               "  sweep        --scenario FILE [--out FILE] [--threads N] "
               "[--seed S] [--repetitions N] [--cache-entries N] "
               "[--cache-bytes N] [--quiet]   (run a declarative "
               "scenario; see docs/FORMATS.md)\n"
               "  serve        --scenario FILE --jobs N [--out FILE] "
               "[--seed S] [--repetitions N] [--cache-entries N] "
               "[--cache-bytes N] [--quiet]   (run a scenario "
               "through the MappingService job layer)\n"
               "  daemon       --listen unix:PATH|tcp:HOST:PORT "
               "[--workers N] [--max-queued N] [--idle-timeout-s S] "
               "[--grace-ms MS] [--seed S] [--journal FILE] "
               "[--retention N] [--resume-window-s S] "
               "[--cache-entries N] [--cache-bytes N] "
               "[--failpoints SPEC] [--quiet]   (spmap-wire/1 "
               "serving daemon; see docs/SERVING.md)\n"
               "  list-mappers [--verbose] [--markdown]   (all registered "
               "algorithm names, descriptions, default parameters)\n");
  return kExitUsage;
}

std::string read_file(const std::string& path) {
  return read_text_file(path, "input file");
}

void write_output(const std::string& path, const std::string& content) {
  if (path.empty()) {
    std::fputs(content.c_str(), stdout);
    return;
  }
  std::ofstream out(path);
  require(out.good(), "cannot open output file: " + path);
  out << content;
}

WorkflowFamily family_by_name(const std::string& name) {
  for (const WorkflowFamily f : all_workflow_families()) {
    if (name == workflow_family_name(f)) return f;
  }
  throw Error("unknown workflow family: " + name);
}

int cmd_generate(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"type", "tasks", "extra-edges", "family", "width",
                     "seed", "out"});
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const std::string type = flags.get("type", "sp");

  Dag dag;
  TaskAttrs attrs;
  if (type == "sp" || type == "almost-sp") {
    const auto tasks = static_cast<std::size_t>(flags.get_int("tasks", 30));
    dag = generate_sp_dag(tasks, rng);
    if (type == "almost-sp") {
      const auto extra =
          static_cast<std::size_t>(flags.get_int("extra-edges", 10));
      dag = add_random_edges(dag, extra, rng);
    }
    attrs = random_task_attrs(dag, rng);
  } else if (type == "workflow") {
    const auto width = static_cast<std::size_t>(flags.get_int("width", 12));
    WorkflowInstance inst =
        generate_workflow(family_by_name(flags.get("family", "montage")),
                          width, rng);
    dag = std::move(inst.dag);
    attrs = std::move(inst.attrs);
  } else {
    throw Error("unknown --type: " + type);
  }
  write_output(flags.get("out", ""), to_json(dag, attrs) + "\n");
  std::fprintf(stderr, "generated %zu tasks, %zu edges\n", dag.node_count(),
               dag.edge_count());
  return kExitOk;
}

int cmd_import(int argc, char** argv) {
  const Flags flags(argc, argv, {"wf", "seed", "out"});
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const TaskGraph tg =
      import_wfcommons_json(read_file(flags.get("wf", "")), rng);
  write_output(flags.get("out", ""), to_json(tg.dag, tg.attrs) + "\n");
  std::fprintf(stderr, "imported %zu tasks, %zu edges\n",
               tg.dag.node_count(), tg.dag.edge_count());
  return kExitOk;
}

int cmd_decompose(int argc, char** argv) {
  const Flags flags(argc, argv, {"in", "seed", "dot"});
  const TaskGraph tg = task_graph_from_json(read_file(flags.get("in", "")));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  if (flags.get_bool("dot", false)) {
    std::fputs(to_dot(tg.dag).c_str(), stdout);
  }
  const Normalized norm = normalize_source_sink(tg.dag);
  const auto result = grow_decomposition_forest(norm.dag, rng);
  std::printf("nodes=%zu edges=%zu trees=%zu cuts=%zu series_parallel=%s\n",
              tg.dag.node_count(), tg.dag.edge_count(),
              result.forest.roots().size(), result.cuts,
              result.cuts == 0 ? "yes" : "no");
  for (std::size_t i = 0; i < result.forest.roots().size(); ++i) {
    std::printf("tree %zu: %s\n", i,
                result.forest.to_string(result.forest.roots()[i]).c_str());
  }
  const auto set = subgraphs_from_forest(result.forest, tg.dag.node_count());
  std::printf("candidate subgraphs: %zu\n", set.size());
  return kExitOk;
}

/// Emits the mapper table as GitHub-flavored markdown. This output is the
/// single source of the table committed at docs/mappers_table.md (and
/// embedded in README.md / docs/MAPPERS.md); CI diffs the two, so the
/// documentation cannot drift from the registry.
int list_mappers_markdown() {
  const MapperRegistry& registry = MapperRegistry::instance();
  std::printf("| name | algorithm | sp-decomp | defaults | description |\n");
  std::printf("|------|-----------|-----------|----------|-------------|\n");
  for (const std::string& name : registry.names()) {
    const MapperEntry& entry = registry.at(name);
    std::printf("| %s | %s | %s | %s | %s |\n", entry.name.c_str(),
                entry.display_name.c_str(),
                entry.needs_sp_decomposition ? "yes" : "no",
                entry.default_spec().c_str(), entry.description.c_str());
  }
  return kExitOk;
}

int cmd_list_mappers(int argc, char** argv) {
  const Flags flags(argc, argv, {"verbose", "markdown"});
  if (flags.get_bool("markdown", false)) return list_mappers_markdown();
  const MapperRegistry& registry = MapperRegistry::instance();
  Table table({"name", "algorithm", "sp-decomp", "defaults", "description"});
  for (const std::string& name : registry.names()) {
    const MapperEntry& entry = registry.at(name);
    table.add_row({entry.name, entry.display_name,
                   entry.needs_sp_decomposition ? "yes" : "no",
                   entry.default_spec(), entry.description});
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (flags.get_bool("verbose", false)) {
    std::printf("\nper-mapper options (--mapper name:key=value,...):\n");
    for (const std::string& name : registry.names()) {
      const MapperEntry& entry = registry.at(name);
      if (entry.options.empty()) continue;
      std::printf("  %s:\n", entry.name.c_str());
      for (const MapperOptionInfo& opt : entry.options) {
        std::printf("    %-14s default=%-8s %s\n", opt.key.c_str(),
                    opt.default_value.empty() ? "-"
                                              : opt.default_value.c_str(),
                    opt.description.c_str());
      }
    }
  }
  return kExitOk;
}

int cmd_map(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"in", "mapper", "seed", "gantt", "schedule-json",
                     "random-orders", "deadline-ms", "max-evals",
                     "max-iters", "cancel-after-ms"});
  const TaskGraph tg = task_graph_from_json(read_file(flags.get("in", "")));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 1)));
  const Platform platform = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, platform);
  const auto orders =
      static_cast<std::size_t>(flags.get_int("random-orders", 100));
  const Evaluator eval(cost, {.random_orders = orders});

  // Anytime run bounds (run_api.hpp): deadline, budgets, and an optional
  // delayed cancellation that exercises the cooperative CancelToken.
  MapRequest request;
  request.deadline_ms = flags.get_double("deadline-ms", 0.0);
  require(request.deadline_ms >= 0.0, "map: --deadline-ms must be >= 0");
  const std::int64_t max_evals = flags.get_int("max-evals", 0);
  require(max_evals >= 0, "map: --max-evals must be >= 0");
  request.max_evaluations = static_cast<std::size_t>(max_evals);
  const std::int64_t max_iters = flags.get_int("max-iters", 0);
  require(max_iters >= 0, "map: --max-iters must be >= 0");
  request.max_iterations = static_cast<std::size_t>(max_iters);
  std::optional<DelayedCancel> canceller;
  if (flags.has("cancel-after-ms")) {
    canceller.emplace(request.cancel,
                      flags.get_double("cancel-after-ms", 0.0));
  }

  auto mapper = MapperRegistry::instance().create(flags.get("mapper", "spff"),
                                                  tg.dag, rng);
  const MapReport r = mapper->map(
      eval, merge_run_bounds(mapper->default_request(), request));
  canceller.reset();
  const double baseline = eval.default_mapping_makespan();
  std::printf("mapper=%s makespan=%.6f baseline=%.6f improvement=%.2f%%\n",
              mapper->name().c_str(), r.predicted_makespan, baseline,
              100.0 * std::max(0.0, (baseline - r.predicted_makespan) /
                                        baseline));
  std::printf(
      "termination=%s iterations=%zu evaluations=%zu wall_ms=%.3f "
      "incumbents=%zu\n",
      to_string(r.termination), r.iterations, r.evaluations,
      1e3 * r.wall_seconds, r.trajectory.size());
  std::printf("mapping=");
  for (std::size_t i = 0; i < r.mapping.size(); ++i) {
    std::printf("%s%u", i ? "," : "", r.mapping.device[i].v);
  }
  std::printf("\n");
  const Schedule schedule = extract_schedule(eval, r.mapping);
  if (flags.get_bool("gantt", false)) {
    std::fputs(schedule.to_gantt(tg.dag, platform).c_str(), stdout);
  }
  if (flags.get_bool("schedule-json", false)) {
    std::fputs((schedule.to_json(tg.dag, platform).dump(2) + "\n").c_str(),
               stdout);
  }
  if (r.predicted_makespan >= kInfeasible) {
    std::fprintf(stderr, "spmap_cli: mapper returned an infeasible mapping\n");
    return kExitFailure;
  }
  return kExitOk;
}

/// Shared body of `sweep` and `serve`: both run a declarative scenario
/// through the MappingService-backed runner and emit the same
/// `spmap-sweep-results/1` document; serve sizes the worker pool with
/// --jobs and narrates each job's lifecycle on stderr.
int run_scenario_command(int argc, char** argv, bool serve) {
  const char* cmd = serve ? "serve" : "sweep";
  const Flags flags(argc, argv,
                    {"scenario", "out", serve ? "jobs" : "threads", "seed",
                     "repetitions", "cache-entries", "cache-bytes", "quiet"});
  const std::string path = flags.get("scenario", "");
  require(!path.empty(),
          std::string(cmd) + ": --scenario FILE is required");
  Scenario scenario = load_scenario_file(path);
  if (flags.has("seed")) {
    scenario.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  }
  if (flags.has("repetitions")) {
    const auto reps = flags.get_int("repetitions", 1);
    require(reps >= 1,
            std::string(cmd) + ": --repetitions must be >= 1");
    scenario.repetitions = static_cast<std::size_t>(reps);
  }
  SweepRunOptions options;
  const auto workers = flags.get_int(serve ? "jobs" : "threads", 1);
  require(workers >= 1, std::string(cmd) + (serve ? ": --jobs must be >= 1"
                                                  : ": --threads must be >= 1"));
  options.threads = static_cast<std::size_t>(workers);
  options.progress = !flags.get_bool("quiet", false);
  options.log_jobs = serve && !flags.get_bool("quiet", false);
  // Result cache is off by default so the default results document stays
  // byte-stable (no cache_* keys).
  const std::int64_t cache_entries = flags.get_int("cache-entries", 0);
  require(cache_entries >= 0,
          std::string(cmd) + ": --cache-entries must be >= 0");
  options.cache_entries = static_cast<std::size_t>(cache_entries);
  const std::int64_t cache_bytes = flags.get_int("cache-bytes", 0);
  require(cache_bytes >= 0, std::string(cmd) + ": --cache-bytes must be >= 0");
  options.cache_bytes = static_cast<std::size_t>(cache_bytes);

  const std::string out = flags.get("out", "");
  if (out.empty()) {
    // No --out: the results document is the output (pipe-friendly).
    const Json results = run_scenario(scenario, options);
    write_output("", results.dump(2) + "\n");
  } else {
    run_report_write(scenario, options, out, std::cout);
  }
  return kExitOk;
}

int cmd_sweep(int argc, char** argv) {
  return run_scenario_command(argc, argv, /*serve=*/false);
}

int cmd_serve(int argc, char** argv) {
  return run_scenario_command(argc, argv, /*serve=*/true);
}

int cmd_evaluate(int argc, char** argv) {
  const Flags flags(argc, argv, {"in", "mapping", "random-orders"});
  const TaskGraph tg = task_graph_from_json(read_file(flags.get("in", "")));
  const Platform platform = reference_platform();
  const CostModel cost(tg.dag, tg.attrs, platform);
  const auto orders =
      static_cast<std::size_t>(flags.get_int("random-orders", 100));
  const Evaluator eval(cost, {.random_orders = orders});

  Mapping mapping(tg.dag.node_count(), platform.default_device());
  const std::string spec = flags.get("mapping", "");
  if (!spec.empty()) {
    std::stringstream ss(spec);
    std::string item;
    std::size_t i = 0;
    while (std::getline(ss, item, ',')) {
      require(i < mapping.size(), "evaluate: mapping longer than graph");
      mapping.device[i++] = DeviceId(
          static_cast<std::uint32_t>(std::stoul(item)));
    }
    require(i == mapping.size(), "evaluate: mapping shorter than graph");
  }
  mapping.validate(tg.dag.node_count(), platform.device_count());
  const double ms = eval.evaluate(mapping);
  std::printf("makespan=%.6f feasible=%s\n", ms,
              ms < kInfeasible ? "yes" : "no");
  if (ms >= kInfeasible) {
    // The result line stays on stdout for parsers; the failure itself is
    // an exit-code + stderr affair (the CLI exit-code contract).
    std::fprintf(stderr, "spmap_cli: mapping is infeasible\n");
    return kExitFailure;
  }
  return kExitOk;
}

/// Long-running serving daemon over the MappingService (docs/SERVING.md).
/// Drains gracefully on SIGTERM/SIGINT or a wire `drain`; the exit code
/// is the drain verdict (0 clean, 1 jobs abandoned at the hard deadline).
int cmd_daemon(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {"listen", "workers", "max-queued", "idle-timeout-s",
                     "grace-ms", "seed", "journal", "retention",
                     "resume-window-s", "cache-entries", "cache-bytes",
                     "failpoints", "quiet"});
  const std::string listen = flags.get("listen", "");
  require(!listen.empty(),
          "daemon: --listen ENDPOINT is required (unix:PATH or "
          "tcp:HOST:PORT)");
  DaemonOptions options;
  options.endpoint = Endpoint::parse(listen);
  const std::int64_t workers = flags.get_int("workers", 2);
  require(workers >= 1, "daemon: --workers must be >= 1");
  options.workers = static_cast<std::size_t>(workers);
  const std::int64_t max_queued = flags.get_int("max-queued", 64);
  require(max_queued >= 0, "daemon: --max-queued must be >= 0");
  options.max_queued = static_cast<std::size_t>(max_queued);
  options.idle_timeout_s = flags.get_double("idle-timeout-s", 0.0);
  require(options.idle_timeout_s >= 0.0,
          "daemon: --idle-timeout-s must be >= 0");
  options.grace_ms = flags.get_double("grace-ms", 5000.0);
  require(options.grace_ms >= 0.0, "daemon: --grace-ms must be >= 0");
  if (flags.has("seed")) {
    options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  }
  options.journal_path = flags.get("journal", "");
  const std::int64_t retention =
      flags.get_int("retention", static_cast<std::int64_t>(
                                     options.completed_retention));
  require(retention >= 1, "daemon: --retention must be >= 1");
  options.completed_retention = static_cast<std::size_t>(retention);
  options.resume_window_s =
      flags.get_double("resume-window-s", options.resume_window_s);
  require(options.resume_window_s >= 0.0,
          "daemon: --resume-window-s must be >= 0");
  // Cache is on by default (cached answers are bit-identical to
  // recomputation); --cache-entries 0 disables it.
  const std::int64_t cache_entries = flags.get_int(
      "cache-entries", static_cast<std::int64_t>(options.cache_entries));
  require(cache_entries >= 0, "daemon: --cache-entries must be >= 0");
  options.cache_entries = static_cast<std::size_t>(cache_entries);
  const std::int64_t cache_bytes = flags.get_int(
      "cache-bytes", static_cast<std::int64_t>(options.cache_bytes));
  require(cache_bytes >= 1, "daemon: --cache-bytes must be >= 1");
  options.cache_bytes = static_cast<std::size_t>(cache_bytes);
  // Fault injection: the flag takes precedence; the environment is read
  // either way so CI can arm failpoints without touching the invocation.
  Failpoints::instance().arm_from_env();
  if (flags.has("failpoints")) {
    Failpoints::instance().arm(flags.get("failpoints", ""));
  }
  options.install_signal_handlers = true;
  options.log = flags.get_bool("quiet", false) ? nullptr : stderr;

  Daemon daemon(options);
  daemon.bind();
  return daemon.run() == 0 ? kExitOk : kExitFailure;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
    if (cmd == "import") return cmd_import(argc - 1, argv + 1);
    if (cmd == "decompose") return cmd_decompose(argc - 1, argv + 1);
    if (cmd == "map") return cmd_map(argc - 1, argv + 1);
    if (cmd == "evaluate") return cmd_evaluate(argc - 1, argv + 1);
    if (cmd == "sweep") return cmd_sweep(argc - 1, argv + 1);
    if (cmd == "serve") return cmd_serve(argc - 1, argv + 1);
    if (cmd == "daemon") return cmd_daemon(argc - 1, argv + 1);
    if (cmd == "list-mappers") return cmd_list_mappers(argc - 1, argv + 1);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "spmap_cli: %s\n", ex.what());
    return kExitFailure;
  }
  return usage();
}
