/// The spmap-wire/1 frame codec (serve/wire.hpp): byte-stream splitting
/// under partial reads, oversized-line poisoning, UTF-8 validation,
/// frame parsing, and the response/event line builders — all table-driven
/// and socket-free.

#include <gtest/gtest.h>

#include "serve/wire.hpp"

namespace spmap {
namespace {

// ---- FrameReader -----------------------------------------------------------

TEST(FrameReader, SplitsCompleteLines) {
  FrameReader reader;
  std::vector<std::string> frames;
  EXPECT_TRUE(reader.feed("{\"op\":\"a\"}\n{\"op\":\"b\"}\n", frames));
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], "{\"op\":\"a\"}");
  EXPECT_EQ(frames[1], "{\"op\":\"b\"}");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReader, ReassemblesPartialFramesAcrossReads) {
  FrameReader reader;
  std::vector<std::string> frames;
  // One frame delivered in four reads, split mid-token.
  EXPECT_TRUE(reader.feed("{\"op\"", frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_GT(reader.buffered(), 0u);
  EXPECT_TRUE(reader.feed(":\"hel", frames));
  EXPECT_TRUE(reader.feed("lo\"}", frames));
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(reader.feed("\n", frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "{\"op\":\"hello\"}");
}

TEST(FrameReader, StripsCarriageReturns) {
  FrameReader reader;
  std::vector<std::string> frames;
  EXPECT_TRUE(reader.feed("{\"op\":\"a\"}\r\n", frames));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "{\"op\":\"a\"}");
}

TEST(FrameReader, OversizedLineLatchesOverflow) {
  FrameReader reader(8);  // tiny limit
  std::vector<std::string> frames;
  EXPECT_TRUE(reader.feed("{\"a\":1}\n", frames));  // 7 bytes: fits
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(reader.feed("{\"op\":\"too long\"}", frames));
  EXPECT_TRUE(reader.overflowed());
  // Poisoned: even a valid follow-up produces nothing.
  EXPECT_FALSE(reader.feed("{\"b\":2}\n", frames));
  EXPECT_EQ(frames.size(), 1u);
}

TEST(FrameReader, OverflowCountsOnlyTheCurrentLine) {
  FrameReader reader(16);
  std::vector<std::string> frames;
  // Many short lines may pass through a small-limit reader; the limit is
  // per line, not per connection.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(reader.feed("{\"n\":1234567}\n", frames));
  }
  EXPECT_EQ(frames.size(), 100u);
  EXPECT_FALSE(reader.overflowed());
}

// ---- UTF-8 validation ------------------------------------------------------

struct Utf8Case {
  const char* name;
  std::string data;
  bool valid;
};

TEST(WireUtf8, TableDrivenValidation) {
  const std::vector<Utf8Case> cases = {
      {"ascii", "hello {\"op\":1}", true},
      {"two_byte", "caf\xc3\xa9", true},
      {"three_byte", "\xe2\x82\xac", true},          // €
      {"four_byte", "\xf0\x9f\x9a\x80", true},       // rocket
      {"empty", "", true},
      {"bare_continuation", "\x80", false},
      {"truncated_two_byte", "\xc3", false},
      {"truncated_four_byte", "\xf0\x9f\x9a", false},
      {"overlong_slash", "\xc0\xaf", false},         // '/' as 2 bytes
      {"overlong_three_byte", "\xe0\x80\xaf", false},
      {"surrogate_half", "\xed\xa0\x80", false},     // U+D800
      {"beyond_max", "\xf4\x90\x80\x80", false},     // > U+10FFFF
      {"fe_ff_bytes", "\xfe\xff", false},
      {"lead_then_ascii", "\xc3(", false},
  };
  for (const Utf8Case& c : cases) {
    EXPECT_EQ(is_valid_utf8(c.data), c.valid) << c.name;
  }
}

// ---- parse_frame -----------------------------------------------------------

struct ParseCase {
  const char* name;
  std::string line;
  /// Expected failure (nullopt = the line must parse).
  std::optional<WireErrorCode> code;
  std::string op;  ///< expected verb on success
};

TEST(WireParse, TableDrivenFrames) {
  const std::vector<ParseCase> cases = {
      {"submit", "{\"op\":\"submit\",\"mapper\":\"spff\"}", std::nullopt,
       "submit"},
      {"unknown_verb_still_parses", "{\"op\":\"frobnicate\"}", std::nullopt,
       "frobnicate"},  // unknown ops are the session's business
      {"invalid_utf8", std::string("{\"op\":\"\xc0\xaf\"}"),
       WireErrorCode::kBadUtf8, ""},
      {"not_json", "this is not json", WireErrorCode::kBadJson, ""},
      {"truncated_json", "{\"op\":\"subm", WireErrorCode::kBadJson, ""},
      {"not_an_object", "[1,2,3]", WireErrorCode::kBadJson, ""},
      {"number_frame", "42", WireErrorCode::kBadJson, ""},
      {"missing_op", "{\"mapper\":\"spff\"}", WireErrorCode::kBadRequest,
       ""},
      {"non_string_op", "{\"op\":7}", WireErrorCode::kBadRequest, ""},
      {"empty_line", "", WireErrorCode::kBadJson, ""},
  };
  for (const ParseCase& c : cases) {
    Frame frame;
    std::string message;
    const auto code = parse_frame(c.line, frame, message);
    EXPECT_EQ(code, c.code) << c.name;
    if (!c.code.has_value()) {
      EXPECT_EQ(frame.op, c.op) << c.name;
      EXPECT_TRUE(frame.body.is_object()) << c.name;
    } else {
      EXPECT_FALSE(message.empty()) << c.name;
    }
  }
}

// ---- line builders ---------------------------------------------------------

TEST(WireLines, OkLineShape) {
  Json body = Json::object();
  body.set("op", Json("submit"));
  body.set("job", Json(std::size_t{7}));
  const std::string line = ok_line(std::move(body));
  EXPECT_EQ(line.back(), '\n');
  const Json parsed = Json::parse(line);
  EXPECT_TRUE(parsed.at("ok").as_bool());
  EXPECT_EQ(parsed.at("op").as_string(), "submit");
  EXPECT_EQ(parsed.at("job").as_int(), 7);
}

TEST(WireLines, ErrorLineShape) {
  const std::string line =
      error_line(WireErrorCode::kOverloaded, "queue full",
                 Json(Json::Object{{"op", Json("submit")}}));
  const Json parsed = Json::parse(line);
  EXPECT_FALSE(parsed.at("ok").as_bool());
  EXPECT_EQ(parsed.at("op").as_string(), "submit");
  EXPECT_EQ(parsed.at("error").at("code").as_string(), "overloaded");
  EXPECT_EQ(parsed.at("error").at("message").as_string(), "queue full");
}

TEST(WireLines, EventLineShape) {
  Json body = Json::object();
  body.set("job", Json(std::size_t{3}));
  const Json parsed = Json::parse(event_line("incumbent", std::move(body)));
  EXPECT_EQ(parsed.at("event").as_string(), "incumbent");
  EXPECT_EQ(parsed.at("job").as_int(), 3);
  EXPECT_FALSE(parsed.contains("ok"));
}

TEST(WireLines, ErrorCodeStringsAreStable) {
  EXPECT_STREQ(to_string(WireErrorCode::kFrameTooLong), "frame_too_long");
  EXPECT_STREQ(to_string(WireErrorCode::kBadUtf8), "bad_utf8");
  EXPECT_STREQ(to_string(WireErrorCode::kBadJson), "bad_json");
  EXPECT_STREQ(to_string(WireErrorCode::kBadHandshake), "bad_handshake");
  EXPECT_STREQ(to_string(WireErrorCode::kHandshakeRequired),
               "handshake_required");
  EXPECT_STREQ(to_string(WireErrorCode::kUnknownOp), "unknown_op");
  EXPECT_STREQ(to_string(WireErrorCode::kBadRequest), "bad_request");
  EXPECT_STREQ(to_string(WireErrorCode::kUnknownJob), "unknown_job");
  EXPECT_STREQ(to_string(WireErrorCode::kOverloaded), "overloaded");
  EXPECT_STREQ(to_string(WireErrorCode::kDraining), "draining");
  EXPECT_STREQ(to_string(WireErrorCode::kIdleTimeout), "idle_timeout");
  EXPECT_STREQ(to_string(WireErrorCode::kInternal), "internal");
}

}  // namespace
}  // namespace spmap
