/// Differential property sweep for the incremental delta-evaluation engine:
/// on random (SP and almost-SP) graphs, random reassignment sequences with
/// interleaved undos must keep IncrementalEvaluator, the flat Evaluator and
/// the naive ReferenceEvaluator in exact agreement — makespans, per-task
/// times and area-feasibility verdicts — after every single apply/undo.
/// Well over 1000 randomized cases run across the parameter grid (a case =
/// one apply or undo followed by the three-way comparison).
///
/// The grid spans both the paper platform and the wide manycore platform,
/// and every hybrid probe mode: kAuto (online routing), kForceIncremental
/// and kForceFallback. Agreement in the forced modes proves each probe path
/// is bit-identical on its own, not just whichever one the router happens
/// to pick.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "sched/evaluator.hpp"
#include "sched/incremental_evaluator.hpp"
#include "sched/reference_evaluator.hpp"

namespace spmap {
namespace {

struct IncCase {
  std::size_t nodes;
  std::size_t extra_edges;
  std::size_t moves;
  std::uint64_t seed;
  bool wide = false;  // wide manycore platform instead of the paper one
  ProbeMode mode = ProbeMode::kAuto;
};

class IncrementalProperty : public ::testing::TestWithParam<IncCase> {
 protected:
  IncrementalProperty()
      : rng_(GetParam().seed),
        platform_(GetParam().wide ? manycore_platform()
                                  : reference_platform()) {
    Dag base = generate_sp_dag(GetParam().nodes, rng_);
    dag_ = add_random_edges(base, GetParam().extra_edges, rng_);
    attrs_ = random_task_attrs(dag_, rng_);
    cost_.emplace(dag_, attrs_, platform_);
    eval_.emplace(*cost_);  // one (breadth-first) order: the bound order
    ref_.emplace(*cost_);
  }

  /// The three-way agreement that must hold after every state change.
  void expect_agreement(const IncrementalEvaluator& inc,
                        const Mapping& expected_mapping) {
    ASSERT_EQ(inc.mapping(), expected_mapping);
    const double flat = eval_->evaluate_order(expected_mapping, inc.order());
    const double naive = ref_->evaluate_order(expected_mapping, inc.order());
    EXPECT_EQ(inc.order_makespan(), flat);
    EXPECT_EQ(inc.order_makespan(), naive);
    // Per-task times, not just the max: the convenience overload above
    // leaves them in the evaluator scratch.
    const auto& start = eval_->last_start_times();
    const auto& finish = eval_->last_finish_times();
    for (std::size_t v = 0; v < expected_mapping.size(); ++v) {
      ASSERT_EQ(inc.start_times()[v], start[v]) << "node " << v;
      ASSERT_EQ(inc.finish_times()[v], finish[v]) << "node " << v;
    }
    // Feasibility-aware makespan matches the full evaluator verdict.
    EXPECT_EQ(inc.makespan(), eval_->evaluate(expected_mapping));
    EXPECT_EQ(inc.feasible(), cost_->area_feasible(expected_mapping));
  }

  Rng rng_;
  Platform platform_;
  Dag dag_;
  TaskAttrs attrs_;
  std::optional<CostModel> cost_;
  std::optional<Evaluator> eval_;
  std::optional<ReferenceEvaluator> ref_;
};

TEST_P(IncrementalProperty, RandomWalkAgreesAfterEveryApplyAndUndo) {
  IncrementalEvaluator inc(*eval_);
  inc.set_probe_mode(GetParam().mode);
  Mapping current = random_feasible_mapping(*cost_, rng_);
  inc.reset(current);
  expect_agreement(inc, current);

  // History of mappings for undo verification; history.back() == current.
  std::vector<Mapping> history{current};
  for (std::size_t i = 0; i < GetParam().moves; ++i) {
    const bool do_undo = inc.depth() > 0 && rng_.chance(0.3);
    if (do_undo) {
      inc.undo();
      history.pop_back();
    } else {
      const NodeId node(static_cast<std::uint32_t>(rng_.below(dag_.node_count())));
      const DeviceId device(
          static_cast<std::uint32_t>(rng_.below(platform_.device_count())));
      inc.apply({node, device});
      Mapping next = history.back();
      next[node] = device;
      history.push_back(std::move(next));
    }
    ASSERT_NO_FATAL_FAILURE(expect_agreement(inc, history.back()));
    // Probe from this (arbitrarily mutated) state too: trace-free probing
    // must agree with the full evaluator and leave no mark.
    if (rng_.chance(0.5)) {
      const NodeId node(static_cast<std::uint32_t>(rng_.below(dag_.node_count())));
      const DeviceId device(
          static_cast<std::uint32_t>(rng_.below(platform_.device_count())));
      Mapping probed = history.back();
      probed[node] = device;
      EXPECT_EQ(inc.probe({node, device}), eval_->evaluate(probed));
      ASSERT_NO_FATAL_FAILURE(expect_agreement(inc, history.back()));
    }
  }
  // Unwind everything: the initial state must come back exactly.
  while (inc.depth() > 0) {
    inc.undo();
    history.pop_back();
  }
  ASSERT_EQ(history.size(), 1u);
  expect_agreement(inc, history.front());
}

TEST_P(IncrementalProperty, ProbeLeavesStateUntouched) {
  IncrementalEvaluator inc(*eval_);
  inc.set_probe_mode(GetParam().mode);
  const Mapping mapping = random_feasible_mapping(*cost_, rng_);
  inc.reset(mapping);
  const double before = inc.makespan();
  for (std::size_t i = 0; i < 25; ++i) {
    const NodeId node(static_cast<std::uint32_t>(rng_.below(dag_.node_count())));
    const DeviceId device(
        static_cast<std::uint32_t>(rng_.below(platform_.device_count())));
    Mapping probed = mapping;
    probed[node] = device;
    EXPECT_EQ(inc.probe({node, device}), eval_->evaluate(probed));
    EXPECT_EQ(inc.depth(), 0u);
    EXPECT_EQ(inc.makespan(), before);
    EXPECT_EQ(inc.mapping(), mapping);
  }
}

TEST_P(IncrementalProperty, CommitKeepsStateAndClearsHistory) {
  IncrementalEvaluator inc(*eval_);
  inc.set_probe_mode(GetParam().mode);
  Mapping current = random_feasible_mapping(*cost_, rng_);
  inc.reset(current);
  for (std::size_t i = 0; i < 10; ++i) {
    const NodeId node(static_cast<std::uint32_t>(rng_.below(dag_.node_count())));
    const DeviceId device(
        static_cast<std::uint32_t>(rng_.below(platform_.device_count())));
    inc.apply({node, device});
    current[node] = device;
  }
  inc.commit();
  EXPECT_EQ(inc.depth(), 0u);
  expect_agreement(inc, current);
  EXPECT_THROW(inc.undo(), Error);
}

constexpr ProbeMode kInc = ProbeMode::kForceIncremental;
constexpr ProbeMode kFb = ProbeMode::kForceFallback;

INSTANTIATE_TEST_SUITE_P(
    Grid, IncrementalProperty,
    ::testing::Values(
        // Paper platform, auto routing (the production configuration).
        IncCase{2, 0, 30, 41}, IncCase{8, 0, 60, 42}, IncCase{8, 4, 60, 43},
        IncCase{25, 0, 80, 44}, IncCase{25, 12, 80, 45},
        IncCase{60, 0, 120, 46}, IncCase{60, 30, 120, 47},
        IncCase{120, 60, 160, 48}, IncCase{250, 50, 200, 49},
        IncCase{500, 0, 220, 50},
        // Wide manycore platform, auto routing.
        IncCase{25, 12, 80, 51, true}, IncCase{60, 30, 120, 52, true},
        IncCase{250, 50, 200, 53, true}, IncCase{500, 0, 220, 54, true},
        // Forced modes: each probe path must be exact on its own, on both
        // platforms, dense and sparse graphs alike.
        IncCase{60, 30, 120, 55, false, kFb},
        IncCase{120, 60, 160, 56, false, kFb},
        IncCase{500, 0, 220, 57, false, kFb},
        IncCase{120, 60, 160, 58, false, kInc},
        IncCase{60, 30, 120, 59, true, kFb},
        IncCase{250, 50, 200, 60, true, kFb},
        IncCase{250, 50, 200, 61, true, kInc},
        IncCase{500, 0, 220, 62, true, kInc}),
    [](const ::testing::TestParamInfo<IncCase>& info) {
      const char* mode = info.param.mode == kInc  ? "_finc"
                         : info.param.mode == kFb ? "_ffb"
                                                  : "";
      return "n" + std::to_string(info.param.nodes) + "_e" +
             std::to_string(info.param.extra_edges) + "_s" +
             std::to_string(info.param.seed) +
             (info.param.wide ? "_wide" : "") + mode;
    });

}  // namespace
}  // namespace spmap
