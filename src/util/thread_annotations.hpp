#pragma once
/// \file thread_annotations.hpp
/// Clang Thread Safety Analysis attribute macros.
///
/// The repo's locking disciplines (ARCHITECTURE.md "Thread-safety") are
/// expressed with these macros so `-Wthread-safety` turns a violated
/// contract into a failed build instead of a prose drift. Under any
/// compiler without the attributes (gcc, msvc) every macro expands to
/// nothing, so annotated code compiles everywhere; under clang the
/// attributes are always emitted (they are harmless without the warning
/// flag) and the CMake option `SPMAP_THREAD_SAFETY_ANALYSIS` promotes
/// them to `-Werror=thread-safety`.
///
/// The vocabulary (mirroring clang's documentation):
///
///  * `SPMAP_CAPABILITY(name)`       — a class is a lockable capability
///    (src/util/mutex.hpp applies it to `spmap::Mutex` and `ThreadRole`).
///  * `SPMAP_GUARDED_BY(mu)`         — a data member may only be accessed
///    while `mu` is held.
///  * `SPMAP_PT_GUARDED_BY(mu)`      — same, for the pointee of a pointer.
///  * `SPMAP_REQUIRES(mu)`           — callers must hold `mu` (not
///    acquired inside).
///  * `SPMAP_ACQUIRE(mu)/RELEASE(mu)`— the function acquires / releases.
///  * `SPMAP_EXCLUDES(mu)`           — callers must NOT hold `mu` (the
///    function acquires it itself; deadlock guard).
///  * `SPMAP_SCOPED_CAPABILITY`      — RAII lock types (MutexLock).
///  * `SPMAP_ASSERT_CAPABILITY(mu)`  — runtime assertion the analysis
///    trusts (escape hatch; prefer REQUIRES).
///  * `SPMAP_ACQUIRED_BEFORE/AFTER`  — lock-ordering documentation
///    (checked only under -Wthread-safety-beta).
///  * `SPMAP_NO_THREAD_SAFETY_ANALYSIS` — opt a function out entirely;
///    every use must carry a comment citing the invariant that makes the
///    unchecked access sound (same policy as tsan.supp, see
///    docs/STATIC_ANALYSIS.md).

#if defined(__clang__) && !defined(SWIG)
#define SPMAP_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SPMAP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SPMAP_CAPABILITY(x) SPMAP_THREAD_ANNOTATION(capability(x))

#define SPMAP_SCOPED_CAPABILITY SPMAP_THREAD_ANNOTATION(scoped_lockable)

#define SPMAP_GUARDED_BY(x) SPMAP_THREAD_ANNOTATION(guarded_by(x))

#define SPMAP_PT_GUARDED_BY(x) SPMAP_THREAD_ANNOTATION(pt_guarded_by(x))

#define SPMAP_ACQUIRED_BEFORE(...) \
  SPMAP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define SPMAP_ACQUIRED_AFTER(...) \
  SPMAP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define SPMAP_REQUIRES(...) \
  SPMAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define SPMAP_REQUIRES_SHARED(...) \
  SPMAP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define SPMAP_ACQUIRE(...) \
  SPMAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define SPMAP_ACQUIRE_SHARED(...) \
  SPMAP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define SPMAP_RELEASE(...) \
  SPMAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define SPMAP_RELEASE_SHARED(...) \
  SPMAP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define SPMAP_TRY_ACQUIRE(...) \
  SPMAP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define SPMAP_EXCLUDES(...) SPMAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define SPMAP_ASSERT_CAPABILITY(x) \
  SPMAP_THREAD_ANNOTATION(assert_capability(x))

#define SPMAP_RETURN_CAPABILITY(x) SPMAP_THREAD_ANNOTATION(lock_returned(x))

#define SPMAP_NO_THREAD_SAFETY_ANALYSIS \
  SPMAP_THREAD_ANNOTATION(no_thread_safety_analysis)
