#pragma once
/// \file task_attrs.hpp
/// Per-task model attributes (paper Section IV-B).
///
/// Each task carries:
///  * complexity        — operations per data point (lognormal mu=2, sigma=0.5,
///                        i.e. 90 % of values in [3, 17], median ~7.4),
///  * parallelizability — Amdahl fraction in [0, 1]; perfect with probability
///                        0.5, else uniform,
///  * streamability     — how well the task maps to FPGA dataflow processing
///                        (same lognormal as complexity),
///  * area              — FPGA area demand, proportional to complexity.

#include <cstddef>
#include <vector>

#include "graph/dag.hpp"
#include "util/rng.hpp"

namespace spmap {

/// Struct-of-arrays task attributes, indexed by NodeId.
struct TaskAttrs {
  std::vector<double> complexity;
  std::vector<double> parallelizability;
  std::vector<double> streamability;
  std::vector<double> area;

  std::size_t size() const { return complexity.size(); }

  /// Resizes all arrays to `n`, zero-filling new entries (virtual
  /// source/sink nodes get zero complexity and thus zero cost).
  void resize(std::size_t n);

  /// Throws spmap::Error unless sized for `dag` with values in range.
  void validate(const Dag& dag) const;
};

/// Parameters of the random augmentation of Section IV-B.
struct AttrParams {
  double complexity_mu = 2.0;
  double complexity_sigma = 0.5;
  double streamability_mu = 2.0;
  double streamability_sigma = 0.5;
  double perfect_parallel_probability = 0.5;
  /// FPGA area demand = area_per_complexity * complexity.
  double area_per_complexity = 1.0;
};

/// Draws random attributes for every node of `dag` (paper Section IV-B).
TaskAttrs random_task_attrs(const Dag& dag, Rng& rng,
                            const AttrParams& params = {});

}  // namespace spmap
