/// Integration tests of the serving daemon (serve/daemon.hpp): a real
/// Daemon on a unix socket (plus one TCP ephemeral-port case), driven by
/// WireClient over the actual protocol — submit/subscribe/done round
/// trips, overload rejection shape, cancel idempotence, graceful drain.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/journal.hpp"
#include "util/error.hpp"

namespace spmap {
namespace {

/// A bound daemon with run() on its own thread; drains on destruction.
class DaemonFixture {
 public:
  explicit DaemonFixture(DaemonOptions options) {
    if (options.endpoint.path.empty() && options.endpoint.host.empty()) {
      options.endpoint = Endpoint::parse(unique_socket_path());
    }
    daemon = std::make_unique<Daemon>(std::move(options));
    daemon->bind();
    io = std::thread([this] { exit_code = daemon->run(); });
  }

  ~DaemonFixture() {
    if (io.joinable()) {
      daemon->request_drain(0.0);
      io.join();
    }
  }

  int join() {
    io.join();
    return exit_code;
  }

  static std::string unique_socket_path() {
    static int counter = 0;
    return "unix:/tmp/spmap_daemon_test_" + std::to_string(::getpid()) +
           "_" + std::to_string(++counter) + ".sock";
  }

  std::unique_ptr<Daemon> daemon;
  std::thread io;
  int exit_code = -1;
};

Json submit_frame(std::size_t tasks = 12, std::uint64_t seed = 1) {
  Json generate = Json::object();
  generate.set("type", Json("sp"));
  generate.set("tasks", Json(tasks));
  generate.set("seed", Json(seed));
  Json frame = Json::object();
  frame.set("op", Json("submit"));
  frame.set("mapper", Json("spff"));
  frame.set("generate", std::move(generate));
  return frame;
}

TEST(ServeDaemon, SubmitSubscribeDoneRoundTrip) {
  DaemonFixture fixture({.workers = 2});
  WireClient client(fixture.daemon->endpoint());
  EXPECT_EQ(client.hello_info().at("proto").as_string(), kWireProtocol);

  Json frame = submit_frame();
  frame.set("subscribe", Json(true));
  frame.set("return_mapping", Json(true));
  frame.set("tag", Json(std::size_t{7}));
  client.send(frame);

  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value());
  ASSERT_TRUE(accepted->at("ok").as_bool()) << accepted->dump();
  EXPECT_EQ(accepted->at("tag").as_int(), 7);
  const auto job = static_cast<std::uint64_t>(accepted->at("job").as_int());

  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(done->at("job").as_int()), job);
  EXPECT_EQ(done->at("state").as_string(), "done");
  EXPECT_GT(done->at("makespan").as_double(), 0.0);
  EXPECT_TRUE(done->at("mapping").is_array());

  // status after the terminal event reports the same result.
  client.send(Json(Json::Object{{"op", Json("status")}, {"job", Json(job)}}));
  const auto status = client.recv(10000.0);
  ASSERT_TRUE(status.has_value());
  ASSERT_TRUE(status->at("ok").as_bool());
  EXPECT_EQ(status->at("state").as_string(), "done");
  EXPECT_DOUBLE_EQ(status->at("makespan").as_double(),
                   done->at("makespan").as_double());
}

TEST(ServeDaemon, SubscribeAfterTerminalReplaysDone) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  client.send(submit_frame());
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());
  const auto job = static_cast<std::uint64_t>(accepted->at("job").as_int());

  // Poll status until terminal, then subscribe: the done event must be
  // replayed instead of never arriving.
  for (int i = 0; i < 600; ++i) {
    client.send(
        Json(Json::Object{{"op", Json("status")}, {"job", Json(job)}}));
    const auto status = client.recv(10000.0);
    ASSERT_TRUE(status.has_value() && status->at("ok").as_bool());
    if (status->at("state").as_string() == "done") break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  client.send(
      Json(Json::Object{{"op", Json("subscribe")}, {"job", Json(job)}}));
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value() && ok->at("ok").as_bool());
  const auto done = client.recv_event("done", 10000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(done->at("job").as_int()), job);
}

TEST(ServeDaemon, OverloadRejectionIsStructuredAndSurvivable) {
  // workers=1 + max_queued=1: one running, one queued, the rest refused.
  DaemonFixture fixture({.workers = 1, .max_queued = 1});
  WireClient client(fixture.daemon->endpoint());

  // An effectively endless anneal occupies the only worker; a second one
  // fills the queue slot.
  Json slow = submit_frame(24);
  slow.set("mapper", Json("anneal:iters=500000000"));
  slow.set("deadline_ms", Json(60000.0));
  std::vector<std::uint64_t> jobs;
  for (int i = 0; i < 2; ++i) {
    client.send(slow);
    const auto ok = client.recv(10000.0);
    ASSERT_TRUE(ok.has_value() && ok->at("ok").as_bool()) << ok->dump();
    jobs.push_back(static_cast<std::uint64_t>(ok->at("job").as_int()));
    if (i == 0) {
      // Wait for the worker to claim the first job before submitting the
      // second: until then it still occupies the queue slot and the
      // second submit would be shed as overload (seen under TSan, where
      // the worker is slow to dequeue).
      for (int poll = 0; poll < 1000; ++poll) {
        client.send(Json(
            Json::Object{{"op", Json("status")}, {"job", Json(jobs[0])}}));
        const auto status = client.recv(10000.0);
        ASSERT_TRUE(status.has_value() && status->at("ok").as_bool());
        if (status->at("state").as_string() == "running") break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }

  // Low-priority traffic is shed first (graduated thresholds): rejected
  // with the structured overloaded error, connection intact.
  Json low = submit_frame();
  low.set("class", Json("low"));
  low.set("tag", Json("shed-me"));
  client.send(low);
  const auto rejected = client.recv(10000.0);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_FALSE(rejected->at("ok").as_bool());
  EXPECT_EQ(rejected->at("error").at("code").as_string(), "overloaded");
  EXPECT_FALSE(rejected->at("error").at("message").as_string().empty());
  EXPECT_EQ(rejected->at("tag").as_string(), "shed-me");

  // Admission shed the request before the service saw it: only the two
  // accepted jobs were ever submitted.
  EXPECT_EQ(fixture.daemon->service_stats().submitted, 2u);

  // The connection survived: cancel both heavy jobs, twice (idempotent).
  for (const std::uint64_t job : jobs) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      client.send(
          Json(Json::Object{{"op", Json("cancel")}, {"job", Json(job)}}));
      const auto ok = client.recv(10000.0);
      ASSERT_TRUE(ok.has_value());
      EXPECT_TRUE(ok->at("ok").as_bool()) << ok->dump();
    }
  }
}

TEST(ServeDaemon, UnknownMapperIsRejectedEagerly) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  Json frame = submit_frame();
  frame.set("mapper", Json("definitely-not-a-mapper"));
  client.send(frame);
  const auto response = client.recv(10000.0);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->at("ok").as_bool());
  EXPECT_EQ(response->at("error").at("code").as_string(), "bad_request");
}

TEST(ServeDaemon, DestructionWithJobsInFlightIsRaceFree) {
  // Regression for a TSan-caught write-after-close: a worker's
  // on_terminal callback pokes the wake pipe (push_event -> wake ->
  // write), and ~Daemon used to close that pipe before the service
  // joined its workers. The window is the gap between a job turning
  // terminal (which lets run() finish draining) and the callback's
  // write; several rounds of teardown with jobs mid-flight keep
  // hitting it.
  for (int round = 0; round < 5; ++round) {
    DaemonFixture fixture({.workers = 2, .max_queued = 8});
    WireClient client(fixture.daemon->endpoint());
    Json slow = submit_frame(24);
    slow.set("mapper", Json("anneal:iters=200000"));
    for (int i = 0; i < 4; ++i) {
      client.send(slow);
      const auto ok = client.recv(10000.0);
      ASSERT_TRUE(ok.has_value() && ok->at("ok").as_bool()) << ok->dump();
    }
    // Fixture teardown drains with zero grace: the jobs get cancelled
    // while running and their terminal callbacks race the destructor.
  }
}

TEST(ServeDaemon, MalformedJsonClosesTheConnection) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  client.send_raw("{this is not json}\n");
  const auto error = client.recv(10000.0);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->at("error").at("code").as_string(), "bad_json");
  // The daemon closes after flushing: the next read hits EOF.
  EXPECT_THROW(
      {
        while (true) {
          if (!client.recv(10000.0).has_value()) break;
        }
      },
      Error);

  // A fresh connection still works.
  WireClient again(fixture.daemon->endpoint());
  again.send(submit_frame());
  const auto ok = again.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool());
}

TEST(ServeDaemon, DrainVerbFinishesInFlightAndExitsZero) {
  DaemonFixture fixture({.workers = 2});
  WireClient client(fixture.daemon->endpoint());
  Json frame = submit_frame();
  frame.set("subscribe", Json(true));
  client.send(frame);
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());

  client.send(Json(
      Json::Object{{"op", Json("drain")}, {"grace_ms", Json(30000.0)}}));
  // In some order: the drain ok, a draining event, the job's done event,
  // and a final closing event.
  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->at("state").as_string(), "done");
  const auto closing = client.recv_event("closing", 10000.0);
  EXPECT_TRUE(closing.has_value());

  EXPECT_EQ(fixture.join(), 0);
}

TEST(ServeDaemon, DrainCancelsPastGraceStillExitsZero) {
  DaemonFixture fixture({.workers = 1, .grace_ms = 100.0});
  WireClient client(fixture.daemon->endpoint());
  Json slow = submit_frame(24);
  slow.set("mapper", Json("anneal:iters=500000000"));
  slow.set("deadline_ms", Json(60000.0));
  slow.set("subscribe", Json(true));
  client.send(slow);
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());

  fixture.daemon->request_drain();  // 100ms grace, then cancellation
  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  // Cooperative cancellation of a running job: it returns its incumbent
  // (state "done") with the cancelled termination reason.
  EXPECT_EQ(done->at("state").as_string(), "done");
  EXPECT_EQ(done->at("termination").as_string(), "cancelled");
  // Cooperative cancellation within the hard deadline: a clean exit.
  EXPECT_EQ(fixture.join(), 0);
}

TEST(ServeDaemon, TcpEphemeralPortServes) {
  DaemonFixture fixture({.endpoint = Endpoint::parse("tcp:127.0.0.1:0"),
                         .workers = 1});
  EXPECT_NE(fixture.daemon->endpoint().port, 0);
  WireClient client(fixture.daemon->endpoint());
  client.send(submit_frame());
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool());
}

TEST(ServeDaemon, BindRefusesATakenUnixEndpoint) {
  DaemonFixture fixture({.workers = 1});
  Daemon second({.endpoint = fixture.daemon->endpoint()});
  EXPECT_THROW(second.bind(), Error);
}

TEST(ServeDaemon, BindReclaimsAStaleUnixSocket) {
  // A crashed daemon leaves its socket file behind with nobody listening.
  // Startup must probe, find it dead, unlink and bind — not refuse.
  const Endpoint endpoint =
      Endpoint::parse(DaemonFixture::unique_socket_path());
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  endpoint.path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    ::close(fd);  // no unlink: the stale file stays
  }
  DaemonFixture fixture({.endpoint = endpoint, .workers = 1});
  WireClient client(fixture.daemon->endpoint());
  client.send(submit_frame());
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool());
}

TEST(ServeDaemon, ResumeReplaysEventsMissedWhileDetached) {
  DaemonFixture fixture({.workers = 1});
  WireClient client(fixture.daemon->endpoint());
  ASSERT_NE(client.session(), 0u);
  ASSERT_FALSE(client.session_token().empty());

  Json frame = submit_frame();
  frame.set("subscribe", Json(true));
  client.send(frame);
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());
  const auto job = static_cast<std::uint64_t>(accepted->at("job").as_int());

  // Vanish before the job finishes; let it complete while detached.
  client.drop_connection();
  for (int i = 0; i < 600; ++i) {
    const ServiceStats stats = fixture.daemon->service_stats();
    if (stats.done + stats.failed + stats.cancelled >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Resume: the done event fired into the detached session's backlog and
  // must be replayed now, exactly once.
  ASSERT_TRUE(client.reconnect(/*try_resume=*/true));
  const auto done = client.recv_event("done", 10000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(done->at("job").as_int()), job);
  EXPECT_EQ(done->at("state").as_string(), "done");
  EXPECT_GT(done->at("event_seq").as_int(), 0);

  // Nothing is replayed twice: no second done for the same job.
  const auto extra = client.recv_event("done", 300.0);
  EXPECT_FALSE(extra.has_value());
}

TEST(ServeDaemon, ResumePastTheWindowFallsBackToHello) {
  // resume_window_s = 0: a detached session is dropped at the very next
  // housekeeping sweep, so the resume must be refused — and the protocol
  // fallback (fresh hello on the same connection) must leave the client
  // fully usable.
  DaemonOptions options;
  options.workers = 1;
  options.resume_window_s = 0.0;
  DaemonFixture fixture(std::move(options));
  WireClient client(fixture.daemon->endpoint());
  ASSERT_FALSE(client.session_token().empty());
  const std::uint64_t old_session = client.session();

  client.drop_connection();
  // The daemon reaps the dead connection and (window 0) expires the
  // session at its next sweep; sweeps are spaced >= 1s apart.
  std::this_thread::sleep_for(std::chrono::milliseconds(2200));

  EXPECT_FALSE(client.reconnect(/*try_resume=*/true));
  EXPECT_NE(client.session(), old_session);
  client.send(submit_frame());
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool());
}

/// A hand-crafted journal: job 1 finished before the "crash", job 2 was
/// acknowledged but never ran. The restarted daemon must answer status
/// for job 1 verbatim and re-enqueue job 2 to completion.
TEST(ServeDaemon, JournalRecoveryAnswersTerminalAndRequeuesUnfinished) {
  const std::string journal_path =
      "/tmp/spmap_daemon_test_journal_" + std::to_string(::getpid()) +
      "_recovery.journal";
  std::remove(journal_path.c_str());
  {
    Json submit1 = Json::object();
    submit1.set("mapper", Json("spff"));
    submit1.set("class", Json("normal"));
    Json status1 = Json::object();
    status1.set("job", Json(std::uint64_t{1}));
    status1.set("class", Json("normal"));
    status1.set("state", Json("done"));
    status1.set("makespan", Json(42.5));

    Json generate = Json::object();
    generate.set("type", Json("sp"));
    generate.set("tasks", Json(std::size_t{12}));
    generate.set("seed", Json(std::uint64_t{7}));
    Json submit2 = Json::object();
    submit2.set("mapper", Json("spff"));
    submit2.set("class", Json("high"));
    submit2.set("generate", std::move(generate));
    submit2.set("seed", Json(std::uint64_t{3}));
    submit2.set("construction_seed", Json(std::uint64_t{4}));

    Journal journal(journal_path);
    journal.append(Json(Json::Object{{"type", Json("submitted")},
                                     {"job", Json(std::uint64_t{1})},
                                     {"submit", std::move(submit1)}}),
                   true);
    journal.append(Json(Json::Object{{"type", Json("terminal")},
                                     {"job", Json(std::uint64_t{1})},
                                     {"status", std::move(status1)}}),
                   true);
    journal.append(Json(Json::Object{{"type", Json("submitted")},
                                     {"job", Json(std::uint64_t{2})},
                                     {"submit", std::move(submit2)}}),
                   true);
  }

  DaemonFixture fixture(
      {.workers = 1, .journal_path = journal_path});
  WireClient client(fixture.daemon->endpoint());

  // Job 1: the recorded terminal status, verbatim, under its old id.
  client.send(Json(Json::Object{{"op", Json("status")},
                                {"job", Json(std::uint64_t{1})}}));
  const auto status = client.recv(10000.0);
  ASSERT_TRUE(status.has_value());
  ASSERT_TRUE(status->at("ok").as_bool()) << status->dump();
  EXPECT_EQ(status->at("state").as_string(), "done");
  EXPECT_DOUBLE_EQ(status->at("makespan").as_double(), 42.5);

  // Job 2: re-enqueued under its old id; subscribe and watch it finish.
  client.send(Json(Json::Object{{"op", Json("subscribe")},
                                {"job", Json(std::uint64_t{2})}}));
  const auto ok = client.recv(10000.0);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->at("ok").as_bool()) << ok->dump();
  const auto done = client.recv_event("done", 30000.0);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->at("job").as_int(), 2);
  EXPECT_EQ(done->at("state").as_string(), "done");

  // New submissions never collide with recovered ids.
  client.send(submit_frame());
  const auto accepted = client.recv(10000.0);
  ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());
  EXPECT_GE(accepted->at("job").as_int(), 3);

  std::remove(journal_path.c_str());
}

/// End to end: run a pinned job against a journaled daemon, kill the
/// daemon (hard drain), start a second daemon on the same journal — the
/// result must still be answerable and bit-identical.
TEST(ServeDaemon, RestartOnTheSameJournalKeepsTerminalResults) {
  const std::string journal_path =
      "/tmp/spmap_daemon_test_journal_" + std::to_string(::getpid()) +
      "_restart.journal";
  std::remove(journal_path.c_str());

  std::uint64_t job = 0;
  double makespan = 0.0;
  Endpoint endpoint;
  {
    DaemonFixture fixture(
        {.workers = 1, .journal_path = journal_path});
    endpoint = fixture.daemon->endpoint();
    WireClient client(endpoint);
    Json frame = submit_frame(12, /*seed=*/99);
    frame.set("seed", Json(std::uint64_t{5}));
    frame.set("construction_seed", Json(std::uint64_t{6}));
    frame.set("subscribe", Json(true));
    client.send(frame);
    const auto accepted = client.recv(10000.0);
    ASSERT_TRUE(accepted.has_value() && accepted->at("ok").as_bool());
    job = static_cast<std::uint64_t>(accepted->at("job").as_int());
    const auto done = client.recv_event("done", 30000.0);
    ASSERT_TRUE(done.has_value());
    ASSERT_EQ(done->at("state").as_string(), "done");
    makespan = done->at("makespan").as_double();
  }  // fixture destructor: drain + exit — the "restart"

  DaemonFixture second(
      {.endpoint = endpoint, .workers = 1, .journal_path = journal_path});
  WireClient client(second.daemon->endpoint());
  client.send(
      Json(Json::Object{{"op", Json("status")}, {"job", Json(job)}}));
  const auto status = client.recv(10000.0);
  ASSERT_TRUE(status.has_value());
  ASSERT_TRUE(status->at("ok").as_bool()) << status->dump();
  EXPECT_EQ(status->at("state").as_string(), "done");
  EXPECT_DOUBLE_EQ(status->at("makespan").as_double(), makespan);

  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace spmap
