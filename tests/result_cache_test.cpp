/// Differential + property battery for the result cache
/// (serve/result_cache.hpp) and its MappingService integration.
///
/// The load-bearing claims, each proven here:
///  * a cache hit is bit-identical to recomputation (cache on vs cache
///    off produce byte-equal results on a committed scenario);
///  * the LRU honors both the entry bound and the byte bound, evicting
///    in recency order, and never admits oversized entries;
///  * warm-started runs report kWarm and never end worse than their seed
///    (as priced by the run's own evaluator);
///  * uncacheable jobs (deadlines, unpinned rng) report kNone and never
///    enter the memo;
///  * the sharded cache survives concurrent hammering (run under
///    ASan+UBSan in CI's sanitize job).

#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bench/scenario.hpp"
#include "bench/scenario_runner.hpp"
#include "graph/generators.hpp"
#include "model/platform.hpp"
#include "serve/mapping_service.hpp"

namespace spmap {
namespace {

std::shared_ptr<const TaskGraph> make_graph(std::uint64_t seed,
                                            std::size_t tasks = 24) {
  Rng rng(seed);
  auto tg = std::make_shared<TaskGraph>();
  tg->dag = generate_sp_dag(tasks, rng);
  tg->attrs = random_task_attrs(tg->dag, rng);
  return tg;
}

std::shared_ptr<const Platform> make_platform() {
  return std::make_shared<const Platform>(reference_platform());
}

/// A cacheable job: pinned construction rng, no deadline anywhere.
MapJob make_job(const std::shared_ptr<const TaskGraph>& graph,
                const std::shared_ptr<const Platform>& platform,
                const std::string& spec, std::uint64_t rng_seed = 123) {
  MapJob job;
  job.mapper_spec = spec;
  job.graph = graph;
  job.platform = platform;
  job.construction_rng = Rng(rng_seed);
  return job;
}

Digest key_of(std::uint64_t i) {
  return ContentHasher().u64(i).digest();
}

MapJobResult result_of(double makespan, std::size_t payload_tasks = 8) {
  MapJobResult result;
  result.report.mapping = Mapping(payload_tasks, DeviceId{0});
  result.report.predicted_makespan = makespan;
  result.reported_makespan = makespan;
  return result;
}

// ---- ResultCache unit properties (shards=1: bounds are exact) ----

TEST(ResultCache, LruEvictsInRecencyOrderUnderTheEntryBound) {
  ResultCache cache({.shards = 1, .max_entries = 3, .max_bytes = 0});
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.insert(key_of(i), result_of(1.0 + i));
  }
  // Touch 0 so 1 becomes the LRU entry, then overflow.
  EXPECT_TRUE(cache.lookup(key_of(0)).has_value());
  cache.insert(key_of(3), result_of(4.0));
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(key_of(0)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(2)).has_value());
  EXPECT_TRUE(cache.lookup(key_of(3)).has_value());

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.inserts, 4u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 4u);
}

TEST(ResultCache, ByteBoundEvictsAndOversizedEntriesAreNotAdmitted) {
  const std::size_t one = ResultCache::approx_bytes(result_of(1.0));
  ResultCache cache({.shards = 1, .max_entries = 0, .max_bytes = 3 * one});
  for (std::uint64_t i = 0; i < 3; ++i) {
    cache.insert(key_of(i), result_of(1.0 + i));
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_LE(cache.stats().bytes, 3 * one);

  // A fourth same-sized entry forces an LRU eviction to fit the budget.
  cache.insert(key_of(3), result_of(4.0));
  EXPECT_FALSE(cache.lookup(key_of(0)).has_value());
  EXPECT_LE(cache.stats().bytes, 3 * one);

  // An entry bigger than the whole shard budget is simply dropped.
  MapJobResult huge = result_of(9.0);
  huge.report.mapping = Mapping(100000, DeviceId{0});
  ASSERT_GT(ResultCache::approx_bytes(huge), 3 * one);
  cache.insert(key_of(99), huge);
  EXPECT_FALSE(cache.lookup(key_of(99)).has_value());
  EXPECT_LE(cache.stats().bytes, 3 * one);
}

TEST(ResultCache, InsertRefreshesInsteadOfDuplicating) {
  ResultCache cache({.shards = 1, .max_entries = 4, .max_bytes = 0});
  cache.insert(key_of(1), result_of(1.0));
  cache.insert(key_of(1), result_of(2.0));
  EXPECT_EQ(cache.stats().entries, 1u);
  const auto entry = cache.lookup(key_of(1));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->report.predicted_makespan, 2.0);
}

TEST(ResultCache, WarmIndexKeepsTheBestIncumbent) {
  ResultCache cache({.shards = 1});
  const Digest problem = key_of(7);
  EXPECT_FALSE(cache.lookup_warm(problem).has_value());

  ResultCache::WarmEntry first;
  first.canonical_mapping.assign(4, DeviceId{0});
  first.predicted_makespan = 10.0;
  cache.offer_warm(problem, first);

  ResultCache::WarmEntry worse = first;
  worse.predicted_makespan = 12.0;
  worse.canonical_mapping.assign(4, DeviceId{1});
  cache.offer_warm(problem, worse);
  auto kept = cache.lookup_warm(problem);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->predicted_makespan, 10.0);

  ResultCache::WarmEntry better = first;
  better.predicted_makespan = 8.0;
  cache.offer_warm(problem, better);
  kept = cache.lookup_warm(problem);
  ASSERT_TRUE(kept.has_value());
  EXPECT_EQ(kept->predicted_makespan, 8.0);
}

// ---- MappingService integration ----

TEST(ResultCacheService, RepeatedSubmitsHitWithBitIdenticalReports) {
  const auto graph = make_graph(11);
  const auto platform = make_platform();
  const auto cache = std::make_shared<ResultCache>();
  MappingService service({.workers = 2, .cache = cache});

  MapJob first = make_job(graph, platform, "anneal:iters=400,seed=5");
  first.reporting_orders = 8;
  const auto cold_handle = service.submit(std::move(first));
  const MapJobResult& cold = cold_handle.wait();
  ASSERT_TRUE(cold.error.empty()) << cold.error;
  EXPECT_EQ(cold.report.cache, CacheOutcome::kMiss);

  for (int repeat = 0; repeat < 3; ++repeat) {
    MapJob again = make_job(graph, platform, "anneal:iters=400,seed=5");
    again.reporting_orders = 8;
    const auto hit_handle = service.submit(std::move(again));
    const MapJobResult& hit = hit_handle.wait();
    ASSERT_TRUE(hit.error.empty()) << hit.error;
    EXPECT_EQ(hit.report.cache, CacheOutcome::kHit);
    // Bit-identical to the original run, trajectory included.
    EXPECT_EQ(hit.report.mapping, cold.report.mapping);
    EXPECT_EQ(hit.report.predicted_makespan, cold.report.predicted_makespan);
    EXPECT_EQ(hit.reported_makespan, cold.reported_makespan);
    EXPECT_EQ(hit.baseline_makespan, cold.baseline_makespan);
    EXPECT_EQ(hit.report.iterations, cold.report.iterations);
    EXPECT_EQ(hit.report.evaluations, cold.report.evaluations);
    ASSERT_EQ(hit.report.trajectory.size(), cold.report.trajectory.size());
    for (std::size_t i = 0; i < hit.report.trajectory.size(); ++i) {
      EXPECT_EQ(hit.report.trajectory[i].makespan,
                cold.report.trajectory[i].makespan);
      EXPECT_EQ(hit.report.trajectory[i].iteration,
                cold.report.trajectory[i].iteration);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 3u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.done, 4u);
  // A different rng pin is a different computation: no false hit.
  MapJob other = make_job(graph, platform, "anneal:iters=400,seed=5", 999);
  other.reporting_orders = 8;
  const auto other_handle = service.submit(std::move(other));
  EXPECT_EQ(other_handle.wait().report.cache, CacheOutcome::kMiss);
}

TEST(ResultCacheService, HitsBypassTheQueueAndFireTerminalSynchronously) {
  const auto graph = make_graph(12, 15);
  const auto platform = make_platform();
  const auto cache = std::make_shared<ResultCache>();
  MappingService service({.workers = 1, .max_queued = 1, .cache = cache});
  const auto primer = service.submit(make_job(graph, platform, "heft"));
  primer.wait();

  // Saturate the worker and the one queue slot.
  MapRequest slow;
  slow.deadline_ms = 60000.0;
  auto running = service.submit(
      make_job(graph, platform, "anneal:iters=500000000"), slow);
  while (running.status() == JobStatus::kQueued) std::this_thread::yield();
  auto queued = service.submit(make_job(graph, platform, "spff"));

  // A full queue still admits a hit: it is answered inline, on this
  // thread, before submit returns.
  std::atomic<bool> fired{false};
  const auto submitter = std::this_thread::get_id();
  MapJob repeat = make_job(graph, platform, "heft");
  repeat.on_terminal = [&](std::uint64_t, JobStatus status,
                           const MapJobResult& result) {
    EXPECT_EQ(status, JobStatus::kDone);
    EXPECT_EQ(result.report.cache, CacheOutcome::kHit);
    EXPECT_EQ(std::this_thread::get_id(), submitter);
    fired = true;
  };
  auto handle = service.submit(std::move(repeat));
  EXPECT_TRUE(fired.load());
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(handle.status(), JobStatus::kDone);

  running.cancel();
  service.wait_all();
  EXPECT_TRUE(queued.done());
}

TEST(ResultCacheService, WarmStartReusesAndNeverEndsWorseThanItsSeed) {
  const auto graph = make_graph(13);
  const auto platform = make_platform();
  const auto cache = std::make_shared<ResultCache>();
  MappingService service({.workers = 1, .cache = cache});

  // Populate: a decent run of one mapper.
  const auto seed_handle =
      service.submit(make_job(graph, platform, "anneal:iters=2000,seed=3"));
  const MapJobResult& seed_run = seed_handle.wait();
  ASSERT_TRUE(seed_run.error.empty()) << seed_run.error;
  EXPECT_EQ(seed_run.report.cache, CacheOutcome::kMiss);

  // Near miss: same problem, different mapper/bounds. Opting in receives
  // the incumbent as the search seed and reports kWarm.
  MapJob warm = make_job(graph, platform, "hillclimb:iters=50,seed=9");
  warm.allow_warm_start = true;
  const auto warm_handle = service.submit(std::move(warm));
  const MapJobResult& warmed = warm_handle.wait();
  ASSERT_TRUE(warmed.error.empty()) << warmed.error;
  EXPECT_EQ(warmed.report.cache, CacheOutcome::kWarm);
  // The local-search seed-wins-ties contract: a warm run's result never
  // prices worse than its seed under the run's own (BFS) evaluator.
  EXPECT_LE(warmed.report.predicted_makespan,
            seed_run.report.predicted_makespan);

  // Without the opt-in the same near miss runs cold.
  const auto cold_handle =
      service.submit(make_job(graph, platform, "hillclimb:iters=50,seed=9"));
  EXPECT_EQ(cold_handle.wait().report.cache, CacheOutcome::kMiss);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_warm, 1u);
  EXPECT_EQ(stats.cache_hits, 0u);
}

TEST(ResultCacheService, WarmRunsNeverEnterTheExactMemo) {
  const auto graph = make_graph(14);
  const auto platform = make_platform();
  const auto cache = std::make_shared<ResultCache>();
  MappingService service({.workers = 1, .cache = cache});
  const auto populate =
      service.submit(make_job(graph, platform, "anneal:iters=1000,seed=3"));
  populate.wait();

  MapJob warm = make_job(graph, platform, "hillclimb:iters=50,seed=9");
  warm.allow_warm_start = true;
  const auto warm_handle = service.submit(std::move(warm));
  ASSERT_EQ(warm_handle.wait().report.cache, CacheOutcome::kWarm);

  // The same spec resubmitted cold must MISS: had the warm run polluted
  // the memo, this would "hit" a result a cold run cannot reproduce.
  const auto cold_handle =
      service.submit(make_job(graph, platform, "hillclimb:iters=50,seed=9"));
  EXPECT_EQ(cold_handle.wait().report.cache, CacheOutcome::kMiss);
}

TEST(ResultCacheService, UncacheableJobsReportNoneAndNeverInsert) {
  const auto graph = make_graph(15, 15);
  const auto platform = make_platform();
  const auto cache = std::make_shared<ResultCache>();
  MappingService service({.workers = 1, .cache = cache});

  // Unpinned rng: the derived stream is unique per submission.
  MapJob unpinned;
  unpinned.mapper_spec = "heft";
  unpinned.graph = graph;
  unpinned.platform = platform;
  const auto unpinned_handle = service.submit(std::move(unpinned));
  EXPECT_EQ(unpinned_handle.wait().report.cache, CacheOutcome::kNone);

  // Request-level wall-clock deadline.
  MapRequest deadline;
  deadline.deadline_ms = 60000.0;
  const auto deadline_handle =
      service.submit(make_job(graph, platform, "heft"), deadline);
  EXPECT_EQ(deadline_handle.wait().report.cache, CacheOutcome::kNone);

  // Spec-level deadline (including nested init= specs).
  const auto spec_handle =
      service.submit(make_job(graph, platform, "heft:deadline_ms=60000"));
  EXPECT_EQ(spec_handle.wait().report.cache, CacheOutcome::kNone);

  EXPECT_EQ(cache->stats().inserts, 0u);
  EXPECT_EQ(service.stats().cache_hits, 0u);
  EXPECT_EQ(service.stats().cache_misses, 0u);
}

TEST(ResultCacheService, CacheOnVersusOffIsBitIdenticalOnAScenario) {
  // The committed differential: the fig4_small scenario run with the
  // cache enabled must produce numerically identical results to the
  // cache-less run (CI repeats this end-to-end over the CLI, diffing the
  // documents byte-wise after stripping cache_* keys and wall clocks).
  const Scenario scenario = load_scenario_file(
      std::string(SPMAP_SCENARIO_DIR) + "/examples/fig4_small.json");
  SweepRunOptions off;
  off.threads = 2;
  off.progress = false;
  SweepRunOptions on = off;
  on.cache_entries = 1024;
  const Json plain = run_scenario(scenario, off);
  const Json cached = run_scenario(scenario, on);

  EXPECT_FALSE(plain.contains("cache_hits"));
  ASSERT_TRUE(cached.contains("cache_hits"));

  const Json::Array& a = plain.at("results").as_array();
  const Json::Array& b = cached.at("results").as_array();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    const Json::Array& ma = a[p].at("mappers").as_array();
    const Json::Array& mb = b[p].at("mappers").as_array();
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t m = 0; m < ma.size(); ++m) {
      EXPECT_EQ(ma[m].at("spec").as_string(), mb[m].at("spec").as_string());
      for (const char* field :
           {"improvement_mean", "improvement_min", "improvement_max",
            "makespan_mean", "baseline_mean"}) {
        EXPECT_EQ(ma[m].at(field).as_double(), mb[m].at(field).as_double())
            << "point " << p << " mapper " << m << " field " << field;
      }
    }
  }
}

// ---- concurrency stress (meant for the ASan+UBSan CI job) ----

TEST(ResultCacheStress, ConcurrentHammeringOfATinyShardedCache) {
  ResultCache cache({.shards = 4, .max_entries = 16, .max_bytes = 1 << 16});
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      Rng rng(1000 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const Digest key = key_of(rng.below(64));
        switch (rng.below(4)) {
          case 0:
            cache.insert(key, result_of(rng.uniform()));
            break;
          case 1: {
            const auto entry = cache.lookup(key);
            if (entry.has_value()) {
              // Entries must always come back whole.
              ASSERT_EQ(entry->report.mapping.size(), 8u);
            }
            break;
          }
          case 2: {
            ResultCache::WarmEntry warm;
            warm.canonical_mapping.assign(8, DeviceId{0});
            warm.predicted_makespan = rng.uniform();
            cache.offer_warm(key, std::move(warm));
            break;
          }
          default:
            (void)cache.lookup_warm(key);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const ResultCacheStats stats = cache.stats();
  EXPECT_LE(stats.entries, 16u);
  EXPECT_LE(stats.bytes, std::size_t{1} << 16);
}

TEST(ResultCacheStress, ServiceWithTinyCacheUnderRepeatedSubmits) {
  const auto platform = make_platform();
  std::vector<std::shared_ptr<const TaskGraph>> graphs;
  for (std::uint64_t s = 0; s < 4; ++s) {
    graphs.push_back(make_graph(80 + s, 12));
  }
  const auto cache = std::make_shared<ResultCache>(
      ResultCacheOptions{.shards = 2, .max_entries = 4, .max_bytes = 0});
  MappingService service({.workers = 4, .cache = cache});

  std::vector<std::thread> submitters;
  std::atomic<std::size_t> errors{0};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 24; ++i) {
        MapJob job = make_job(graphs[(t + i) % graphs.size()], platform,
                              i % 2 == 0 ? "heft" : "spff");
        job.allow_warm_start = i % 3 == 0;
        const auto handle = service.submit(std::move(job));
        if (!handle.wait().error.empty()) ++errors;
      }
    });
  }
  for (auto& thread : submitters) thread.join();
  service.wait_all();

  EXPECT_EQ(errors.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted,
            stats.done + stats.failed + stats.cancelled);
  EXPECT_EQ(stats.failed, 0u);
  // 96 submits over at most 8 distinct computations: mostly hits.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_LE(cache->stats().entries, 4u);
}

}  // namespace
}  // namespace spmap
