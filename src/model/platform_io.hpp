#pragma once
/// \file platform_io.hpp
/// Platform (de)serialization: the `spmap-platform/1` JSON format.
///
/// The paper's evaluation platform is compiled into `reference_platform()`,
/// but the scenario subsystem (src/bench/scenario.hpp) treats platforms as
/// *data*: a JSON file listing devices (compute, FPGA and energy
/// parameters) and pairwise links, so experiments can swap hardware without
/// touching C++. The paper's CPU+GPU+FPGA machine ships as
/// `scenarios/platforms/paper_cpu_gpu_fpga.json`; see docs/FORMATS.md for
/// the authoritative schema reference.
///
/// Schema sketch (`"schema": "spmap-platform/1"`):
///   {
///     "schema": "spmap-platform/1",
///     "name": "paper-cpu-gpu-fpga",
///     "devices": [{"name", "kind": "cpu"|"gpu"|"fpga", "lanes",
///                  "lane_gops", "slots", "area_budget",
///                  "stream_gops_per_streamability", "stream_fill_fraction",
///                  "idle_watts", "active_watts", "transfer_watts"}, ...],
///     "links":   [{"a": NAME, "b": NAME, "bandwidth_gbps", "latency_s"},
///                 ...]   // undirected; every distinct pair exactly once
///   }
/// Links reference devices by *name*, so device names must be unique.
/// Device fields irrelevant to the kind may be omitted (a CPU needs no
/// `area_budget`); unknown keys, duplicate names, missing links and
/// out-of-range values throw spmap::Error with a diagnostic naming what is
/// accepted, mirroring the MapperRegistry option errors.
///
/// ## Thread-safety
///
/// Free functions over value types; safe to call concurrently on distinct
/// arguments. The returned Platform is immutable-after-build like any other.

#include <string>

#include "model/platform.hpp"
#include "util/json.hpp"

namespace spmap {

/// A platform bundled with its file-level name ("" if the document carries
/// none). The name labels results files and experiment tables.
struct NamedPlatform {
  std::string name;
  Platform platform;
};

/// Serializes a platform into a `spmap-platform/1` document. Every
/// undirected device pair is emitted once (links are symmetric by
/// construction — Platform::set_link sets both directions).
Json platform_to_json(const Platform& platform, const std::string& name);

/// Parses a `spmap-platform/1` document. The result is validated
/// (Platform::validate); parse errors and schema violations throw
/// spmap::Error. platform_from_json(platform_to_json(p)) reproduces p.
NamedPlatform platform_from_json(const Json& doc);

/// Convenience: parse from JSON text.
NamedPlatform platform_from_json_text(const std::string& text);

/// Reads and parses a platform file. Throws spmap::Error if the file
/// cannot be opened, naming the path.
NamedPlatform load_platform_file(const std::string& path);

}  // namespace spmap
