#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace spmap::detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "spmap assertion failed: %s (%s:%d)\n", expr, file,
               line);
  std::abort();
}

}  // namespace spmap::detail
