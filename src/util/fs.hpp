#pragma once
/// \file fs.hpp
/// Small file helpers shared by the declarative-format loaders
/// (platform / workload / scenario / graph files) and the CLI.

#include <string>

namespace spmap {

/// Reads a whole file into a string. Throws spmap::Error
/// "cannot open <what>: <path>" when the file cannot be opened; `what`
/// names the role of the file in the caller's diagnostic ("scenario
/// file", "input file", ...).
std::string read_text_file(const std::string& path,
                           const std::string& what = "file");

/// Resolves `path` against `base_dir` unless it is absolute or either
/// argument is empty — how scenario files reference their platform and
/// workload files relative to their own directory.
std::string resolve_path(const std::string& base_dir,
                         const std::string& path);

}  // namespace spmap
