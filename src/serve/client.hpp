#pragma once
/// \file client.hpp
/// Minimal blocking `spmap-wire/1` client: connect, handshake, send
/// frames, receive frames with a timeout. Shared by the load generator
/// (src/serve/loadgen.hpp), the serving benchmark and the daemon tests —
/// one client implementation, so a protocol change breaks loudly in one
/// place instead of quietly in three.
///
/// ## Reconnect and resume
///
/// The hello handshake yields a session id and token (when the server
/// issues them); every server push carries a monotonic `event_seq`, which
/// the client tracks across `recv`. After a connection loss,
/// `reconnect()` re-dials with bounded exponential backoff and presents
/// the token via the `resume` verb: on success the server replays exactly
/// the events after `last_event_seq()` — nothing lost, nothing repeated —
/// and the session (job table, subscriptions) continues as if the drop
/// never happened. When the server no longer knows the token (it
/// restarted, or the resume window closed), `reconnect()` falls back to a
/// fresh hello and returns false so the caller can recover by job id.
///
/// ## Thread-safety
///
/// None: one WireClient belongs to one thread (the loadgen runs one per
/// simulated session).

#include <cstdint>
#include <optional>
#include <string>

#include "serve/wire.hpp"
#include "util/rng.hpp"
#include "util/socket.hpp"

namespace spmap {

struct WireClientOptions {
  /// Per-attempt connect window (connect_endpoint retries "daemon still
  /// starting" refusals inside it).
  double connect_timeout_ms = 5000.0;
  /// Extra connect attempts after the first, with exponential backoff
  /// between them; 0 keeps the single-attempt behavior.
  std::size_t connect_retries = 0;
  /// First inter-attempt delay; doubles per attempt up to the cap.
  double backoff_ms = 50.0;
  double backoff_max_ms = 2000.0;
  /// Seeds the deterministic backoff jitter (each delay is scaled into
  /// [0.5, 1.0] of its nominal value); same seed, same schedule.
  std::uint64_t jitter_seed = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class WireClient {
 public:
  /// Connects (with the options' backoff schedule) and performs the
  /// `hello` handshake. Throws spmap::Error when the endpoint stays
  /// unreachable through every attempt or the handshake is refused.
  WireClient(const Endpoint& endpoint, WireClientOptions options);
  /// Single-attempt convenience (the pre-resume signature).
  explicit WireClient(const Endpoint& endpoint,
                      double connect_timeout_ms = 5000.0,
                      std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Sends one frame (the '\n' is appended here). Throws spmap::Error on
  /// a dead connection.
  void send(const Json& frame);
  void send_raw(const std::string& line);

  /// The next frame, in arrival order, waiting up to `timeout_ms`
  /// (<= 0: wait forever). std::nullopt on timeout; throws spmap::Error
  /// on EOF/connection loss or a frame that is not a JSON object.
  std::optional<Json> recv(double timeout_ms = -1.0);

  /// Skips frames until one with `"event" == event` arrives (responses
  /// and other events are discarded). std::nullopt on timeout.
  std::optional<Json> recv_event(const std::string& event,
                                 double timeout_ms = -1.0);

  /// The server-info fields the handshake answered with.
  const Json& hello_info() const { return hello_info_; }

  /// Session identity from the handshake (0/empty when the server does
  /// not issue tokens).
  std::uint64_t session() const { return session_; }
  const std::string& session_token() const { return token_; }
  /// Highest `event_seq` seen across received frames — what `reconnect`
  /// hands the server as the replay cursor.
  std::uint64_t last_event_seq() const { return last_event_seq_; }

  /// Re-dials after a connection loss (same backoff schedule as the
  /// constructor). With `try_resume` and a token in hand, presents the
  /// `resume` verb: true means the session resumed and the missed events
  /// are inbound; false means the server did not know the token (restart
  /// or expired window) and a fresh hello replaced the session — the
  /// caller re-queries its jobs by id. Throws when the endpoint stays
  /// unreachable.
  bool reconnect(bool try_resume = true);

  /// Abruptly kills the connection (shutdown, no goodbye) — the chaos
  /// loadgen's simulated connection loss. Pending send/recv calls fail
  /// with spmap::Error; follow with reconnect().
  void drop_connection();

 private:
  Socket connect_with_backoff();
  void handshake_hello(double timeout_ms);
  void adopt_identity(const Json& answer);

  Endpoint endpoint_;
  WireClientOptions options_;
  Rng jitter_rng_;
  Socket socket_;
  FrameReader reader_;
  std::vector<std::string> pending_;
  std::size_t pending_next_ = 0;
  Json hello_info_;
  std::uint64_t session_ = 0;
  std::string token_;
  std::uint64_t last_event_seq_ = 0;
};

}  // namespace spmap
